"""DRCF recovery policies (dependability modeling).

The paper models reconfiguration as always succeeding; real run-time
reconfigurable fabrics suffer configuration-memory upsets and interrupted
context loads.  :class:`RecoveryPolicy` bundles the standard mitigations a
DRCF can deploy against them, selectable per :class:`~repro.core.drcf.Drcf`
and instrumented in its stats:

* **readback verify** — checksum the fetched bitstream against the
  context's expected value (fine-grain devices CRC each frame);
* **bounded retry with backoff** — refetch a failed bitstream up to
  ``max_retries`` extra times, waiting ``backoff * backoff_factor**k``
  before attempt ``k`` so a transient can clear;
* **configuration scrubbing** — a background process periodically reads
  every context region back over the bus and repairs corrupted
  configuration memory from the golden image (Xilinx SEU scrubbing);
* **fetch timeout** — abort a wedged configuration transfer after a bound
  instead of hanging the fabric forever (watchdog on the config port);
* **fall back to resident** — when retries are exhausted, accept the
  (corrupted) load in degraded mode instead of raising, so the system
  keeps serving — the failure becomes observable as silent data
  corruption rather than an aborted simulation.

The fault models that exercise these policies live in
:mod:`repro.faults`; this module is policy only, so the core layer does
not depend on the fault-injection layer.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

from ..kernel import SimTime, ZERO_TIME, us


@dataclass(frozen=True)
class RecoveryPolicy:
    """What a DRCF does when a configuration load goes wrong."""

    #: Checksum every fetched bitstream against the context's expected value.
    verify: bool = False
    #: Extra fetch attempts after a failed verification (0 = no retry).
    max_retries: int = 2
    #: Wait before the first refetch (lets a transient clear); ``ZERO_TIME``
    #: retries immediately.
    backoff: SimTime = ZERO_TIME
    #: Backoff multiplier per successive attempt (exponential backoff).
    backoff_factor: float = 2.0
    #: Period of the background configuration-scrubbing process
    #: (None = no scrubbing).
    scrub_interval: Optional[SimTime] = None
    #: Abort a configuration transfer that has made no progress after this
    #: long and count it as a failed attempt (None = wait forever).
    fetch_timeout: Optional[SimTime] = None
    #: On exhausted retries, keep running with the corrupted load (degraded
    #: mode) instead of raising ``SimulationError``.
    fallback_to_resident: bool = False

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError("max_retries must be non-negative")
        if self.backoff_factor <= 0:
            raise ValueError("backoff_factor must be positive")

    def backoff_delay(self, attempt: int) -> SimTime:
        """Delay before refetch attempt ``attempt`` (1-based)."""
        if self.backoff is ZERO_TIME or self.backoff.femtoseconds == 0:
            return ZERO_TIME
        scale = self.backoff_factor ** max(0, attempt - 1)
        return SimTime.from_fs(int(self.backoff.femtoseconds * scale))

    def with_overrides(self, **kwargs) -> "RecoveryPolicy":
        """A copy with the given fields replaced."""
        return replace(self, **kwargs)


#: No mitigation at all: corrupted loads go unnoticed (baseline).
NO_RECOVERY = RecoveryPolicy(verify=False, max_retries=0)

#: Detection only: verification flags a bad load but nothing refetches;
#: with fallback the system degrades instead of aborting.
VERIFY_ONLY = RecoveryPolicy(verify=True, max_retries=0, fallback_to_resident=True)

#: Verification plus bounded retry with exponential backoff.
RETRY_BACKOFF = RecoveryPolicy(
    verify=True,
    max_retries=3,
    backoff=us(2),
    backoff_factor=2.0,
    fallback_to_resident=True,
)

#: Everything on: retry/backoff, background scrubbing, fetch timeout.
FULL_RECOVERY = RecoveryPolicy(
    verify=True,
    max_retries=3,
    backoff=us(2),
    backoff_factor=2.0,
    scrub_interval=us(50),
    fetch_timeout=us(200),
    fallback_to_resident=True,
)

#: Named presets reachable from the CLI (``--recovery``) and campaigns.
RECOVERY_PRESETS = {
    "none": NO_RECOVERY,
    "verify": VERIFY_ONLY,
    "retry": RETRY_BACKOFF,
    "full": FULL_RECOVERY,
}


def recovery_preset(name: str) -> RecoveryPolicy:
    """Look up a named preset (``none``/``verify``/``retry``/``full``)."""
    try:
        return RECOVERY_PRESETS[name]
    except KeyError:
        raise KeyError(
            f"unknown recovery preset {name!r}; known: {sorted(RECOVERY_PRESETS)}"
        ) from None
