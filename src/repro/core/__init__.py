"""The paper's primary contribution: the DRCF modeling methodology.

* :class:`Drcf` — the dynamically reconfigurable fabric component with the
  Section 5.3 context scheduler and instrumentation.
* :mod:`~repro.core.transform` — the four-phase automatic model
  transformation of Section 5.2 / Figure 4.
* :mod:`~repro.core.codegen` — the before/after source listings.
* :class:`Ref8Drcf` — the reference-[8] baseline that models switch delay
  but not configuration-memory traffic.
* :mod:`~repro.core.prefetch`, :mod:`~repro.core.power`, area slots in
  :mod:`~repro.core.policies` — the paper's future-work extensions
  (background loading, power accounting, partial reconfiguration).
"""

from .baseline_ref8 import Ref8Drcf
from .cache import ConfigCache
from .codegen import (
    CodegenError,
    default_env,
    exec_build_source,
    generate_build_source,
    generate_drcf_listing,
    generate_transformation_diff,
)
from .context import Context, ContextParameters, context_parameters_for
from .drcf import Drcf
from .netlist import ComponentSpec, ElaboratedDesign, Netlist
from .policies import (
    AreaSlotManager,
    FifoPolicy,
    FixedSlotManager,
    LruPolicy,
    PinnedLruPolicy,
    RandomPolicy,
    ReplacementPolicy,
    Slot,
    SlotManager,
    make_policy,
)
from .power import EnergyBreakdown, PowerModel
from .recovery import (
    FULL_RECOVERY,
    NO_RECOVERY,
    RECOVERY_PRESETS,
    RETRY_BACKOFF,
    VERIFY_ONLY,
    RecoveryPolicy,
    recovery_preset,
)
from .prefetch import (
    ContextPrefetcher,
    MarkovPredictor,
    NextContextPredictor,
    RoundRobinPredictor,
    SequencePredictor,
)
from .scheduler import ContextScheduler, SwitchRequest
from .stats import ContextStats, DrcfStats
from .transform import (
    ContextAllocation,
    InstanceAnalysis,
    ModuleAnalysis,
    TransformReport,
    TransformResult,
    analyze_instance,
    analyze_module_spec,
    transform_to_drcf,
)

__all__ = [
    "AreaSlotManager",
    "CodegenError",
    "ConfigCache",
    "ComponentSpec",
    "Context",
    "ContextAllocation",
    "ContextParameters",
    "ContextPrefetcher",
    "ContextScheduler",
    "ContextStats",
    "Drcf",
    "DrcfStats",
    "ElaboratedDesign",
    "EnergyBreakdown",
    "FifoPolicy",
    "FixedSlotManager",
    "FULL_RECOVERY",
    "NO_RECOVERY",
    "RECOVERY_PRESETS",
    "RETRY_BACKOFF",
    "RecoveryPolicy",
    "VERIFY_ONLY",
    "recovery_preset",
    "InstanceAnalysis",
    "LruPolicy",
    "MarkovPredictor",
    "ModuleAnalysis",
    "Netlist",
    "NextContextPredictor",
    "PinnedLruPolicy",
    "PowerModel",
    "RandomPolicy",
    "Ref8Drcf",
    "ReplacementPolicy",
    "RoundRobinPredictor",
    "SequencePredictor",
    "Slot",
    "SlotManager",
    "SwitchRequest",
    "TransformReport",
    "TransformResult",
    "analyze_instance",
    "analyze_module_spec",
    "context_parameters_for",
    "default_env",
    "exec_build_source",
    "generate_build_source",
    "generate_drcf_listing",
    "generate_transformation_diff",
    "make_policy",
    "transform_to_drcf",
]
