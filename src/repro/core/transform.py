"""The automatic DRCF model transformation (paper Section 5.2, Figure 4).

The methodology's four phases, quoted from the paper:

1. **Analysis of module** — "the ports and interfaces of the module are
   analyzed ... so that the DRCF component can implement the same
   interfaces and ports."
2. **Analysis of module instance** — "the declaration of each instance is
   located and then the constructors are located and copied to a temporary
   database", together with the port and interface bindings.
3. **Creation of DRCF component** — "the DRCF component is created from a
   template.  The ports and interfaces analyzed in the first phase are
   added to the DRCF template and then the component ... is instantiated
   according to the declaration and constructor located in second phase."
   The template contains the context scheduler, the instrumentation
   process and the routing multiplexer (all provided by
   :class:`~repro.core.drcf.Drcf`).
4. **Modification of instance** — the hierarchical module is "updated to
   use the DRCF module instead of the hardware accelerator": declaration,
   constructor and binding lines are rewritten.

Here the *source* being transformed is a :class:`~repro.core.netlist.Netlist`;
phases 1–2 produce :class:`ModuleAnalysis`/:class:`InstanceAnalysis`
records, phase 3 builds a DRCF component spec whose constructor
re-instantiates the candidates inside the fabric, and phase 4 returns a
rewritten netlist.  The paper's limitation 1 — all transformed models must
be instantiated at the same level of hierarchy, in the same component — is
enforced by requiring all candidates to be slaves of the same bus.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..kernel import (
    ElaborationError,
    SimTime,
    Simulator,
    implemented_interfaces,
    ports_of,
)
from .context import Context, ContextParameters, context_parameters_for
from .drcf import Drcf
from .netlist import ComponentSpec, ElaboratedDesign, Netlist
from .policies import ReplacementPolicy


@dataclass
class ModuleAnalysis:
    """Phase 1 result: the candidate's interfaces, ports and address range."""

    class_name: str
    interfaces: List[str]
    ports: List[Tuple[str, Optional[str]]]
    low_addr: int
    high_addr: int
    gates: int

    @property
    def implements_slave_if(self) -> bool:
        return "BusSlaveIf" in self.interfaces


@dataclass
class InstanceAnalysis:
    """Phase 2 result: declaration, constructor and bindings of an instance."""

    name: str
    factory_name: str
    kwargs: Dict[str, object]
    master_of: Optional[str]
    slave_of: Optional[str]


@dataclass
class ContextAllocation:
    """Configuration-memory placement decided for one context."""

    name: str
    config_addr: int
    size_bytes: int
    gates: int
    extra_delay: SimTime


@dataclass
class TransformReport:
    """Everything the transformation decided (input to codegen and tests)."""

    drcf_name: str
    bus_name: str
    config_bus_name: str
    config_memory_name: str
    module_analyses: Dict[str, ModuleAnalysis] = field(default_factory=dict)
    instance_analyses: Dict[str, InstanceAnalysis] = field(default_factory=dict)
    allocations: List[ContextAllocation] = field(default_factory=list)
    tech_name: str = ""


@dataclass
class TransformResult:
    """The rewritten netlist plus the transformation report."""

    netlist: Netlist
    report: TransformReport


# --------------------------------------------------------------------------
# Phase 1: analysis of module
# --------------------------------------------------------------------------

def analyze_module_spec(spec: ComponentSpec) -> ModuleAnalysis:
    """Analyze a candidate's module class by scratch elaboration.

    Instantiates the component under a throwaway simulator and inspects
    the implemented interfaces, the declared ports and the advertised
    address range — the Python analogue of parsing the SystemC class.
    """
    scratch = Simulator(name="analysis")
    instance = spec.factory(spec.name, sim=scratch, **spec.kwargs)
    interfaces = [cls.__name__ for cls in implemented_interfaces(instance)]
    ports = [
        (port.name, port.iface.__name__ if port.iface else None)
        for port in ports_of(instance)
    ]
    if not hasattr(instance, "get_low_add") or not hasattr(instance, "get_high_add"):
        raise ElaborationError(
            f"candidate {spec.name!r} lacks get_low_add/get_high_add; the "
            "methodology requires them to build the routing multiplexer "
            "(paper Section 5.4, limitation 2)"
        )
    gates = int(spec.kwargs.get("gates", getattr(instance, "gates", 10_000)))
    return ModuleAnalysis(
        class_name=spec.factory_name,
        interfaces=interfaces,
        ports=ports,
        low_addr=instance.get_low_add(),
        high_addr=instance.get_high_add(),
        gates=gates,
    )


# --------------------------------------------------------------------------
# Phase 2: analysis of module instance
# --------------------------------------------------------------------------

def analyze_instance(netlist: Netlist, name: str) -> InstanceAnalysis:
    """Record declaration, constructor arguments and bindings of ``name``."""
    spec = netlist.component(name)
    return InstanceAnalysis(
        name=spec.name,
        factory_name=spec.factory_name,
        kwargs=dict(spec.kwargs),
        master_of=spec.master_of,
        slave_of=spec.slave_of,
    )


# --------------------------------------------------------------------------
# Phases 3 + 4: creation of the DRCF component, modification of instances
# --------------------------------------------------------------------------

def transform_to_drcf(
    netlist: Netlist,
    candidates: Sequence[str],
    *,
    tech,
    config_memory: str,
    drcf_name: str = "drcf1",
    config_base: Optional[int] = None,
    config_bus: Optional[str] = None,
    drcf_cls: type = Drcf,
    policy: Optional[ReplacementPolicy] = None,
    use_area_slots: bool = False,
    fabric_capacity_gates: Optional[int] = None,
    config_burst_words: int = 64,
    extra_delays: Optional[Dict[str, SimTime]] = None,
) -> TransformResult:
    """Fold ``candidates`` into a DRCF and rewrite the netlist.

    Parameters mirror the designer's choices in the paper's flow: which
    functional blocks become contexts, the target technology preset, where
    the configuration bitstreams live (``config_memory`` component plus an
    optional ``config_base`` offset), and whether configuration fetches
    share the component interface bus or use a dedicated ``config_bus``
    (the memory-organization study of Section 5.3).
    """
    if not candidates:
        raise ElaborationError("transform_to_drcf: no candidates given")
    if len(set(candidates)) != len(candidates):
        raise ElaborationError("transform_to_drcf: duplicate candidate names")

    # Paper limitation 1: all candidates must live in the same component,
    # i.e. hang off the same bus.
    buses = {netlist.component(name).slave_of for name in candidates}
    if len(buses) != 1 or None in buses:
        raise ElaborationError(
            "all candidates must be slaves of the same bus (paper Section "
            f"5.4 limitation 1); got buses {sorted(str(b) for b in buses)}"
        )
    bus_name = buses.pop()
    mem_spec = netlist.component(config_memory)

    report = TransformReport(
        drcf_name=drcf_name,
        bus_name=bus_name,
        config_bus_name=config_bus or bus_name,
        config_memory_name=config_memory,
        tech_name=tech.name,
    )

    # Phases 1-2 per candidate.
    for name in candidates:
        spec = netlist.component(name)
        analysis = analyze_module_spec(spec)
        if not analysis.implements_slave_if:
            raise ElaborationError(
                f"candidate {name!r} does not implement BusSlaveIf; the DRCF "
                "cannot take its place on the bus"
            )
        report.module_analyses[name] = analysis
        report.instance_analyses[name] = analyze_instance(netlist, name)

    # Configuration-memory placement.
    word_bytes = int(mem_spec.kwargs.get("word_bytes", 4))
    next_addr = config_base if config_base is not None else int(mem_spec.kwargs.get("base", 0))
    mem_low = int(mem_spec.kwargs.get("base", 0))
    mem_high = mem_low + int(mem_spec.kwargs.get("size_words", 0)) * word_bytes - 1
    params_by_name: Dict[str, ContextParameters] = {}
    for name in candidates:
        gates = report.module_analyses[name].gates
        extra = (extra_delays or {}).get(name)
        params = context_parameters_for(tech, gates, next_addr, extra)
        if mem_high >= mem_low and params.config_addr + params.size_bytes - 1 > mem_high:
            raise ElaborationError(
                f"context {name!r} ({params.size_bytes} bytes at "
                f"{params.config_addr:#x}) does not fit in configuration "
                f"memory {config_memory!r} ending at {mem_high:#x}"
            )
        params_by_name[name] = params
        report.allocations.append(
            ContextAllocation(
                name=name,
                config_addr=params.config_addr,
                size_bytes=params.size_bytes,
                gates=gates,
                extra_delay=params.extra_delay,
            )
        )
        # Word-align the next region.
        next_addr = params.config_addr + _round_up(params.size_bytes, word_bytes)

    # Phase 3: context builders re-instantiate candidates inside the DRCF,
    # reproducing the analyzed declarations/constructors/bindings.
    builders = [
        _make_context_builder(netlist.component(name), params_by_name[name],
                              report.module_analyses[name].gates, tech)
        for name in candidates
    ]

    bus_spec = netlist.component(bus_name)
    bus_word_bytes = int(bus_spec.kwargs.get("data_width_bits", 32)) // 8

    def register_regions(drcf_instance, design: ElaboratedDesign) -> None:
        memory = design[config_memory]
        # The DRCF keeps a handle to its configuration memory so the
        # scrubbing recovery policy can repair corrupted regions and fault
        # models can target the stored bitstreams (repro.faults).
        drcf_instance.config_memory = memory
        if hasattr(memory, "register_context_region"):
            for alloc in report.allocations:
                memory.register_context_region(
                    alloc.name, alloc.config_addr, alloc.size_bytes
                )
            # Integrity modeling: contexts learn their expected bitstream
            # checksum so a verify-enabled DRCF can check fetched data.
            for context in drcf_instance.contexts:
                context.params.checksum = memory.checksum_of(context.name)

    drcf_kwargs: Dict[str, object] = dict(
        context_builders=builders,
        tech=tech,
        config_burst_words=config_burst_words,
        word_bytes=bus_word_bytes,
    )
    if policy is not None:
        drcf_kwargs["policy"] = policy
    if use_area_slots:
        drcf_kwargs["use_area_slots"] = True
        if fabric_capacity_gates is not None:
            drcf_kwargs["fabric_capacity_gates"] = fabric_capacity_gates

    drcf_spec = ComponentSpec(
        name=drcf_name,
        factory=drcf_cls,
        kwargs=drcf_kwargs,
        master_of=config_bus or bus_name,
        slave_of=bus_name,
        post_elaborate=register_regions,
    )

    # Phase 4: rewrite — remove candidates, insert the DRCF where the first
    # candidate stood.
    out = netlist.clone()
    order = out.component_names
    first_index = min(order.index(name) for name in candidates)
    anchor = order[first_index - 1] if first_index > 0 else None
    for name in candidates:
        out.remove(name)
    out.insert_after(anchor, drcf_spec)
    return TransformResult(netlist=out, report=report)


def _round_up(value: int, multiple: int) -> int:
    return ((value + multiple - 1) // multiple) * multiple


def _make_context_builder(
    spec: ComponentSpec, params: ContextParameters, gates: int, tech
) -> Callable:
    """Builder executed inside the DRCF constructor (phase 3 instantiation)."""
    kwargs = dict(spec.kwargs)
    had_master = spec.master_of is not None
    # Section 5.5 issue 1: a block mapped onto the fabric runs at fabric
    # speed, not at its dedicated-logic speed — retarget the timing model
    # if the candidate's constructor accepts a technology.
    try:
        signature = inspect.signature(spec.factory)
    except (TypeError, ValueError):  # builtins / odd callables
        signature = None
    if signature is not None and "tech" in signature.parameters:
        kwargs["tech"] = tech

    def builder(drcf) -> Context:
        module = spec.factory(spec.name, parent=drcf, **kwargs)
        if had_master:
            # The wrapped module's master traffic rides the DRCF's port,
            # like `hwa->mst_port(mst_port)` in the paper's listing.
            module.mst_port.bind(drcf.mst_port)
        return Context(name=spec.name, module=module, params=params, gates=gates)

    builder.__name__ = f"build_context_{spec.name}"
    return builder
