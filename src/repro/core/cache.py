"""On-chip configuration (bitstream) cache.

Chapter 2 lists "memories storing configurations" among the area overheads
of reconfigurable systems; the engineering question is whether spending
that area on-chip pays back in switch latency and bus traffic.  A
:class:`ConfigCache` models a dedicated on-chip bitstream store in front of
the configuration-memory path: a context whose bitstream is cached reloads
at on-chip bandwidth without touching the system bus.

This is an extension of the methodology in its own spirit (a parameterized
memory-organization knob, Section 5.3); experiment A5 sweeps the capacity.
"""

from __future__ import annotations

from collections import OrderedDict
from ..kernel import SimTime, cycles_to_time


class ConfigCache:
    """An LRU cache of whole context bitstreams.

    Parameters
    ----------
    capacity_bytes:
        Total on-chip storage.  Bitstreams larger than the capacity are
        never cached (they would evict everything for no reuse).
    words_per_cycle:
        On-chip refill bandwidth in bus words per fabric cycle.
    clock_freq_hz:
        Clock used to convert the refill into time.
    """

    def __init__(
        self,
        capacity_bytes: int,
        *,
        words_per_cycle: int = 4,
        clock_freq_hz: float = 100e6,
    ) -> None:
        if capacity_bytes <= 0:
            raise ValueError("cache capacity must be positive")
        if words_per_cycle <= 0:
            raise ValueError("refill bandwidth must be positive")
        self.capacity_bytes = capacity_bytes
        self.words_per_cycle = words_per_cycle
        self.clock_freq_hz = clock_freq_hz
        self._resident: "OrderedDict[str, int]" = OrderedDict()  # name -> bytes
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    # -- queries -----------------------------------------------------------
    @property
    def used_bytes(self) -> int:
        return sum(self._resident.values())

    @property
    def resident_names(self) -> list:
        """Cached bitstream names, LRU first."""
        return list(self._resident)

    def contains(self, name: str) -> bool:
        return name in self._resident

    # -- access ------------------------------------------------------------
    def lookup(self, name: str) -> bool:
        """Check + touch; returns True on hit (counts the access)."""
        if name in self._resident:
            self._resident.move_to_end(name)
            self.hits += 1
            return True
        self.misses += 1
        return False

    def insert(self, name: str, size_bytes: int) -> None:
        """Cache a bitstream fetched from memory, evicting LRU as needed."""
        if size_bytes > self.capacity_bytes:
            return  # would thrash the whole cache for zero reuse
        while self.used_bytes + size_bytes > self.capacity_bytes:
            self._resident.popitem(last=False)
            self.evictions += 1
        self._resident[name] = size_bytes
        self._resident.move_to_end(name)

    def refill_time(self, size_bytes: int) -> SimTime:
        """Time to stream a cached bitstream into the configuration plane."""
        words = max(1, -(-size_bytes // 4))
        cycles = -(-words // self.words_per_cycle)
        return cycles_to_time(cycles, self.clock_freq_hz)

    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def __repr__(self) -> str:
        return (
            f"ConfigCache({self.used_bytes}/{self.capacity_bytes}B, "
            f"hits={self.hits}, misses={self.misses})"
        )
