"""The OCAPI-XL-style baseline of the paper's reference [8].

Section 4: "For system-level modeling authors of [8] presented a
OCAPI-XL-based method where special processes called scheduler
automatically handle scheduling of contexts.  **However, the memory traffic
associated to context switching is not modeled.**"

:class:`Ref8Drcf` reproduces that modeling style: context switches consume
the configuration-port load time and the per-context extra delay, but issue
**no transactions on the memory bus**.  Under bus contention this
underestimates both the switch latency (no arbitration wait, no bus
occupancy) and the slowdown inflicted on other masters — experiment E8
quantifies the divergence and shows it grows with background load.

The class deliberately shares the full :class:`~repro.core.drcf.Drcf`
machinery (decode, fabric lock, slot management, instrumentation) so the
*only* difference is the missing traffic.
"""

from __future__ import annotations

from .drcf import Drcf


class Ref8Drcf(Drcf):
    """A DRCF whose context switches bypass the memory bus.

    The switch still takes the technology's configuration-port time plus
    the per-context extra delay (ref [8] models the reconfiguration
    *delay*), but the bus never sees the configuration words: they are
    accounted in :attr:`stats` as fetched for comparability, yet no
    arbitration or transfer happens.
    """

    #: No configuration traffic ever reaches the bus, so the limitation-3
    #: blocking-bus lint rule (REP310) exempts this class.
    FETCHES_CONFIG_OVER_BUS = False

    def _fetch_config(self, config_addr: int, n_words: int, context_name: str):
        # The port-bound load time is applied by the scheduler on top of a
        # zero-time "fetch" (elapsed == 0 here), so the modeled delay equals
        # raw_load_time(context) + extra_delay — delay without traffic.  The
        # words are reported as modeled (for comparable statistics) even
        # though none crossed the bus.
        if False:  # pragma: no cover - make this a generator with no yields
            yield None
        return n_words
