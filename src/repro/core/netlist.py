"""Declarative architecture descriptions (netlists).

The paper's transformation tool operates on SystemC *source*: it locates
declarations, constructors and port bindings in the hierarchical module and
rewrites them.  The Python analogue of that source level is a declarative
:class:`Netlist`: an ordered set of :class:`ComponentSpec` entries
(declaration + constructor arguments + bindings) that can be

* *elaborated* into a live module hierarchy under a simulator (repeatedly,
  with different parameters — the DSE loop), and
* *rewritten* by the DRCF transformation (:mod:`repro.core.transform`),
  which removes candidate components and inserts the generated DRCF, and
* *printed back* as executable construction source
  (:mod:`repro.core.codegen`), mirroring the paper's before/after listings.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from ..kernel import ElaborationError, Module, Simulator


@dataclass
class ComponentSpec:
    """Declaration + constructor + bindings of one component instance.

    Attributes
    ----------
    name:
        Instance name (the paper's *declaration*).
    factory:
        A ``Module`` subclass or any callable
        ``factory(name, parent=..., **kwargs)`` (the *constructor*).
    kwargs:
        Constructor keyword arguments.
    master_of:
        Name of the bus this component's ``mst_port`` binds to (a *port
        binding* in the paper's listing).
    slave_of:
        Name of the bus this component registers on as a slave (the
        *interface binding*).
    post_elaborate:
        Optional hook ``hook(instance, design)`` run after all bindings.
    """

    name: str
    factory: Callable
    kwargs: Dict[str, object] = field(default_factory=dict)
    master_of: Optional[str] = None
    slave_of: Optional[str] = None
    post_elaborate: Optional[Callable] = None

    @property
    def factory_name(self) -> str:
        return getattr(self.factory, "__name__", str(self.factory))


class ElaboratedDesign:
    """The result of elaborating a netlist: live instances by name."""

    def __init__(self, top: Module, instances: Dict[str, Module]) -> None:
        self.top = top
        self._instances = instances

    def __getitem__(self, name: str) -> Module:
        try:
            return self._instances[name]
        except KeyError:
            raise KeyError(
                f"no instance {name!r}; instances: {sorted(self._instances)}"
            ) from None

    def __contains__(self, name: str) -> bool:
        return name in self._instances

    @property
    def instance_names(self) -> List[str]:
        return list(self._instances)

    @property
    def sim(self) -> Simulator:
        return self.top.sim


class Netlist:
    """An ordered, rewritable architecture description."""

    def __init__(self, name: str = "top") -> None:
        self.name = name
        self._specs: Dict[str, ComponentSpec] = {}

    # -- building ------------------------------------------------------------
    def add(
        self,
        name: str,
        factory: Callable,
        *,
        master_of: Optional[str] = None,
        slave_of: Optional[str] = None,
        post_elaborate: Optional[Callable] = None,
        **kwargs,
    ) -> ComponentSpec:
        """Append a component spec; returns it for further tweaking."""
        if name in self._specs:
            raise ElaborationError(f"netlist {self.name}: duplicate component {name!r}")
        spec = ComponentSpec(
            name=name,
            factory=factory,
            kwargs=kwargs,
            master_of=master_of,
            slave_of=slave_of,
            post_elaborate=post_elaborate,
        )
        self._specs[name] = spec
        return spec

    def remove(self, name: str) -> ComponentSpec:
        """Remove and return a component spec (transformation primitive)."""
        try:
            return self._specs.pop(name)
        except KeyError:
            raise ElaborationError(
                f"netlist {self.name}: no component {name!r} to remove"
            ) from None

    def insert_after(self, anchor: Optional[str], spec: ComponentSpec) -> None:
        """Insert ``spec`` after ``anchor`` (or first when anchor is None)."""
        if spec.name in self._specs:
            raise ElaborationError(f"netlist {self.name}: duplicate component {spec.name!r}")
        items = list(self._specs.items())
        self._specs.clear()
        if anchor is None:
            self._specs[spec.name] = spec
            self._specs.update(items)
            return
        placed = False
        for key, value in items:
            self._specs[key] = value
            if key == anchor:
                self._specs[spec.name] = spec
                placed = True
        if not placed:
            raise ElaborationError(f"netlist {self.name}: no anchor {anchor!r}")

    # -- queries -----------------------------------------------------------------
    def component(self, name: str) -> ComponentSpec:
        try:
            return self._specs[name]
        except KeyError:
            raise ElaborationError(
                f"netlist {self.name}: no component {name!r}; "
                f"components: {self.component_names}"
            ) from None

    @property
    def component_names(self) -> List[str]:
        return list(self._specs)

    @property
    def specs(self) -> List[ComponentSpec]:
        return list(self._specs.values())

    def slaves_of(self, bus_name: str) -> List[str]:
        return [s.name for s in self._specs.values() if s.slave_of == bus_name]

    def masters_of(self, bus_name: str) -> List[str]:
        return [s.name for s in self._specs.values() if s.master_of == bus_name]

    def clone(self, name: Optional[str] = None) -> "Netlist":
        """A structurally independent copy (kwargs shallow-copied per spec)."""
        out = Netlist(name or self.name)
        for spec in self._specs.values():
            out._specs[spec.name] = ComponentSpec(
                name=spec.name,
                factory=spec.factory,
                kwargs=dict(spec.kwargs),
                master_of=spec.master_of,
                slave_of=spec.slave_of,
                post_elaborate=spec.post_elaborate,
            )
        return out

    def validate(self) -> List[str]:
        """Structural checks without elaborating; returns problem strings.

        Detects dangling ``master_of``/``slave_of`` references and multiple
        slaves of one bus declaring the same ``base`` address (the static
        half of the bus's overlap check).  An empty list means clean.
        """
        problems: List[str] = []
        names = set(self._specs)
        for spec in self._specs.values():
            for what, target in (("master_of", spec.master_of), ("slave_of", spec.slave_of)):
                if target is not None and target not in names:
                    problems.append(
                        f"component {spec.name!r}: {what} references unknown "
                        f"component {target!r}"
                    )
        by_bus: Dict[str, Dict[int, str]] = {}
        for spec in self._specs.values():
            if spec.slave_of is None or "base" not in spec.kwargs:
                continue
            base = spec.kwargs["base"]
            seen = by_bus.setdefault(spec.slave_of, {})
            if base in seen:
                problems.append(
                    f"slaves {seen[base]!r} and {spec.name!r} of bus "
                    f"{spec.slave_of!r} share base address {base:#x}"
                )
            else:
                seen[base] = spec.name
        return problems

    # -- elaboration ---------------------------------------------------------------
    def elaborate(self, sim: Simulator) -> ElaboratedDesign:
        """Build the live hierarchy: instantiate, bind, run post hooks."""
        top = Module(self.name, sim=sim)
        instances: Dict[str, Module] = {}
        for spec in self._specs.values():
            instances[spec.name] = spec.factory(spec.name, parent=top, **spec.kwargs)
        design = ElaboratedDesign(top, instances)
        for spec in self._specs.values():
            instance = instances[spec.name]
            if spec.master_of is not None:
                bus = self._require(instances, spec.master_of, spec.name, "master_of")
                instance.mst_port.bind(bus)
            if spec.slave_of is not None:
                bus = self._require(instances, spec.slave_of, spec.name, "slave_of")
                bus.register_slave(instance)
        for spec in self._specs.values():
            if spec.post_elaborate is not None:
                spec.post_elaborate(instances[spec.name], design)
        return design

    @staticmethod
    def _require(instances: Dict[str, Module], name: str, who: str, what: str) -> Module:
        try:
            return instances[name]
        except KeyError:
            raise ElaborationError(
                f"component {who!r}: {what} references unknown component {name!r}"
            ) from None
