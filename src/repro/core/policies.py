"""Context slot management and replacement policies.

A single-context FPGA (Virtex-II Pro-style) has one slot; a multi-context
device (MorphoSys-style) holds several resident contexts and needs a
*replacement policy* when a new context must be loaded.  The paper leaves
context selection/allocation to ref [5]; we implement the standard policies
as an ablation (experiment A1).

Two slot managers are provided:

* :class:`FixedSlotManager` — N identical slots (the multi-context model).
* :class:`AreaSlotManager` — slots are carved out of a gate-capacity
  budget, so how many contexts fit depends on their sizes.  This models
  *partial reconfiguration* of a partitionable fabric (VariCore "can be
  partitioned where needed", Virtex partial reconfiguration) and backs the
  paper's future-work item on partial reconfiguration (experiment A2).
"""

from __future__ import annotations

import abc
import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..kernel import SimulationError
from .context import Context


@dataclass
class Slot:
    """One resident-context slot."""

    index: int
    context: Optional[Context] = None
    #: Monotonic counter value of the last use (for LRU).
    last_use: int = -1
    #: Counter value when the context was loaded (for FIFO).
    loaded_at: int = -1
    #: True while a (background) load into this slot is in progress.
    loading: bool = False

    @property
    def empty(self) -> bool:
        return self.context is None and not self.loading


class ReplacementPolicy(abc.ABC):
    """Chooses which resident context to evict."""

    name: str = "abstract"

    @abc.abstractmethod
    def choose_victim(self, candidates: Sequence[Slot]) -> Slot:
        """Pick a victim among ``candidates`` (never empty)."""

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"{type(self).__name__}()"


class LruPolicy(ReplacementPolicy):
    """Evict the least recently used context."""

    name = "lru"

    def choose_victim(self, candidates: Sequence[Slot]) -> Slot:
        return min(candidates, key=lambda s: (s.last_use, s.index))


class FifoPolicy(ReplacementPolicy):
    """Evict the oldest-loaded context."""

    name = "fifo"

    def choose_victim(self, candidates: Sequence[Slot]) -> Slot:
        return min(candidates, key=lambda s: (s.loaded_at, s.index))


class RandomPolicy(ReplacementPolicy):
    """Evict a pseudo-random context (seeded, reproducible).

    Pass ``rng`` to share one seeded :class:`random.Random` across the
    whole experiment (fault campaigns and DSE runs do, so a single seed
    reproduces the run end to end); otherwise a private generator is
    built from ``seed``.
    """

    name = "random"

    def __init__(self, seed: int = 1, rng: Optional[random.Random] = None) -> None:
        self._rng = rng if rng is not None else random.Random(seed)

    def choose_victim(self, candidates: Sequence[Slot]) -> Slot:
        return candidates[self._rng.randrange(len(candidates))]


class PinnedLruPolicy(ReplacementPolicy):
    """LRU, but contexts in the pinned set are never evicted.

    Models a designer statically locking a hot context into the fabric.
    """

    name = "pinned_lru"

    def __init__(self, pinned: Sequence[str]) -> None:
        self.pinned = set(pinned)
        self._lru = LruPolicy()

    def choose_victim(self, candidates: Sequence[Slot]) -> Slot:
        free = [
            s
            for s in candidates
            if s.context is None or s.context.name not in self.pinned
        ]
        if not free:
            raise SimulationError(
                "pinned_lru: all evictable slots hold pinned contexts "
                f"(pinned={sorted(self.pinned)})"
            )
        return self._lru.choose_victim(free)


POLICIES: Dict[str, type] = {
    "lru": LruPolicy,
    "fifo": FifoPolicy,
    "random": RandomPolicy,
}


def make_policy(name: str, **kwargs) -> ReplacementPolicy:
    """Build a policy by name (``lru``/``fifo``/``random``)."""
    try:
        return POLICIES[name](**kwargs)
    except KeyError:
        raise KeyError(f"unknown policy {name!r}; known: {sorted(POLICIES)}") from None


class SlotManager(abc.ABC):
    """Tracks which contexts are resident on the fabric."""

    def __init__(self, policy: ReplacementPolicy) -> None:
        self.policy = policy
        self._tick = 0

    def tick(self) -> int:
        self._tick += 1
        return self._tick

    @abc.abstractmethod
    def slot_of(self, context: Context) -> Optional[Slot]:
        """The slot holding ``context`` (loaded or loading), else None."""

    @abc.abstractmethod
    def allocate(self, context: Context, active: Optional[Context]) -> Slot:
        """A slot into which ``context`` may be loaded, evicting if needed.

        ``active`` is the currently executing context; on a multi-slot
        fabric it must not be evicted to make room (it is running).
        """

    @abc.abstractmethod
    def resident_contexts(self) -> List[Context]:
        """All fully loaded resident contexts."""

    @abc.abstractmethod
    def has_idle_capacity(self, context: Context, active: Optional[Context]) -> bool:
        """True if ``context`` could be loaded without evicting ``active``."""

    def touch(self, slot: Slot) -> None:
        """Mark a slot as just used (LRU bookkeeping)."""
        slot.last_use = self.tick()


class FixedSlotManager(SlotManager):
    """N interchangeable context slots (multi-context device model)."""

    def __init__(self, n_slots: int, policy: ReplacementPolicy) -> None:
        super().__init__(policy)
        if n_slots < 1:
            raise ValueError("need at least one context slot")
        self.slots = [Slot(index=i) for i in range(n_slots)]

    def slot_of(self, context: Context) -> Optional[Slot]:
        for slot in self.slots:
            if slot.context is context:
                return slot
        return None

    def allocate(self, context: Context, active: Optional[Context]) -> Slot:
        for slot in self.slots:
            if slot.empty:
                return slot
        candidates = [
            s
            for s in self.slots
            if s.context is not active and not s.loading
        ]
        if candidates:
            try:
                return self.policy.choose_victim(candidates)
            except SimulationError:
                pass  # e.g. every non-active slot pinned: fall through
        # Single-slot (or fully pinned) fabric: replacing the active
        # context *is* the switch — the scheduler drains it first.
        candidates = [s for s in self.slots if not s.loading]
        if not candidates:
            raise SimulationError("no evictable context slot (all slots loading)")
        return self.policy.choose_victim(candidates)

    def resident_contexts(self) -> List[Context]:
        return [s.context for s in self.slots if s.context is not None and not s.loading]

    def has_idle_capacity(self, context: Context, active: Optional[Context]) -> bool:
        return any(
            s.empty or (s.context is not active and s.context is not context and not s.loading)
            for s in self.slots
        )


class AreaSlotManager(SlotManager):
    """Slots carved from a gate budget (partial-reconfiguration model).

    A context occupies ``context.gates`` of the fabric's ``capacity_gates``.
    Any set of contexts whose total fits is simultaneously resident; when a
    new context does not fit, victims are evicted per policy until it does.
    """

    def __init__(self, capacity_gates: int, policy: ReplacementPolicy) -> None:
        super().__init__(policy)
        if capacity_gates <= 0:
            raise ValueError("fabric capacity must be positive")
        self.capacity_gates = capacity_gates
        self.slots: List[Slot] = []
        self._next_index = 0

    def _used_gates(self) -> int:
        return sum(s.context.gates for s in self.slots if s.context is not None)

    def slot_of(self, context: Context) -> Optional[Slot]:
        for slot in self.slots:
            if slot.context is context:
                return slot
        return None

    def allocate(self, context: Context, active: Optional[Context]) -> Slot:
        if context.gates > self.capacity_gates:
            raise SimulationError(
                f"context {context.name!r} ({context.gates} gates) exceeds "
                f"fabric capacity ({self.capacity_gates} gates)"
            )
        while self._used_gates() + context.gates > self.capacity_gates:
            candidates = [
                s
                for s in self.slots
                if s.context is not None and s.context is not active and not s.loading
            ]
            if not candidates:
                # Only the active context remains: replacing it is the
                # switch itself (single-resident regime).
                candidates = [
                    s for s in self.slots if s.context is not None and not s.loading
                ]
            if not candidates:
                raise SimulationError(
                    "cannot make room: remaining resident contexts are loading"
                )
            victim = self.policy.choose_victim(candidates)
            self.slots.remove(victim)
        slot = Slot(index=self._next_index)
        self._next_index += 1
        self.slots.append(slot)
        return slot

    def resident_contexts(self) -> List[Context]:
        return [s.context for s in self.slots if s.context is not None and not s.loading]

    def has_idle_capacity(self, context: Context, active: Optional[Context]) -> bool:
        # Room without touching the active context: free gates plus gates of
        # evictable residents.
        free = self.capacity_gates - self._used_gates()
        evictable = sum(
            s.context.gates
            for s in self.slots
            if s.context is not None and s.context is not active and s.context is not context and not s.loading
        )
        return free + evictable >= context.gates
