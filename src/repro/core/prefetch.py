"""Background context prefetching (MorphoSys-style).

Chapter 3 of the paper: "While the RC array is executing one of the 16
contexts, the other 16 contexts can be reloaded into the context memory."
On technologies with ``background_load`` the inactive slot can be filled
while the active context computes, hiding the reconfiguration latency.

A :class:`ContextPrefetcher` watches the scheduler's switch history and,
after every foreground switch, asks a :class:`NextContextPredictor` for the
likely next context and queues a background load of it.  Predictors:

* :class:`SequencePredictor` — the application's known static schedule
  (the common case in the paper's framed wireless workloads);
* :class:`RoundRobinPredictor` — cycle through all contexts;
* :class:`MarkovPredictor` — most frequent observed successor of the
  current context (learned online).

Experiment A2 measures the hit rate and the latency hidden.
"""

from __future__ import annotations

import abc
from collections import defaultdict
from typing import Dict, Optional, Sequence

from ..kernel import Module
from .drcf import Drcf


class NextContextPredictor(abc.ABC):
    """Predicts the next context from the foreground switch history."""

    @abc.abstractmethod
    def predict(self, history: Sequence[str]) -> Optional[str]:
        """Name of the context to prefetch, or None for no prediction."""


class SequencePredictor(NextContextPredictor):
    """Follows a known cyclic schedule of context names."""

    def __init__(self, schedule: Sequence[str]) -> None:
        if not schedule:
            raise ValueError("schedule must not be empty")
        self.schedule = list(schedule)

    def predict(self, history: Sequence[str]) -> Optional[str]:
        if not history:
            return self.schedule[0]
        current = history[-1]
        try:
            index = self.schedule.index(current)
        except ValueError:
            return self.schedule[0]
        return self.schedule[(index + 1) % len(self.schedule)]


class RoundRobinPredictor(NextContextPredictor):
    """Cycles through the context names in a fixed order."""

    def __init__(self, context_names: Sequence[str]) -> None:
        if not context_names:
            raise ValueError("need at least one context name")
        self.names = list(context_names)

    def predict(self, history: Sequence[str]) -> Optional[str]:
        if not history:
            return self.names[0]
        try:
            index = self.names.index(history[-1])
        except ValueError:
            return self.names[0]
        return self.names[(index + 1) % len(self.names)]


class MarkovPredictor(NextContextPredictor):
    """First-order successor statistics learned from the history."""

    def predict(self, history: Sequence[str]) -> Optional[str]:
        if len(history) < 2:
            return None
        counts: Dict[str, Dict[str, int]] = defaultdict(lambda: defaultdict(int))
        for prev, nxt in zip(history, history[1:]):
            counts[prev][nxt] += 1
        successors = counts.get(history[-1])
        if not successors:
            return None
        # Deterministic tie-break by name.
        return max(sorted(successors), key=lambda n: successors[n])


class ContextPrefetcher(Module):
    """Drives background loads on a DRCF after each foreground switch."""

    def __init__(
        self,
        name: str,
        parent=None,
        sim=None,
        *,
        drcf: Drcf,
        predictor: NextContextPredictor,
    ) -> None:
        super().__init__(name, parent=parent, sim=sim)
        self.drcf = drcf
        self.predictor = predictor
        self.predictions = 0
        self.requests_issued = 0
        self.add_thread(self._run, name="prefetch", daemon=True)

    def _run(self):
        scheduler = self.drcf.scheduler
        while True:
            yield scheduler.switch_completed
            prediction = self.predictor.predict(scheduler.switch_history)
            self.predictions += 1
            if prediction is None:
                continue
            if scheduler.active is not None and prediction == scheduler.active.name:
                continue
            if self.drcf.prefetch(prediction) is not None:
                self.requests_issued += 1
