"""Context descriptors.

Section 5.3 of the paper gives the designer three parameters per context:

1. the memory address where the context (configuration bitstream) is
   allocated,
2. the size of the context, and
3. delays associated with the reconfiguration process *in addition to* the
   delays of the memory transfers.

:class:`ContextParameters` is the direct encoding.  A :class:`Context`
pairs those parameters with the functional module that executes when the
context is active, plus the resource estimate (equivalent gates) used by
the area/power models.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from ..kernel import SimTime, ZERO_TIME

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..bus import BusSlaveIf
    from ..tech import ReconfigTechnology


@dataclass
class ContextParameters:
    """The paper's three per-context parameters (Section 5.3)."""

    #: 1. Memory address where the configuration bitstream is allocated.
    config_addr: int
    #: 2. Size of the context (configuration bitstream) in bytes.
    size_bytes: int
    #: 3. Extra reconfiguration delay beyond the memory transfers.
    extra_delay: SimTime = ZERO_TIME
    #: Expected bitstream checksum (integrity modeling; None = unchecked).
    checksum: Optional[int] = None

    def __post_init__(self) -> None:
        if self.config_addr < 0:
            raise ValueError("context config address must be non-negative")
        if self.size_bytes <= 0:
            raise ValueError("context size must be positive")

    def config_words(self, word_bytes: int) -> int:
        """Bus words needed to fetch the bitstream."""
        return max(1, -(-self.size_bytes // word_bytes))


@dataclass(eq=False)  # identity semantics: each context is one fabric tenant
class Context:
    """One functionality mapped onto the reconfigurable block.

    Attributes
    ----------
    name:
        Context identifier (usually the wrapped module's base name).
    module:
        The :class:`~repro.bus.BusSlaveIf` implementation that serves
        interface-method calls while this context is active.
    params:
        The Section 5.3 parameters.
    gates:
        Equivalent ASIC gate count of the functionality (resource model).
    """

    name: str
    module: "BusSlaveIf"
    params: ContextParameters
    gates: int = 10_000

    def __post_init__(self) -> None:
        if self.gates <= 0:
            raise ValueError("context gate count must be positive")

    @property
    def low_addr(self) -> int:
        """Low end of the interface address range this context decodes."""
        return self.module.get_low_add()

    @property
    def high_addr(self) -> int:
        """High end of the interface address range this context decodes."""
        return self.module.get_high_add()

    def decodes(self, addr: int) -> bool:
        """Whether an interface call to ``addr`` targets this context."""
        return self.low_addr <= addr <= self.high_addr

    def __repr__(self) -> str:
        return (
            f"Context({self.name!r}, [{self.low_addr:#x}..{self.high_addr:#x}], "
            f"{self.params.size_bytes}B @ {self.params.config_addr:#x})"
        )


def context_parameters_for(
    tech: "ReconfigTechnology",
    gates: int,
    config_addr: int,
    extra_delay: Optional[SimTime] = None,
) -> ContextParameters:
    """Derive :class:`ContextParameters` from a technology preset.

    The context size follows the technology's bits-per-gate density; the
    extra delay defaults to the technology's fixed reconfiguration
    overhead.  This is the bridge from the Chapter 3 device data to the
    Section 5.3 model parameters.
    """
    size = tech.context_size_bytes(gates)
    if size <= 0:
        raise ValueError(
            f"technology {tech.name} yields empty context for {gates} gates "
            "(is it reconfigurable?)"
        )
    return ContextParameters(
        config_addr=config_addr,
        size_bytes=size,
        extra_delay=tech.reconfig_overhead if extra_delay is None else extra_delay,
    )
