"""Power and energy accounting (paper Section 5.3 future work).

"In the future, other parameter, such as dealing with partial
reconfiguration or power consumption may be devised."  This module
implements the power extension: it combines the DRCF's instrumented
per-context time breakdown with the technology's power coefficients into a
per-context and total energy report.

Energy model (per context ``c`` over the observation window):

* *active*: ``P_active(gates_c) × active_time_c``
* *reconfiguration*: ``P_config × reconfig_time_c``
* *idle/static*: the fabric leaks whenever instantiated —
  ``P_idle(fabric_gates) × window``.

For the static Figure 1(a) architecture the same model applies with zero
reconfiguration energy but leakage on the *sum* of all accelerator gates
instead of the largest context — that asymmetry is the energy argument for
fabric sharing that experiment A4 quantifies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional

from ..kernel import SimTime, ZERO_TIME

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..tech import ReconfigTechnology
    from .context import Context
    from .drcf import Drcf


@dataclass
class EnergyBreakdown:
    """Energy (in joules) of one context or one whole fabric."""

    active_j: float = 0.0
    reconfig_j: float = 0.0
    idle_j: float = 0.0

    @property
    def total_j(self) -> float:
        return self.active_j + self.reconfig_j + self.idle_j

    def __add__(self, other: "EnergyBreakdown") -> "EnergyBreakdown":
        return EnergyBreakdown(
            self.active_j + other.active_j,
            self.reconfig_j + other.reconfig_j,
            self.idle_j + other.idle_j,
        )


class PowerModel:
    """Computes energy reports from DRCF instrumentation."""

    def __init__(self, tech: "ReconfigTechnology") -> None:
        self.tech = tech

    # -- per-piece energies --------------------------------------------------
    def active_energy(self, gates: int, duration: SimTime) -> float:
        return self.tech.active_energy_j(gates, duration)

    def reconfig_energy(self, duration: SimTime) -> float:
        return self.tech.config_energy_j(duration)

    def idle_energy(self, gates: int, window: SimTime) -> float:
        return self.tech.idle_power_w(gates) * window.to_seconds()

    # -- reports -----------------------------------------------------------------
    def drcf_report(
        self, drcf: "Drcf", window: Optional[SimTime] = None
    ) -> Dict[str, EnergyBreakdown]:
        """Per-context energy breakdown for a DRCF, plus a ``__fabric__`` row.

        ``window`` defaults to the instrumented observation window; the
        fabric leakage row charges the largest context's gates (the fabric
        must be big enough to host it) for the whole window.
        """
        stats = drcf.stats
        window = window if window is not None else stats.observation_window()
        report: Dict[str, EnergyBreakdown] = {}
        for context in drcf.contexts:
            cs = stats.context(context.name)
            report[context.name] = EnergyBreakdown(
                active_j=self.active_energy(context.gates, cs.active_time),
                reconfig_j=self.reconfig_energy(cs.reconfig_time),
                idle_j=0.0,
            )
        fabric_gates = drcf.largest_context_gates()
        report["__fabric__"] = EnergyBreakdown(
            idle_j=self.idle_energy(fabric_gates, window)
        )
        return report

    def drcf_total(self, drcf: "Drcf", window: Optional[SimTime] = None) -> EnergyBreakdown:
        """Summed energy of a DRCF over the window."""
        total = EnergyBreakdown()
        for part in self.drcf_report(drcf, window).values():
            total = total + part
        return total

    def static_accelerators_total(
        self,
        contexts: List["Context"],
        active_times: Dict[str, SimTime],
        window: SimTime,
    ) -> EnergyBreakdown:
        """Energy of the Figure 1(a) alternative: one fixed block per context.

        Every block leaks for the whole window; active energy uses each
        block's own gates; there is no reconfiguration term.
        """
        total = EnergyBreakdown()
        for context in contexts:
            active = active_times.get(context.name, ZERO_TIME)
            total = total + EnergyBreakdown(
                active_j=self.active_energy(context.gates, active),
                idle_j=self.idle_energy(context.gates, window),
            )
        return total
