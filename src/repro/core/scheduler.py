"""The DRCF context scheduler (paper Section 5.3).

The behaviour of the scheduler, quoted from the paper:

1. When an interface method is called, the context scheduler checks to
   which component the interface method call was targeted.
2. If the interface method call was targeted to the active context, the
   interface method call is forwarded directly.
3. If the interface method call was targeted to a context which is not
   active, the context switch is activated.
4. During context switch, the interface method call is suspended until the
   arbitration and instrumentation process has generated proper data reads
   in to the memory space that holds the required context.
5. The scheduler will keep track of active time of each context as well as
   the time that the DRCF is in reconfiguring itself.

This module implements steps 2–5; step 1 (address decode) lives in the
DRCF component.  The "arbitration and instrumentation process"
(``arb_and_instr`` in the paper's generated code) is a dedicated thread
draining a switch-request queue, so concurrent interface calls serialize
exactly as on real hardware with a single configuration port.

Timing model of a switch that misses (the context is not resident):

* the bitstream is fetched from configuration memory with real burst reads
  on the memory bus (this is the traffic the paper insists on modeling);
* if the device's configuration port is slower than the observed bus
  transfer, the difference is added (port-bound regime);
* the per-context ``extra_delay`` parameter and the resident-switch
  activation time are added on top.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, List, Optional, Sequence

from ..kernel import Event, Fifo, SimTime, SimulationError, ZERO_TIME
from .context import Context
from .policies import SlotManager
from .stats import DrcfStats

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..kernel import Simulator
    from ..tech import ReconfigTechnology

#: ``fetch(config_addr, n_words, context_name)`` generator provided by the
#: DRCF; performs the actual configuration-memory reads.
FetchFn = Callable[[int, int, str], object]


class SwitchRequest:
    """One queued context-switch request."""

    __slots__ = ("context", "done", "prefetch", "issued_at")

    def __init__(self, context: Context, done: Event, prefetch: bool, issued_at: SimTime) -> None:
        self.context = context
        self.done = done
        self.prefetch = prefetch
        self.issued_at = issued_at


class ContextScheduler:
    """Serializes context switches and accounts their cost.

    Owned by a :class:`~repro.core.drcf.Drcf`; not usually constructed
    directly by user code.
    """

    def __init__(
        self,
        sim: "Simulator",
        name: str,
        contexts: Sequence[Context],
        tech: "ReconfigTechnology",
        slot_manager: SlotManager,
        stats: DrcfStats,
        fetch: FetchFn,
        word_bytes: int,
    ) -> None:
        if not contexts:
            raise SimulationError("a DRCF needs at least one context")
        self.sim = sim
        self.name = name
        self.contexts = list(contexts)
        self.tech = tech
        self.slots = slot_manager
        self.stats = stats
        self._fetch = fetch
        self.word_bytes = word_bytes
        self.active: Optional[Context] = None
        self._requests: Fifo = Fifo(sim, capacity=None, name=f"{name}.requests")
        self._engine_busy = False
        #: Fires (delta) after every completed foreground switch; the
        #: prefetcher listens here.
        self.switch_completed = Event(sim, f"{name}.switch_completed")
        #: Names of contexts in foreground-activation order.
        self.switch_history: List[str] = []
        #: Callbacks ``listener(context_name)`` run on each foreground
        #: switch (e.g. the DRCF's traceable active-context signal).
        self.switch_listeners: List[Callable[[str], None]] = []
        #: Fault-injector hook surface (repro.faults): when set, its
        #: ``on_switch_begin(scheduler_name, context_name, now)`` is called
        #: as each foreground switch starts, so armed faults can key off the
        #: context schedule.  ``None`` (the default) costs one test.
        self.fault_hook = None
        sim.spawn(f"{name}.arb_and_instr", self._arb_and_instr, daemon=True)

    # -- public API (called from DRCF interface methods) ----------------------
    def is_active(self, context: Context) -> bool:
        """Step 2 predicate: is ``context`` the currently active one?"""
        return self.active is context

    def ensure_active(self, context: Context):
        """Make ``context`` active (generator).

        Fast path: already active → returns immediately (step 2).  Slow
        path: a switch request is queued and the caller is suspended until
        the ``arb_and_instr`` process completes it (steps 3–4).

        Interface calls are serialized by the owning DRCF's fabric lock, so
        at most one ``ensure_active`` runs at a time; concurrent engine
        activity can only be a background prefetch, which never changes the
        active context.
        """
        if self.active is context:
            slot = self.slots.slot_of(context)
            if slot is not None and not slot.loading:
                self.slots.touch(slot)
                return
        issued = self.sim.now
        done = Event(self.sim, f"{self.name}.switch_done.{context.name}")
        self._requests.nb_put(SwitchRequest(context, done, False, issued))
        yield done
        self.stats.record_call_wait(context.name, self.sim.now - issued)
        if self.active is not context:  # pragma: no cover - engine invariant
            raise SimulationError(
                f"{self.name}: switch to {context.name} completed but "
                f"active is {self.active.name if self.active else None}"
            )

    def request_prefetch(self, context: Context) -> Optional[Event]:
        """Queue a background load of ``context`` (no activation).

        Returns the completion event, or ``None`` if the request is moot
        (already active/resident) or the device cannot load in background.
        """
        if not self.tech.background_load:
            return None
        if self.active is context or self.slots.slot_of(context) is not None:
            return None
        if not self.slots.has_idle_capacity(context, self.active):
            return None
        done = Event(self.sim, f"{self.name}.prefetch_done.{context.name}")
        self._requests.nb_put(SwitchRequest(context, done, True, self.sim.now))
        return done

    # -- the arbitration and instrumentation process -----------------------------
    def _arb_and_instr(self):
        while True:
            request = yield from self._requests.get()
            self._engine_busy = True
            try:
                if request.prefetch:
                    yield from self._do_prefetch(request.context)
                else:
                    yield from self._do_switch(request.context)
            finally:
                self._engine_busy = False
                request.done.notify()

    def _do_switch(self, context: Context):
        if self.active is context:
            slot = self.slots.slot_of(context)
            if slot is not None and not slot.loading:
                return  # coalesced with an earlier identical request
        # A context cannot be reconfigured away while it is computing:
        # wait for the outgoing module to go idle (busy/idle_event protocol,
        # honoured by the accelerator models).
        yield from self._drain_active()
        if self.fault_hook is not None:
            self.fault_hook.on_switch_begin(self.name, context.name, self.sim.now)
        start = self.sim.now
        slot = self.slots.slot_of(context)
        fetched = False
        words = 0
        prefetch_hit = False
        if slot is None:
            words = yield from self._load(context)
            slot = self.slots.slot_of(context)
            fetched = True
        elif getattr(slot, "prefetched", False):
            prefetch_hit = True
            slot.prefetched = False  # type: ignore[attr-defined]
        # Resident activation cost (multi-context plane select).
        activation = self.tech.activation_time()
        if activation > ZERO_TIME:
            yield activation
        self.active = context
        self.slots.touch(slot)
        self.stats.record_reconfig(context.name, start, self.sim.now, words, fetched)
        if prefetch_hit:
            self.stats.record_prefetch_hit()
        self.switch_history.append(context.name)
        for listener in self.switch_listeners:
            listener(context.name)
        self.switch_completed.notify_delta()

    def _drain_active(self):
        """Wait until the active context's module stops computing."""
        current = self.active
        if current is None:
            return
        module = current.module
        while getattr(module, "busy", False):
            idle_event = getattr(module, "idle_event", None)
            if idle_event is None:  # no handshake: assume safe to switch
                return
            yield idle_event

    def _do_prefetch(self, context: Context):
        if self.active is context or self.slots.slot_of(context) is not None:
            return
        if not self.slots.has_idle_capacity(context, self.active):
            return
        start = self.sim.now
        words = yield from self._load(context)
        slot = self.slots.slot_of(context)
        slot.prefetched = True  # type: ignore[attr-defined]
        # Background loads do not stall the active context and are not
        # foreground switches; the time and traffic are still accounted to
        # the loaded context.
        self.stats.record_background_load(context.name, start, self.sim.now, words)

    def _load(self, context: Context):
        """Fetch a bitstream into a slot (steps 3–4 of the protocol).

        Returns the number of configuration words fetched externally (0 if
        an on-chip bitstream cache served the load).
        """
        words = context.params.config_words(self.word_bytes)
        slot = self.slots.allocate(context, self.active)
        slot.context = context
        slot.loading = True
        fetch_start = self.sim.now
        fetched_words = yield from self._fetch(
            context.params.config_addr, words, context.name
        )
        if fetched_words is None:
            fetched_words = words
        elapsed = self.sim.now - fetch_start
        # Port-bound regime: the configuration port cannot absorb data
        # faster than its own bandwidth, whatever the bus delivered.
        port_time = self.tech.raw_load_time(context.params.size_bytes * 8)
        if port_time > elapsed:
            yield port_time - elapsed
        if context.params.extra_delay > ZERO_TIME:
            yield context.params.extra_delay
        slot.loading = False
        slot.loaded_at = self.slots.tick()
        return fetched_words

    # -- introspection --------------------------------------------------------------
    def resident_context_names(self) -> List[str]:
        """Names of contexts currently resident on the fabric."""
        return [c.name for c in self.slots.resident_contexts()]

    @property
    def pending_switches(self) -> int:
        """Queued, not yet completed switch/prefetch requests."""
        return len(self._requests)
