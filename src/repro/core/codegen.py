"""Source-level code generation (the paper's before/after listings).

The paper demonstrates its methodology as a *source transformation*: the
``top`` module's declaration/constructor/binding lines are rewritten and a
``drcf_own`` class is generated from a template.  This module renders the
same artifacts from our netlist representation:

* :func:`generate_build_source` — executable Python construction code for
  a netlist (the "SC_MODULE(top)" listing).  For untransformed netlists the
  output can be ``exec``'d to elaborate an identical system, which the E4
  bench uses to prove the listing is faithful.
* :func:`generate_drcf_listing` — the generated ``drcf_own``-style class
  for a :class:`~repro.core.transform.TransformReport`: analyzed ports and
  interfaces carried onto the template, the ``arb_and_instr`` process, and
  the inserted candidate declarations/constructors/bindings in italics-
  equivalent comments.
"""

from __future__ import annotations

from typing import Dict

from ..kernel import KernelError, Module, SimTime, Simulator
from .netlist import Netlist
from .policies import ReplacementPolicy
from .transform import TransformReport


class CodegenError(KernelError):
    """Raised when a netlist cannot be rendered as executable source."""


def _format_value(value: object) -> str:
    """Render one constructor argument as source."""
    if isinstance(value, bool):
        return repr(value)
    if isinstance(value, int):
        return hex(value) if abs(value) >= 4096 else repr(value)
    if isinstance(value, (float, str)):
        return repr(value)
    if value is None:
        return "None"
    if isinstance(value, SimTime):
        return f"SimTime.from_fs({value.femtoseconds})"
    if isinstance(value, ReplacementPolicy):
        return f"make_policy({value.name!r})"
    # Technology presets render as lookups.
    name = getattr(value, "name", None)
    if name is not None and type(value).__name__ == "ReconfigTechnology":
        return f"preset({name!r})"
    raise CodegenError(
        f"cannot render constructor argument {value!r} "
        f"({type(value).__name__}) as source"
    )


def generate_build_source(netlist: Netlist, function_name: str = "build_top") -> str:
    """Executable construction source for ``netlist``.

    The emitted function ``build_top(sim)`` reproduces declaration,
    constructor and binding lines exactly as elaboration performs them.
    Raises :class:`CodegenError` if a spec carries non-literal arguments
    (e.g. a transformed netlist's context builders) — render those with
    :func:`generate_drcf_listing` instead.
    """
    lines = [
        f"def {function_name}(sim):",
        f"    \"\"\"Auto-generated construction code for netlist {netlist.name!r}.\"\"\"",
        f"    top = Module({netlist.name!r}, sim=sim)",
    ]
    for spec in netlist.specs:
        args = ", ".join(
            f"{key}={_format_value(value)}" for key, value in spec.kwargs.items()
        )
        prefix = f"    {spec.name} = {spec.factory_name}({spec.name!r}, parent=top"
        lines.append(prefix + (f", {args})" if args else ")"))
    for spec in netlist.specs:
        if spec.master_of is not None:
            lines.append(f"    {spec.name}.mst_port.bind({spec.master_of})")
        if spec.slave_of is not None:
            lines.append(f"    {spec.slave_of}.register_slave({spec.name})")
    lines.append("    return top")
    return "\n".join(lines) + "\n"


def default_env(netlist: Netlist) -> Dict[str, object]:
    """A namespace for executing generated build source.

    Contains every factory referenced by the netlist plus the kernel names
    the generated code may use.
    """
    from ..tech import preset
    from .policies import make_policy

    env: Dict[str, object] = {
        "Module": Module,
        "SimTime": SimTime,
        "preset": preset,
        "make_policy": make_policy,
    }
    for spec in netlist.specs:
        env[spec.factory_name] = spec.factory
    return env


def exec_build_source(
    source: str,
    sim: Simulator,
    env: Dict[str, object],
    function_name: str = "build_top",
) -> Module:
    """Execute generated construction source and return the built top."""
    namespace = dict(env)
    exec(compile(source, "<generated build source>", "exec"), namespace)
    build = namespace[function_name]
    return build(sim)


def generate_drcf_listing(report: TransformReport) -> str:
    """The generated DRCF class, rendered like the paper's final listing.

    Lines marked ``# inserted`` correspond to the italicized insertions in
    the paper's code listing (analyzed ports/interfaces and candidate
    declarations/constructors/bindings); the rest is the template.
    """
    drcf = report.drcf_name
    lows = [a.low_addr for a in report.module_analyses.values()]
    highs = [a.high_addr for a in report.module_analyses.values()]
    interfaces = sorted(
        {iface for a in report.module_analyses.values() for iface in a.interfaces}
    )
    lines = [
        f"class drcf_{drcf}(Module, {', '.join(interfaces)}):",
        f"    \"\"\"DRCF generated from template (technology: {report.tech_name}).\"\"\"",
        "",
        "    def __init__(self, name, parent=None, sim=None):",
        "        super().__init__(name, parent=parent, sim=sim)",
    ]
    # Ports carried over from the analyzed modules (phase 1).
    seen_ports = set()
    for name, analysis in report.module_analyses.items():
        for port_name, iface in analysis.ports:
            if port_name in seen_ports:
                continue
            seen_ports.add(port_name)
            iface_arg = f"{iface}, " if iface else ""
            lines.append(
                f"        self.{port_name} = Port(self, {iface_arg}name={port_name!r})"
                f"  # inserted: analyzed from {analysis.class_name}"
            )
    lines += [
        "        # template: context scheduler + instrumentation process",
        "        self.add_thread(self.arb_and_instr)",
    ]
    # Candidate declarations/constructors/bindings (phase 2 database).
    for name, inst in report.instance_analyses.items():
        args = ", ".join(f"{k}={v!r}" for k, v in inst.kwargs.items())
        lines.append(
            f"        self.{inst.name} = {inst.factory_name}({inst.name!r}, parent=self"
            + (f", {args})" if args else ")")
            + "  # inserted: constructor from phase 2"
        )
        if inst.master_of is not None:
            lines.append(
                f"        self.{inst.name}.mst_port.bind(self.mst_port)"
                "  # inserted: binding from phase 2"
            )
    # Context table from the placement decisions.
    lines.append("        # context table (addr, size, extra delay):")
    for alloc in report.allocations:
        lines.append(
            f"        #   {alloc.name}: {alloc.size_bytes} bytes @ "
            f"{alloc.config_addr:#x}, +{alloc.extra_delay}"
        )
    lines += [
        "",
        "    def arb_and_instr(self):",
        "        # template: serve context-switch requests, generate the",
        "        # configuration-memory reads, track active/reconfig time",
        "        ...",
        "",
        f"    def get_low_add(self):",
        f"        return {min(lows):#x}",
        "",
        f"    def get_high_add(self):",
        f"        return {max(highs):#x}",
        "",
        "    def read(self, addr, count=1):",
        "        # template: decode to context, ensure active, forward",
        "        ...",
        "",
        "    def write(self, addr, data):",
        "        # template: decode to context, ensure active, forward",
        "        ...",
    ]
    return "\n".join(lines) + "\n"


def generate_transformation_diff(before: Netlist, after: Netlist) -> str:
    """A unified before/after summary of the instance rewrite (phase 4)."""
    removed = [n for n in before.component_names if n not in after.component_names]
    added = [n for n in after.component_names if n not in before.component_names]
    lines = ["# instance rewrite:"]
    for name in removed:
        spec = before.component(name)
        lines.append(f"- {name} = {spec.factory_name}(...)  # slave_of={spec.slave_of}")
    for name in added:
        spec = after.component(name)
        lines.append(f"+ {name} = {spec.factory_name}(...)  # slave_of={spec.slave_of}")
    return "\n".join(lines) + "\n"
