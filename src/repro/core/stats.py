"""DRCF instrumentation.

Step 5 of the paper's scheduler protocol: "The scheduler will keep track of
active time of each context as well as the time that the DRCF is in
reconfiguring itself."  :class:`DrcfStats` accumulates exactly that, plus
the configuration-memory traffic (word counts) that distinguishes this
methodology from the ref-[8] baseline, and an activity timeline for the
reports.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..kernel import SimTime, TimelineRecorder, ZERO_TIME


@dataclass
class ContextStats:
    """Per-context counters."""

    name: str
    #: Interface-method calls forwarded to this context.
    calls: int = 0
    #: Times this context became the active one.
    activations: int = 0
    #: Times its bitstream was fetched from configuration memory.
    reconfigurations: int = 0
    #: Simulated time spent executing forwarded calls.
    active_time: SimTime = ZERO_TIME
    #: Simulated time spent loading/activating this context.
    reconfig_time: SimTime = ZERO_TIME
    #: Configuration words fetched over the memory bus for this context.
    config_words: int = 0
    #: Bitstream refetches due to checksum failures (integrity modeling).
    fetch_retries: int = 0
    #: Total suspension time interface calls spent waiting for switches.
    call_wait_time: SimTime = ZERO_TIME
    #: Scrub passes that repaired this context's configuration region.
    scrub_repairs: int = 0
    #: Loads accepted in degraded mode after retries were exhausted.
    fallbacks: int = 0
    #: Wedged configuration transfers aborted by the fetch timeout.
    fetch_timeouts: int = 0
    #: Simulated time spent recovering failed loads (backoff, timeouts,
    #: refetch transfers) — the recovery overhead of this context.
    recovery_time: SimTime = ZERO_TIME


class DrcfStats:
    """Aggregated instrumentation of one DRCF component."""

    def __init__(self, context_names: List[str]) -> None:
        self.per_context: Dict[str, ContextStats] = {
            name: ContextStats(name) for name in context_names
        }
        self.timeline = TimelineRecorder()
        self.total_switches = 0
        #: Switches satisfied from a resident slot (no memory fetch).
        self.resident_hits = 0
        #: Switches that required a configuration-memory fetch.
        self.fetch_misses = 0
        #: Switches whose fetch had already completed in the background.
        self.prefetch_hits = 0
        #: Background (prefetch) loads performed.
        self.background_loads = 0
        #: Whole-bitstream refetches caused by checksum failures.
        self.config_retries = 0
        #: Background scrub sweeps performed (recovery policy).
        self.scrubs = 0
        #: Scrub sweeps that found and repaired corrupted configuration memory.
        self.scrub_repairs = 0
        #: Loads accepted in degraded mode after retries were exhausted.
        self.fallbacks = 0
        #: Wedged configuration transfers aborted by the fetch timeout.
        self.fetch_timeouts = 0
        self._start_time: Optional[SimTime] = None
        self._end_time: Optional[SimTime] = None

    # -- recording hooks (called by the scheduler/DRCF) ----------------------
    def context(self, name: str) -> ContextStats:
        return self.per_context[name]

    def note_time(self, now: SimTime) -> None:
        """Track the observation window for utilization figures."""
        if self._start_time is None:
            self._start_time = now
        self._end_time = now

    def record_active(self, name: str, start: SimTime, end: SimTime) -> None:
        cs = self.per_context[name]
        cs.calls += 1
        cs.active_time = cs.active_time + (end - start)
        self.timeline.record(start, end, "active", name)
        self.note_time(end)

    def record_compute(self, name: str, start: SimTime, end: SimTime) -> None:
        """Asynchronous in-fabric computation time (accelerator-driven).

        Counted into the context's active time like forwarded-call time,
        but without incrementing the call counter: the wrapped module
        reports it via the compute sink the DRCF installs.
        """
        cs = self.per_context[name]
        cs.active_time = cs.active_time + (end - start)
        if end > start:
            self.timeline.record(start, end, "active", name)
        self.note_time(end)

    def record_reconfig(
        self, name: str, start: SimTime, end: SimTime, config_words: int, fetched: bool
    ) -> None:
        cs = self.per_context[name]
        cs.activations += 1
        cs.reconfig_time = cs.reconfig_time + (end - start)
        cs.config_words += config_words
        self.total_switches += 1
        if fetched:
            cs.reconfigurations += 1
            self.fetch_misses += 1
        else:
            self.resident_hits += 1
        if end > start:
            self.timeline.record(start, end, "reconfig", name)
        self.note_time(end)

    def record_background_load(
        self, name: str, start: SimTime, end: SimTime, config_words: int
    ) -> None:
        """A prefetch load: traffic and reconfiguration accounting without
        counting as a foreground switch."""
        cs = self.per_context[name]
        cs.reconfigurations += 1
        cs.reconfig_time = cs.reconfig_time + (end - start)
        cs.config_words += config_words
        self.background_loads += 1
        if end > start:
            self.timeline.record(start, end, "prefetch", name)
        self.note_time(end)

    def record_config_retry(self, name: str) -> None:
        """A fetched bitstream failed its checksum and will be refetched."""
        self.per_context[name].fetch_retries += 1
        self.config_retries += 1

    def record_call_wait(self, name: str, duration: SimTime) -> None:
        cs = self.per_context[name]
        cs.call_wait_time = cs.call_wait_time + duration

    def record_prefetch_hit(self) -> None:
        self.prefetch_hits += 1

    # -- recovery instrumentation (see repro.core.recovery) --------------------
    def record_scrub(self) -> None:
        """One background scrub sweep over the context regions."""
        self.scrubs += 1

    def record_scrub_repair(self, name: str) -> None:
        """A scrub sweep repaired ``name``'s configuration region."""
        self.per_context[name].scrub_repairs += 1
        self.scrub_repairs += 1

    def record_fallback(self, name: str) -> None:
        """Retries exhausted: the corrupted load was accepted degraded."""
        self.per_context[name].fallbacks += 1
        self.fallbacks += 1

    def record_fetch_timeout(self, name: str) -> None:
        """A wedged configuration transfer was aborted by the timeout."""
        self.per_context[name].fetch_timeouts += 1
        self.fetch_timeouts += 1

    def record_recovery_time(self, name: str, duration: SimTime) -> None:
        """Simulated time spent recovering a failed load of ``name``."""
        cs = self.per_context[name]
        cs.recovery_time = cs.recovery_time + duration

    @property
    def recovery_actions(self) -> int:
        """Total recovery interventions (retries, repairs, timeouts, fallbacks).

        The campaign engine classifies a fault as *recovered* (rather than
        masked) when the run completed correctly and this is non-zero.
        """
        return (
            self.config_retries
            + self.scrub_repairs
            + self.fallbacks
            + self.fetch_timeouts
        )

    # -- aggregates ------------------------------------------------------------
    @property
    def total_active_time(self) -> SimTime:
        total = ZERO_TIME
        for cs in self.per_context.values():
            total = total + cs.active_time
        return total

    @property
    def total_reconfig_time(self) -> SimTime:
        total = ZERO_TIME
        for cs in self.per_context.values():
            total = total + cs.reconfig_time
        return total

    @property
    def total_config_words(self) -> int:
        return sum(cs.config_words for cs in self.per_context.values())

    @property
    def total_calls(self) -> int:
        return sum(cs.calls for cs in self.per_context.values())

    @property
    def total_recovery_time(self) -> SimTime:
        total = ZERO_TIME
        for cs in self.per_context.values():
            total = total + cs.recovery_time
        return total

    def observation_window(self) -> SimTime:
        if self._start_time is None or self._end_time is None:
            return ZERO_TIME
        return self._end_time - self._start_time

    def reconfig_overhead_fraction(self) -> float:
        """Reconfiguration time as a fraction of (active + reconfig) time."""
        active = self.total_active_time.femtoseconds
        reconf = self.total_reconfig_time.femtoseconds
        if active + reconf == 0:
            return 0.0
        return reconf / (active + reconf)

    def summary(self) -> Dict[str, object]:
        """Dictionary summary used by the experiment reports."""
        return {
            "calls": self.total_calls,
            "switches": self.total_switches,
            "fetch_misses": self.fetch_misses,
            "resident_hits": self.resident_hits,
            "prefetch_hits": self.prefetch_hits,
            "background_loads": self.background_loads,
            "config_retries": self.config_retries,
            "scrubs": self.scrubs,
            "scrub_repairs": self.scrub_repairs,
            "fallbacks": self.fallbacks,
            "fetch_timeouts": self.fetch_timeouts,
            "recovery_time_ns": self.total_recovery_time.to_ns(),
            "active_time_ns": self.total_active_time.to_ns(),
            "reconfig_time_ns": self.total_reconfig_time.to_ns(),
            "config_words": self.total_config_words,
            "reconfig_overhead_fraction": self.reconfig_overhead_fraction(),
            "per_context": {
                name: {
                    "calls": cs.calls,
                    "activations": cs.activations,
                    "reconfigurations": cs.reconfigurations,
                    "active_time_ns": cs.active_time.to_ns(),
                    "reconfig_time_ns": cs.reconfig_time.to_ns(),
                    "config_words": cs.config_words,
                    "call_wait_time_ns": cs.call_wait_time.to_ns(),
                    "scrub_repairs": cs.scrub_repairs,
                    "fallbacks": cs.fallbacks,
                    "fetch_timeouts": cs.fetch_timeouts,
                    "recovery_time_ns": cs.recovery_time.to_ns(),
                }
                for name, cs in self.per_context.items()
            },
        }
