"""The DRCF component (Dynamically Re-Configurable Fabric).

The paper's generated ``drcf_own`` class implements the analyzed slave
interface, owns the candidate modules, and contains "a context scheduler
and instrumentation process and a multiplexer that routes data transfers to
correct instances".  :class:`Drcf` is that component:

* it implements :class:`~repro.bus.BusSlaveIf` over the union of its
  contexts' address ranges (so it can replace them on the bus);
* incoming ``read``/``write`` calls are decoded to a context (step 1 of the
  Section 5.3 protocol), routed through the scheduler (steps 2–4) and then
  forwarded to the wrapped module's own interface method (the multiplexer);
* a master port issues the configuration-memory reads during context
  switches, making reconfiguration traffic visible on the system bus;
* instrumentation (step 5) accumulates per-context active/reconfigure time
  and configuration traffic in :attr:`stats`.

Interface calls serialize on a fabric lock: the reconfigurable block
executes one context at a time ("a time-slice scheduled application
specific hardware block", Section 5.1), so a call must wait while another
call computes or a foreground switch is in progress.  Background prefetch
loads (multi-context devices) proceed in parallel with execution.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional, Sequence, Union

from ..bus import BusMasterIf, BusSlaveIf
from ..bus.memory import region_checksum
from ..kernel import Event, Module, Mutex, Port, Signal, SimulationError, ZERO_TIME
from .context import Context
from .policies import (
    AreaSlotManager,
    FixedSlotManager,
    LruPolicy,
    ReplacementPolicy,
    SlotManager,
)
from .recovery import RecoveryPolicy
from .scheduler import ContextScheduler
from .stats import DrcfStats

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..tech import ReconfigTechnology

#: The bit a corrupted configuration image flips in burst-read data (the
#: silent-data-corruption signature; deterministic so campaigns reproduce).
_SDC_BIT = 0x0002_0000


class Drcf(Module, BusSlaveIf):
    """A dynamically reconfigurable fabric hosting several contexts.

    Parameters
    ----------
    contexts:
        The functionalities folded into this fabric.  Their interface
        address ranges must be disjoint.
    tech:
        Technology preset providing switch/activation timing, slot count
        and background-load capability.
    config_burst_words:
        Burst length of configuration fetches on the memory bus.
    policy:
        Replacement policy for resident contexts (default LRU).
    use_area_slots:
        Model partial reconfiguration: contexts share a gate budget
        (``fabric_capacity_gates``) instead of fixed slots.
    fabric_capacity_gates:
        Gate budget when ``use_area_slots`` is set; defaults to the largest
        context (single-context equivalent) — pass more to host several.
    """

    #: Context switches issue master reads on the bound bus.  The static
    #: lint pass (REP310) uses this class flag to tell whether placing the
    #: component as master *and* slave of one blocking bus is the paper's
    #: limitation-3 deadlock (True), harmless (False, e.g. the reference-[8]
    #: baseline which models delay without traffic), or merely suspicious
    #: (attribute absent on non-DRCF components).
    FETCHES_CONFIG_OVER_BUS = True

    def __init__(
        self,
        name: str,
        parent: Optional[Module] = None,
        sim=None,
        *,
        contexts: Sequence[Context] = (),
        context_builders: Sequence = (),
        tech: "ReconfigTechnology",
        config_burst_words: int = 64,
        word_bytes: int = 4,
        policy: Optional[ReplacementPolicy] = None,
        use_area_slots: bool = False,
        fabric_capacity_gates: Optional[int] = None,
        config_cache_bytes: Optional[int] = None,
        verify_config: bool = False,
        max_fetch_retries: int = 2,
        recovery: Optional[RecoveryPolicy] = None,
    ) -> None:
        super().__init__(name, parent=parent, sim=sim)
        # The master port exists before context builders run so wrapped
        # modules can chain their own master ports through it (the paper's
        # `hwa->mst_port(mst_port)` line in the generated constructor).
        self.mst_port = Port(self, BusMasterIf, name="mst_port")
        contexts = list(contexts)
        for builder in context_builders:
            contexts.append(builder(self))
        if not contexts:
            raise SimulationError(f"DRCF {name} needs at least one context")
        if not tech.is_reconfigurable:
            raise SimulationError(
                f"DRCF {name}: technology {tech.name!r} is not reconfigurable"
            )
        self._check_disjoint(contexts)
        self.contexts: List[Context] = list(contexts)
        self.tech = tech
        self.config_burst_words = config_burst_words
        self.word_bytes = word_bytes
        # Integrity modeling: checksum every fetched bitstream against the
        # context's expected value (fine-grain devices CRC each frame) and
        # refetch on mismatch, up to max_fetch_retries extra attempts.  The
        # legacy verify_config/max_fetch_retries pair is subsumed by the
        # richer RecoveryPolicy (backoff, scrubbing, timeout, fallback).
        if recovery is None:
            recovery = RecoveryPolicy(verify=verify_config, max_retries=max_fetch_retries)
        self.recovery = recovery
        #: Fault injector hook surface (repro.faults); None = disarmed, and
        #: the fetch path pays one ``is None`` test for it.
        self.fault_hook = None
        #: The configuration memory instance, when known (set by the
        #: transformation's post-elaboration hook); required for scrubbing
        #: repairs and for the fault models that corrupt stored bitstreams.
        self.config_memory = None
        #: Contexts whose *loaded* fabric image is known corrupted (the
        #: model-level ground truth behind silent-data-corruption outcomes).
        self._loaded_corrupted: dict = {}
        self._scrubber_started = False
        self.stats = DrcfStats([c.name for c in contexts])
        # Optional on-chip bitstream cache (Chapter 2's "memories storing
        # configurations" trade-off; see repro.core.cache).
        if config_cache_bytes is not None:
            from .cache import ConfigCache

            self.config_cache: Optional["ConfigCache"] = ConfigCache(
                config_cache_bytes, clock_freq_hz=tech.fabric_clock_hz
            )
        else:
            self.config_cache = None
        slot_manager = self._make_slot_manager(
            tech, contexts, policy or LruPolicy(), use_area_slots, fabric_capacity_gates
        )
        self.scheduler = ContextScheduler(
            self.sim,
            f"{self.full_name}.scheduler",
            contexts,
            tech,
            slot_manager,
            self.stats,
            self._fetch_config,
            word_bytes,
        )
        self._fabric_lock = Mutex(self.sim, f"{self.full_name}.fabric_lock")
        # Waveform-traceable view of the active context: 0 = none, i+1 =
        # contexts[i].  Register with a VcdTracer to see the context
        # schedule in a waveform viewer (width = 8 covers 255 contexts).
        self.active_context_signal: Signal[int] = Signal(
            self.sim, 0, name=f"{self.full_name}.active_context"
        )
        self._context_ids = {c.name: i + 1 for i, c in enumerate(self.contexts)}
        self.scheduler.switch_listeners.append(
            lambda name: self.active_context_signal.write(self._context_ids[name])
        )
        # Wrapped modules that compute asynchronously (own thread between a
        # START write and a STATUS poll) report their in-fabric execution
        # intervals through this sink, so step-5 instrumentation covers them.
        for context in self.contexts:
            if hasattr(context.module, "compute_sink"):
                context.module.compute_sink = self._make_compute_sink(context.name)
        self._maybe_start_scrubber()

    # -- recovery policy -----------------------------------------------------------
    @property
    def verify_config(self) -> bool:
        """Back-compat mirror of :attr:`recovery`.verify."""
        return self.recovery.verify

    @property
    def max_fetch_retries(self) -> int:
        """Back-compat mirror of :attr:`recovery`.max_retries."""
        return self.recovery.max_retries

    def set_recovery(self, recovery: RecoveryPolicy) -> None:
        """Select a recovery policy (campaigns call this post-elaboration)."""
        self.recovery = recovery
        self._maybe_start_scrubber()

    def _maybe_start_scrubber(self) -> None:
        if self.recovery.scrub_interval is None or self._scrubber_started:
            return
        self._scrubber_started = True
        self.sim.spawn(f"{self.full_name}.scrubber", self._scrub_loop, daemon=True)

    def _scrub_loop(self):
        """Background configuration scrubbing (recovery policy).

        Periodically reads every context region back over the memory bus
        (real, tagged traffic — the cost of scrubbing is visible) and
        repairs regions whose content no longer matches the registered
        golden checksum.  Repair requires the transformation to have set
        :attr:`config_memory`; without it, scrubbing only detects.
        """
        while True:
            interval = self.recovery.scrub_interval
            if interval is None:
                return
            yield interval
            self.stats.record_scrub()
            for context in self.contexts:
                expected = context.params.checksum
                if expected is None:
                    continue
                words = context.params.config_words(self.word_bytes)
                start = self.sim.now
                data = yield from self.mst_port.read(
                    context.params.config_addr,
                    min(words, self.config_burst_words),
                    master=self.full_name,
                    tags=["scrub", context.name],
                )
                del data  # sampling read: integrity is checked via the memory
                memory = self.config_memory
                if memory is None or not hasattr(memory, "region_is_clean"):
                    continue
                if not memory.region_is_clean(context.name):
                    if memory.scrub_region(context.name):
                        self.stats.record_scrub_repair(context.name)
                        self.stats.record_recovery_time(
                            context.name, self.sim.now - start
                        )

    def _make_compute_sink(self, context_name: str):
        def sink(start, end):
            self.stats.record_compute(context_name, start, end)

        return sink

    @staticmethod
    def _check_disjoint(contexts: Sequence[Context]) -> None:
        ranges = sorted((c.low_addr, c.high_addr, c.name) for c in contexts)
        for (lo1, hi1, n1), (lo2, hi2, n2) in zip(ranges, ranges[1:]):
            if hi1 >= lo2:
                raise SimulationError(
                    f"contexts {n1!r} and {n2!r} have overlapping address ranges"
                )

    @staticmethod
    def _make_slot_manager(
        tech: "ReconfigTechnology",
        contexts: Sequence[Context],
        policy: ReplacementPolicy,
        use_area_slots: bool,
        capacity: Optional[int],
    ) -> SlotManager:
        if use_area_slots:
            if not tech.partial_reconfig:
                raise SimulationError(
                    f"technology {tech.name!r} does not support partial "
                    "reconfiguration (area slots)"
                )
            budget = capacity if capacity is not None else max(c.gates for c in contexts)
            return AreaSlotManager(budget, policy)
        return FixedSlotManager(tech.context_slots, policy)

    # -- BusSlaveIf: the union range ----------------------------------------------
    def get_low_add(self) -> int:
        return min(c.low_addr for c in self.contexts)

    def get_high_add(self) -> int:
        return max(c.high_addr for c in self.contexts)

    def _decode(self, addr: int) -> Context:
        """Step 1: which context is this interface call targeted to?"""
        for context in self.contexts:
            if context.decodes(addr):
                return context
        raise SimulationError(
            f"{self.full_name}: address {addr:#x} inside the DRCF range but "
            "not decoded by any context (holes between contexts are not served)"
        )

    # -- the routed interface methods ------------------------------------------------
    def read(self, addr: int, count: int = 1):
        """Slave read: decode, switch if needed, forward (generator)."""
        result = yield from self._routed_call("read", addr, count, None)
        return result

    def write(self, addr: int, data: Union[int, Sequence[int]]):
        """Slave write: decode, switch if needed, forward (generator)."""
        yield from self._routed_call("write", addr, None, data)
        return True

    def _routed_call(self, kind: str, addr: int, count, data):
        context = self._decode(addr)
        yield from self._fabric_lock.lock(context.name)
        try:
            yield from self.scheduler.ensure_active(context)
            start = self.sim.now
            if kind == "read":
                result = yield from context.module.read(addr, count)
                if (
                    self._loaded_corrupted
                    and count is not None
                    and count > 1
                    and self._loaded_corrupted.get(context.name)
                ):
                    # A context running from a corrupted configuration image
                    # computes wrong results: burst (data) reads come back
                    # with a deterministic bit flipped, while single-word
                    # register reads (status polls) stay intact so the
                    # protocol itself keeps working — silent data corruption.
                    result = list(result)
                    result[0] ^= _SDC_BIT
            else:
                result = yield from context.module.write(addr, data)
            self.stats.record_active(context.name, start, self.sim.now)
            return result
        finally:
            self._fabric_lock.unlock()

    # -- configuration fetch (the modeled memory traffic) --------------------------------
    def _fetch_config(self, config_addr: int, n_words: int, context_name: str):
        """Read a bitstream from configuration memory in bursts (generator).

        Returns the number of words actually fetched over the bus (0 when
        the on-chip bitstream cache hit; the configuration-port programming
        time still applies, charged by the scheduler).

        This is where the recovery policy acts: verification, bounded retry
        with backoff, the fetch timeout against wedged transfers, and the
        degraded-mode fallback when retries run out.  A fault injector may
        perturb the path through :attr:`fault_hook` (stuck transfers,
        truncated bitstreams); with no hook armed and verification off the
        path is exactly the plain burst loop.
        """
        size_bytes = n_words * self.word_bytes
        if self.config_cache is not None and self.config_cache.lookup(context_name):
            yield self.config_cache.refill_time(size_bytes)
            return 0
        recovery = self.recovery
        hook = self.fault_hook
        expected = (
            self._context_by_name(context_name).params.checksum
            if recovery.verify
            else None
        )
        # Model-level ground truth for silent-corruption tracking; only
        # worth computing when it can differ from a clean load.
        truth = (
            self._context_by_name(context_name).params.checksum
            if (hook is not None or recovery.verify)
            else None
        )
        attempts = 0
        total_fetched = 0
        recovery_start = None
        corrupted = False
        while True:
            if hook is not None:
                stuck = hook.fetch_delay(self.full_name, context_name)
                if stuck is not None:
                    timeout = recovery.fetch_timeout
                    if timeout is not None and timeout < stuck:
                        # The configuration-port watchdog aborts the wedged
                        # transfer; the attempt is charged and retried.
                        yield timeout
                        self.stats.record_fetch_timeout(context_name)
                        if recovery_start is None:
                            recovery_start = self.sim.now
                        attempts += 1
                        if attempts > recovery.max_retries:
                            corrupted = True
                            bitstream: List[int] = []
                            if recovery.fallback_to_resident:
                                self.stats.record_fallback(context_name)
                                break
                            raise SimulationError(
                                f"{self.full_name}: configuration transfer for "
                                f"context {context_name!r} timed out {attempts} "
                                "times (stuck configuration port?)"
                            )
                        continue
                    # No timeout armed (or it is longer than the wedge):
                    # the transfer simply stalls for the fault's duration.
                    yield stuck
            bitstream = []
            remaining = n_words
            addr = config_addr
            while remaining > 0:
                chunk = min(self.config_burst_words, remaining)
                data = yield from self.mst_port.read(
                    addr,
                    chunk,
                    master=self.full_name,
                    tags=["config", context_name],
                )
                bitstream.extend(data)
                addr += chunk * self.word_bytes
                remaining -= chunk
            total_fetched += n_words
            if hook is not None:
                bitstream = hook.filter_bitstream(
                    self.full_name, context_name, bitstream
                )
            if truth is None:
                break
            actual = region_checksum(bitstream)
            if expected is None:
                # Verification off: a bad load goes unnoticed by the
                # modeled hardware, but the model remembers the truth.
                corrupted = actual != truth
                break
            if actual == expected:
                corrupted = False
                break
            attempts += 1
            self.stats.record_config_retry(context_name)
            if recovery_start is None:
                recovery_start = self.sim.now
            if attempts > recovery.max_retries:
                if recovery.fallback_to_resident:
                    self.stats.record_fallback(context_name)
                    corrupted = True
                    break
                raise SimulationError(
                    f"{self.full_name}: bitstream of context {context_name!r} "
                    f"failed its checksum {attempts} times (persistent "
                    "configuration-memory corruption?)"
                )
            backoff = recovery.backoff_delay(attempts)
            if backoff > ZERO_TIME:
                yield backoff
        if recovery_start is not None:
            self.stats.record_recovery_time(
                context_name, self.sim.now - recovery_start
            )
        if truth is not None:
            self._loaded_corrupted[context_name] = corrupted
        if self.config_cache is not None and not corrupted:
            self.config_cache.insert(context_name, size_bytes)
        return total_fetched

    # -- prefetch hooks -----------------------------------------------------------------
    def prefetch(self, context_name: str) -> Optional[Event]:
        """Request a background load of the named context (if supported)."""
        return self.scheduler.request_prefetch(self._context_by_name(context_name))

    def _context_by_name(self, name: str) -> Context:
        for context in self.contexts:
            if context.name == name:
                return context
        raise KeyError(
            f"{self.full_name}: no context named {name!r}; "
            f"contexts: {[c.name for c in self.contexts]}"
        )

    # -- introspection ---------------------------------------------------------------------
    @property
    def active_context_name(self) -> Optional[str]:
        """Name of the active context (None before the first switch)."""
        return self.scheduler.active.name if self.scheduler.active else None

    def resident_context_names(self) -> List[str]:
        return self.scheduler.resident_context_names()

    def loaded_corrupted(self, context_name: str) -> bool:
        """Model-level truth: is the context's loaded image corrupted?

        Only meaningful when verification or a fault hook tracked the load;
        contexts never fetched (or tracked) report False.
        """
        return bool(self._loaded_corrupted.get(context_name, False))

    def largest_context_gates(self) -> int:
        """Resource requirement of the largest context (Section 5.5 issue 2)."""
        return max(c.gates for c in self.contexts)

    def total_config_bytes(self) -> int:
        """Configuration memory footprint of all contexts."""
        return sum(c.params.size_bytes for c in self.contexts)

    def __repr__(self) -> str:
        names = ",".join(c.name for c in self.contexts)
        return f"Drcf({self.full_name!r}, tech={self.tech.name}, contexts=[{names}])"
