"""The DRCF component (Dynamically Re-Configurable Fabric).

The paper's generated ``drcf_own`` class implements the analyzed slave
interface, owns the candidate modules, and contains "a context scheduler
and instrumentation process and a multiplexer that routes data transfers to
correct instances".  :class:`Drcf` is that component:

* it implements :class:`~repro.bus.BusSlaveIf` over the union of its
  contexts' address ranges (so it can replace them on the bus);
* incoming ``read``/``write`` calls are decoded to a context (step 1 of the
  Section 5.3 protocol), routed through the scheduler (steps 2–4) and then
  forwarded to the wrapped module's own interface method (the multiplexer);
* a master port issues the configuration-memory reads during context
  switches, making reconfiguration traffic visible on the system bus;
* instrumentation (step 5) accumulates per-context active/reconfigure time
  and configuration traffic in :attr:`stats`.

Interface calls serialize on a fabric lock: the reconfigurable block
executes one context at a time ("a time-slice scheduled application
specific hardware block", Section 5.1), so a call must wait while another
call computes or a foreground switch is in progress.  Background prefetch
loads (multi-context devices) proceed in parallel with execution.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional, Sequence, Union

from ..bus import BusMasterIf, BusSlaveIf
from ..bus.memory import region_checksum
from ..kernel import Event, Module, Mutex, Port, Signal, SimulationError
from .context import Context
from .policies import (
    AreaSlotManager,
    FixedSlotManager,
    LruPolicy,
    ReplacementPolicy,
    SlotManager,
)
from .scheduler import ContextScheduler
from .stats import DrcfStats

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..tech import ReconfigTechnology


class Drcf(Module, BusSlaveIf):
    """A dynamically reconfigurable fabric hosting several contexts.

    Parameters
    ----------
    contexts:
        The functionalities folded into this fabric.  Their interface
        address ranges must be disjoint.
    tech:
        Technology preset providing switch/activation timing, slot count
        and background-load capability.
    config_burst_words:
        Burst length of configuration fetches on the memory bus.
    policy:
        Replacement policy for resident contexts (default LRU).
    use_area_slots:
        Model partial reconfiguration: contexts share a gate budget
        (``fabric_capacity_gates``) instead of fixed slots.
    fabric_capacity_gates:
        Gate budget when ``use_area_slots`` is set; defaults to the largest
        context (single-context equivalent) — pass more to host several.
    """

    #: Context switches issue master reads on the bound bus.  The static
    #: lint pass (REP310) uses this class flag to tell whether placing the
    #: component as master *and* slave of one blocking bus is the paper's
    #: limitation-3 deadlock (True), harmless (False, e.g. the reference-[8]
    #: baseline which models delay without traffic), or merely suspicious
    #: (attribute absent on non-DRCF components).
    FETCHES_CONFIG_OVER_BUS = True

    def __init__(
        self,
        name: str,
        parent: Optional[Module] = None,
        sim=None,
        *,
        contexts: Sequence[Context] = (),
        context_builders: Sequence = (),
        tech: "ReconfigTechnology",
        config_burst_words: int = 64,
        word_bytes: int = 4,
        policy: Optional[ReplacementPolicy] = None,
        use_area_slots: bool = False,
        fabric_capacity_gates: Optional[int] = None,
        config_cache_bytes: Optional[int] = None,
        verify_config: bool = False,
        max_fetch_retries: int = 2,
    ) -> None:
        super().__init__(name, parent=parent, sim=sim)
        # The master port exists before context builders run so wrapped
        # modules can chain their own master ports through it (the paper's
        # `hwa->mst_port(mst_port)` line in the generated constructor).
        self.mst_port = Port(self, BusMasterIf, name="mst_port")
        contexts = list(contexts)
        for builder in context_builders:
            contexts.append(builder(self))
        if not contexts:
            raise SimulationError(f"DRCF {name} needs at least one context")
        if not tech.is_reconfigurable:
            raise SimulationError(
                f"DRCF {name}: technology {tech.name!r} is not reconfigurable"
            )
        self._check_disjoint(contexts)
        self.contexts: List[Context] = list(contexts)
        self.tech = tech
        self.config_burst_words = config_burst_words
        self.word_bytes = word_bytes
        # Integrity modeling: checksum every fetched bitstream against the
        # context's expected value (fine-grain devices CRC each frame) and
        # refetch on mismatch, up to max_fetch_retries extra attempts.
        self.verify_config = verify_config
        self.max_fetch_retries = max_fetch_retries
        self.stats = DrcfStats([c.name for c in contexts])
        # Optional on-chip bitstream cache (Chapter 2's "memories storing
        # configurations" trade-off; see repro.core.cache).
        if config_cache_bytes is not None:
            from .cache import ConfigCache

            self.config_cache: Optional["ConfigCache"] = ConfigCache(
                config_cache_bytes, clock_freq_hz=tech.fabric_clock_hz
            )
        else:
            self.config_cache = None
        slot_manager = self._make_slot_manager(
            tech, contexts, policy or LruPolicy(), use_area_slots, fabric_capacity_gates
        )
        self.scheduler = ContextScheduler(
            self.sim,
            f"{self.full_name}.scheduler",
            contexts,
            tech,
            slot_manager,
            self.stats,
            self._fetch_config,
            word_bytes,
        )
        self._fabric_lock = Mutex(self.sim, f"{self.full_name}.fabric_lock")
        # Waveform-traceable view of the active context: 0 = none, i+1 =
        # contexts[i].  Register with a VcdTracer to see the context
        # schedule in a waveform viewer (width = 8 covers 255 contexts).
        self.active_context_signal: Signal[int] = Signal(
            self.sim, 0, name=f"{self.full_name}.active_context"
        )
        self._context_ids = {c.name: i + 1 for i, c in enumerate(self.contexts)}
        self.scheduler.switch_listeners.append(
            lambda name: self.active_context_signal.write(self._context_ids[name])
        )
        # Wrapped modules that compute asynchronously (own thread between a
        # START write and a STATUS poll) report their in-fabric execution
        # intervals through this sink, so step-5 instrumentation covers them.
        for context in self.contexts:
            if hasattr(context.module, "compute_sink"):
                context.module.compute_sink = self._make_compute_sink(context.name)

    def _make_compute_sink(self, context_name: str):
        def sink(start, end):
            self.stats.record_compute(context_name, start, end)

        return sink

    @staticmethod
    def _check_disjoint(contexts: Sequence[Context]) -> None:
        ranges = sorted((c.low_addr, c.high_addr, c.name) for c in contexts)
        for (lo1, hi1, n1), (lo2, hi2, n2) in zip(ranges, ranges[1:]):
            if hi1 >= lo2:
                raise SimulationError(
                    f"contexts {n1!r} and {n2!r} have overlapping address ranges"
                )

    @staticmethod
    def _make_slot_manager(
        tech: "ReconfigTechnology",
        contexts: Sequence[Context],
        policy: ReplacementPolicy,
        use_area_slots: bool,
        capacity: Optional[int],
    ) -> SlotManager:
        if use_area_slots:
            if not tech.partial_reconfig:
                raise SimulationError(
                    f"technology {tech.name!r} does not support partial "
                    "reconfiguration (area slots)"
                )
            budget = capacity if capacity is not None else max(c.gates for c in contexts)
            return AreaSlotManager(budget, policy)
        return FixedSlotManager(tech.context_slots, policy)

    # -- BusSlaveIf: the union range ----------------------------------------------
    def get_low_add(self) -> int:
        return min(c.low_addr for c in self.contexts)

    def get_high_add(self) -> int:
        return max(c.high_addr for c in self.contexts)

    def _decode(self, addr: int) -> Context:
        """Step 1: which context is this interface call targeted to?"""
        for context in self.contexts:
            if context.decodes(addr):
                return context
        raise SimulationError(
            f"{self.full_name}: address {addr:#x} inside the DRCF range but "
            "not decoded by any context (holes between contexts are not served)"
        )

    # -- the routed interface methods ------------------------------------------------
    def read(self, addr: int, count: int = 1):
        """Slave read: decode, switch if needed, forward (generator)."""
        result = yield from self._routed_call("read", addr, count, None)
        return result

    def write(self, addr: int, data: Union[int, Sequence[int]]):
        """Slave write: decode, switch if needed, forward (generator)."""
        yield from self._routed_call("write", addr, None, data)
        return True

    def _routed_call(self, kind: str, addr: int, count, data):
        context = self._decode(addr)
        yield from self._fabric_lock.lock(context.name)
        try:
            yield from self.scheduler.ensure_active(context)
            start = self.sim.now
            if kind == "read":
                result = yield from context.module.read(addr, count)
            else:
                result = yield from context.module.write(addr, data)
            self.stats.record_active(context.name, start, self.sim.now)
            return result
        finally:
            self._fabric_lock.unlock()

    # -- configuration fetch (the modeled memory traffic) --------------------------------
    def _fetch_config(self, config_addr: int, n_words: int, context_name: str):
        """Read a bitstream from configuration memory in bursts (generator).

        Returns the number of words actually fetched over the bus (0 when
        the on-chip bitstream cache hit; the configuration-port programming
        time still applies, charged by the scheduler).
        """
        size_bytes = n_words * self.word_bytes
        if self.config_cache is not None and self.config_cache.lookup(context_name):
            yield self.config_cache.refill_time(size_bytes)
            return 0
        expected = (
            self._context_by_name(context_name).params.checksum
            if self.verify_config
            else None
        )
        attempts = 0
        total_fetched = 0
        while True:
            bitstream: List[int] = []
            remaining = n_words
            addr = config_addr
            while remaining > 0:
                chunk = min(self.config_burst_words, remaining)
                data = yield from self.mst_port.read(
                    addr,
                    chunk,
                    master=self.full_name,
                    tags=["config", context_name],
                )
                bitstream.extend(data)
                addr += chunk * self.word_bytes
                remaining -= chunk
            total_fetched += n_words
            if expected is None:
                break
            if region_checksum(bitstream) == expected:
                break
            attempts += 1
            self.stats.record_config_retry(context_name)
            if attempts > self.max_fetch_retries:
                raise SimulationError(
                    f"{self.full_name}: bitstream of context {context_name!r} "
                    f"failed its checksum {attempts} times (persistent "
                    "configuration-memory corruption?)"
                )
        if self.config_cache is not None:
            self.config_cache.insert(context_name, size_bytes)
        return total_fetched

    # -- prefetch hooks -----------------------------------------------------------------
    def prefetch(self, context_name: str) -> Optional[Event]:
        """Request a background load of the named context (if supported)."""
        return self.scheduler.request_prefetch(self._context_by_name(context_name))

    def _context_by_name(self, name: str) -> Context:
        for context in self.contexts:
            if context.name == name:
                return context
        raise KeyError(
            f"{self.full_name}: no context named {name!r}; "
            f"contexts: {[c.name for c in self.contexts]}"
        )

    # -- introspection ---------------------------------------------------------------------
    @property
    def active_context_name(self) -> Optional[str]:
        """Name of the active context (None before the first switch)."""
        return self.scheduler.active.name if self.scheduler.active else None

    def resident_context_names(self) -> List[str]:
        return self.scheduler.resident_context_names()

    def largest_context_gates(self) -> int:
        """Resource requirement of the largest context (Section 5.5 issue 2)."""
        return max(c.gates for c in self.contexts)

    def total_config_bytes(self) -> int:
        """Configuration memory footprint of all contexts."""
        return sum(c.params.size_bytes for c in self.contexts)

    def __repr__(self) -> str:
        names = ",".join(c.name for c in self.contexts)
        return f"Drcf({self.full_name!r}, tech={self.tech.name}, contexts=[{names}])"
