"""Bus interfaces, mirroring the paper's SystemC listings.

The paper's slave interface (Section 5.2)::

    class bus_slv_if : public virtual sc_interface {
    public:
        virtual sc_uint<ADDW> get_low_add()=0;
        virtual sc_uint<ADDW> get_high_add()=0;
        virtual bool read(sc_uint<ADDW> add, sc_int<DATAW> *data)=0;
        virtual bool write(sc_uint<ADDW> add, sc_int<DATAW> *data)=0;
    };

Our :class:`BusSlaveIf` is the direct analogue.  ``read``/``write`` are
*generator methods* (invoked with ``yield from``) because a slave may
consume simulated time before completing — this is exactly the hook the
DRCF uses to suspend a call while a context switch is in progress
(Section 5.3, step 4).  Burst variants carry ``count`` words per call.

The address-range methods ``get_low_add``/``get_high_add`` are required on
every slave; the paper makes the same requirement (Section 5.4,
limitation 2) because the DRCF transformation uses them to build its
internal routing multiplexer.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import List, Sequence, Union

from ..kernel import Interface, SimTime


class BusSlaveIf(Interface):
    """Interface implemented by every bus slave (and by the DRCF)."""

    @abc.abstractmethod
    def get_low_add(self) -> int:
        """Lowest address (inclusive) decoded by this slave."""

    @abc.abstractmethod
    def get_high_add(self) -> int:
        """Highest address (inclusive) decoded by this slave."""

    @abc.abstractmethod
    def read(self, addr: int, count: int = 1):
        """Blocking burst read (generator). Returns a list of ``count`` words."""

    @abc.abstractmethod
    def write(self, addr: int, data: Union[int, Sequence[int]]):
        """Blocking burst write (generator). Returns True on success."""


class BusMasterIf(Interface):
    """Interface a bus presents to its masters.

    Masters call through their ``mst_port``::

        data = yield from self.mst_port.read(addr, count, master=self.full_name)
    """

    @abc.abstractmethod
    def read(self, addr: int, count: int = 1, master: str = "?"):
        """Arbitrate, decode and perform a burst read (generator)."""

    @abc.abstractmethod
    def write(self, addr: int, data: Union[int, Sequence[int]], master: str = "?"):
        """Arbitrate, decode and perform a burst write (generator)."""


class InterruptIf(Interface):
    """Interface for a one-line interrupt sink (used by accelerators)."""

    @abc.abstractmethod
    def raise_irq(self, source: str) -> None:
        """Signal completion to the sink."""


@dataclass(slots=True)
class Transaction:
    """One completed bus transfer, as recorded by the bus monitor."""

    kind: str  # "read" | "write"
    master: str
    slave: str
    addr: int
    words: int
    issued_at: SimTime
    granted_at: SimTime
    completed_at: SimTime
    tags: List[str] = field(default_factory=list)
    #: "ok" for completed transfers; "error" when the slave call raised.
    #: Errored transfers still occupied the bus, so the monitor records them.
    status: str = "ok"

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    @property
    def arbitration_wait(self) -> SimTime:
        """Time spent waiting for bus grant."""
        return self.granted_at - self.issued_at

    @property
    def latency(self) -> SimTime:
        """End-to-end latency of the transfer."""
        return self.completed_at - self.issued_at

    def has_tag(self, tag: str) -> bool:
        return tag in self.tags


def normalize_write_data(data: Union[int, Sequence[int]]) -> List[int]:
    """Coerce scalar-or-sequence write payloads into a word list."""
    if isinstance(data, int):
        return [data]
    return list(data)


def check_range(name: str, low: int, high: int) -> None:
    """Validate a slave's advertised address range."""
    if low < 0 or high < low:
        raise ValueError(f"slave {name}: invalid address range [{low:#x}, {high:#x}]")
