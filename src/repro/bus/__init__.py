"""Transaction-level bus substrate.

Provides the bus interfaces of the paper's listings (``BusSlaveIf`` with
``get_low_add``/``get_high_add``/``read``/``write``), a shared arbitrated
bus with blocking and split-transaction protocols, latency-modelled
memories, a DMA controller and a traffic monitor.
"""

from .arbiter import Arbiter
from .bridge import BusBridge
from .bus import PROTOCOLS, Bus
from .dma import DmaController, DmaDescriptor
from .interfaces import (
    BusMasterIf,
    BusSlaveIf,
    InterruptIf,
    Transaction,
    check_range,
    normalize_write_data,
)
from .interrupt import REG_ACK, REG_MASK, REG_PENDING, InterruptController
from .memory import ConfigMemory, Memory, region_checksum
from .monitor import BusMonitor

__all__ = [
    "Arbiter",
    "Bus",
    "BusBridge",
    "BusMasterIf",
    "BusMonitor",
    "BusSlaveIf",
    "ConfigMemory",
    "DmaController",
    "DmaDescriptor",
    "InterruptController",
    "InterruptIf",
    "Memory",
    "PROTOCOLS",
    "REG_ACK",
    "REG_MASK",
    "REG_PENDING",
    "Transaction",
    "check_range",
    "normalize_write_data",
    "region_checksum",
]
