"""Bus arbitration policies.

An :class:`Arbiter` serializes access to a shared resource among named
requesters.  Three grant policies are provided:

``fifo``
    First come, first served (ties by request order).
``priority``
    Fixed priority; lower number wins.  Starvation is possible by design —
    the experiment harness uses this to stress the ref-[8] baseline.
``round_robin``
    Rotating priority over requester labels.

The arbiter exposes its owner and wait queue, which the deadlock analyzer
walks to build wait-for chains.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from ..kernel import Event, SimulationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..kernel import Simulator

_POLICIES = ("fifo", "priority", "round_robin")


class Arbiter:
    """Grant-based serializer for a shared bus.

    Usage from a thread process::

        yield from arbiter.request("top.cpu", priority=0)
        ...  # exclusive use
        arbiter.release("top.cpu")
    """

    def __init__(self, sim: "Simulator", policy: str = "fifo", name: str = "arbiter") -> None:
        if policy not in _POLICIES:
            raise ValueError(f"unknown arbitration policy {policy!r}; expected one of {_POLICIES}")
        self.sim = sim
        self.policy = policy
        self.name = name
        self.owner: Optional[str] = None
        self._seq = 0
        # (label, priority, seq, grant_event)
        self._queue: List[Tuple[str, int, int, Event]] = []
        self._rr_order: List[str] = []
        self._rr_index = 0
        # Grant-event pool, one per requester label.  A label can have at
        # most one outstanding request (the requesting thread is blocked on
        # it), and immediate notifications leave no state behind, so the
        # event is inert again by the time the label re-requests.
        self._grant_pool: Dict[str, Event] = {}
        self.grant_count = 0
        self.contention_count = 0

    @property
    def busy(self) -> bool:
        return self.owner is not None

    @property
    def waiters(self) -> List[str]:
        """Labels currently queued, in request order."""
        return [label for label, _, _, _ in self._queue]

    def try_acquire(self, label: str) -> bool:
        """Non-blocking acquire: take ownership iff uncontended.

        Exactly the uncontended arm of :meth:`request` without the
        generator frame — the bus transfer path calls this first so the
        common single-master case never allocates a generator.  Returns
        False when the caller must fall back to ``yield from request()``.
        """
        if self.owner is None and not self._queue:
            self.owner = label
            self.grant_count += 1
            self._note_requester(label)
            return True
        return False

    def request(self, label: str, priority: int = 0):
        """Blocking request for ownership (generator; use with ``yield from``)."""
        if self.owner is None and not self._queue:
            self.owner = label
            self.grant_count += 1
            self._note_requester(label)
            return
        yield self.enqueue(label, priority)
        # The grant handler has already set self.owner = label.

    def enqueue(self, label: str, priority: int = 0) -> Event:
        """Queue a contended request and return its grant event.

        The transfer path yields the returned event directly (after a
        failed :meth:`try_acquire`) instead of delegating into the
        :meth:`request` generator, saving a frame per contended transfer.
        When the event fires, ownership has already been transferred.
        """
        self.contention_count += 1
        self._note_requester(label)
        self._seq += 1
        grant = self._grant_pool.get(label)
        if grant is None:
            grant = self._grant_pool[label] = Event(
                self.sim, f"{self.name}.grant.{label}"
            )
        self._queue.append((label, priority, self._seq, grant))
        return grant

    def release(self, label: Optional[str] = None) -> None:
        """Release ownership and grant the next requester per policy."""
        if self.owner is None:
            raise SimulationError(f"arbiter {self.name} released while idle")
        if label is not None and label != self.owner:
            raise SimulationError(
                f"arbiter {self.name}: {label} released but owner is {self.owner}"
            )
        self.owner = None
        if not self._queue:
            return
        index = self._select_next()
        winner, _prio, _seq, grant = self._queue.pop(index)
        self.owner = winner
        self.grant_count += 1
        grant.notify()  # immediate: winner resumes in this evaluation phase

    # -- policy selection ------------------------------------------------------
    def _select_next(self) -> int:
        if len(self._queue) == 1:
            # Every policy grants the sole waiter; round robin must still
            # advance its rotation pointer to the winner.
            if self.policy == "round_robin":
                self._rr_index = self._rr_order.index(self._queue[0][0])
            return 0
        if self.policy == "fifo":
            return min(range(len(self._queue)), key=lambda i: self._queue[i][2])
        if self.policy == "priority":
            return min(range(len(self._queue)), key=lambda i: (self._queue[i][1], self._queue[i][2]))
        # round robin: scan labels after the last winner
        order = self._rr_order
        n = len(order)
        for offset in range(1, n + 1):
            label = order[(self._rr_index + offset) % n]
            for i, entry in enumerate(self._queue):
                if entry[0] == label:
                    self._rr_index = (self._rr_index + offset) % n
                    return i
        return 0  # pragma: no cover - queue labels always registered

    def _note_requester(self, label: str) -> None:
        if label not in self._rr_order:
            self._rr_order.append(label)

    def __repr__(self) -> str:
        return f"Arbiter({self.name!r}, policy={self.policy}, owner={self.owner!r})"
