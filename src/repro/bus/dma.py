"""DMA controller.

The Figure 1 SoC contains a DMA block, and MorphoSys (Chapter 3) loads
contexts through a DMA engine while the reconfigurable array computes.  This
model is a bus master that executes queued block-copy descriptors in
bursts, raising a completion event per descriptor.  The DRCF prefetcher
drives it to implement MorphoSys-style background context loading.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from ..kernel import Event, Fifo, Module, Port, SimTime
from .interfaces import BusMasterIf


@dataclass
class DmaDescriptor:
    """One block-copy job.

    ``dst`` may be ``None`` for read-only streaming (fetch and discard) —
    the shape of a configuration-port load, where the destination is the
    device's configuration plane rather than an addressable memory.
    """

    src: int
    dst: Optional[int]
    words: int
    burst: int = 16
    tags: List[str] = field(default_factory=list)
    #: Set by the controller when the copy completes.
    completed_at: Optional[SimTime] = None

    def __post_init__(self) -> None:
        if self.words <= 0:
            raise ValueError("DMA descriptor must move at least one word")
        if self.burst <= 0:
            raise ValueError("DMA burst must be positive")


class DmaController(Module):
    """A single-channel DMA engine.

    Submit jobs with :meth:`submit`; each returns an :class:`Event` fired
    when the copy is done.  Transfers are chopped into ``descriptor.burst``
    word bus transactions so other masters can interleave.
    """

    def __init__(self, name: str, parent=None, sim=None, *, master_label: Optional[str] = None) -> None:
        super().__init__(name, parent=parent, sim=sim)
        self.mst_port = Port(self, BusMasterIf, name="mst_port")
        self._queue: Fifo = Fifo(self.sim, capacity=None, name=f"{self.full_name}.queue")
        self.master_label = master_label or self.full_name
        self.jobs_completed = 0
        self.words_moved = 0
        self.add_thread(self._engine, name="engine", daemon=True)

    def submit(self, descriptor: DmaDescriptor) -> Event:
        """Queue a copy job; returns the per-job completion event."""
        done = Event(self.sim, f"{self.full_name}.done.{id(descriptor)}")
        self._queue.nb_put((descriptor, done))
        return done

    @property
    def pending_jobs(self) -> int:
        return len(self._queue)

    def _engine(self):
        while True:
            descriptor, done = yield from self._queue.get()
            yield from self._copy(descriptor)
            descriptor.completed_at = self.sim.now
            self.jobs_completed += 1
            done.notify()

    def _copy(self, d: DmaDescriptor):
        word_bytes = getattr(self.mst_port.resolve(), "word_bytes", 4)
        moved = 0
        while moved < d.words:
            chunk = min(d.burst, d.words - moved)
            src = d.src + moved * word_bytes
            data = yield from self.mst_port.read(
                src, chunk, master=self.master_label, tags=d.tags
            )
            if d.dst is not None:
                dst = d.dst + moved * word_bytes
                yield from self.mst_port.write(
                    dst, data, master=self.master_label, tags=d.tags
                )
            moved += chunk
            self.words_moved += chunk
