"""Memory models.

:class:`Memory` is a bus slave with first-access latency and per-word
streaming cycles, backed by a sparse word store (so a multi-megabyte
configuration memory costs nothing until written).  The paper's context
scheduler "generate[s] proper data reads in to the memory space that holds
the required context" — those reads land here and their cost is what
experiment A3 varies.

:class:`ConfigMemory` is a :class:`Memory` that additionally knows which
address ranges hold which configuration bitstreams, so reads from a context
region can be asserted against in tests.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..kernel import Module, SimulationError, cycles_to_time
from .interfaces import BusSlaveIf, normalize_write_data

#: FNV-1a offset/prime (32-bit) for bitstream checksums.
_FNV_OFFSET = 0x811C9DC5
_FNV_PRIME = 0x01000193


def region_checksum(words) -> int:
    """FNV-1a (32-bit) over a word sequence — the bitstream CRC stand-in."""
    value = _FNV_OFFSET
    for word in words:
        value ^= word & 0xFFFFFFFF
        value = (value * _FNV_PRIME) & 0xFFFFFFFF
    return value


class Memory(Module, BusSlaveIf):
    """A latency-modelled RAM bus slave.

    Parameters
    ----------
    base, size_words:
        Decoded address range is ``[base, base + size_words*word_bytes)``.
    word_bytes:
        Addressing granularity (must match the bus word for simple systems).
    latency_cycles:
        Cycles before the first word of a burst is available.
    cycles_per_word:
        Additional cycles for each subsequent word of a burst.
    clock_freq_hz:
        Memory clock used to convert cycles to time.
    """

    def __init__(
        self,
        name: str,
        parent: Optional[Module] = None,
        sim=None,
        *,
        base: int = 0,
        size_words: int = 1024,
        word_bytes: int = 4,
        latency_cycles: int = 2,
        cycles_per_word: int = 1,
        clock_freq_hz: float = 100e6,
        fill: int = 0,
    ) -> None:
        super().__init__(name, parent=parent, sim=sim)
        if size_words <= 0:
            raise ValueError("memory size must be positive")
        self.base = base
        self.size_words = size_words
        self.word_bytes = word_bytes
        self.latency_cycles = latency_cycles
        self.cycles_per_word = cycles_per_word
        self.clock_freq_hz = clock_freq_hz
        self.fill = fill
        self._store: Dict[int, int] = {}
        self.read_word_count = 0
        self.write_word_count = 0

    # -- BusSlaveIf ----------------------------------------------------------
    def get_low_add(self) -> int:
        return self.base

    def get_high_add(self) -> int:
        return self.base + self.size_words * self.word_bytes - 1

    def read(self, addr: int, count: int = 1):
        """Burst read (generator); returns ``count`` words."""
        index = self._index(addr, count)
        yield cycles_to_time(
            self.latency_cycles + (count - 1) * self.cycles_per_word, self.clock_freq_hz
        )
        self.read_word_count += count
        return [self._store.get(index + i, self.fill) for i in range(count)]

    def write(self, addr: int, data: Union[int, Sequence[int]]):
        """Burst write (generator); returns True."""
        words = normalize_write_data(data)
        index = self._index(addr, len(words))
        yield cycles_to_time(
            self.latency_cycles + (len(words) - 1) * self.cycles_per_word,
            self.clock_freq_hz,
        )
        for i, word in enumerate(words):
            self._store[index + i] = word
        self.write_word_count += len(words)
        return True

    # -- zero-time backdoor (test benches, loaders) --------------------------------
    def poke(self, addr: int, data: Union[int, Sequence[int]]) -> None:
        """Write words without consuming simulated time (test-bench backdoor)."""
        words = normalize_write_data(data)
        index = self._index(addr, len(words))
        for i, word in enumerate(words):
            self._store[index + i] = word

    def peek(self, addr: int, count: int = 1) -> List[int]:
        """Read words without consuming simulated time (test-bench backdoor)."""
        index = self._index(addr, count)
        return [self._store.get(index + i, self.fill) for i in range(count)]

    def _index(self, addr: int, count: int) -> int:
        if addr % self.word_bytes:
            raise SimulationError(
                f"{self.full_name}: unaligned access at {addr:#x} (word={self.word_bytes})"
            )
        index = (addr - self.base) // self.word_bytes
        if index < 0 or index + count > self.size_words:
            raise SimulationError(
                f"{self.full_name}: access [{addr:#x} +{count}w] outside "
                f"[{self.get_low_add():#x}, {self.get_high_add():#x}]"
            )
        return index


class ConfigMemory(Memory):
    """A memory that records named configuration (context) regions.

    The DRCF's context parameters point into this memory; registering the
    region here lets tests assert that context-switch traffic actually
    targeted the right bitstream bytes.

    For integrity modeling (fine-grain devices CRC-check each configuration
    frame), each region records a checksum of its content at registration
    time, and :meth:`inject_transient_error` corrupts exactly the next read
    touching the region — the failure-injection hook behind the DRCF's
    verify-and-refetch option.
    """

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._regions: Dict[str, Tuple[int, int]] = {}
        self._checksums: Dict[str, int] = {}
        self._transient_errors: Dict[str, int] = {}
        self.injected_errors = 0

    def register_context_region(self, context_name: str, addr: int, size_bytes: int) -> None:
        """Declare that ``context_name``'s bitstream lives at ``[addr, addr+size)``."""
        if addr < self.get_low_add() or addr + size_bytes - 1 > self.get_high_add():
            raise SimulationError(
                f"context region {context_name!r} [{addr:#x} +{size_bytes}B] outside "
                f"{self.full_name}"
            )
        self._regions[context_name] = (addr, size_bytes)
        self._checksums[context_name] = self._compute_checksum(addr, size_bytes)

    def _compute_checksum(self, addr: int, size_bytes: int) -> int:
        words = max(1, -(-size_bytes // self.word_bytes))
        return region_checksum(self.peek(addr, words))

    def region_of(self, context_name: str) -> Tuple[int, int]:
        """The (address, size) registered for ``context_name``."""
        return self._regions[context_name]

    def checksum_of(self, context_name: str) -> int:
        """The checksum recorded for the region at registration time."""
        return self._checksums[context_name]

    def inject_transient_error(self, context_name: str, n_bursts: int = 1) -> None:
        """Corrupt the next ``n_bursts`` burst reads touching the region.

        Models a transient configuration-memory/bus error: each affected
        burst returns one flipped bit; later bursts are clean again, so a
        whole-bitstream fetch containing a corrupted burst fails its
        checksum once and succeeds on refetch.
        """
        if context_name not in self._regions:
            raise SimulationError(
                f"{self.full_name}: unknown context region {context_name!r}"
            )
        if n_bursts <= 0:
            raise ValueError("n_bursts must be positive")
        self._transient_errors[context_name] = (
            self._transient_errors.get(context_name, 0) + n_bursts
        )

    def read(self, addr: int, count: int = 1):
        data = yield from super().read(addr, count)
        region = self.context_for_address(addr)
        if region is not None and self._transient_errors.get(region, 0) > 0:
            self._transient_errors[region] -= 1
            self.injected_errors += 1
            data = list(data)
            data[0] ^= 0x1  # single flipped bit in the first word
        return data

    def context_for_address(self, addr: int) -> Optional[str]:
        """Which registered region (if any) contains ``addr``."""
        for name, (base, size) in self._regions.items():
            if base <= addr < base + size:
                return name
        return None
