"""Memory models.

:class:`Memory` is a bus slave with first-access latency and per-word
streaming cycles, backed by a sparse word store (so a multi-megabyte
configuration memory costs nothing until written).  The paper's context
scheduler "generate[s] proper data reads in to the memory space that holds
the required context" — those reads land here and their cost is what
experiment A3 varies.

:class:`ConfigMemory` is a :class:`Memory` that additionally knows which
address ranges hold which configuration bitstreams, so reads from a context
region can be asserted against in tests.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..kernel import Module, SimulationError, cycles_to_time
from .interfaces import BusSlaveIf, normalize_write_data

#: FNV-1a offset/prime (32-bit) for bitstream checksums.
_FNV_OFFSET = 0x811C9DC5
_FNV_PRIME = 0x01000193


def region_checksum(words) -> int:
    """FNV-1a (32-bit) over a word sequence — the bitstream CRC stand-in."""
    value = _FNV_OFFSET
    for word in words:
        value ^= word & 0xFFFFFFFF
        value = (value * _FNV_PRIME) & 0xFFFFFFFF
    return value


class Memory(Module, BusSlaveIf):
    """A latency-modelled RAM bus slave.

    Parameters
    ----------
    base, size_words:
        Decoded address range is ``[base, base + size_words*word_bytes)``.
    word_bytes:
        Addressing granularity (must match the bus word for simple systems).
    latency_cycles:
        Cycles before the first word of a burst is available.
    cycles_per_word:
        Additional cycles for each subsequent word of a burst.
    clock_freq_hz:
        Memory clock used to convert cycles to time.

    A fault injector (:mod:`repro.faults`) may set :attr:`fault_hook`; the
    hook's ``on_memory_read`` then filters every burst read's data (modeling
    transient bus/storage errors).  The attribute is ``None`` by default and
    the read path pays a single ``is None`` test for it — arming faults is
    strictly opt-in and costs nothing when disarmed.
    """

    #: Optional read-path fault filter (class default: disarmed).
    fault_hook = None

    def __init__(
        self,
        name: str,
        parent: Optional[Module] = None,
        sim=None,
        *,
        base: int = 0,
        size_words: int = 1024,
        word_bytes: int = 4,
        latency_cycles: int = 2,
        cycles_per_word: int = 1,
        clock_freq_hz: float = 100e6,
        fill: int = 0,
    ) -> None:
        super().__init__(name, parent=parent, sim=sim)
        if size_words <= 0:
            raise ValueError("memory size must be positive")
        self.base = base
        self.size_words = size_words
        self.word_bytes = word_bytes
        self.latency_cycles = latency_cycles
        self.cycles_per_word = cycles_per_word
        self.clock_freq_hz = clock_freq_hz
        self.fill = fill
        self._store: Dict[int, int] = {}
        self.read_word_count = 0
        self.write_word_count = 0
        # Burst-size -> SimTime cache: workloads issue the same burst
        # lengths over and over, and SimTime construction is pure.
        self._burst_cache: Dict[int, object] = {}

    # -- BusSlaveIf ----------------------------------------------------------
    def get_low_add(self) -> int:
        return self.base

    def get_high_add(self) -> int:
        return self.base + self.size_words * self.word_bytes - 1

    def _burst_time(self, count: int):
        t = self._burst_cache.get(count)
        if t is None:
            t = self._burst_cache[count] = cycles_to_time(
                self.latency_cycles + (count - 1) * self.cycles_per_word,
                self.clock_freq_hz,
            )
        return t

    def read(self, addr: int, count: int = 1):
        """Burst read (generator); returns ``count`` words."""
        index = self._index(addr, count)
        yield self._burst_time(count)
        self.read_word_count += count
        if count == 1:
            data = [self._store.get(index, self.fill)]
        else:
            data = [self._store.get(index + i, self.fill) for i in range(count)]
        hook = self.fault_hook
        if hook is not None:
            data = hook.on_memory_read(self, addr, count, data)
        return data

    def write(self, addr: int, data: Union[int, Sequence[int]]):
        """Burst write (generator); returns True."""
        if type(data) is int:  # scalar single-word write: skip normalization
            index = self._index(addr, 1)
            yield self._burst_time(1)
            self._store[index] = data
            self.write_word_count += 1
            return True
        words = normalize_write_data(data)
        index = self._index(addr, len(words))
        yield self._burst_time(len(words))
        for i, word in enumerate(words):
            self._store[index + i] = word
        self.write_word_count += len(words)
        return True

    # -- zero-time backdoor (test benches, loaders) --------------------------------
    def poke(self, addr: int, data: Union[int, Sequence[int]]) -> None:
        """Write words without consuming simulated time (test-bench backdoor)."""
        words = normalize_write_data(data)
        index = self._index(addr, len(words))
        for i, word in enumerate(words):
            self._store[index + i] = word

    def peek(self, addr: int, count: int = 1) -> List[int]:
        """Read words without consuming simulated time (test-bench backdoor)."""
        index = self._index(addr, count)
        return [self._store.get(index + i, self.fill) for i in range(count)]

    def _index(self, addr: int, count: int) -> int:
        if addr % self.word_bytes:
            raise SimulationError(
                f"{self.full_name}: unaligned access at {addr:#x} (word={self.word_bytes})"
            )
        index = (addr - self.base) // self.word_bytes
        if index < 0 or index + count > self.size_words:
            raise SimulationError(
                f"{self.full_name}: access [{addr:#x} +{count}w] outside "
                f"[{self.get_low_add():#x}, {self.get_high_add():#x}]"
            )
        return index


class ConfigMemory(Memory):
    """A memory that records named configuration (context) regions.

    The DRCF's context parameters point into this memory; registering the
    region here lets tests assert that context-switch traffic actually
    targeted the right bitstream bytes.

    For integrity modeling (fine-grain devices CRC-check each configuration
    frame), each region records a checksum of its content at registration
    time, and :meth:`inject_transient_error` corrupts exactly the next read
    touching the region — the failure-injection hook behind the DRCF's
    verify-and-refetch option.
    """

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._regions: Dict[str, Tuple[int, int]] = {}
        self._checksums: Dict[str, int] = {}
        self._transient_errors: Dict[str, int] = {}
        #: Golden sparse image of each region at registration time, for
        #: scrubbing repairs (word index -> word, only explicitly set words).
        self._golden: Dict[str, Dict[int, int]] = {}
        self.injected_errors = 0

    def register_context_region(self, context_name: str, addr: int, size_bytes: int) -> None:
        """Declare that ``context_name``'s bitstream lives at ``[addr, addr+size)``."""
        if addr < self.get_low_add() or addr + size_bytes - 1 > self.get_high_add():
            raise SimulationError(
                f"context region {context_name!r} [{addr:#x} +{size_bytes}B] outside "
                f"{self.full_name}"
            )
        self._regions[context_name] = (addr, size_bytes)
        self._checksums[context_name] = self._compute_checksum(addr, size_bytes)
        lo, hi = self._region_indices(addr, size_bytes)
        self._golden[context_name] = {
            i: w for i, w in self._store.items() if lo <= i < hi
        }

    def _region_indices(self, addr: int, size_bytes: int) -> Tuple[int, int]:
        """Half-open word-index range of a byte region."""
        lo = (addr - self.base) // self.word_bytes
        return lo, lo + max(1, -(-size_bytes // self.word_bytes))

    def _compute_checksum(self, addr: int, size_bytes: int) -> int:
        words = max(1, -(-size_bytes // self.word_bytes))
        return region_checksum(self.peek(addr, words))

    def region_of(self, context_name: str) -> Tuple[int, int]:
        """The (address, size) registered for ``context_name``."""
        return self._regions[context_name]

    def checksum_of(self, context_name: str) -> int:
        """The checksum recorded for the region at registration time."""
        return self._checksums[context_name]

    def inject_transient_error(self, context_name: str, n_bursts: int = 1) -> None:
        """Corrupt the next ``n_bursts`` burst reads touching the region.

        Models a transient configuration-memory/bus error: each affected
        burst returns one flipped bit; later bursts are clean again, so a
        whole-bitstream fetch containing a corrupted burst fails its
        checksum once and succeeds on refetch.
        """
        if context_name not in self._regions:
            raise SimulationError(
                f"{self.full_name}: unknown context region {context_name!r}"
            )
        if n_bursts <= 0:
            raise ValueError("n_bursts must be positive")
        self._transient_errors[context_name] = (
            self._transient_errors.get(context_name, 0) + n_bursts
        )

    def corrupt_region(self, context_name: str, bit_indices: Sequence[int]) -> None:
        """Flip the given absolute bit positions inside a context region.

        Models persistent configuration-memory upsets (SEUs in the bitstream
        store): the corruption stays until :meth:`scrub_region` repairs it.
        ``bit_indices`` are offsets from the region start; callers derive
        them from a seeded RNG so injections are reproducible.
        """
        if context_name not in self._regions:
            raise SimulationError(
                f"{self.full_name}: unknown context region {context_name!r}"
            )
        if not bit_indices:
            raise ValueError("need at least one bit to flip")
        addr, size_bytes = self._regions[context_name]
        lo, hi = self._region_indices(addr, size_bytes)
        word_bits = self.word_bytes * 8
        for bit in bit_indices:
            if bit < 0 or bit >= (hi - lo) * word_bits:
                raise ValueError(
                    f"bit offset {bit} outside region {context_name!r} "
                    f"({(hi - lo) * word_bits} bits)"
                )
            index = lo + bit // word_bits
            self._store[index] = self._store.get(index, self.fill) ^ (
                1 << (bit % word_bits)
            )
            self.injected_errors += 1

    def scrub_region(self, context_name: str) -> bool:
        """Restore a region to its golden (registration-time) image.

        Returns True if any word actually changed — the signal a scrubbing
        pass uses to count repairs.  The restore itself is zero-time (the
        scrubber pays for detection with real bus reads; the repair write-
        back is modeled as instantaneous ECC correction).
        """
        if context_name not in self._regions:
            raise SimulationError(
                f"{self.full_name}: unknown context region {context_name!r}"
            )
        addr, size_bytes = self._regions[context_name]
        lo, hi = self._region_indices(addr, size_bytes)
        golden = self._golden[context_name]
        repaired = False
        for index in [i for i in self._store if lo <= i < hi]:
            if index not in golden:
                del self._store[index]
                repaired = True
        for index, word in golden.items():
            if self._store.get(index) != word:
                self._store[index] = word
                repaired = True
        return repaired

    def region_is_clean(self, context_name: str) -> bool:
        """Does the region's current content match its registered checksum?"""
        addr, size_bytes = self._regions[context_name]
        return self._compute_checksum(addr, size_bytes) == self._checksums[context_name]

    def read(self, addr: int, count: int = 1):
        data = yield from super().read(addr, count)
        region = self.context_for_address(addr)
        if region is not None and self._transient_errors.get(region, 0) > 0:
            self._transient_errors[region] -= 1
            self.injected_errors += 1
            data = list(data)
            data[0] ^= 0x1  # single flipped bit in the first word
        return data

    def context_for_address(self, addr: int) -> Optional[str]:
        """Which registered region (if any) contains ``addr``."""
        for name, (base, size) in self._regions.items():
            if base <= addr < base + size:
                return name
        return None
