"""Bus-to-bus bridge.

The paper notes that real designs need "more complex architectures" than a
single reconfigurable block on one bus, and its limitation 1 restricts the
DRCF transformation to candidates instantiated in the same component.  A
:class:`BusBridge` is the substrate for the multi-bus topologies that
restriction is about: it is a slave on an upstream bus that forwards a
window of addresses to a downstream bus, where it acts as a master.

Transactions crossing the bridge pay a forwarding latency and then the
normal downstream arbitration/transfer cost.  Addresses pass through
unmodified (window mapping, not translation), so the downstream slave's
``get_low_add``/``get_high_add`` stay meaningful on both sides.
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

from ..kernel import Module, Port, SimulationError, cycles_to_time
from .interfaces import BusMasterIf, BusSlaveIf, check_range


class BusBridge(Module, BusSlaveIf):
    """Forwards ``[low, high]`` from the upstream bus to a downstream bus.

    Register as a slave on the upstream bus; bind ``dn_port`` to the
    downstream bus::

        bridge = BusBridge("bridge", sim=sim, low=0x8000, high=0xFFFF)
        upstream.register_slave(bridge)
        bridge.dn_port.bind(downstream)
    """

    def __init__(
        self,
        name: str,
        parent: Optional[Module] = None,
        sim=None,
        *,
        low: int,
        high: int,
        forward_cycles: int = 2,
        clock_freq_hz: float = 100e6,
    ) -> None:
        super().__init__(name, parent=parent, sim=sim)
        check_range(name, low, high)
        self.low = low
        self.high = high
        self.forward_cycles = forward_cycles
        self.clock_freq_hz = clock_freq_hz
        self.dn_port = Port(self, BusMasterIf, name="dn_port")
        self.forwarded_reads = 0
        self.forwarded_writes = 0

    def get_low_add(self) -> int:
        return self.low

    def get_high_add(self) -> int:
        return self.high

    def _check(self, addr: int, count: int) -> None:
        if addr < self.low or addr + 4 * count - 1 > self.high:
            raise SimulationError(
                f"{self.full_name}: access [{addr:#x} +{count}w] outside the "
                f"bridged window [{self.low:#x}, {self.high:#x}]"
            )

    def read(self, addr: int, count: int = 1):
        """Forward a burst read downstream (generator)."""
        self._check(addr, count)
        yield cycles_to_time(self.forward_cycles, self.clock_freq_hz)
        self.forwarded_reads += count
        data = yield from self.dn_port.read(
            addr, count, master=self.full_name, tags=["bridged"]
        )
        return data

    def write(self, addr: int, data: Union[int, Sequence[int]]):
        """Forward a burst write downstream (generator)."""
        count = 1 if isinstance(data, int) else len(data)
        self._check(addr, count)
        yield cycles_to_time(self.forward_cycles, self.clock_freq_hz)
        self.forwarded_writes += count
        yield from self.dn_port.write(
            addr, data, master=self.full_name, tags=["bridged"]
        )
        return True
