"""The shared system bus.

A bus-cycle-approximate model of the single shared bus in the paper's
Figure 1 SoC: masters arbitrate for ownership, the winning transfer pays an
address phase plus per-word data cycles, and the addressed slave's
``read``/``write`` interface method is invoked through the same mechanism
the paper uses (the slave method may itself consume simulated time).

Two protocols are supported, because the paper's Section 5.4 (limitation 3)
hinges on the difference:

``blocking``
    The bus is held for the entire slave call.  If the slave itself needs
    the same bus to make progress (the DRCF fetching configuration data
    during a context switch), the system deadlocks — exactly the failure
    mode the paper describes.
``split``
    The bus is occupied only for the request and response transfers; it is
    released while the slave processes.  This models the split-transaction
    requirement the paper states for sharing the context-memory bus with
    the component interface bus.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Union

from ..kernel import Module, SimTime, SimulationError, cycles_to_time
from .arbiter import Arbiter
from .interfaces import (
    BusMasterIf,
    BusSlaveIf,
    Transaction,
    check_range,
    normalize_write_data,
)
from .monitor import BusMonitor

#: Supported bus protocols.
PROTOCOLS = ("blocking", "split")


class Bus(Module, BusMasterIf):
    """A shared multi-master bus with address decoding and arbitration.

    Parameters
    ----------
    clock_freq_hz:
        Bus clock; all cycle counts convert to time at this frequency.
    data_width_bits:
        Width of one bus word (default 32).
    address_phase_cycles:
        Cycles consumed by the address/command phase of each transfer.
    cycles_per_word:
        Data cycles per word transferred.
    protocol:
        ``"blocking"`` or ``"split"`` (see module docstring).
    arbitration:
        Arbiter policy: ``"fifo"``, ``"priority"``, or ``"round_robin"``.
    """

    def __init__(
        self,
        name: str,
        parent: Optional[Module] = None,
        sim=None,
        *,
        clock_freq_hz: float = 100e6,
        data_width_bits: int = 32,
        address_phase_cycles: int = 1,
        cycles_per_word: int = 1,
        protocol: str = "blocking",
        arbitration: str = "fifo",
    ) -> None:
        super().__init__(name, parent=parent, sim=sim)
        if protocol not in PROTOCOLS:
            raise ValueError(f"unknown bus protocol {protocol!r}; expected one of {PROTOCOLS}")
        if data_width_bits <= 0 or data_width_bits % 8:
            raise ValueError("data_width_bits must be a positive multiple of 8")
        self.clock_freq_hz = clock_freq_hz
        self.data_width_bits = data_width_bits
        self.address_phase_cycles = address_phase_cycles
        self.cycles_per_word = cycles_per_word
        self.protocol = protocol
        self.arbiter = Arbiter(self.sim, policy=arbitration, name=f"{self.full_name}.arbiter")
        self.monitor = BusMonitor(name=f"{self.full_name}.monitor")
        self._slaves: List[BusSlaveIf] = []
        self._priorities: Dict[str, int] = {}
        # One-entry decode cache: (low, high, slave) of the last hit,
        # invalidated whenever the slave map changes, so a hit is always a
        # registered slave.  Bounds are snapshotted to skip the interface
        # method calls on the hot path (slave ranges are fixed; DRCF
        # reconfiguration swaps slaves, which invalidates the entry).
        self._decode_cache: Optional[tuple] = None
        # Cycle-count -> SimTime cache; cycle durations on the transfer path
        # repeat endlessly for the same burst sizes.  Keyed only by count:
        # ``clock_freq_hz`` is fixed at construction.
        self._cycle_cache: Dict[int, SimTime] = {}

    # -- construction -----------------------------------------------------------
    @property
    def word_bytes(self) -> int:
        """Bytes per bus word."""
        return self.data_width_bits // 8

    def words_for_bytes(self, n_bytes: int) -> int:
        """Number of bus words needed to move ``n_bytes``."""
        return max(1, math.ceil(n_bytes / self.word_bytes))

    def register_slave(self, slave: BusSlaveIf) -> None:
        """Attach a slave; its address range must not overlap existing ones."""
        if not isinstance(slave, BusSlaveIf):
            raise SimulationError(
                f"{type(slave).__name__} does not implement BusSlaveIf"
            )
        low, high = slave.get_low_add(), slave.get_high_add()
        check_range(self._slave_name(slave), low, high)
        for other in self._slaves:
            if low <= other.get_high_add() and other.get_low_add() <= high:
                raise SimulationError(
                    f"address range [{low:#x}, {high:#x}] of "
                    f"{self._slave_name(slave)} overlaps "
                    f"{self._slave_name(other)}"
                )
        self._slaves.append(slave)
        self._decode_cache = None

    def unregister_slave(self, slave: BusSlaveIf) -> None:
        """Detach a slave (used by the DRCF model transformation)."""
        self._slaves.remove(slave)
        self._decode_cache = None

    @property
    def slaves(self) -> List[BusSlaveIf]:
        return list(self._slaves)

    def set_master_priority(self, master: str, priority: int) -> None:
        """Fixed priority for ``master`` (lower wins; only with priority policy)."""
        self._priorities[master] = priority

    def decode(self, addr: int) -> BusSlaveIf:
        """The slave whose range contains ``addr``."""
        cached = self._decode_cache
        if cached is not None and cached[0] <= addr <= cached[1]:
            return cached[2]
        for slave in self._slaves:
            low, high = slave.get_low_add(), slave.get_high_add()
            if low <= addr <= high:
                self._decode_cache = (low, high, slave)
                return slave
        raise SimulationError(f"bus {self.full_name}: no slave decodes address {addr:#x}")

    # -- timing helpers ------------------------------------------------------------
    def cycles(self, n: int) -> SimTime:
        """``n`` bus-clock cycles as a duration."""
        t = self._cycle_cache.get(n)
        if t is None:
            t = self._cycle_cache[n] = cycles_to_time(n, self.clock_freq_hz)
        return t

    def transfer_time(self, words: int) -> SimTime:
        """Pure data-path occupancy for a ``words``-word burst."""
        return self.cycles(self.address_phase_cycles + words * self.cycles_per_word)

    # -- BusMasterIf -------------------------------------------------------------
    def read(self, addr: int, count: int = 1, master: str = "?", tags: Sequence[str] = ()):
        """Arbitrated burst read (use with ``yield from``). Returns a list of words.

        Validates eagerly and returns the transfer generator directly, so
        each resume walks one frame less of delegation.
        """
        if count <= 0:
            raise SimulationError("burst read count must be positive")
        return self._transfer("read", addr, count, None, master, tags)

    def write(
        self,
        addr: int,
        data: Union[int, Sequence[int]],
        master: str = "?",
        tags: Sequence[str] = (),
    ):
        """Arbitrated burst write (use with ``yield from``). Returns True on success."""
        words = normalize_write_data(data)
        return self._transfer("write", addr, len(words), words, master, tags)

    # -- core transfer ----------------------------------------------------------------
    def _transfer(
        self,
        kind: str,
        addr: int,
        count: int,
        payload: Optional[List[int]],
        master: str,
        tags: Sequence[str],
    ):
        sim = self.sim
        issued_at = sim.now
        priority = self._priorities.get(master, 0)
        self.decode(addr)  # decode errors surface before arbitration
        arbiter = self.arbiter
        if arbiter.try_acquire(master):
            granted_at = issued_at  # uncontended: granted in the same instant
        else:
            yield arbiter.enqueue(master, priority)
            granted_at = sim.now
        # Decode again now that the grant is held: the DRCF model
        # transformation may have swapped the slave map while this master
        # waited out arbitration, and the transfer must target the map
        # that is current at grant time.
        slave = self.decode(addr)
        data: Optional[List[int]] = None
        status: Optional[str] = "ok"
        try:
            yield self.cycles(self.address_phase_cycles)
            if self.protocol == "blocking":
                if kind == "read":
                    data = yield from slave.read(addr, count)
                else:
                    yield from slave.write(
                        addr, payload if len(payload) > 1 else payload[0]
                    )
                yield self.cycles(count * self.cycles_per_word)
            else:
                # Split: release the bus while the slave processes.
                yield self.cycles(1)  # request transfer beat
                arbiter.release(master)
                if kind == "read":
                    data = yield from slave.read(addr, count)
                else:
                    yield from slave.write(
                        addr, payload if len(payload) > 1 else payload[0]
                    )
                if not arbiter.try_acquire(master):
                    yield arbiter.enqueue(master, priority)
                yield self.cycles(count * self.cycles_per_word)
        except GeneratorExit:
            status = None  # master killed mid-transfer: nothing completed
            raise
        except BaseException:
            status = "error"
            raise
        finally:
            if arbiter.owner == master:
                arbiter.release(master)
            if status is not None:
                # Failed slave calls are recorded too (status="error"):
                # they occupied the bus until the failure point, and
                # silently dropping them would corrupt the monitor's
                # occupancy and contention accounting.
                self.monitor.record(
                    Transaction(
                        kind=kind,
                        master=master,
                        slave=self._slave_name(slave),
                        addr=addr,
                        words=count,
                        issued_at=issued_at,
                        granted_at=granted_at,
                        completed_at=sim.now,
                        tags=list(tags),
                        status=status,
                    )
                )
        return data if kind == "read" else True

    @staticmethod
    def _slave_name(slave: BusSlaveIf) -> str:
        return getattr(slave, "full_name", type(slave).__name__)
