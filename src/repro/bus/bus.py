"""The shared system bus.

A bus-cycle-approximate model of the single shared bus in the paper's
Figure 1 SoC: masters arbitrate for ownership, the winning transfer pays an
address phase plus per-word data cycles, and the addressed slave's
``read``/``write`` interface method is invoked through the same mechanism
the paper uses (the slave method may itself consume simulated time).

Two protocols are supported, because the paper's Section 5.4 (limitation 3)
hinges on the difference:

``blocking``
    The bus is held for the entire slave call.  If the slave itself needs
    the same bus to make progress (the DRCF fetching configuration data
    during a context switch), the system deadlocks — exactly the failure
    mode the paper describes.
``split``
    The bus is occupied only for the request and response transfers; it is
    released while the slave processes.  This models the split-transaction
    requirement the paper states for sharing the context-memory bus with
    the component interface bus.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Union

from ..kernel import Module, SimTime, SimulationError, cycles_to_time
from .arbiter import Arbiter
from .interfaces import (
    BusMasterIf,
    BusSlaveIf,
    Transaction,
    check_range,
    normalize_write_data,
)
from .monitor import BusMonitor

#: Supported bus protocols.
PROTOCOLS = ("blocking", "split")


class Bus(Module, BusMasterIf):
    """A shared multi-master bus with address decoding and arbitration.

    Parameters
    ----------
    clock_freq_hz:
        Bus clock; all cycle counts convert to time at this frequency.
    data_width_bits:
        Width of one bus word (default 32).
    address_phase_cycles:
        Cycles consumed by the address/command phase of each transfer.
    cycles_per_word:
        Data cycles per word transferred.
    protocol:
        ``"blocking"`` or ``"split"`` (see module docstring).
    arbitration:
        Arbiter policy: ``"fifo"``, ``"priority"``, or ``"round_robin"``.
    """

    def __init__(
        self,
        name: str,
        parent: Optional[Module] = None,
        sim=None,
        *,
        clock_freq_hz: float = 100e6,
        data_width_bits: int = 32,
        address_phase_cycles: int = 1,
        cycles_per_word: int = 1,
        protocol: str = "blocking",
        arbitration: str = "fifo",
    ) -> None:
        super().__init__(name, parent=parent, sim=sim)
        if protocol not in PROTOCOLS:
            raise ValueError(f"unknown bus protocol {protocol!r}; expected one of {PROTOCOLS}")
        if data_width_bits <= 0 or data_width_bits % 8:
            raise ValueError("data_width_bits must be a positive multiple of 8")
        self.clock_freq_hz = clock_freq_hz
        self.data_width_bits = data_width_bits
        self.address_phase_cycles = address_phase_cycles
        self.cycles_per_word = cycles_per_word
        self.protocol = protocol
        self.arbiter = Arbiter(self.sim, policy=arbitration, name=f"{self.full_name}.arbiter")
        self.monitor = BusMonitor(name=f"{self.full_name}.monitor")
        self._slaves: List[BusSlaveIf] = []
        self._priorities: Dict[str, int] = {}

    # -- construction -----------------------------------------------------------
    @property
    def word_bytes(self) -> int:
        """Bytes per bus word."""
        return self.data_width_bits // 8

    def words_for_bytes(self, n_bytes: int) -> int:
        """Number of bus words needed to move ``n_bytes``."""
        return max(1, math.ceil(n_bytes / self.word_bytes))

    def register_slave(self, slave: BusSlaveIf) -> None:
        """Attach a slave; its address range must not overlap existing ones."""
        if not isinstance(slave, BusSlaveIf):
            raise SimulationError(
                f"{type(slave).__name__} does not implement BusSlaveIf"
            )
        low, high = slave.get_low_add(), slave.get_high_add()
        check_range(self._slave_name(slave), low, high)
        for other in self._slaves:
            if low <= other.get_high_add() and other.get_low_add() <= high:
                raise SimulationError(
                    f"address range [{low:#x}, {high:#x}] of "
                    f"{self._slave_name(slave)} overlaps "
                    f"{self._slave_name(other)}"
                )
        self._slaves.append(slave)

    def unregister_slave(self, slave: BusSlaveIf) -> None:
        """Detach a slave (used by the DRCF model transformation)."""
        self._slaves.remove(slave)

    @property
    def slaves(self) -> List[BusSlaveIf]:
        return list(self._slaves)

    def set_master_priority(self, master: str, priority: int) -> None:
        """Fixed priority for ``master`` (lower wins; only with priority policy)."""
        self._priorities[master] = priority

    def decode(self, addr: int) -> BusSlaveIf:
        """The slave whose range contains ``addr``."""
        for slave in self._slaves:
            if slave.get_low_add() <= addr <= slave.get_high_add():
                return slave
        raise SimulationError(f"bus {self.full_name}: no slave decodes address {addr:#x}")

    # -- timing helpers ------------------------------------------------------------
    def cycles(self, n: int) -> SimTime:
        """``n`` bus-clock cycles as a duration."""
        return cycles_to_time(n, self.clock_freq_hz)

    def transfer_time(self, words: int) -> SimTime:
        """Pure data-path occupancy for a ``words``-word burst."""
        return self.cycles(self.address_phase_cycles + words * self.cycles_per_word)

    # -- BusMasterIf -------------------------------------------------------------
    def read(self, addr: int, count: int = 1, master: str = "?", tags: Sequence[str] = ()):
        """Arbitrated burst read (generator). Returns a list of words."""
        if count <= 0:
            raise SimulationError("burst read count must be positive")
        result = yield from self._transfer("read", addr, count, None, master, tags)
        return result

    def write(
        self,
        addr: int,
        data: Union[int, Sequence[int]],
        master: str = "?",
        tags: Sequence[str] = (),
    ):
        """Arbitrated burst write (generator). Returns True on success."""
        words = normalize_write_data(data)
        yield from self._transfer("write", addr, len(words), words, master, tags)
        return True

    # -- core transfer ----------------------------------------------------------------
    def _transfer(
        self,
        kind: str,
        addr: int,
        count: int,
        payload: Optional[List[int]],
        master: str,
        tags: Sequence[str],
    ):
        issued_at = self.sim.now
        priority = self._priorities.get(master, 0)
        slave = self.decode(addr)  # decode errors surface before arbitration
        yield from self.arbiter.request(master, priority)
        granted_at = self.sim.now
        data: Optional[List[int]] = None
        try:
            yield self.cycles(self.address_phase_cycles)
            if self.protocol == "blocking":
                data = yield from self._slave_call(slave, kind, addr, count, payload)
                yield self.cycles(count * self.cycles_per_word)
            else:
                # Split: release the bus while the slave processes.
                yield self.cycles(1)  # request transfer beat
                self.arbiter.release(master)
                data = yield from self._slave_call(slave, kind, addr, count, payload)
                yield from self.arbiter.request(master, priority)
                yield self.cycles(count * self.cycles_per_word)
        finally:
            if self.arbiter.owner == master:
                self.arbiter.release(master)
        self.monitor.record(
            Transaction(
                kind=kind,
                master=master,
                slave=self._slave_name(slave),
                addr=addr,
                words=count,
                issued_at=issued_at,
                granted_at=granted_at,
                completed_at=self.sim.now,
                tags=list(tags),
            )
        )
        return data

    @staticmethod
    def _slave_call(slave: BusSlaveIf, kind: str, addr: int, count: int, payload):
        if kind == "read":
            data = yield from slave.read(addr, count)
            return data
        yield from slave.write(addr, payload if len(payload) > 1 else payload[0])
        return None

    @staticmethod
    def _slave_name(slave: BusSlaveIf) -> str:
        return getattr(slave, "full_name", type(slave).__name__)
