"""Interrupt controller.

The paper's bus-traffic argument cuts both ways: software that *polls* an
accelerator's STATUS register loads the bus with reads that an
interrupt-driven design avoids.  This controller is a bus slave with the
classic PENDING/MASK/ACK register file plus per-line kernel events, so CPU
tasks can sleep on completion instead of polling — and the bus monitor then
shows the traffic difference (see ``tests/bus/test_interrupt.py``).

Register map (word offsets from ``base``):

========  ==============================================================
``0x00``  PENDING (read; bit per line, set by ``raise_irq``)
``0x04``  MASK (read/write; 1 = line enabled; reset: all enabled)
``0x08``  ACK (write; clears the written bits in PENDING)
========  ==============================================================
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Union

from ..kernel import Event, Module, SimulationError, cycles_to_time
from .interfaces import BusSlaveIf, InterruptIf, normalize_write_data

REG_PENDING = 0x00
REG_MASK = 0x04
REG_ACK = 0x08


class InterruptController(Module, BusSlaveIf, InterruptIf):
    """An N-line level interrupt controller.

    Sources are registered by name (:meth:`register_source`) and signal via
    :meth:`raise_irq`; each line has an :class:`~repro.kernel.Event` that
    fires when the line becomes pending while unmasked, plus a combined
    ``any_irq`` event.
    """

    def __init__(
        self,
        name: str,
        parent: Optional[Module] = None,
        sim=None,
        *,
        base: int,
        n_lines: int = 32,
        access_cycles: int = 1,
        clock_freq_hz: float = 100e6,
    ) -> None:
        super().__init__(name, parent=parent, sim=sim)
        if not 1 <= n_lines <= 32:
            raise SimulationError("interrupt controller supports 1..32 lines")
        self.base = base
        self.n_lines = n_lines
        self.access_cycles = access_cycles
        self.clock_freq_hz = clock_freq_hz
        self._pending = 0
        self._mask = (1 << n_lines) - 1
        self._line_of: Dict[str, int] = {}
        self._line_events: List[Event] = [
            Event(self.sim, f"{self.full_name}.irq{i}") for i in range(n_lines)
        ]
        #: Fires whenever any unmasked line becomes pending.
        self.any_irq = Event(self.sim, f"{self.full_name}.any_irq")
        self.raised_count = 0

    # -- source management ---------------------------------------------------
    def register_source(self, source: str, line: Optional[int] = None) -> int:
        """Assign ``source`` to a line (next free if unspecified)."""
        if source in self._line_of:
            return self._line_of[source]
        if line is None:
            used = set(self._line_of.values())
            free = [i for i in range(self.n_lines) if i not in used]
            if not free:
                raise SimulationError(f"{self.full_name}: out of interrupt lines")
            line = free[0]
        if not 0 <= line < self.n_lines:
            raise SimulationError(f"line {line} out of range")
        self._line_of[source] = line
        return line

    def line_event(self, source: str) -> Event:
        """The kernel event of ``source``'s line (CPU tasks wait on this)."""
        return self._line_events[self._require_line(source)]

    def _require_line(self, source: str) -> int:
        try:
            return self._line_of[source]
        except KeyError:
            raise SimulationError(
                f"{self.full_name}: unknown interrupt source {source!r}; "
                f"registered: {sorted(self._line_of)}"
            ) from None

    # -- InterruptIf ------------------------------------------------------------
    def raise_irq(self, source: str) -> None:
        """Mark ``source``'s line pending; notify events if unmasked."""
        line = self._require_line(source)
        bit = 1 << line
        self._pending |= bit
        self.raised_count += 1
        if self._mask & bit:
            self._line_events[line].notify()
            self.any_irq.notify()

    def is_pending(self, source: str) -> bool:
        return bool(self._pending & (1 << self._require_line(source)))

    def acknowledge(self, source: str) -> None:
        """Clear ``source``'s pending bit (direct API form of ACK)."""
        self._pending &= ~(1 << self._require_line(source))

    # -- BusSlaveIf ----------------------------------------------------------------
    def get_low_add(self) -> int:
        return self.base

    def get_high_add(self) -> int:
        return self.base + 0x0B

    def read(self, addr: int, count: int = 1):
        yield cycles_to_time(self.access_cycles * count, self.clock_freq_hz)
        out = []
        for i in range(count):
            offset = addr - self.base + 4 * i
            if offset == REG_PENDING:
                out.append(self._pending & self._mask)
            elif offset == REG_MASK:
                out.append(self._mask)
            elif offset == REG_ACK:
                out.append(0)
            else:
                raise SimulationError(f"{self.full_name}: read from {addr + 4 * i:#x}")
        return out

    def write(self, addr: int, data: Union[int, Sequence[int]]):
        words = normalize_write_data(data)
        yield cycles_to_time(self.access_cycles * len(words), self.clock_freq_hz)
        for i, word in enumerate(words):
            offset = addr - self.base + 4 * i
            if offset == REG_MASK:
                self._mask = word & ((1 << self.n_lines) - 1)
            elif offset == REG_ACK:
                self._pending &= ~word
            elif offset == REG_PENDING:
                pass  # read-only
            else:
                raise SimulationError(f"{self.full_name}: write to {addr + 4 * i:#x}")
        return True
