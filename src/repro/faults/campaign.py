"""The fault-injection campaign engine.

A campaign runs one golden (fault-free) trial to learn the reference
makespan and outputs, then N seeded trials, each injecting exactly one
:class:`~repro.faults.models.FaultSpec` from a deterministic grid over
(fault kind x target context x injection-time fraction).  Every trial is
classified into exactly one outcome:

``masked``
    The run completed with correct outputs and no recovery intervention —
    the fault landed somewhere the system never consumed.
``recovered``
    Correct outputs, but the DRCF's recovery instrumentation shows at
    least one intervention (retry, scrub repair, fetch timeout, fallback).
``sdc``
    The run completed but some job's outputs differ from the executable
    specification — silent data corruption.
``hang``
    The run did not complete all jobs within the simulated-time bound
    (``hang_factor`` x golden makespan), or the wall-clock watchdog
    tripped.

Trials are independent full simulations, so the engine fans them out over
``multiprocessing`` workers (:func:`repro.parallel.map_ordered`, shared
with the DSE sweep engine); every payload is primitives-only and each
trial derives its private RNG via :func:`repro.parallel.derive_seed`,
making the whole campaign byte-for-byte reproducible from (scenario,
trials, seed, recovery) alone.  Reports carry no wall-clock data for
exactly that reason.
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..parallel import derive_seed, map_ordered
from .models import FAULT_KINDS, FaultSpec
from .scenarios import CampaignScenario

#: The four trial outcomes (each trial lands in exactly one).
OUTCOMES = ("masked", "recovered", "sdc", "hang")

#: Injection instants as fractions of the golden makespan.
TIME_FRACTIONS = (0.1, 0.35, 0.6)

#: Simulated-time bound = golden * HANG_FACTOR + slack (see run_campaign).
DEFAULT_HANG_FACTOR = 50.0
_HANG_SLACK_NS = 2_000_000.0  # 2 ms of absolute headroom for stalls/backoff

#: Wall-clock safety net per trial; the deterministic sim-time bound fires
#: long before this on any healthy machine.
DEFAULT_MAX_WALL_S = 120.0


@dataclass
class TrialResult:
    """Outcome of one campaign trial (primitives only; picklable)."""

    trial: int
    outcome: str
    fault: Optional[dict]
    #: None for hang trials (their stop point may not be meaningful).
    makespan_ns: Optional[float] = None
    recovery_actions: Optional[int] = None
    recovery_time_ns: Optional[float] = None
    config_retries: Optional[int] = None
    scrub_repairs: Optional[int] = None
    fallbacks: Optional[int] = None
    fetch_timeouts: Optional[int] = None
    #: ``[t_ns, description]`` audit trail of applied injections.
    events: Optional[list] = None

    def to_dict(self) -> dict:
        return {
            "trial": self.trial,
            "outcome": self.outcome,
            "fault": self.fault,
            "makespan_ns": self.makespan_ns,
            "recovery_actions": self.recovery_actions,
            "recovery_time_ns": self.recovery_time_ns,
            "config_retries": self.config_retries,
            "scrub_repairs": self.scrub_repairs,
            "fallbacks": self.fallbacks,
            "fetch_timeouts": self.fetch_timeouts,
            "events": self.events,
        }


def build_fault_grid(
    scenario: CampaignScenario,
    trials: int,
    seed: int,
    golden_makespan_ns: float,
) -> List[FaultSpec]:
    """The deterministic fault-point grid of a campaign.

    Kind, target and injection-time fraction cycle deterministically so
    even a small trial count covers every kind; the kind-specific
    parameters vary per trial through the trial's private seeded RNG.
    """
    targets = scenario.accels
    specs: List[FaultSpec] = []
    for i in range(trials):
        rng = random.Random(derive_seed(seed, i))
        kind = FAULT_KINDS[i % len(FAULT_KINDS)]
        target = targets[(i // len(FAULT_KINDS)) % len(targets)]
        fraction = TIME_FRACTIONS[
            (i // (len(FAULT_KINDS) * len(targets))) % len(TIME_FRACTIONS)
        ]
        specs.append(
            FaultSpec(
                kind=kind,
                target=target,
                at_ns=round(golden_makespan_ns * fraction, 3),
                n_bits=rng.randint(1, 3),
                drop_fraction=rng.choice((0.25, 0.5, 0.75)),
                n_bursts=rng.randint(1, 2),
                stall_us=float(rng.choice((100, 250, 400))),
            )
        )
    return specs


# ---------------------------------------------------------------------------
# trial execution (top-level so multiprocessing can pickle it)
# ---------------------------------------------------------------------------

def _build_system(scenario_dict: dict):
    """Build (netlist, info) for one trial from a scenario dictionary."""
    from ..apps import make_reconfigurable_netlist
    from ..tech import preset

    scenario = CampaignScenario.from_dict(scenario_dict)
    if scenario.netlist_path is not None:
        from .scenarios import _load_netlist

        netlist, info = _load_netlist(scenario.netlist_path)
        if info is None or info.drcf_name is None:
            raise ValueError(
                f"{scenario.netlist_path}: build_netlist() must return "
                "(netlist, SocInfo) with a DRCF"
            )
        return netlist, info
    return make_reconfigurable_netlist(
        scenario.accels,
        tech=preset(scenario.tech),
        bus_protocol=scenario.bus_protocol,
    )


def _make_jobs(scenario_dict: dict):
    from ..apps import batched_jobs, frame_interleaved_jobs, random_mix_jobs

    scenario = CampaignScenario.from_dict(scenario_dict)
    accels = scenario.accels
    if scenario.workload == "interleaved":
        return frame_interleaved_jobs(accels, scenario.n_frames, seed=scenario.workload_seed)
    if scenario.workload == "batched":
        return batched_jobs(accels, scenario.n_frames, seed=scenario.workload_seed)
    if scenario.workload == "random":
        return random_mix_jobs(
            accels, scenario.n_frames * len(accels), seed=scenario.workload_seed
        )
    raise KeyError(f"unknown workload {scenario.workload!r}")


def _run_trial(payload: dict) -> dict:
    """Run one campaign trial (worker entry point; primitives in and out)."""
    from ..apps import JobRunner, golden_outputs
    from ..core import recovery_preset
    from ..kernel import Simulator, ns
    from .injector import FaultInjector

    netlist, info = _build_system(payload["scenario"])
    jobs = _make_jobs(payload["scenario"])
    sim = Simulator()
    design = netlist.elaborate(sim)
    drcf = design[info.drcf_name]
    drcf.set_recovery(recovery_preset(payload["recovery"]))
    runner = JobRunner(info.accel_bases, info.buffer_words)
    workload_proc = design[info.cpu_name].run_task(runner.task(jobs), name="workload")

    # Daemons (the scrubber, background traffic) never starve the event
    # queue; end the run when the workload completes instead.
    def stopper():
        yield workload_proc.terminated_event
        sim.stop()

    sim.spawn("stopper", stopper)

    injector = None
    fault_dict = payload.get("fault")
    if fault_dict is not None:
        injector = FaultInjector(seed=payload["trial_seed"])
        injector.arm(FaultSpec.from_dict(fault_dict))
        injector.attach(sim, design, info)

    until_ns = payload.get("until_ns")
    sim.run(
        until=ns(until_ns) if until_ns is not None else None,
        max_wall_s=payload.get("max_wall_s"),
    )

    completed = len(runner.results) == len(jobs) and not sim.watchdog_fired
    result = TrialResult(trial=payload["trial"], outcome="hang", fault=fault_dict)
    if completed:
        wrong = any(r.outputs != golden_outputs(r.spec) for r in runner.results)
        stats = drcf.stats
        actions = stats.recovery_actions
        if wrong:
            result.outcome = "sdc"
        elif actions > 0:
            result.outcome = "recovered"
        else:
            result.outcome = "masked"
        result.makespan_ns = max(r.end_ns for r in runner.results)
        result.recovery_actions = actions
        result.recovery_time_ns = stats.total_recovery_time.to_ns()
        result.config_retries = stats.config_retries
        result.scrub_repairs = stats.scrub_repairs
        result.fallbacks = stats.fallbacks
        result.fetch_timeouts = stats.fetch_timeouts
        result.events = (
            [[t, msg] for t, msg in injector.events] if injector is not None else []
        )
    return result.to_dict()


# ---------------------------------------------------------------------------
# the campaign
# ---------------------------------------------------------------------------

@dataclass
class CampaignReport:
    """Everything a campaign measured (JSON- and table-renderable)."""

    scenario: dict
    recovery: str
    trials: int
    seed: int
    golden_makespan_ns: float
    counts: Dict[str, int]
    #: recovered / (recovered + sdc + hang); None when every fault masked.
    coverage: Optional[float]
    #: Mean simulated recovery time of recovered trials (MTTR), ns.
    mttr_ns: Optional[float]
    #: Mean makespan inflation of completed-correct trials vs golden.
    recovery_overhead: Optional[float]
    results: List[TrialResult] = field(default_factory=list)

    def to_dict(self) -> dict:
        return {
            "scenario": self.scenario,
            "recovery": self.recovery,
            "trials": self.trials,
            "seed": self.seed,
            "golden_makespan_ns": self.golden_makespan_ns,
            "counts": dict(self.counts),
            "coverage": self.coverage,
            "mttr_ns": self.mttr_ns,
            "recovery_overhead": self.recovery_overhead,
            "results": [r.to_dict() for r in self.results],
        }

    def to_json(self) -> str:
        """Deterministic JSON: sorted keys, no wall-clock data anywhere."""
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    def render(self) -> str:
        """Human-readable campaign report."""
        from ..dse import format_table

        lines = [
            f"fault campaign: scenario={self.scenario['name']} "
            f"recovery={self.recovery} trials={self.trials} seed={self.seed}",
            f"golden makespan: {self.golden_makespan_ns / 1e3:.2f} us",
            "",
        ]
        lines.append(
            "outcomes: "
            + "  ".join(f"{name}={self.counts[name]}" for name in OUTCOMES)
        )
        coverage = "n/a" if self.coverage is None else f"{self.coverage:.1%}"
        mttr = "n/a" if self.mttr_ns is None else f"{self.mttr_ns / 1e3:.2f} us"
        overhead = (
            "n/a" if self.recovery_overhead is None else f"{self.recovery_overhead:+.2%}"
        )
        lines.append(
            f"coverage: {coverage}   MTTR: {mttr}   recovery overhead: {overhead}"
        )
        lines.append("")
        rows = []
        for result in self.results:
            fault = result.fault or {}
            rows.append(
                {
                    "trial": result.trial,
                    "kind": fault.get("kind", "-"),
                    "target": fault.get("target", "-"),
                    "at_us": round(fault.get("at_ns", 0.0) / 1e3, 2),
                    "outcome": result.outcome,
                    "actions": "-"
                    if result.recovery_actions is None
                    else result.recovery_actions,
                }
            )
        lines.append(format_table(rows, title="trials"))
        return "\n".join(lines)


def run_campaign(
    scenario: CampaignScenario,
    *,
    trials: int,
    seed: int,
    recovery: str = "retry",
    workers: int = 1,
    hang_factor: float = DEFAULT_HANG_FACTOR,
    max_wall_s: Optional[float] = DEFAULT_MAX_WALL_S,
) -> CampaignReport:
    """Run a fault-injection campaign and aggregate its report.

    The golden trial runs first (serially) to learn the reference
    makespan; it must come back fault-free or the scenario itself is
    broken.  The N faulted trials then run serially or across a
    ``multiprocessing`` pool — identical arguments give byte-identical
    reports either way.
    """
    if trials < 1:
        raise ValueError("need at least one trial")
    from ..kernel import SimulationError

    scenario_dict = scenario.to_dict()
    golden_payload = {
        "scenario": scenario_dict,
        "recovery": recovery,
        "fault": None,
        "trial": -1,
        "trial_seed": seed,
        "until_ns": None,
        "max_wall_s": max_wall_s,
    }
    golden = _run_trial(golden_payload)
    if golden["outcome"] != "masked":
        raise SimulationError(
            f"golden (fault-free) trial classified {golden['outcome']!r}; "
            "the scenario must run clean before faults are injected"
        )
    golden_ns = float(golden["makespan_ns"])
    until_ns = golden_ns * hang_factor + _HANG_SLACK_NS

    grid = build_fault_grid(scenario, trials, seed, golden_ns)
    payloads = [
        {
            "scenario": scenario_dict,
            "recovery": recovery,
            "fault": spec.to_dict(),
            "trial": i,
            "trial_seed": derive_seed(seed, i),
            "until_ns": until_ns,
            "max_wall_s": max_wall_s,
        }
        for i, spec in enumerate(grid)
    ]
    raw = list(map_ordered(_run_trial, payloads, workers=workers))

    results = [TrialResult(**r) for r in raw]
    counts = {name: 0 for name in OUTCOMES}
    for result in results:
        counts[result.outcome] += 1

    not_masked = counts["recovered"] + counts["sdc"] + counts["hang"]
    coverage = counts["recovered"] / not_masked if not_masked else None
    recovered = [r for r in results if r.outcome == "recovered"]
    mttr_ns = (
        sum(r.recovery_time_ns for r in recovered) / len(recovered)
        if recovered
        else None
    )
    correct = [r for r in results if r.outcome in ("masked", "recovered")]
    recovery_overhead = (
        sum((r.makespan_ns - golden_ns) / golden_ns for r in correct) / len(correct)
        if correct
        else None
    )
    return CampaignReport(
        scenario=scenario_dict,
        recovery=recovery,
        trials=trials,
        seed=seed,
        golden_makespan_ns=golden_ns,
        counts=counts,
        coverage=coverage,
        mttr_ns=mttr_ns,
        recovery_overhead=recovery_overhead,
        results=results,
    )
