"""Fault-injection campaigns and dependability evaluation.

The paper models reconfiguration as always succeeding; this layer asks
what happens when it does not.  Four seeded, reproducible fault models
(:mod:`models`) perturb the configuration path through non-invasive hooks
on the memory, the DRCF fetch engine and the context scheduler
(:mod:`injector`); the DRCF's recovery policies
(:mod:`repro.core.recovery`) fight back; and the campaign engine
(:mod:`campaign`) runs seeded trial grids, classifying every trial as
masked / recovered / sdc / hang and reporting dependability metrics
(coverage, MTTR, recovery overhead).

Everything is opt-in: with no injector attached the simulation pays a
single ``is None`` test per hook site.
"""

from .campaign import (
    CampaignReport,
    OUTCOMES,
    TrialResult,
    build_fault_grid,
    run_campaign,
)
from .injector import FaultInjector
from .models import FAULT_KINDS, FaultSpec
from .scenarios import SCENARIOS, CampaignScenario, scenario_from_file

__all__ = [
    "CampaignReport",
    "CampaignScenario",
    "FAULT_KINDS",
    "FaultInjector",
    "FaultSpec",
    "OUTCOMES",
    "SCENARIOS",
    "TrialResult",
    "build_fault_grid",
    "run_campaign",
    "scenario_from_file",
]
