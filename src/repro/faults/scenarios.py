"""Built-in campaign scenarios and file-based scenario loading.

A :class:`CampaignScenario` pins down everything a trial worker needs to
rebuild the system under test from scratch — accelerator set, technology,
workload shape and seed — as primitives, so the scenario travels inside a
``multiprocessing`` payload.  The built-ins mirror the paper's motivating
applications (wireless baseband frames over a reconfigurable fabric).

A scenario can instead point at a Python file defining ``build_netlist()``
returning ``(netlist, SocInfo)`` (the convention all shipped examples
follow); each worker then re-imports the file and elaborates a private
copy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple


@dataclass(frozen=True)
class CampaignScenario:
    """The system under test of a fault campaign (picklable primitives)."""

    name: str
    #: Accelerators folded into the DRCF (the fault targets).
    accels: Tuple[str, ...]
    #: Technology preset name (``repro.tech.PRESETS``).
    tech: str = "virtex2pro"
    n_frames: int = 1
    workload: str = "interleaved"
    workload_seed: int = 42
    bus_protocol: str = "split"
    #: When set, trial workers import this file's ``build_netlist()``
    #: instead of the SoC template (``accels``/``tech`` then only label
    #: the report and enumerate fault targets).
    netlist_path: Optional[str] = None

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "accels": list(self.accels),
            "tech": self.tech,
            "n_frames": self.n_frames,
            "workload": self.workload,
            "workload_seed": self.workload_seed,
            "bus_protocol": self.bus_protocol,
            "netlist_path": self.netlist_path,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "CampaignScenario":
        data = dict(data)
        data["accels"] = tuple(data["accels"])
        return cls(**data)


#: Built-in scenarios reachable from ``python -m repro inject --builtin``.
SCENARIOS = {
    # Smallest meaningful system: two contexts fighting over one slot.
    "minimal": CampaignScenario(
        name="minimal", accels=("fir", "fft"), tech="virtex2pro", n_frames=1
    ),
    # The paper's software-radio motivation: a modem frame touching four
    # blocks per frame on a single-context device (one switch per job).
    "modem": CampaignScenario(
        name="modem",
        accels=("fir", "fft", "viterbi", "xtea"),
        tech="virtex2pro",
        n_frames=1,
    ),
    # Multi-context device over two frames: resident contexts survive
    # between frames, so faults race against fewer refetches.
    "wireless": CampaignScenario(
        name="wireless",
        accels=("fir", "fft", "viterbi", "xtea"),
        tech="morphosys",
        n_frames=2,
    ),
}


def scenario_from_file(path: str) -> CampaignScenario:
    """Build a scenario around a file defining ``build_netlist()``.

    The file is imported once here to discover the DRCF's contexts (the
    fault targets); trial workers re-import it themselves.
    """
    netlist, info = _load_netlist(path)
    if info is None or info.drcf_name is None:
        raise ValueError(
            f"{path}: build_netlist() must return (netlist, SocInfo) with a "
            "DRCF (use make_reconfigurable_netlist)"
        )
    report = info.transform_report
    if report is not None:
        targets = tuple(alloc.name for alloc in report.allocations)
    else:
        targets = tuple(info.accel_bases)
    return CampaignScenario(
        name=path,
        accels=targets,
        tech="file",
        netlist_path=path,
    )


def _load_netlist(path: str):
    """Import ``path`` and return its ``build_netlist()`` result.

    Returns ``(netlist, info)``; ``info`` is None when the builder returns
    a bare netlist.  The module is loaded under a private name so the
    file's ``__main__`` guard keeps its own simulation from running.
    """
    import importlib.util

    spec = importlib.util.spec_from_file_location(
        f"_repro_inject_target_{abs(hash(path)) & 0xFFFF}", path
    )
    if spec is None or spec.loader is None:
        raise ImportError(f"cannot import {path!r}")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    build = getattr(module, "build_netlist", None)
    if not callable(build):
        raise ValueError(f"{path}: no build_netlist() defined")
    result = build()
    if isinstance(result, tuple):
        netlist = result[0]
        info = result[1] if len(result) > 1 else None
    else:
        netlist, info = result, None
    return netlist, info
