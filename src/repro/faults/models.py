"""Fault models for the configuration path.

Each :class:`FaultSpec` names one fault to inject: a *kind*, the *target*
context, the simulated *time* it arms, and kind-specific parameters.  The
spec is a frozen dataclass of primitives, so campaign payloads pickle
cleanly across ``multiprocessing`` workers and serialize into reports.

The four kinds model the classic configuration-path upsets:

``bitflip``
    Configuration-memory upset (SEU in the bitstream store): at ``at_ns``
    the target context's stored region gets ``n_bits`` seeded-random bits
    flipped.  Persistent until a scrubbing pass repairs it — retry alone
    refetches the same corrupted words.
``truncate``
    Interrupted configuration transfer: the first fetch of the target at
    or after ``at_ns`` loses its tail — the last ``drop_fraction`` of the
    bitstream words arrive as garbage (an aborted burst leaves whatever
    the port latched).  Transient: a refetch sees clean data.
``bus_transient``
    Transient read error on the configuration bus: the next ``n_bursts``
    burst reads touching the target's region (at or after ``at_ns``)
    return one flipped bit each.  Transient by construction.
``stuck``
    Wedged configuration port: the first fetch of the target at or after
    ``at_ns`` stalls for ``stall_us`` before any data moves.  Without a
    fetch timeout the fabric just waits it out; with one, the transfer is
    aborted and retried.
"""

from __future__ import annotations

from dataclasses import dataclass

#: The recognized fault kinds, in canonical grid order.
FAULT_KINDS = ("bitflip", "truncate", "bus_transient", "stuck")


@dataclass(frozen=True)
class FaultSpec:
    """One fault to inject (picklable primitives only)."""

    #: One of :data:`FAULT_KINDS`.
    kind: str
    #: Target context name (an accelerator folded into the DRCF).
    target: str
    #: Simulated time (ns) at which the fault arms.
    at_ns: float
    #: ``bitflip``: number of bits flipped in the stored region.
    n_bits: int = 1
    #: ``truncate``: fraction of the bitstream tail replaced by garbage.
    drop_fraction: float = 0.5
    #: ``bus_transient``: number of corrupted burst reads.
    n_bursts: int = 1
    #: ``stuck``: stall duration in microseconds.
    stall_us: float = 500.0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; known: {list(FAULT_KINDS)}"
            )
        if not self.target:
            raise ValueError("fault needs a target context name")
        if self.at_ns < 0:
            raise ValueError("injection time must be non-negative")
        if self.n_bits < 1:
            raise ValueError("bitflip needs at least one bit")
        if not 0.0 < self.drop_fraction <= 1.0:
            raise ValueError("drop_fraction must be in (0, 1]")
        if self.n_bursts < 1:
            raise ValueError("bus_transient needs at least one burst")
        if self.stall_us <= 0:
            raise ValueError("stall_us must be positive")

    def to_dict(self) -> dict:
        """Primitive dictionary (campaign payloads and JSON reports)."""
        return {
            "kind": self.kind,
            "target": self.target,
            "at_ns": self.at_ns,
            "n_bits": self.n_bits,
            "drop_fraction": self.drop_fraction,
            "n_bursts": self.n_bursts,
            "stall_us": self.stall_us,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FaultSpec":
        return cls(**data)

    def describe(self) -> str:
        """Short human-readable form for logs and tables."""
        extra = {
            "bitflip": f"{self.n_bits} bit(s)",
            "truncate": f"drop {self.drop_fraction:.0%}",
            "bus_transient": f"{self.n_bursts} burst(s)",
            "stuck": f"stall {self.stall_us:g}us",
        }[self.kind]
        return f"{self.kind}@{self.target} t={self.at_ns:g}ns ({extra})"
