"""The fault injector: arms :class:`~repro.faults.models.FaultSpec` s and
implements the hook surface the core layer exposes for them.

Injection is **non-invasive**: the injector attaches to an elaborated
design by setting three hook attributes —

* ``Drcf.fault_hook`` → :meth:`FaultInjector.fetch_delay` (stuck ports)
  and :meth:`FaultInjector.filter_bitstream` (truncated transfers) act on
  configuration fetches;
* ``Memory.fault_hook`` → :meth:`FaultInjector.on_memory_read` corrupts
  burst reads in flight (transient bus errors);
* ``ContextScheduler.fault_hook`` → :meth:`FaultInjector.on_switch_begin`
  observes the context schedule (event log / time-window triggers);

plus one daemon process that pokes timed configuration-memory upsets
(``bitflip``) at their injection instants.  Nothing in the design is
subclassed or monkey-patched, and a disarmed design pays a single
``is None`` test per hook site.

All randomness (which bits flip, garbage words, which burst word is hit)
comes from one seeded :class:`random.Random`, so a campaign trial is
reproduced exactly by its seed.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence

from ..kernel import SimTime, SimulationError, ns, us
from .models import FaultSpec


class FaultInjector:
    """Arms fault specs and applies them through the core-layer hooks.

    Usage::

        injector = FaultInjector(seed=7)
        injector.arm(FaultSpec("truncate", "fft", at_ns=5_000.0))
        injector.attach(sim, design, info)   # before sim.run()

    ``events`` records every applied fault as ``(t_ns, description)`` in
    application order — the audit trail campaigns put in their reports.
    """

    def __init__(self, seed: int = 1) -> None:
        self.rng = random.Random(seed)
        self.specs: List[FaultSpec] = []
        #: ``(sim_ns, description)`` log of every fault actually applied.
        self.events: List[tuple] = []
        #: Foreground context switches observed ``(sim_ns, context)``.
        self.switch_log: List[tuple] = []
        self._sim = None
        self._memory = None
        #: One-shot consumption state: spec index -> remaining applications.
        self._remaining: Dict[int, int] = {}
        self._attached = False

    # -- arming / attaching -------------------------------------------------
    def arm(self, spec: FaultSpec) -> None:
        """Register a fault for injection (before :meth:`attach`)."""
        if self._attached:
            raise SimulationError("arm() must be called before attach()")
        index = len(self.specs)
        self.specs.append(spec)
        self._remaining[index] = spec.n_bursts if spec.kind == "bus_transient" else 1

    def attach(self, sim, design, info) -> None:
        """Hook an elaborated design (SoC template ``info`` address map).

        Sets the three fault-hook attributes and spawns the timed-upset
        daemon when any ``bitflip`` is armed.  Safe to call with no specs
        armed (the hooks then never fire).
        """
        if self._attached:
            raise SimulationError("injector already attached")
        self._attached = True
        self._sim = sim
        drcf = design[info.drcf_name]
        memory = design[info.config_memory_name]
        self._memory = memory
        known = {c.name for c in drcf.contexts}
        for spec in self.specs:
            if spec.target not in known:
                raise SimulationError(
                    f"fault targets unknown context {spec.target!r}; "
                    f"contexts: {sorted(known)}"
                )
        drcf.fault_hook = self
        drcf.scheduler.fault_hook = self
        memory.fault_hook = self
        if any(spec.kind == "bitflip" for spec in self.specs):
            sim.spawn("fault_injector.timed", self._timed_upsets, daemon=True)

    # -- timed upsets (bitflip) ---------------------------------------------
    def _timed_upsets(self):
        """Daemon: poke each armed bitflip at its injection instant."""
        flips = sorted(
            (
                (index, spec)
                for index, spec in enumerate(self.specs)
                if spec.kind == "bitflip"
            ),
            key=lambda item: (item[1].at_ns, item[0]),
        )
        for index, spec in flips:
            target_ns = spec.at_ns
            now_ns = self._sim.now.to_ns()
            if target_ns > now_ns:
                yield ns(target_ns - now_ns)
            if self._remaining.get(index, 0) <= 0:
                continue
            self._remaining[index] = 0
            _addr, size_bytes = self._memory.region_of(spec.target)
            bits = sorted(
                self.rng.sample(range(size_bytes * 8), min(spec.n_bits, size_bytes * 8))
            )
            self._memory.corrupt_region(spec.target, bits)
            self._log(f"bitflip {spec.target}: flipped bits {bits}")

    # -- Drcf.fault_hook ------------------------------------------------------
    def fetch_delay(self, drcf_name: str, context_name: str) -> Optional[SimTime]:
        """Stuck-port model: stall duration for this fetch attempt, or None.

        Consulted at the start of every fetch attempt; a ``stuck`` spec
        matching the context (and whose time has come) is consumed
        one-shot, so a retried or timed-out attempt proceeds cleanly.
        """
        now_ns = self._sim.now.to_ns()
        for index, spec in enumerate(self.specs):
            if (
                spec.kind == "stuck"
                and spec.target == context_name
                and self._remaining.get(index, 0) > 0
                and now_ns >= spec.at_ns
            ):
                self._remaining[index] = 0
                self._log(f"stuck {context_name}: port wedged {spec.stall_us:g}us")
                return us(spec.stall_us)
        return None

    def filter_bitstream(
        self, drcf_name: str, context_name: str, bitstream: Sequence[int]
    ) -> List[int]:
        """Truncated-transfer model: garble the tail of a fetched bitstream.

        The region content defaults to fill words, so a truncation must
        inject *garbage* (seeded), not zeros — otherwise the checksum
        would not notice the damage.
        """
        data = list(bitstream)
        now_ns = self._sim.now.to_ns()
        for index, spec in enumerate(self.specs):
            if (
                spec.kind == "truncate"
                and spec.target == context_name
                and self._remaining.get(index, 0) > 0
                and now_ns >= spec.at_ns
            ):
                self._remaining[index] = 0
                keep = max(0, min(len(data) - 1, int(len(data) * (1.0 - spec.drop_fraction))))
                for i in range(keep, len(data)):
                    data[i] = self.rng.getrandbits(32)
                self._log(
                    f"truncate {context_name}: words [{keep}:{len(data)}] garbled"
                )
        return data

    # -- Memory.fault_hook -----------------------------------------------------
    def on_memory_read(self, memory, addr: int, count: int, data: List[int]) -> List[int]:
        """Transient bus-error model: flip one bit in a burst in flight.

        Only bursts overlapping the target context's registered region are
        touched; everything else passes through untouched.
        """
        region_of = getattr(memory, "context_for_address", None)
        if region_of is None:
            return data
        touched = region_of(addr)
        if touched is None:
            return data
        now_ns = self._sim.now.to_ns()
        for index, spec in enumerate(self.specs):
            if (
                spec.kind == "bus_transient"
                and spec.target == touched
                and self._remaining.get(index, 0) > 0
                and now_ns >= spec.at_ns
            ):
                self._remaining[index] -= 1
                data = list(data)
                word = self.rng.randrange(count)
                bit = self.rng.randrange(32)
                data[word] ^= 1 << bit
                self._log(
                    f"bus_transient {touched}: flipped bit {bit} of "
                    f"burst word {word} at {addr:#x}"
                )
        return data

    # -- ContextScheduler.fault_hook ------------------------------------------------
    def on_switch_begin(self, scheduler_name: str, context_name: str, now) -> None:
        """Observe foreground switches (audit trail / time-window triggers)."""
        self.switch_log.append((now.to_ns(), context_name))

    # -- introspection ------------------------------------------------------------
    @property
    def pending(self) -> int:
        """Armed fault applications not yet consumed."""
        return sum(1 for left in self._remaining.values() if left > 0)

    def _log(self, message: str) -> None:
        self.events.append((self._sim.now.to_ns(), message))

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"FaultInjector(specs={len(self.specs)}, applied={len(self.events)})"
