"""Command-line interface.

Drives the reproduction's main entry points without writing Python::

    python -m repro info
    python -m repro compare --tech morphosys --frames 2
    python -m repro sweep --techs asic,virtex2pro,morphosys --csv out.csv
    python -m repro sweep --workers 4 --cache-dir .sweep-cache --json
    python -m repro sweep --resume sweep.jsonl --check
    python -m repro flow --tech varicore
    python -m repro transform --accels fir,fft --tech virtex2pro --listing
    python -m repro deadlock
    python -m repro lint examples/*.py
    python -m repro lint --builtin broken --json
    python -m repro inject --builtin modem --trials 64 --seed 7 --json

Every command prints the same tables the experiment benches regenerate.
"""

from __future__ import annotations

import argparse
import sys
from typing import Dict, List, Optional, Sequence

from .apps.soc import ACCELERATOR_CLASSES
from .tech import PRESETS

DEFAULT_ACCELS = "fir,fft,viterbi,xtea"


def _accel_list(text: str) -> List[str]:
    accels = [a.strip() for a in text.split(",") if a.strip()]
    unknown = [a for a in accels if a not in ACCELERATOR_CLASSES]
    if unknown:
        raise argparse.ArgumentTypeError(
            f"unknown accelerators {unknown}; known: {sorted(ACCELERATOR_CLASSES)}"
        )
    if not accels:
        raise argparse.ArgumentTypeError("need at least one accelerator")
    return accels


def _tech_name(text: str) -> str:
    if text != "asic" and text not in PRESETS:
        raise argparse.ArgumentTypeError(
            f"unknown technology {text!r}; known: {sorted(PRESETS)}"
        )
    return text


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'System-Level Modeling of Dynamically "
            "Reconfigurable Hardware with SystemC' (RAW/IPDPS 2003)."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("info", help="package map, technology presets, Figure 2 bands")

    compare = sub.add_parser(
        "compare", help="run Figure 1(a) vs 1(b) on the same workload"
    )
    compare.add_argument("--accels", type=_accel_list, default=_accel_list(DEFAULT_ACCELS))
    compare.add_argument("--tech", type=_tech_name, default="morphosys")
    compare.add_argument("--frames", type=int, default=2)
    compare.add_argument(
        "--workload", choices=("interleaved", "batched", "random"), default="interleaved"
    )
    compare.add_argument("--seed", type=int, default=42)

    sweep = sub.add_parser("sweep", help="technology/workload design-space sweep")
    sweep.add_argument(
        "--techs",
        default="asic,virtex2pro,varicore,morphosys",
        help="comma-separated technology names",
    )
    sweep.add_argument("--workloads", default="interleaved,batched")
    sweep.add_argument("--accels", type=_accel_list, default=_accel_list(DEFAULT_ACCELS))
    sweep.add_argument("--frames", type=int, default=2)
    sweep.add_argument("--csv", default=None, help="also write rows to this CSV file")
    sweep.add_argument(
        "--workers", type=int, default=1, help="multiprocessing design-point workers"
    )
    sweep.add_argument(
        "--cache-dir",
        default=None,
        help="content-addressed evaluation cache directory (see docs/DSE.md)",
    )
    sweep.add_argument(
        "--resume",
        default=None,
        metavar="JOURNAL",
        help=(
            "journal file (created if missing): completed points are "
            "replayed, only the remainder simulates"
        ),
    )
    sweep.add_argument("--json", action="store_true", help="machine-readable output")
    sweep.add_argument(
        "--check",
        action="store_true",
        help=(
            "re-run the sweep serially without cache/journal and fail "
            "unless both JSON reports are byte-identical"
        ),
    )

    flow = sub.add_parser("flow", help="run the Figure 3 ADRIATIC flow")
    flow.add_argument("--accels", type=_accel_list, default=_accel_list(DEFAULT_ACCELS))
    flow.add_argument("--tech", type=_tech_name, default="varicore")
    flow.add_argument("--frames", type=int, default=2)
    flow.add_argument("--back-annotate-scale", type=float, default=None)

    transform = sub.add_parser(
        "transform", help="run the Section 5.2 transformation and print sources"
    )
    transform.add_argument("--accels", type=_accel_list, default=_accel_list("fir,fft"))
    transform.add_argument("--tech", type=_tech_name, default="virtex2pro")
    transform.add_argument(
        "--listing", action="store_true", help="also print the generated DRCF class"
    )

    sub.add_parser("deadlock", help="reproduce the Section 5.4 deadlock matrix")

    lint = sub.add_parser(
        "lint", help="statically verify netlists (no simulation); see docs/LINT.md"
    )
    lint.add_argument(
        "paths",
        nargs="*",
        help=(
            "Python files to lint; each is imported and its build_netlist() "
            "result plus any module-level Netlist objects are checked"
        ),
    )
    lint.add_argument(
        "--builtin",
        choices=("baseline", "reconfigurable", "deadlock", "broken"),
        default=None,
        help="lint a built-in architecture template instead of files",
    )
    lint.add_argument("--json", action="store_true", help="machine-readable output")
    lint.add_argument(
        "--select", default=None, help="comma-separated code prefixes to enable (e.g. REP3)"
    )
    lint.add_argument(
        "--ignore", default=None, help="comma-separated code prefixes to suppress"
    )
    lint.add_argument(
        "--strict", action="store_true", help="warnings also make the exit code non-zero"
    )
    lint.add_argument(
        "--no-elaborate",
        action="store_true",
        help="pre-elaboration rules only (skip design/DRCF layers)",
    )
    lint.add_argument(
        "--dataflow",
        action="store_true",
        help="also run the process-body dataflow rules (REP4xx)",
    )
    lint.add_argument(
        "--confirm",
        action="store_true",
        help=(
            "dynamically cross-check REP401/REP405 findings with a short "
            "bounded simulation (implies --dataflow)"
        ),
    )
    lint.add_argument(
        "--cfg",
        action="store_true",
        help=(
            "also run the control-flow rules (REP5xx): per-process CFGs "
            "and wait-state machines (implies --dataflow)"
        ),
    )
    lint.add_argument(
        "--interproc",
        action="store_true",
        help=(
            "also run the interprocedural wait-effect rules (REP6xx): "
            "static deadlock, lock-order and release-free-acquire checks "
            "(implies --dataflow and --cfg)"
        ),
    )
    lint.add_argument(
        "--specialize-report",
        action="store_true",
        help=(
            "print each netlist's compiled-scheduler admission verdicts: "
            "per-thread rendezvous proofs and per-signal exclusions"
        ),
    )
    lint.add_argument(
        "--explain",
        metavar="REPnnn",
        default=None,
        help="print the registry entry for a rule code and exit",
    )

    inject = sub.add_parser(
        "inject",
        help="run a seeded fault-injection campaign (see docs/FAULTS.md)",
    )
    inject.add_argument(
        "model",
        nargs="?",
        default=None,
        help=(
            "Python file whose build_netlist() returns (netlist, SocInfo) "
            "with a DRCF; omit and use --builtin for a shipped scenario"
        ),
    )
    inject.add_argument(
        "--builtin",
        choices=("minimal", "modem", "wireless"),
        default=None,
        help="run a built-in campaign scenario instead of a file",
    )
    inject.add_argument("--trials", type=int, default=16)
    inject.add_argument("--seed", type=int, default=7)
    inject.add_argument(
        "--recovery",
        choices=("none", "verify", "retry", "full"),
        default="retry",
        help="DRCF recovery policy preset under test",
    )
    inject.add_argument(
        "--workers", type=int, default=1, help="multiprocessing trial workers"
    )
    inject.add_argument("--json", action="store_true", help="machine-readable output")
    inject.add_argument(
        "--check",
        action="store_true",
        help="run the campaign twice and fail unless the JSON reports are identical",
    )

    experiments = sub.add_parser(
        "experiments",
        help="regenerate every paper artifact (runs the benchmark suite)",
    )
    experiments.add_argument(
        "--path",
        default="benchmarks",
        help="benchmark directory of a repository checkout (default: ./benchmarks)",
    )
    experiments.add_argument(
        "--filter", default=None, help="only benches matching this -k expression"
    )
    return parser


# ---------------------------------------------------------------------------
# commands
# ---------------------------------------------------------------------------

def cmd_info(args) -> int:
    from . import __version__
    from .dse import format_table
    from .tech import efficiency_table

    print(f"repro {__version__} — DRCF system-level modeling reproduction")
    print("\ntechnology presets:")
    for name, tech in sorted(PRESETS.items()):
        print(f"  {tech.describe()}")
    print("\naccelerator IP:", ", ".join(sorted(ACCELERATOR_CLASSES)))
    rows = [
        {
            "class": entry["label"],
            "flexibility": entry["flexibility"],
            "band_mops_per_mw": "{}-{}".format(*entry["band_mops_per_mw"]),
        }
        for entry in efficiency_table()
    ]
    print()
    print(format_table(rows, title="Figure 2 bands"))
    return 0


def cmd_compare(args) -> int:
    from .dse import evaluate_architecture, format_table

    rows = []
    for tech in ("asic", args.tech):
        metrics = evaluate_architecture(
            {
                "tech": tech,
                "accels": tuple(args.accels),
                "n_frames": args.frames,
                "workload": args.workload,
                "seed": args.seed,
            }
        )
        rows.append(
            {
                "architecture": "fig-1a (dedicated)" if tech == "asic" else f"fig-1b ({tech})",
                "makespan_us": metrics["makespan_us"],
                "switches": metrics["switches"],
                "reconfig_us": metrics["reconfig_time_us"],
                "config_words": metrics["bus_config_words"],
                "area_um2": metrics["area_um2"],
            }
        )
    print(format_table(rows, title=f"figure 1 comparison ({args.workload}, {args.frames} frames)"))
    print("\n(all outputs verified against the executable specification)")
    return 0


def cmd_sweep(args) -> int:
    from .dse import (
        EvalCache,
        Explorer,
        ParameterSpace,
        SweepJournal,
        evaluate_architecture,
        evaluator_fingerprint,
        format_points,
        points_to_rows,
        write_csv,
    )

    techs = [_tech_name(t.strip()) for t in args.techs.split(",") if t.strip()]
    workloads = [w.strip() for w in args.workloads.split(",") if w.strip()]
    space = (
        ParameterSpace()
        .add_axis("tech", techs)
        .add_axis("workload", workloads)
        .add_axis("n_frames", [args.frames])
        .add_axis("accels", [tuple(args.accels)])
    )
    explorer = Explorer(evaluate_architecture)
    fingerprint = evaluator_fingerprint(evaluate_architecture)
    cache = EvalCache(args.cache_dir, fingerprint) if args.cache_dir else None
    journal = SweepJournal(args.resume, fingerprint) if args.resume else None
    report = explorer.sweep(
        space, workers=max(1, args.workers), cache=cache, journal=journal
    )
    if args.check:
        # Ground truth: a fresh serial sweep with no cache and no journal.
        # Matching bytes prove the pool fan-out, the cache replays and the
        # journal replays all reproduce the plain for-loop exactly.
        fresh = explorer.sweep(space, workers=1)
        if report.to_json() != fresh.to_json():
            print(
                "REPRODUCIBILITY FAILURE: parallel/cached sweep differs "
                "from the serial re-run",
                file=sys.stderr,
            )
            return 1
    metric_keys = (
        "makespan_us", "switches", "reconfig_time_us", "bus_config_words", "area_um2",
    )
    if args.json:
        print(report.to_json())
    else:
        print(
            f"sweep: {len(report.points)} points  evaluated={report.evaluated}  "
            f"resumed={report.resumed}  workers={report.workers}"
        )
        if report.cache is not None:
            rate = report.cache["hit_rate"]
            print(
                "cache: hits={hits} misses={misses} stores={stores} "
                "invalidated={invalidated}".format(**report.cache)
                + (f" (hit rate {rate:.0%})" if rate is not None else "")
            )
        print()
        print(format_points(report.points, ("tech", "workload"), metric_keys, title="DSE sweep"))
        if args.check:
            print("\nreproducibility check: OK (serial re-run, identical JSON)")
    if args.csv:
        write_csv(args.csv, points_to_rows(report.points, ("tech", "workload"), metric_keys))
        if not args.json:
            print(f"\nrows written to {args.csv}")
    return 0


def cmd_flow(args) -> int:
    from .dse import AdriaticFlow, format_table
    from .tech import preset

    flow = AdriaticFlow(tuple(args.accels), tech=preset(args.tech), n_frames=args.frames)
    result = flow.run(back_annotate_scale=args.back_annotate_scale)
    print("partitioning recommendation:", ", ".join(result.recommendation.candidates) or "(none)")
    for name in result.recommendation.candidates:
        for reason in result.recommendation.reason(name):
            print(f"  {name}: {reason}")
    print()
    print(format_table(result.summary_rows(), title="flow stage comparison"))
    return 0


def cmd_transform(args) -> int:
    from .apps import make_baseline_netlist
    from .core import generate_build_source, generate_drcf_listing, generate_transformation_diff, transform_to_drcf
    from .tech import preset

    netlist, info = make_baseline_netlist(tuple(args.accels))
    result = transform_to_drcf(
        netlist, list(args.accels), tech=preset(args.tech),
        config_memory="cfgmem", config_base=info.cfg_base,
    )
    print("# original construction source")
    print(generate_build_source(netlist))
    print(generate_transformation_diff(netlist, result.netlist))
    if args.listing:
        print("# generated DRCF component")
        print(generate_drcf_listing(result.report))
    for alloc in result.report.allocations:
        print(
            f"# context {alloc.name}: {alloc.size_bytes} bytes at "
            f"{alloc.config_addr:#x} (+{alloc.extra_delay})"
        )
    return 0


def cmd_experiments(args) -> int:
    import os

    import pytest as _pytest

    if not os.path.isdir(args.path):
        print(
            f"benchmark directory {args.path!r} not found — run from a "
            "repository checkout or pass --path"
        )
        return 2
    argv = [args.path, "--benchmark-only", "-q"]
    if args.filter:
        argv += ["-k", args.filter]
    code = int(_pytest.main(argv))
    results = os.path.join(args.path, "results")
    if os.path.isdir(results):
        print(f"\nregenerated tables archived under {results}/")
    return code


def cmd_inject(args) -> int:
    from .faults import SCENARIOS, run_campaign, scenario_from_file

    if (args.model is None) == (args.builtin is None):
        print("error: pass exactly one of <model> or --builtin", file=sys.stderr)
        return 2
    if args.trials < 1:
        print("error: --trials must be positive", file=sys.stderr)
        return 2
    if args.builtin:
        scenario = SCENARIOS[args.builtin]
    else:
        try:
            scenario = scenario_from_file(args.model)
        except Exception as exc:
            print(f"error: cannot load {args.model}: {exc}", file=sys.stderr)
            return 2

    def campaign():
        return run_campaign(
            scenario,
            trials=args.trials,
            seed=args.seed,
            recovery=args.recovery,
            workers=max(1, args.workers),
        )

    report = campaign()
    if args.check:
        again = campaign()
        if report.to_json() != again.to_json():
            print("REPRODUCIBILITY FAILURE: two identical campaigns "
                  "produced different reports", file=sys.stderr)
            return 1
    if args.json:
        print(report.to_json())
    else:
        print(report.render())
        if args.check:
            print("\nreproducibility check: OK (two runs, identical JSON)")
    return 0


def cmd_deadlock(args) -> int:
    from .analysis import diagnose
    from .apps import JobRunner, frame_interleaved_jobs, make_reconfigurable_netlist
    from .dse import format_table
    from .kernel import Simulator
    from .tech import VIRTEX2PRO

    rows = []
    for protocol in ("blocking", "split"):
        for dedicated in (False, True):
            netlist, info = make_reconfigurable_netlist(
                ("fir", "fft"), tech=VIRTEX2PRO,
                bus_protocol=protocol, dedicated_config_bus=dedicated,
            )
            sim = Simulator()
            design = netlist.elaborate(sim)
            jobs = frame_interleaved_jobs(("fir", "fft"), 1, seed=5)
            runner = JobRunner(info.accel_bases, info.buffer_words)
            design["cpu"].run_task(runner.task(jobs), name="wl")
            sim.run()
            report = diagnose(sim, buses=[design["system_bus"]])
            rows.append(
                {
                    "protocol": protocol,
                    "dedicated_cfg_bus": dedicated,
                    "deadlocked": report.deadlocked,
                    "jobs": f"{len(runner.results)}/{len(jobs)}",
                }
            )
    print(format_table(rows, title="Section 5.4 limitation 3: deadlock condition"))
    return 0


def _load_netlists_from_file(path: str, index: int) -> List[tuple]:
    """Import ``path`` and collect its netlists.

    The module is loaded under a private name (never ``__main__``), so the
    usual ``if __name__ == "__main__":`` guard in examples keeps their
    simulations from running.  Collected are the result of a module-level
    ``build_netlist()`` (a ``Netlist`` or a ``(Netlist, info)`` tuple, the
    convention all shipped examples follow) plus any module-level
    ``Netlist`` globals.
    """
    import importlib.util

    from .core.netlist import Netlist

    spec = importlib.util.spec_from_file_location(f"_repro_lint_target_{index}", path)
    if spec is None or spec.loader is None:
        raise ImportError(f"cannot import {path!r}")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    found: List[tuple] = []
    build = getattr(module, "build_netlist", None)
    if callable(build):
        result = build()
        if isinstance(result, tuple) and result:
            result = result[0]
        if isinstance(result, Netlist):
            found.append((f"{path}:build_netlist()", result))
    for attr, value in sorted(vars(module).items()):
        if isinstance(value, Netlist):
            found.append((f"{path}:{attr}", value))
    return found


def _builtin_netlists(which: str) -> List[tuple]:
    """The template architectures reachable by ``lint --builtin``."""
    from .apps.soc import (
        make_baseline_netlist,
        make_multi_fabric_netlist,
        make_reconfigurable_netlist,
    )
    from .tech import MORPHOSYS

    if which == "baseline":
        return [("builtin:baseline", make_baseline_netlist()[0])]
    if which == "reconfigurable":
        return [("builtin:reconfigurable", make_reconfigurable_netlist()[0])]
    if which == "deadlock":
        # The experiment-E7 architecture: the DRCF fetches bitstreams over
        # the same blocking bus it serves — the limitation-3 deadlock.
        return [
            (
                "builtin:deadlock",
                make_reconfigurable_netlist(bus_protocol="blocking")[0],
            )
        ]
    if which == "broken":
        # Deliberately broken: two fabrics whose bitstream windows are far
        # too small, so their configuration regions overlap in cfgmem
        # (REP301) — plus a bus nothing is connected to (REP206).
        from .bus import Bus

        netlist, _ = make_multi_fabric_netlist(
            {"fabric_a": (("fir",), MORPHOSYS), "fabric_b": (("fft",), MORPHOSYS)},
            config_region_bytes=64,
        )
        netlist.add("orphan_bus", Bus)
        return [("builtin:broken", netlist)]
    raise ValueError(f"unknown builtin {which!r}")


def _explain_rule(code: str) -> int:
    import inspect

    from .analysis.lint import RULES, display_layer

    entry = RULES.get(code.strip().upper())
    if entry is None:
        print(f"error: unknown rule code {code!r}", file=sys.stderr)
        print(f"known codes: {', '.join(sorted(RULES))}", file=sys.stderr)
        return 2
    print(f"{entry.code} — {entry.summary}")
    print(f"layer: {display_layer(entry.layer)}")
    print(f"severity: {entry.severity}")
    doc = inspect.getdoc(entry.check) if entry.check else None
    if doc:
        print()
        print(doc)
    if entry.example:
        print()
        print("example:")
        for line in entry.example.strip("\n").splitlines():
            print(f"    {line}")
    return 0


def _specialize_verdicts(netlist) -> Dict[str, List[str]]:
    """Compiled-scheduler admission verdicts for one netlist.

    Elaborates into a throwaway simulator, runs the full specialization
    attempt (signal plan plus rendezvous admission) without simulating,
    and reports what the fast path would and would not take on.
    """
    from .kernel import Simulator
    from .kernel.specialize import try_specialize

    sim = Simulator(name="specialize-report")
    netlist.elaborate(sim)
    try_specialize(sim)
    plan = sim.schedule_plan
    verdicts: Dict[str, List[str]] = {
        "compiled_threads": [], "thread_exclusions": [],
        "fast_signals": [], "signal_exclusions": [],
        "fallback_reasons": list(sim.specialize_fallback_reasons),
    }
    if plan is not None:
        verdicts["compiled_threads"] = sorted(t.name for t in plan.compiled_threads)
        verdicts["thread_exclusions"] = sorted(plan.thread_exclusions)
        verdicts["signal_exclusions"] = sorted(plan.exclusions)
    verdicts["fast_signals"] = sorted(s.name for s in sim._fast_signals)
    return verdicts


def _render_specialize_report(verdicts: Dict[str, List[str]]) -> str:
    lines = ["specialize report:"]
    for thread in verdicts["compiled_threads"]:
        lines.append(f"  thread {thread}: admitted (compiled runtime)")
    for reason in verdicts["thread_exclusions"]:
        lines.append(f"  {reason}")
    n_fast = len(verdicts["fast_signals"])
    lines.append(f"  fast signals: {n_fast}")
    for reason in verdicts["signal_exclusions"]:
        lines.append(f"  signal excluded: {reason}")
    for reason in verdicts["fallback_reasons"]:
        lines.append(f"  fallback: {reason}")
    return "\n".join(lines)


def cmd_lint(args) -> int:
    import json

    from .analysis.lint import run_lint

    if args.explain:
        return _explain_rule(args.explain)

    targets: List[tuple] = []
    load_failures = 0
    if args.builtin:
        targets.extend(_builtin_netlists(args.builtin))
    for index, path in enumerate(args.paths):
        try:
            found = _load_netlists_from_file(path, index)
        except Exception as exc:
            print(f"error: cannot load {path}: {exc}", file=sys.stderr)
            load_failures += 1
            continue
        if not found:
            print(
                f"error: {path} defines no build_netlist() and no Netlist globals",
                file=sys.stderr,
            )
            load_failures += 1
            continue
        targets.extend(found)
    if not args.builtin and not args.paths:
        # Self-check mode: lint the shipped clean templates.
        targets.extend(_builtin_netlists("baseline"))
        targets.extend(_builtin_netlists("reconfigurable"))
    if load_failures or not targets:
        if not targets:
            print("error: nothing to lint", file=sys.stderr)
        return 2

    dataflow = args.dataflow or args.confirm or args.cfg or args.interproc
    cfg = args.cfg or args.interproc
    reports = [
        (
            label,
            netlist,
            run_lint(
                netlist,
                elaborate=not args.no_elaborate,
                dataflow=dataflow,
                cfg=cfg,
                interproc=args.interproc,
                select=args.select,
                ignore=args.ignore,
            ),
        )
        for label, netlist in targets
    ]
    specialize_reports: Dict[str, Dict[str, List[str]]] = {}
    if args.specialize_report:
        for label, netlist, _ in reports:
            try:
                specialize_reports[label] = _specialize_verdicts(netlist)
            except Exception as exc:
                specialize_reports[label] = {
                    "compiled_threads": [], "thread_exclusions": [],
                    "fast_signals": [], "signal_exclusions": [],
                    "fallback_reasons": [f"elaboration failed: {exc}"],
                }
    confirmations: Dict[str, Dict[tuple, str]] = {}
    if args.confirm:
        from .analysis.dataflow import cross_check

        for label, netlist, report in reports:
            confirmations[label] = cross_check(netlist, report.diagnostics)
    errors = sum(len(report.errors) for _, _, report in reports)
    warnings = sum(len(report.warnings) for _, _, report in reports)
    if args.json:
        payload = []
        for label, _, report in reports:
            statuses = confirmations.get(label, {})
            diagnostics = []
            # run_lint already sorts by (code, location, message), so the
            # emitted order is stable across runs and byte-comparable in CI.
            for diag in report.diagnostics:
                entry = diag.to_dict()
                status = statuses.get((diag.code, diag.location))
                if status is not None:
                    entry["confirmed"] = status == "confirmed"
                diagnostics.append(entry)
            entry = {
                "netlist": label,
                "errors": len(report.errors),
                "warnings": len(report.warnings),
                "summary": {
                    "error": len(report.errors),
                    "warning": len(report.warnings),
                    "info": len(report.infos),
                },
                "diagnostics": diagnostics,
            }
            if label in specialize_reports:
                entry["specialize"] = specialize_reports[label]
            payload.append(entry)
        print(json.dumps(payload, indent=2))
    else:
        for label, _, report in reports:
            print(f"== {label} ==")
            print(report.render())
            for (code, location), status in sorted(confirmations.get(label, {}).items()):
                print(f"confirm {code} {location}: {status} (dynamic cross-check)")
            if label in specialize_reports:
                print(_render_specialize_report(specialize_reports[label]))
            print()
        print(
            f"linted {len(reports)} netlist(s): {errors} error(s), "
            f"{warnings} warning(s)"
        )
    if errors or (args.strict and warnings):
        return 1
    return 0


_COMMANDS = {
    "info": cmd_info,
    "compare": cmd_compare,
    "sweep": cmd_sweep,
    "flow": cmd_flow,
    "transform": cmd_transform,
    "deadlock": cmd_deadlock,
    "inject": cmd_inject,
    "lint": cmd_lint,
    "experiments": cmd_experiments,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
