"""Deterministic multiprocessing helpers.

Both batch engines in this repository — the fault campaign
(:mod:`repro.faults.campaign`) and the DSE sweep
(:mod:`repro.dse.explorer`) — fan fully independent simulations out over
``multiprocessing`` workers while promising byte-identical reports for any
worker count.  The two ingredients of that promise live here so the
engines share one implementation:

* :func:`derive_seed` — the per-item private RNG seed.  Every item (trial,
  design point) derives its own seed from the campaign seed and its index
  through one fixed affine map, so the result of an item never depends on
  which worker ran it or in which order items completed.
* :func:`map_ordered` — order-preserving map over a payload list, serially
  or through a process pool.  Results are yielded strictly in input order
  as they become available, so callers can journal incremental progress
  without ever reordering output.

Payloads and results must be picklable primitives; worker functions must
be module-level (the usual ``multiprocessing`` constraints).
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator, Sequence, TypeVar

#: The multiplier of the per-item seed derivation (a prime well above any
#: realistic item count, so per-item seed streams never collide).
SEED_STRIDE = 1_000_003

_P = TypeVar("_P")
_R = TypeVar("_R")

__all__ = ["SEED_STRIDE", "derive_seed", "map_ordered"]


def derive_seed(seed: int, index: int) -> int:
    """The private RNG seed of item ``index`` under campaign seed ``seed``."""
    return seed * SEED_STRIDE + index


def map_ordered(
    fn: Callable[[_P], _R],
    payloads: Iterable[_P],
    *,
    workers: int = 1,
) -> Iterator[_R]:
    """Yield ``fn(payload)`` for every payload, strictly in input order.

    With ``workers <= 1`` (or fewer than two payloads) this is a plain
    serial loop with zero multiprocessing overhead; otherwise the payloads
    are dispatched to a process pool of ``min(workers, len(payloads))``
    and results stream back in input order (``imap``), so the first
    results are available while later payloads still execute.  An
    exception raised by ``fn`` propagates to the caller either way;
    results yielded before it are already delivered.  Closing the
    returned generator early tears the pool down.
    """
    items: Sequence[_P] = list(payloads)
    if workers <= 1 or len(items) <= 1:
        for payload in items:
            yield fn(payload)
        return
    import multiprocessing

    with multiprocessing.Pool(min(workers, len(items))) as pool:
        # chunksize=1: items are whole simulations, far heavier than IPC.
        yield from pool.imap(fn, items, chunksize=1)
