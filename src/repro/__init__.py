"""repro — reproduction of "System-Level Modeling of Dynamically
Reconfigurable Hardware with SystemC" (Pelkonen, Masselos, Čupák;
RAW/IPDPS 2003, ADRIATIC project).

Package map
-----------
``repro.kernel``
    SystemC-2.0-like discrete-event simulation kernel (the substrate).
``repro.bus``
    Arbitrated shared bus, memories, DMA, traffic monitor.
``repro.cpu``
    Processor model, software task graphs, traffic generators.
``repro.core``
    The paper's contribution: the DRCF component, context scheduler,
    automatic model transformation, codegen, and the future-work
    extensions (prefetch, power, partial reconfiguration).
``repro.tech``
    Technology parameter library (Virtex-II Pro, VariCore, MorphoSys,
    ASIC) and the Figure 2 efficiency bands.
``repro.apps``
    Accelerator IP, SoC templates (Figure 1a/1b), workloads.
``repro.dse``
    Design-space exploration: sweeps, Pareto analysis, the ADRIATIC flow.
``repro.analysis``
    Metrics aggregation and deadlock diagnosis.
``repro.faults``
    Fault-injection campaigns and dependability metrics for the DRCF's
    recovery policies (``repro.core.recovery``).

Quickstart: see ``examples/quickstart.py`` and the README.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
