"""The design-space exploration driver.

Evaluates every point of a :class:`~repro.dse.space.ParameterSpace` with an
evaluator function (typically
:func:`~repro.dse.evaluators.evaluate_architecture`), collecting
:class:`DsePoint` records.  Each point builds a fresh simulator, so points
are fully independent and deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from .space import ParameterSpace


@dataclass
class DsePoint:
    """One evaluated design point: parameters in, metrics out."""

    params: Dict[str, object]
    metrics: Dict[str, object]
    error: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.error is None

    def get(self, key: str, default=None):
        """Look up ``key`` in metrics, falling back to params."""
        if key in self.metrics:
            return self.metrics[key]
        return self.params.get(key, default)


class Explorer:
    """Runs an evaluator over a parameter space."""

    def __init__(
        self,
        evaluate: Callable[[Dict[str, object]], Dict[str, object]],
        *,
        raise_on_error: bool = True,
    ) -> None:
        self.evaluate = evaluate
        self.raise_on_error = raise_on_error

    def run(self, space: ParameterSpace) -> List[DsePoint]:
        """Evaluate every point; returns records in enumeration order."""
        points: List[DsePoint] = []
        for params in space.points():
            try:
                metrics = self.evaluate(params)
                points.append(DsePoint(params=params, metrics=metrics))
            except Exception as exc:
                if self.raise_on_error:
                    raise
                points.append(
                    DsePoint(params=params, metrics={}, error=f"{type(exc).__name__}: {exc}")
                )
        return points


def best_point(points: List[DsePoint], metric: str, minimize: bool = True) -> DsePoint:
    """The point optimizing one metric (ignoring failed points)."""
    ok = [p for p in points if p.ok]
    if not ok:
        raise ValueError("no successful design points")
    return min(ok, key=lambda p: p.metrics[metric] if minimize else -p.metrics[metric])
