"""The design-space exploration driver.

Evaluates every point of a :class:`~repro.dse.space.ParameterSpace` with an
evaluator function (typically
:func:`~repro.dse.evaluators.evaluate_architecture`), collecting
:class:`DsePoint` records.  Each point builds a fresh simulator, so points
are fully independent and deterministic — which is what makes the three
scaling features of :meth:`Explorer.sweep` safe:

* **parallelism** — points fan out over a ``multiprocessing`` pool
  (:func:`repro.parallel.map_ordered`, the same engine the fault campaign
  uses); results keep enumeration order and are byte-identical to a
  serial run for any worker count,
* **caching** — an :class:`~repro.dse.cache.EvalCache` serves previously
  simulated points by content address, with hit/miss/invalidation
  counters surfaced in the :class:`SweepReport`,
* **resume** — a :class:`~repro.dse.cache.SweepJournal` logs every
  completed point as it lands, so an interrupted sweep continues from
  where it died instead of starting over.

Parallel sweeps require a picklable (module-level) evaluator; lambdas and
closures still work serially.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from ..parallel import map_ordered
from .cache import EvalCache, SweepJournal, cache_exclude_of, params_key
from .space import ParameterSpace

#: Schema tag of the deterministic sweep-report JSON.
SWEEP_SCHEMA = "dse-sweep/v1"


@dataclass
class DsePoint:
    """One evaluated design point: parameters in, metrics out."""

    params: Dict[str, object]
    metrics: Dict[str, object]
    error: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.error is None

    def get(self, key: str, default=None):
        """Look up ``key`` in metrics, falling back to params."""
        if key in self.metrics:
            return self.metrics[key]
        return self.params.get(key, default)

    def to_dict(self) -> dict:
        return {"params": self.params, "metrics": self.metrics, "error": self.error}


@dataclass
class SweepReport:
    """Everything one sweep produced, plus how it was produced.

    ``points`` is the payload (enumeration order, every point of the
    space); ``evaluated``/``cache``/``resumed`` say how many simulations
    actually ran versus were served from the cache or the resume journal.
    :meth:`to_json` covers the payload only — no worker counts, no cache
    counters, no wall-clock — so reports are byte-identical across
    ``workers=1`` and ``workers=N`` and across cold/warm cache runs.
    """

    points: List[DsePoint] = field(default_factory=list)
    #: Points that ran a fresh simulation in this sweep.
    evaluated: int = 0
    #: Points replayed from the resume journal.
    resumed: int = 0
    #: Worker count this sweep ran with (reporting only).
    workers: int = 1
    #: Snapshot of the cache counters (None when no cache was attached).
    cache: Optional[dict] = None

    def to_dict(self) -> dict:
        """The deterministic payload (points only; see class docstring)."""
        return {
            "schema": SWEEP_SCHEMA,
            "n_points": len(self.points),
            "points": [p.to_dict() for p in self.points],
        }

    def to_json(self) -> str:
        """Deterministic JSON: sorted keys, payload only."""
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    def render(self, title: Optional[str] = None) -> str:
        """Human-readable report: provenance counters plus the full table."""
        from .report import format_table

        cache_hits = self.cache["hits"] if self.cache else 0
        lines = [
            f"sweep: {len(self.points)} points  evaluated={self.evaluated}  "
            f"cache-hits={cache_hits}  resumed={self.resumed}  "
            f"workers={self.workers}"
        ]
        if self.cache:
            rate = self.cache["hit_rate"]
            lines.append(
                "cache: hits={hits} misses={misses} stores={stores} "
                "invalidated={invalidated}".format(**self.cache)
                + (f" (hit rate {rate:.0%})" if rate is not None else "")
            )
        lines.append("")
        rows = []
        for point in self.points:
            row = dict(point.params)
            row.update(point.metrics)
            if point.error is not None:
                row["error"] = point.error
            rows.append(row)
        lines.append(format_table(rows, title=title))
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# point evaluation (top-level so multiprocessing can pickle it)
# ---------------------------------------------------------------------------

def _evaluate_point(payload) -> dict:
    """Evaluate one design point (worker entry point)."""
    evaluate, params, capture_errors = payload
    try:
        return {"metrics": evaluate(params), "error": None}
    except Exception as exc:
        if not capture_errors:
            raise
        return {"metrics": {}, "error": f"{type(exc).__name__}: {exc}"}


class Explorer:
    """Runs an evaluator over a parameter space."""

    def __init__(
        self,
        evaluate: Callable[[Dict[str, object]], Dict[str, object]],
        *,
        raise_on_error: bool = True,
    ) -> None:
        self.evaluate = evaluate
        self.raise_on_error = raise_on_error

    def run(
        self,
        space: ParameterSpace,
        *,
        workers: int = 1,
        cache: Optional[EvalCache] = None,
        journal: Optional[SweepJournal] = None,
    ) -> List[DsePoint]:
        """Evaluate every point; returns records in enumeration order.

        With ``raise_on_error`` the exception of the first failing point
        propagates with every already-completed :class:`DsePoint` attached
        as ``exc.partial_points`` (and logged in the journal, when one is
        attached), so a long sweep is never lost to its last point.
        """
        return self.sweep(space, workers=workers, cache=cache, journal=journal).points

    def sweep(
        self,
        space: ParameterSpace,
        *,
        workers: int = 1,
        cache: Optional[EvalCache] = None,
        journal: Optional[SweepJournal] = None,
    ) -> SweepReport:
        """Like :meth:`run`, but returns the full :class:`SweepReport`."""
        exclude = cache_exclude_of(self.evaluate)
        all_params = list(space.points())
        points: List[Optional[DsePoint]] = [None] * len(all_params)
        keys: List[Optional[str]] = [None] * len(all_params)
        resumed = 0
        pending: List[int] = []
        for i, params in enumerate(all_params):
            if cache is not None or journal is not None:
                keys[i] = params_key(params, exclude)
            if journal is not None:
                entry = journal.lookup(keys[i])
                if entry is not None:
                    points[i] = DsePoint(
                        params=params,
                        metrics=entry["metrics"],
                        error=entry["error"],
                    )
                    resumed += 1
                    continue
            if cache is not None:
                metrics = cache.get(params, exclude)
                if metrics is not None:
                    points[i] = DsePoint(params=params, metrics=metrics)
                    if journal is not None:
                        journal.record(keys[i], params, metrics, None)
                    continue
            pending.append(i)

        capture = not self.raise_on_error
        payloads = [(self.evaluate, all_params[i], capture) for i in pending]
        outcomes = map_ordered(_evaluate_point, payloads, workers=workers)
        try:
            for i, outcome in zip(pending, outcomes):
                point = DsePoint(
                    params=all_params[i],
                    metrics=outcome["metrics"],
                    error=outcome["error"],
                )
                points[i] = point
                if cache is not None and point.ok:
                    cache.put(all_params[i], point.metrics, exclude)
                if journal is not None:
                    journal.record(keys[i], all_params[i], point.metrics, point.error)
        except Exception as exc:
            # A long sweep must never be lost to one bad point: the
            # completed prefix rides on the exception (and is already in
            # the journal, when one is attached).
            exc.partial_points = [p for p in points if p is not None]
            raise
        return SweepReport(
            points=[p for p in points if p is not None],
            evaluated=len(pending),
            resumed=resumed,
            workers=workers,
            cache=cache.stats.to_dict() if cache is not None else None,
        )


def best_point(points: List[DsePoint], metric: str, minimize: bool = True) -> DsePoint:
    """The point optimizing one metric.

    Failed points and points whose metrics lack ``metric`` are skipped
    (heterogeneous sweeps — e.g. ASIC points carry no reconfiguration
    metrics); if no successful point carries the metric at all a
    ``ValueError`` naming it is raised.
    """
    ok = [p for p in points if p.ok]
    if not ok:
        raise ValueError("no successful design points")
    carrying = [p for p in ok if metric in p.metrics]
    if not carrying:
        raise ValueError(
            f"no successful design point carries metric {metric!r}"
        )
    choose = min if minimize else max
    return choose(carrying, key=lambda p: p.metrics[metric])
