"""Design-space exploration.

Parameter spaces and sweeps (:mod:`space`, :mod:`explorer`,
:mod:`evaluators`), Pareto/crossover analysis (:mod:`pareto`), text/CSV
reports (:mod:`report`), the Section 5.1 partitioning rules
(:mod:`partition`) and the full ADRIATIC flow of Figure 3 (:mod:`flow`).
"""

from .evaluators import (
    DEFAULT_ACCELS,
    evaluate_architecture,
    evaluate_robustness,
    make_jobs,
)
from .explorer import DsePoint, Explorer, best_point
from .flow import AdriaticFlow, FlowResult, StageRun
from .pareto import Objective, crossover_point, dominates, pareto_front
from .partition import (
    BlockProfile,
    PartitionRecommendation,
    profiles_from_run,
    recommend_candidates,
)
from .report import (
    format_points,
    format_table,
    points_to_rows,
    to_csv,
    write_csv,
)
from .space import ParameterSpace

__all__ = [
    "AdriaticFlow",
    "BlockProfile",
    "DEFAULT_ACCELS",
    "DsePoint",
    "Explorer",
    "FlowResult",
    "Objective",
    "ParameterSpace",
    "PartitionRecommendation",
    "StageRun",
    "best_point",
    "crossover_point",
    "dominates",
    "evaluate_architecture",
    "evaluate_robustness",
    "format_points",
    "format_table",
    "make_jobs",
    "pareto_front",
    "points_to_rows",
    "profiles_from_run",
    "recommend_candidates",
    "to_csv",
    "write_csv",
]
