"""Design-space exploration.

Parameter spaces and parallel, cached, resumable sweeps (:mod:`space`,
:mod:`explorer`, :mod:`cache`, :mod:`evaluators`), Pareto/crossover
analysis (:mod:`pareto`), text/CSV reports (:mod:`report`), the Section
5.1 partitioning rules (:mod:`partition`) and the full ADRIATIC flow of
Figure 3 (:mod:`flow`).
"""

from .cache import (
    CacheStats,
    EvalCache,
    SweepJournal,
    canonical_params,
    evaluator_fingerprint,
    params_key,
)
from .evaluators import (
    DEFAULT_ACCELS,
    evaluate_architecture,
    evaluate_robustness,
    make_jobs,
)
from .explorer import DsePoint, Explorer, SweepReport, best_point
from .flow import AdriaticFlow, FlowResult, StageRun, evaluate_flow
from .pareto import Objective, crossover_point, dominates, pareto_front
from .partition import (
    BlockProfile,
    PartitionRecommendation,
    profiles_from_run,
    recommend_candidates,
)
from .report import (
    format_points,
    format_table,
    points_to_rows,
    to_csv,
    write_csv,
)
from .space import ParameterSpace

__all__ = [
    "AdriaticFlow",
    "BlockProfile",
    "CacheStats",
    "DEFAULT_ACCELS",
    "DsePoint",
    "EvalCache",
    "Explorer",
    "FlowResult",
    "Objective",
    "ParameterSpace",
    "PartitionRecommendation",
    "StageRun",
    "SweepJournal",
    "SweepReport",
    "best_point",
    "canonical_params",
    "crossover_point",
    "dominates",
    "evaluate_architecture",
    "evaluate_flow",
    "evaluate_robustness",
    "evaluator_fingerprint",
    "format_points",
    "format_table",
    "make_jobs",
    "pareto_front",
    "params_key",
    "points_to_rows",
    "profiles_from_run",
    "recommend_candidates",
    "to_csv",
    "write_csv",
]
