"""Pareto analysis over DSE results.

The flexibility/efficiency trade-off of Figure 2 reappears at design time
as a multi-objective choice (latency vs area vs energy); the DSE reports
present the non-dominated set.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from .explorer import DsePoint

#: An objective: (metric key, "min" or "max").
Objective = Tuple[str, str]


def _values(point: DsePoint, objectives: Sequence[Objective]) -> List[float]:
    out = []
    for key, direction in objectives:
        value = float(point.metrics[key])
        out.append(value if direction == "min" else -value)
    return out


def dominates(a: DsePoint, b: DsePoint, objectives: Sequence[Objective]) -> bool:
    """True if ``a`` is at least as good as ``b`` everywhere and better somewhere."""
    va, vb = _values(a, objectives), _values(b, objectives)
    return all(x <= y for x, y in zip(va, vb)) and any(x < y for x, y in zip(va, vb))


def pareto_front(
    points: Sequence[DsePoint], objectives: Sequence[Objective]
) -> List[DsePoint]:
    """The non-dominated subset, in input order.

    Validates objective directions (only ``"min"``/``"max"``) and skips
    failed points.
    """
    for key, direction in objectives:
        if direction not in ("min", "max"):
            raise ValueError(f"objective {key!r}: direction must be 'min' or 'max'")
    ok = [p for p in points if p.ok]
    front: List[DsePoint] = []
    for candidate in ok:
        if not any(dominates(other, candidate, objectives) for other in ok):
            front.append(candidate)
    return front


def crossover_point(
    points: Sequence[DsePoint],
    axis: str,
    metric: str,
    series_key: str,
    series_a: object,
    series_b: object,
) -> Dict[str, object]:
    """Locate where series ``a`` stops beating series ``b`` along ``axis``.

    Both series must be sampled at the same axis values.  Returns the first
    axis value where ``a``'s metric exceeds ``b``'s (or None if it never
    does) plus the two curves — the "where do crossovers fall" shape the
    experiment write-ups record.
    """
    curve_a = {
        p.params[axis]: float(p.metrics[metric])
        for p in points
        if p.ok and p.params.get(series_key) == series_a
    }
    curve_b = {
        p.params[axis]: float(p.metrics[metric])
        for p in points
        if p.ok and p.params.get(series_key) == series_b
    }
    shared = sorted(set(curve_a) & set(curve_b), key=lambda v: (str(type(v)), v))
    crossover = None
    for x in shared:
        if curve_a[x] > curve_b[x]:
            crossover = x
            break
    return {"axis_values": shared, "curve_a": curve_a, "curve_b": curve_b, "crossover": crossover}
