"""The ADRIATIC design flow (paper Figure 3).

Orchestrates the system-level stages of the flow on a concrete design:

1. **System specification** — the executable specification: golden outputs
   of the workload, doubling as the test bench for every later stage.
2. **Architecture definition** — the Figure 1(a) architecture template.
3. **System partitioning** — profile the baseline run and apply the
   Section 5.1 rules of thumb to pick DRCF candidates.
4. **Mapping** — the DRCF transformation against a technology preset.
5. **System-level simulation** — run both architectures on the workload
   and collect the comparison metrics.
6. **Specification refinement / back-annotation** — re-run with refined
   per-context reconfiguration delays (e.g. numbers returned by back-end
   tools) and report the delta.

Each stage's artifact is kept on the :class:`FlowResult` so benches,
examples and documentation can show the full flow.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..analysis.lint import LintReport, run_lint
from ..apps import (
    JobRunner,
    frame_interleaved_jobs,
    golden_outputs,
    make_baseline_netlist,
)
from ..apps.soc import ACCELERATOR_CLASSES, SocInfo, accelerator_gate_counts
from ..core import Netlist, TransformResult, transform_to_drcf
from ..kernel import SimulationError, Simulator
from ..tech import ReconfigTechnology
from .partition import (
    BlockProfile,
    PartitionRecommendation,
    profiles_from_run,
    recommend_candidates,
)


@dataclass
class StageRun:
    """Metrics of one simulated architecture."""

    makespan_us: float
    bus_config_words: int
    bus_data_words: int
    switches: int
    reconfig_time_us: float
    outputs_match_spec: bool


@dataclass
class FlowResult:
    """Artifacts of a full flow execution, stage by stage."""

    golden: Dict[str, List[int]]
    baseline_netlist: Netlist
    profiles: List[BlockProfile]
    recommendation: PartitionRecommendation
    transform: Optional[TransformResult]
    baseline_run: StageRun
    mapped_run: Optional[StageRun]
    back_annotated_run: Optional[StageRun] = None
    #: Static verification reports (repro.analysis.lint) of the stage-2
    #: template and the stage-4 mapped netlist.
    baseline_lint: Optional[LintReport] = None
    mapped_lint: Optional[LintReport] = None

    def summary_rows(self) -> List[Dict[str, object]]:
        """Comparison rows for the flow report."""
        rows = [dict(architecture="figure-1a baseline", **vars(self.baseline_run))]
        if self.mapped_run:
            rows.append(dict(architecture="figure-1b mapped", **vars(self.mapped_run)))
        if self.back_annotated_run:
            rows.append(
                dict(architecture="back-annotated", **vars(self.back_annotated_run))
            )
        return rows


class AdriaticFlow:
    """Executes the Figure 3 flow on a chosen application and technology."""

    def __init__(
        self,
        accels: Sequence[str] = ("fir", "fft", "viterbi", "xtea"),
        *,
        tech: ReconfigTechnology,
        n_frames: int = 2,
        seed: int = 42,
        designer_flags: Optional[Dict[str, Dict[str, bool]]] = None,
    ) -> None:
        unknown = [a for a in accels if a not in ACCELERATOR_CLASSES]
        if unknown:
            raise KeyError(f"unknown accelerators {unknown}")
        self.accels = tuple(accels)
        self.tech = tech
        self.n_frames = n_frames
        self.seed = seed
        self.designer_flags = designer_flags or {}

    # -- stage helpers -----------------------------------------------------
    def _run_architecture(self, netlist: Netlist, info: SocInfo, jobs) -> StageRun:
        sim = Simulator()
        design = netlist.elaborate(sim)
        runner = JobRunner(info.accel_bases, info.buffer_words)
        design[info.cpu_name].run_task(runner.task(jobs), name="workload")
        sim.run()
        if len(runner.results) != len(jobs):
            raise SimulationError("flow run incomplete")
        matches = all(r.outputs == golden_outputs(r.spec) for r in runner.results)
        bus = design[info.bus_name]
        if info.drcf_name and info.drcf_name in design:
            stats = design[info.drcf_name].stats.summary()
            switches = int(stats["switches"])
            reconfig_us = float(stats["reconfig_time_ns"]) / 1e3
        else:
            switches, reconfig_us = 0, 0.0
        self._last_design = design  # kept for profiling access
        return StageRun(
            makespan_us=max(r.end_ns for r in runner.results) / 1e3,
            bus_config_words=bus.monitor.words_by_tag("config"),
            bus_data_words=bus.monitor.words_without_tag("config"),
            switches=switches,
            reconfig_time_us=reconfig_us,
            outputs_match_spec=matches,
        )

    def run(self, *, back_annotate_scale: Optional[float] = None) -> FlowResult:
        """Execute all stages; optionally re-run with scaled reconfig delays.

        ``back_annotate_scale`` multiplies every context's extra delay, as
        if refined numbers came back from the back-end tools.
        """
        # Stage 1: executable specification.
        jobs = frame_interleaved_jobs(self.accels, self.n_frames, seed=self.seed)
        golden = {job.label: golden_outputs(job) for job in jobs}

        # Stage 2: architecture template (Figure 1a), statically verified
        # before anything simulates: a template that fails the model lint
        # would waste every later stage.
        baseline, info = make_baseline_netlist(self.accels)
        baseline_lint = run_lint(baseline, dataflow=True)
        if baseline_lint.has_errors:
            raise SimulationError(
                f"stage-2 architecture template fails lint:\n{baseline_lint.render()}"
            )

        # Stage 5a: simulate the baseline (also the profiling run).
        baseline_run = self._run_architecture(baseline, info, jobs)
        design = self._last_design
        window_ns = baseline_run.makespan_us * 1e3
        gates = accelerator_gate_counts(self.accels)
        accel_stats = {
            name: (gates[name], design[name].total_compute_time.to_ns())
            for name in self.accels
        }

        # Stage 3: partitioning by the rules of thumb.
        profiles = profiles_from_run(accel_stats, window_ns, flags=self.designer_flags)
        recommendation = recommend_candidates(profiles)

        transform: Optional[TransformResult] = None
        mapped_run: Optional[StageRun] = None
        back_run: Optional[StageRun] = None
        mapped_lint: Optional[LintReport] = None
        if recommendation.candidates:
            # Stage 4: mapping — fold the recommended candidates.  The
            # transform-precondition rules (REP304-REP306) run first so a
            # bad partitioning is rejected with diagnostics, not a stack
            # trace from inside the transformation.
            precheck = run_lint(
                baseline,
                candidates=recommendation.candidates,
                config_memory=info.config_memory_name,
                elaborate=False,
            )
            if precheck.has_errors:
                raise SimulationError(
                    f"stage-4 mapping preconditions fail lint:\n{precheck.render()}"
                )
            transform = transform_to_drcf(
                baseline,
                recommendation.candidates,
                tech=self.tech,
                config_memory=info.config_memory_name,
                config_base=info.cfg_base,
            )
            info.drcf_name = transform.report.drcf_name
            # The dataflow layer (REP4xx) runs on both elaborating gates:
            # the generated DRCF's process bodies are exactly the machine-
            # written code the static races/dead-waits analysis is for.
            mapped_lint = run_lint(transform.netlist, dataflow=True)
            if mapped_lint.has_errors:
                raise SimulationError(
                    f"stage-4 mapped netlist fails lint:\n{mapped_lint.render()}"
                )
            # Stage 5b: simulate the mapped architecture.
            mapped_run = self._run_architecture(transform.netlist, info, jobs)

            # Stage 6: back-annotation.
            if back_annotate_scale is not None:
                extra = {
                    alloc.name: alloc.extra_delay * back_annotate_scale
                    for alloc in transform.report.allocations
                }
                refined = transform_to_drcf(
                    baseline,
                    recommendation.candidates,
                    tech=self.tech,
                    config_memory=info.config_memory_name,
                    config_base=info.cfg_base,
                    extra_delays=extra,
                )
                back_run = self._run_architecture(refined.netlist, info, jobs)

        return FlowResult(
            golden=golden,
            baseline_netlist=baseline,
            profiles=profiles,
            recommendation=recommendation,
            transform=transform,
            baseline_run=baseline_run,
            mapped_run=mapped_run,
            back_annotated_run=back_run,
            baseline_lint=baseline_lint,
            mapped_lint=mapped_lint,
        )


def evaluate_flow(params: Dict[str, object]) -> Dict[str, object]:
    """Sweepable evaluator running the full Figure 3 flow at one point.

    Where :func:`~repro.dse.evaluators.evaluate_architecture` measures one
    architecture, this runs the *whole* ADRIATIC flow (baseline profiling,
    partitioning, transformation, mapped simulation) and reports the
    stage comparison — the row behind flow-level sweeps such as "which
    technology keeps the mapped makespan within 2x of the baseline?".

    Recognized parameters: ``tech`` (preset name, required to be
    reconfigurable), ``accels``, ``n_frames``, ``seed`` and
    ``back_annotate_scale``.  Module-level (picklable), so it parallelizes
    and caches like every other evaluator.
    """
    from ..tech import preset

    scale = params.get("back_annotate_scale")
    flow = AdriaticFlow(
        tuple(params.get("accels", ("fir", "fft", "viterbi", "xtea"))),
        tech=preset(str(params.get("tech", "virtex2pro"))),
        n_frames=int(params.get("n_frames", 2)),
        seed=int(params.get("seed", 42)),
    )
    result = flow.run(
        back_annotate_scale=float(scale) if scale is not None else None
    )
    metrics: Dict[str, object] = {
        "candidates": ",".join(result.recommendation.candidates),
        "baseline_makespan_us": result.baseline_run.makespan_us,
        "baseline_ok": result.baseline_run.outputs_match_spec,
    }
    if result.mapped_run is not None:
        metrics.update(
            mapped_makespan_us=result.mapped_run.makespan_us,
            mapped_ok=result.mapped_run.outputs_match_spec,
            mapped_slowdown=result.mapped_run.makespan_us
            / result.baseline_run.makespan_us,
            switches=result.mapped_run.switches,
            reconfig_time_us=result.mapped_run.reconfig_time_us,
            bus_config_words=result.mapped_run.bus_config_words,
        )
    if result.back_annotated_run is not None:
        metrics["back_annotated_makespan_us"] = result.back_annotated_run.makespan_us
    return metrics
