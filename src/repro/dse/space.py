"""Parameter spaces for design-space exploration.

The paper's goal is "true design space exploration at the system-level,
without the need to map the design first to an actual technology
implementation": sweep the parameterized model over technologies, context
parameters and memory organizations.  A :class:`ParameterSpace` is a set of
named axes whose Cartesian product enumerates deterministic design points.
"""

from __future__ import annotations

import itertools
import random
from typing import Dict, Iterator, List, Sequence, Tuple


class ParameterSpace:
    """Named axes of discrete values, iterated in declaration order."""

    def __init__(self) -> None:
        self._axes: List[Tuple[str, List[object]]] = []

    def add_axis(self, name: str, values: Sequence[object]) -> "ParameterSpace":
        """Add an axis; returns self for chaining."""
        if not values:
            raise ValueError(f"axis {name!r} needs at least one value")
        if any(name == existing for existing, _ in self._axes):
            raise ValueError(f"duplicate axis {name!r}")
        self._axes.append((name, list(values)))
        return self

    @property
    def axis_names(self) -> List[str]:
        return [name for name, _ in self._axes]

    @property
    def size(self) -> int:
        """Number of design points in the full product."""
        size = 1
        for _, values in self._axes:
            size *= len(values)
        return size

    def points(self) -> Iterator[Dict[str, object]]:
        """Iterate design points as dictionaries, in lexicographic order."""
        names = [name for name, _ in self._axes]
        for combo in itertools.product(*(values for _, values in self._axes)):
            yield dict(zip(names, combo))

    def sample(self, n: int, seed: int = 1) -> List[Dict[str, object]]:
        """``n`` distinct design points drawn uniformly (budgeted DSE).

        Deterministic for a given seed; returns the full space when ``n``
        meets or exceeds its size.
        """
        if n <= 0:
            raise ValueError("sample size must be positive")
        if n >= self.size:
            return list(self.points())
        rng = random.Random(seed)
        chosen = sorted(rng.sample(range(self.size), n))
        out: List[Dict[str, object]] = []
        it = iter(enumerate(self.points()))
        for target in chosen:
            for index, point in it:
                if index == target:
                    out.append(point)
                    break
        return out

    def __len__(self) -> int:
        return self.size

    def __iter__(self) -> Iterator[Dict[str, object]]:
        return self.points()
