"""Content-addressed evaluation cache and resume journal for sweeps.

A design-point evaluation is a pure function of its parameter dictionary
(every evaluator in :mod:`repro.dse.evaluators` builds a fresh seeded
simulator), so its metrics can be reused across sweeps instead of
re-simulated.  Two pieces make that safe:

* :class:`EvalCache` — one JSON file per design point under a cache
  directory, addressed by the SHA-256 of the canonicalized parameters.
  Every entry records the *evaluator fingerprint* (a hash over the
  evaluator's module source and the package version); an entry whose
  fingerprint no longer matches is counted as *invalidated* and
  re-evaluated, so editing evaluator code never serves stale metrics.
* :class:`SweepJournal` — an append-only JSONL log of completed points.
  A sweep interrupted half-way (Ctrl-C, OOM, machine loss) resumes from
  the journal: completed points are replayed, only the remainder
  simulates.  The journal header pins the fingerprint too; a stale
  journal is discarded rather than resumed.

Caching keys canonicalize the parameter dictionary (sorted keys, tuples
and lists unified), optionally dropping keys the evaluator declares as
result-neutral via a ``cache_exclude`` attribute (e.g. the inner worker
count of :func:`~repro.dse.evaluators.evaluate_robustness`).
"""

from __future__ import annotations

import hashlib
import inspect
import json
import os
import sys
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, Optional, Tuple

#: Schema tags, bumped on any incompatible layout change.
CACHE_SCHEMA = "dse-cache/v1"
JOURNAL_SCHEMA = "dse-journal/v1"


def canonical_params(
    params: Dict[str, object], exclude: Iterable[str] = ()
) -> str:
    """Deterministic JSON form of a parameter dictionary.

    Keys are sorted, tuples serialize as lists (so ``("fir",)`` and
    ``["fir"]`` address the same entry) and non-JSON values fall back to
    ``repr``.  Keys in ``exclude`` are dropped before serialization.
    """
    dropped = set(exclude)
    filtered = {k: v for k, v in params.items() if k not in dropped}
    return json.dumps(filtered, sort_keys=True, separators=(",", ":"), default=repr)


def params_key(params: Dict[str, object], exclude: Iterable[str] = ()) -> str:
    """Content address of one design point (hex SHA-256)."""
    return hashlib.sha256(canonical_params(params, exclude).encode("utf-8")).hexdigest()


def evaluator_fingerprint(evaluate: Callable) -> str:
    """Hash identifying the evaluator's code version.

    Covers the evaluator's qualified name, the full source of its defining
    module (so editing *any* code in that module invalidates cached
    metrics) and the package version (so releases touching deeper layers
    invalidate too).  Falls back to the callable's own source or ``repr``
    for evaluators without an importable module (lambdas in a REPL).
    """
    from .. import __version__

    parts = [
        getattr(evaluate, "__module__", "") or "",
        getattr(evaluate, "__qualname__", "") or repr(evaluate),
        __version__,
    ]
    source = None
    module = sys.modules.get(parts[0])
    if module is not None:
        try:
            source = inspect.getsource(module)
        except (OSError, TypeError):
            source = None
    if source is None:
        try:
            source = inspect.getsource(evaluate)
        except (OSError, TypeError):
            source = repr(evaluate)
    parts.append(source)
    return hashlib.sha256("\n".join(parts).encode("utf-8")).hexdigest()[:16]


def cache_exclude_of(evaluate: Callable) -> Tuple[str, ...]:
    """Result-neutral parameter keys the evaluator opted out of its key."""
    return tuple(getattr(evaluate, "cache_exclude", ()))


@dataclass
class CacheStats:
    """Hit/miss accounting of one sweep (surfaced in the sweep report)."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    invalidated: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> Optional[float]:
        return self.hits / self.lookups if self.lookups else None

    def to_dict(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "invalidated": self.invalidated,
            "hit_rate": self.hit_rate,
        }


class EvalCache:
    """On-disk metric cache: one JSON file per design point.

    Entries live under ``path`` named ``<sha256>.json``; an entry is
    served only when its recorded fingerprint matches this cache's.  A
    mismatching entry counts as *invalidated* (and as a miss) and is
    overwritten on the next :meth:`put`.  Failed evaluations are never
    cached — an error should re-run, not stick.
    """

    def __init__(self, path: str, fingerprint: str) -> None:
        self.path = path
        self.fingerprint = fingerprint
        self.stats = CacheStats()
        os.makedirs(path, exist_ok=True)

    def _entry_path(self, key: str) -> str:
        return os.path.join(self.path, f"{key}.json")

    def get(
        self, params: Dict[str, object], exclude: Iterable[str] = ()
    ) -> Optional[Dict[str, object]]:
        """Cached metrics of one design point, or None on miss."""
        entry_path = self._entry_path(params_key(params, exclude))
        try:
            with open(entry_path, "r", encoding="utf-8") as fh:
                entry = json.load(fh)
        except (OSError, ValueError):
            self.stats.misses += 1
            return None
        if (
            entry.get("schema") != CACHE_SCHEMA
            or entry.get("fingerprint") != self.fingerprint
        ):
            self.stats.invalidated += 1
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return entry["metrics"]

    def put(
        self,
        params: Dict[str, object],
        metrics: Dict[str, object],
        exclude: Iterable[str] = (),
    ) -> None:
        """Store one successful evaluation (atomic rename, crash-safe)."""
        key = params_key(params, exclude)
        entry = {
            "schema": CACHE_SCHEMA,
            "fingerprint": self.fingerprint,
            "params": json.loads(canonical_params(params, exclude)),
            "metrics": metrics,
        }
        entry_path = self._entry_path(key)
        tmp_path = f"{entry_path}.tmp.{os.getpid()}"
        with open(tmp_path, "w", encoding="utf-8") as fh:
            json.dump(entry, fh, sort_keys=True)
        os.replace(tmp_path, entry_path)
        self.stats.stores += 1

    def __len__(self) -> int:
        return sum(1 for name in os.listdir(self.path) if name.endswith(".json"))


class SweepJournal:
    """Append-only completion log making an interrupted sweep resumable.

    Line 1 is a header pinning the schema and evaluator fingerprint;
    every further line is one completed point
    (``{"key", "params", "metrics", "error"}``).  Opening a journal whose
    header does not match the current fingerprint discards it (the code
    changed — old results must not resume) and counts the loss in
    ``stale_entries``.  A torn final line (the process died mid-write) is
    ignored, so resume always starts from a consistent prefix.
    """

    def __init__(self, path: str, fingerprint: str) -> None:
        self.path = path
        self.fingerprint = fingerprint
        #: key -> {"metrics", "error"} of every completed point on disk.
        self.completed: Dict[str, dict] = {}
        #: Entries discarded because the journal predated a code change.
        self.stale_entries = 0
        self._load()

    def _load(self) -> None:
        lines = []
        if os.path.exists(self.path):
            with open(self.path, "r", encoding="utf-8") as fh:
                lines = fh.read().splitlines()
        header = None
        if lines:
            try:
                header = json.loads(lines[0])
            except ValueError:
                header = None
        valid = (
            isinstance(header, dict)
            and header.get("schema") == JOURNAL_SCHEMA
            and header.get("fingerprint") == self.fingerprint
        )
        if valid:
            for line in lines[1:]:
                try:
                    entry = json.loads(line)
                except ValueError:
                    continue  # torn tail write from a killed sweep
                if isinstance(entry, dict) and "key" in entry:
                    self.completed[entry["key"]] = entry
            return
        self.stale_entries = max(0, len(lines) - 1)
        parent = os.path.dirname(os.path.abspath(self.path))
        os.makedirs(parent, exist_ok=True)
        with open(self.path, "w", encoding="utf-8") as fh:
            fh.write(
                json.dumps(
                    {"schema": JOURNAL_SCHEMA, "fingerprint": self.fingerprint},
                    sort_keys=True,
                )
                + "\n"
            )

    def lookup(self, key: str) -> Optional[dict]:
        """The completed entry of ``key``, or None if still pending."""
        return self.completed.get(key)

    def record(
        self,
        key: str,
        params: Dict[str, object],
        metrics: Dict[str, object],
        error: Optional[str],
    ) -> None:
        """Append one completed point and flush it to disk immediately."""
        entry = {
            "key": key,
            "params": json.loads(canonical_params(params)),
            "metrics": metrics,
            "error": error,
        }
        with open(self.path, "a", encoding="utf-8") as fh:
            fh.write(json.dumps(entry, sort_keys=True) + "\n")
            fh.flush()
            os.fsync(fh.fileno())
        self.completed[key] = entry

    def __len__(self) -> int:
        return len(self.completed)
