"""Canned design-point evaluators.

:func:`evaluate_architecture` is the workhorse behind the technology sweep
(E6), the policy/prefetch ablations (A1/A2) and the memory-organization
study (A3): it builds a SoC from a parameter dictionary, runs a workload
to completion, and returns the metric dictionary the paper's methodology is
designed to produce quickly (makespan, context-switch counts, reconfig
time, configuration traffic, bus utilization, area and energy).

Recognized parameters (all optional unless noted):

``tech``            technology preset name, or ``"asic"`` for Figure 1(a)
``accels``          tuple of accelerator names (default fir/fft/viterbi/xtea)
``workload``        ``"interleaved"`` | ``"batched"`` | ``"random"``
``n_frames``        frames (or jobs for random)
``policy``          replacement policy name
``prefetch``        bool — attach a sequence prefetcher
``use_area_slots``  bool — partial-reconfiguration slot model
``fabric_capacity_gates``  gate budget for area slots
``dedicated_config_bus``   bool — private configuration bus (A3)
``config_burst_words``     configuration fetch burst length (A3)
``bus_protocol``    ``"split"`` (default) or ``"blocking"``
``baseline_model``  ``"full"`` (default) or ``"ref8"`` — use the Ref8Drcf
``background_gap_cycles``  attach a background traffic generator with this
                    mean inter-transaction gap (None/absent = no generator;
                    smaller = heavier bus load) — experiment E8
``cfg_latency_cycles``     configuration-memory first-access latency (A3)
``seed``            workload seed
"""

from __future__ import annotations

from typing import Dict, Optional

from ..apps import (
    JobRunner,
    batched_jobs,
    frame_interleaved_jobs,
    golden_outputs,
    make_baseline_netlist,
    make_reconfigurable_netlist,
    random_mix_jobs,
)
from ..apps.soc import accelerator_gate_counts, architecture_area_um2
from ..core import PowerModel, Ref8Drcf
from ..core.policies import make_policy
from ..core.prefetch import ContextPrefetcher, SequencePredictor
from ..kernel import SimulationError, Simulator
from ..tech import ASIC, preset

DEFAULT_ACCELS = ("fir", "fft", "viterbi", "xtea")


def make_jobs(params: Dict[str, object]):
    """Build the workload schedule a design point asks for."""
    accels = tuple(params.get("accels", DEFAULT_ACCELS))
    workload = str(params.get("workload", "interleaved"))
    n_frames = int(params.get("n_frames", 2))
    seed = int(params.get("seed", 42))
    if workload == "interleaved":
        return frame_interleaved_jobs(accels, n_frames, seed=seed)
    if workload == "batched":
        return batched_jobs(accels, n_frames, seed=seed)
    if workload == "random":
        return random_mix_jobs(accels, n_frames * len(accels), seed=seed)
    raise KeyError(f"unknown workload {workload!r}")


def evaluate_architecture(params: Dict[str, object], *, verify: bool = True) -> Dict[str, object]:
    """Build, run and measure one design point; returns the metric row."""
    accels = tuple(params.get("accels", DEFAULT_ACCELS))
    tech_name = str(params.get("tech", "virtex2pro"))
    jobs = make_jobs(params)
    common = dict(
        bus_protocol=str(params.get("bus_protocol", "split")),
        cfg_latency_cycles=int(params.get("cfg_latency_cycles", 2)),
    )
    prefetcher: Optional[ContextPrefetcher] = None
    if tech_name == "asic":
        netlist, info = make_baseline_netlist(accels, **common)
    else:
        tech = preset(tech_name)
        policy_name = params.get("policy")
        # The random policy draws from a seeded generator; feeding it the
        # design point's seed keeps the whole evaluation reproducible.
        policy_kwargs = (
            {"seed": int(params.get("seed", 42))} if policy_name == "random" else {}
        )
        netlist, info = make_reconfigurable_netlist(
            accels,
            tech=tech,
            policy=make_policy(str(policy_name), **policy_kwargs) if policy_name else None,
            use_area_slots=bool(params.get("use_area_slots", False)),
            fabric_capacity_gates=params.get("fabric_capacity_gates"),
            config_burst_words=int(params.get("config_burst_words", 64)),
            dedicated_config_bus=bool(params.get("dedicated_config_bus", False)),
            **common,
        )
        if str(params.get("baseline_model", "full")) == "ref8":
            netlist.component(info.drcf_name).factory = Ref8Drcf

    sim = Simulator()
    design = netlist.elaborate(sim)
    gap = params.get("background_gap_cycles")
    if gap is not None:
        from ..cpu import TrafficGenerator

        generator = TrafficGenerator(
            "bg",
            parent=design.top,
            base=0x0000_8000,  # upper half of the data memory
            span_bytes=32 * 1024,
            gap_cycles=int(gap),
            seed=int(params.get("seed", 42)) + 1,
            n_transactions=None,
        )
        generator.mst_port.bind(design["system_bus"])
    if tech_name != "asic" and bool(params.get("prefetch", False)):
        prefetcher = ContextPrefetcher(
            "prefetcher",
            parent=design.top,
            drcf=design[info.drcf_name],
            predictor=SequencePredictor(list(accels)),
        )
    runner = JobRunner(info.accel_bases, info.buffer_words)
    workload_proc = design[info.cpu_name].run_task(runner.task(jobs), name="workload")
    if gap is not None:
        # The background generator never starves the event queue; end the
        # run when the workload completes instead.
        def stopper():
            yield workload_proc.terminated_event
            sim.stop()

        sim.spawn("stopper", stopper)
    sim.run()

    if len(runner.results) != len(jobs):
        raise SimulationError(
            f"workload incomplete: {len(runner.results)}/{len(jobs)} jobs "
            f"finished (deadlock?)"
        )
    if verify:
        for result in runner.results:
            if result.outputs != golden_outputs(result.spec):
                raise SimulationError(
                    f"job {result.spec.label} produced wrong output"
                )

    bus = design[info.bus_name]
    makespan_ns = max(r.end_ns for r in runner.results)
    metrics: Dict[str, object] = {
        "makespan_us": makespan_ns / 1e3,
        "jobs": len(runner.results),
        "mean_job_latency_us": runner.total_latency_ns / len(runner.results) / 1e3,
        "bus_utilization": bus.monitor.utilization(sim.now),
        "bus_data_words": bus.monitor.words_without_tag("config"),
        "bus_config_words": bus.monitor.words_by_tag("config"),
    }
    gates = accelerator_gate_counts(accels)
    if tech_name == "asic":
        metrics.update(
            switches=0,
            fetch_misses=0,
            prefetch_hits=0,
            reconfig_time_us=0.0,
            reconfig_overhead_fraction=0.0,
            area_um2=architecture_area_um2(accels, asic_tech=ASIC),
            fabric_gates=sum(gates.values()),
            flexible=False,
            area_saving_vs_static_fabric=0.0,
        )
    else:
        drcf = design[info.drcf_name]
        s = drcf.stats.summary()
        tech = preset(tech_name)
        # Dynamic sharing sizes the fabric for the *largest* context; the
        # flexible alternative without dynamic reconfiguration needs the
        # *sum* of all contexts resident (a statically configured fabric) —
        # that ratio is the paper's area argument for run-time sharing.
        dynamic_area = architecture_area_um2(
            accels, asic_tech=ASIC, fabric_tech=tech, folded=accels
        )
        static_fabric_area = tech.fabric_area_um2(sum(gates.values()))
        metrics.update(
            switches=s["switches"],
            fetch_misses=s["fetch_misses"],
            prefetch_hits=s["prefetch_hits"],
            reconfig_time_us=s["reconfig_time_ns"] / 1e3,
            reconfig_overhead_fraction=s["reconfig_overhead_fraction"],
            area_um2=dynamic_area,
            area_static_fabric_um2=static_fabric_area,
            area_saving_vs_static_fabric=1.0 - dynamic_area / static_fabric_area,
            fabric_gates=drcf.largest_context_gates(),
            flexible=True,
        )
        energy = PowerModel(tech).drcf_total(drcf, sim.now)
        metrics["energy_mj"] = energy.total_j * 1e3
        if prefetcher is not None:
            metrics["prefetch_requests"] = prefetcher.requests_issued
    return metrics


def evaluate_robustness(params: Dict[str, object]) -> Dict[str, object]:
    """Throughput *and* dependability of one design point.

    Runs :func:`evaluate_architecture` for the performance metrics, then a
    seeded fault campaign (:mod:`repro.faults`) under the design point's
    ``recovery`` preset, and merges both metric sets — the row feeding the
    throughput-vs-coverage Pareto front (faster recovery policies cost
    makespan; none at all costs coverage).

    Extra recognized parameters: ``recovery`` (preset name, default
    ``"retry"``), ``fault_trials`` (default 8), ``fault_seed`` (defaults
    to ``seed``), ``fault_workers`` (default 1).  ``tech`` must be a
    reconfigurable preset — a dedicated-logic design point has no
    configuration path to attack.
    """
    from ..faults import CampaignScenario, run_campaign

    tech_name = str(params.get("tech", "virtex2pro"))
    if tech_name == "asic":
        raise KeyError("evaluate_robustness needs a reconfigurable tech preset")
    metrics = evaluate_architecture(params)
    seed = int(params.get("seed", 42))
    scenario = CampaignScenario(
        name=f"dse-{tech_name}",
        accels=tuple(params.get("accels", DEFAULT_ACCELS)),
        tech=tech_name,
        n_frames=int(params.get("n_frames", 2)),
        workload=str(params.get("workload", "interleaved")),
        workload_seed=seed,
        bus_protocol=str(params.get("bus_protocol", "split")),
    )
    report = run_campaign(
        scenario,
        trials=int(params.get("fault_trials", 8)),
        seed=int(params.get("fault_seed", seed)),
        recovery=str(params.get("recovery", "retry")),
        workers=int(params.get("fault_workers", 1)),
    )
    metrics.update(
        recovery=report.recovery,
        fault_trials=report.trials,
        fault_coverage=report.coverage if report.coverage is not None else 1.0,
        sdc_rate=report.counts["sdc"] / report.trials,
        hang_rate=report.counts["hang"] / report.trials,
        masked_rate=report.counts["masked"] / report.trials,
        mttr_us=(report.mttr_ns / 1e3) if report.mttr_ns is not None else 0.0,
        recovery_overhead=report.recovery_overhead
        if report.recovery_overhead is not None
        else 0.0,
    )
    return metrics


# The inner campaign is byte-identical for any worker count, so the worker
# knob must not split the evaluation cache (see repro.dse.cache).
evaluate_robustness.cache_exclude = ("fault_workers",)
