"""Result tables.

Plain-text tables and CSV emission for the experiment harness: every bench
regenerates its figure/table by printing one of these.
"""

from __future__ import annotations

import csv
import io
from typing import Dict, List, Optional, Sequence

from .explorer import DsePoint


def _union_columns(rows: Sequence[Dict[str, object]]) -> List[str]:
    """Ordered union of keys across *all* rows (first-seen order).

    Heterogeneous rows are the norm, not the exception — error rows grow
    an ``error`` key, ASIC points lack reconfiguration metrics — so
    deriving columns from ``rows[0]`` alone silently drops data.
    """
    columns: Dict[str, None] = {}
    for row in rows:
        for key in row:
            columns.setdefault(key)
    return list(columns)


def _fmt(value: object, precision: int = 3) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value != 0 and (abs(value) >= 1e6 or abs(value) < 1e-3):
            return f"{value:.{precision}e}"
        return f"{value:.{precision}f}"
    return str(value)


def format_table(
    rows: Sequence[Dict[str, object]],
    columns: Optional[Sequence[str]] = None,
    *,
    title: Optional[str] = None,
    precision: int = 3,
) -> str:
    """Render dictionaries as an aligned text table."""
    if not rows:
        return f"{title}\n(no rows)" if title else "(no rows)"
    if columns is None:
        columns = _union_columns(rows)
    cells = [[_fmt(row.get(col, ""), precision) for col in columns] for row in rows]
    widths = [
        max(len(str(col)), *(len(cell[i]) for cell in cells))
        for i, col in enumerate(columns)
    ]
    lines: List[str] = []
    if title:
        lines.append(title)
    header = " | ".join(str(col).ljust(w) for col, w in zip(columns, widths))
    lines.append(header)
    lines.append("-+-".join("-" * w for w in widths))
    for cell in cells:
        lines.append(" | ".join(value.ljust(w) for value, w in zip(cell, widths)))
    return "\n".join(lines)


def points_to_rows(
    points: Sequence[DsePoint],
    param_keys: Sequence[str],
    metric_keys: Sequence[str],
) -> List[Dict[str, object]]:
    """Flatten DSE points into table rows (failed points show the error)."""
    rows: List[Dict[str, object]] = []
    for point in points:
        row: Dict[str, object] = {key: point.params.get(key, "") for key in param_keys}
        if point.ok:
            for key in metric_keys:
                row[key] = point.metrics.get(key, "")
        else:
            row["error"] = point.error
        rows.append(row)
    return rows


def format_points(
    points: Sequence[DsePoint],
    param_keys: Sequence[str],
    metric_keys: Sequence[str],
    *,
    title: Optional[str] = None,
) -> str:
    """Table rendering of DSE points."""
    rows = points_to_rows(points, param_keys, metric_keys)
    columns = list(param_keys) + list(metric_keys)
    if any("error" in row for row in rows):
        columns.append("error")
    return format_table(rows, columns, title=title)


def to_csv(rows: Sequence[Dict[str, object]], columns: Optional[Sequence[str]] = None) -> str:
    """Serialize rows as CSV text."""
    if not rows:
        return ""
    if columns is None:
        columns = _union_columns(rows)
    out = io.StringIO()
    writer = csv.DictWriter(
        out, fieldnames=list(columns), extrasaction="ignore", restval=""
    )
    writer.writeheader()
    for row in rows:
        writer.writerow(row)
    return out.getvalue()


def write_csv(
    path: str, rows: Sequence[Dict[str, object]], columns: Optional[Sequence[str]] = None
) -> None:
    """Write rows to a CSV file."""
    with open(path, "w", encoding="utf-8", newline="") as fh:
        fh.write(to_csv(rows, columns))
