"""Partitioning heuristics (paper Section 5.1 "rules of thumb").

The paper declines to automate partitioning (deferring to ref [5]) but
states three rules of thumb a designer can apply without compilation/
profiling tooling:

1. "If the application has several roughly same sized hardware
   accelerators that are not used in the same time or at their full
   capacity, a dynamically reconfigurable block may be a more optimized
   solution than a hardwired logic block."
2. "If the application has some parts in which specification changes are
   foreseeable, the implementation choice may be reconfigurable hardware."
3. "If there are foreseeable plans for new generations of application, the
   parts that will change should be implemented with reconfigurable
   hardware."

:func:`recommend_candidates` encodes them over per-block profiles, which
can be measured (:func:`profiles_from_run`) from a baseline simulation —
the profiling-driven arm of the ADRIATIC flow.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple


@dataclass
class BlockProfile:
    """Per-functional-block facts feeding the partitioning rules."""

    name: str
    gates: int
    #: Fraction of total time the block was computing (from profiling).
    utilization: float
    #: Peak fraction of blocks in this group active simultaneously —
    #: 0 means strictly time-multiplexed use.
    concurrency: float = 0.0
    #: Rule 2 flag: standard/spec changes foreseeable.
    spec_change_expected: bool = False
    #: Rule 3 flag: block will change in next product generation.
    next_generation_planned: bool = False


@dataclass
class PartitionRecommendation:
    """The designer-facing outcome of applying the rules of thumb."""

    candidates: List[str]
    rationale: Dict[str, List[str]] = field(default_factory=dict)
    rejected: Dict[str, str] = field(default_factory=dict)

    def reason(self, name: str) -> List[str]:
        return self.rationale.get(name, [])


def recommend_candidates(
    profiles: Sequence[BlockProfile],
    *,
    size_ratio_limit: float = 4.0,
    utilization_limit: float = 0.5,
    concurrency_limit: float = 0.1,
) -> PartitionRecommendation:
    """Apply the three rules of thumb to block profiles.

    Rule 1 requires at least two blocks of comparable size (within
    ``size_ratio_limit``), each under ``utilization_limit`` busy and with
    concurrency below ``concurrency_limit``.  Rules 2–3 are flag-driven
    and independent of sizing.
    """
    rationale: Dict[str, List[str]] = {p.name: [] for p in profiles}
    rejected: Dict[str, str] = {}

    # Rule 1: find the largest group of same-sized, time-multiplexed,
    # under-utilized blocks.
    eligible = [
        p
        for p in profiles
        if p.utilization <= utilization_limit and p.concurrency <= concurrency_limit
    ]
    rule1_group: List[BlockProfile] = []
    for anchor in eligible:
        group = [
            p
            for p in eligible
            if max(p.gates, anchor.gates) <= size_ratio_limit * min(p.gates, anchor.gates)
        ]
        if len(group) > len(rule1_group):
            rule1_group = group
    if len(rule1_group) >= 2:
        for p in rule1_group:
            rationale[p.name].append(
                "rule1: same-sized accelerators not used at the same time "
                f"(utilization {p.utilization:.0%}, concurrency {p.concurrency:.0%})"
            )

    for p in profiles:
        if p.spec_change_expected:
            rationale[p.name].append("rule2: specification changes foreseeable")
        if p.next_generation_planned:
            rationale[p.name].append("rule3: next product generation planned")

    candidates = [p.name for p in profiles if rationale[p.name]]
    for p in profiles:
        if not rationale[p.name]:
            if p.utilization > utilization_limit:
                rejected[p.name] = f"utilization {p.utilization:.0%} too high to share"
            elif p.concurrency > concurrency_limit:
                rejected[p.name] = f"runs concurrently with peers ({p.concurrency:.0%})"
            else:
                rejected[p.name] = "no rule matched (size mismatch with peers)"
    return PartitionRecommendation(
        candidates=candidates, rationale=rationale, rejected=rejected
    )


def profiles_from_run(
    accel_stats: Dict[str, Tuple[int, float]],
    window_ns: float,
    *,
    flags: Optional[Dict[str, Dict[str, bool]]] = None,
) -> List[BlockProfile]:
    """Build profiles from measured data.

    ``accel_stats`` maps block name → (gates, busy_time_ns).  On the
    single-CPU driver all invocations serialize, so measured concurrency is
    zero; ``flags`` may add the rule 2/3 designer knowledge per block.
    """
    if window_ns <= 0:
        raise ValueError("window must be positive")
    out: List[BlockProfile] = []
    for name, (gates, busy_ns) in accel_stats.items():
        block_flags = (flags or {}).get(name, {})
        out.append(
            BlockProfile(
                name=name,
                gates=gates,
                utilization=min(1.0, busy_ns / window_ns),
                concurrency=0.0,
                spec_change_expected=bool(block_flags.get("spec_change_expected", False)),
                next_generation_planned=bool(block_flags.get("next_generation_planned", False)),
            )
        )
    return out
