"""Blocking channels: FIFO, mutex and semaphore.

These are the ``sc_fifo`` / ``sc_mutex`` / ``sc_semaphore`` analogues.  All
blocking operations are generator methods used with ``yield from`` inside
thread processes::

    yield from fifo.put(item)
    item = yield from fifo.get()
    yield from mutex.lock()
    ...
    mutex.unlock()

The mutex records its current owner process name, which the deadlock
analyzer uses to reconstruct wait-for chains (paper Section 5.4,
limitation 3).
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Deque, Generic, List, Optional, TypeVar

from .errors import SimulationError
from .event import Event

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .simulator import Simulator

T = TypeVar("T")


class Fifo(Generic[T]):
    """A bounded FIFO with blocking put/get.

    ``capacity=None`` gives an unbounded FIFO (put never blocks).
    """

    def __init__(self, sim: "Simulator", capacity: Optional[int] = 16, name: str = "fifo") -> None:
        if capacity is not None and capacity <= 0:
            raise ValueError("fifo capacity must be positive or None")
        self.sim = sim
        self.name = name
        self.capacity = capacity
        self._items: Deque[T] = deque()
        self._data_written = Event(sim, f"{name}.data_written")
        self._data_read = Event(sim, f"{name}.data_read")

    def __len__(self) -> int:
        return len(self._items)

    @property
    def is_full(self) -> bool:
        return self.capacity is not None and len(self._items) >= self.capacity

    @property
    def is_empty(self) -> bool:
        return not self._items

    def nb_put(self, item: T) -> bool:
        """Non-blocking put; returns False when full."""
        if self.is_full:
            return False
        self._items.append(item)
        self._data_written.notify_delta()
        return True

    def nb_get(self) -> Optional[T]:
        """Non-blocking get; returns None when empty."""
        if not self._items:
            return None
        item = self._items.popleft()
        self._data_read.notify_delta()
        return item

    def put(self, item: T):
        """Blocking put (generator; use with ``yield from``)."""
        while self.is_full:
            yield self._data_read
        self._items.append(item)
        self._data_written.notify_delta()

    def get(self):
        """Blocking get (generator; use with ``yield from``). Returns the item."""
        while not self._items:
            yield self._data_written
        item = self._items.popleft()
        self._data_read.notify_delta()
        return item


class Mutex:
    """A mutual-exclusion lock with FIFO granting and owner tracking."""

    def __init__(self, sim: "Simulator", name: str = "mutex") -> None:
        self.sim = sim
        self.name = name
        self._locked = False
        #: Name of the owning process/agent (caller-supplied label).
        self.owner: Optional[str] = None
        self._released = Event(sim, f"{name}.released")
        self._wait_queue: List[str] = []
        self.contention_count = 0

    @property
    def locked(self) -> bool:
        return self._locked

    @property
    def waiters(self) -> List[str]:
        """Labels of agents currently queued for the lock."""
        return list(self._wait_queue)

    def try_lock(self, owner: str = "?") -> bool:
        """Non-blocking acquire."""
        if self._locked:
            return False
        self._locked = True
        self.owner = owner
        return True

    def lock(self, owner: str = "?"):
        """Blocking acquire (generator; use with ``yield from``)."""
        if self._locked:
            self.contention_count += 1
            self._wait_queue.append(owner)
            try:
                while self._locked:
                    yield self._released
            finally:
                self._wait_queue.remove(owner)
        self._locked = True
        self.owner = owner

    def unlock(self) -> None:
        """Release; the longest-waiting blocked acquirer wins the next grab."""
        if not self._locked:
            raise SimulationError(f"mutex {self.name} unlocked while not locked")
        self._locked = False
        self.owner = None
        self._released.notify()  # immediate: FIFO of waiters resumes in order


class Semaphore:
    """A counting semaphore with blocking wait."""

    def __init__(self, sim: "Simulator", initial: int, name: str = "semaphore") -> None:
        if initial < 0:
            raise ValueError("semaphore initial value must be >= 0")
        self.sim = sim
        self.name = name
        self._count = initial
        self._posted = Event(sim, f"{name}.posted")

    @property
    def count(self) -> int:
        return self._count

    def try_wait(self) -> bool:
        """Non-blocking decrement."""
        if self._count <= 0:
            return False
        self._count -= 1
        return True

    def wait(self):
        """Blocking decrement (generator; use with ``yield from``)."""
        while self._count <= 0:
            yield self._posted
        self._count -= 1

    def post(self) -> None:
        """Increment and wake one waiter."""
        self._count += 1
        self._posted.notify()
