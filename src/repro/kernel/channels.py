"""Blocking channels: FIFO, mutex and semaphore.

These are the ``sc_fifo`` / ``sc_mutex`` / ``sc_semaphore`` analogues.  All
blocking operations are generator methods used with ``yield from`` inside
thread processes::

    yield from fifo.put(item)
    item = yield from fifo.get()
    yield from mutex.lock()
    ...
    mutex.unlock()

The mutex records its current owner process name, which the deadlock
analyzer uses to reconstruct wait-for chains (paper Section 5.4,
limitation 3).
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Deque, Generic, List, Optional, TypeVar

from .errors import SimulationError
from .event import Event

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .simulator import Simulator

T = TypeVar("T")


class Fifo(Generic[T]):
    """A bounded FIFO with blocking put/get.

    ``capacity=None`` gives an unbounded FIFO (put never blocks).
    """

    def __init__(self, sim: "Simulator", capacity: Optional[int] = 16, name: str = "fifo") -> None:
        if capacity is not None and capacity <= 0:
            raise ValueError("fifo capacity must be positive or None")
        self.sim = sim
        self.name = name
        self.capacity = capacity
        self._items: Deque[T] = deque()
        self._data_written = Event(sim, f"{name}.data_written")
        self._data_read = Event(sim, f"{name}.data_read")

    def __len__(self) -> int:
        return len(self._items)

    @property
    def is_full(self) -> bool:
        return self.capacity is not None and len(self._items) >= self.capacity

    @property
    def is_empty(self) -> bool:
        return not self._items

    def nb_put(self, item: T) -> bool:
        """Non-blocking put; returns False when full."""
        if self.is_full:
            return False
        self._items.append(item)
        self._data_written.notify_delta()
        return True

    def nb_get(self) -> Optional[T]:
        """Non-blocking get; returns None when empty."""
        if not self._items:
            return None
        item = self._items.popleft()
        self._data_read.notify_delta()
        return item

    def put(self, item: T):
        """Blocking put (generator; use with ``yield from``)."""
        while self.is_full:
            yield self._data_read
        self._items.append(item)
        self._data_written.notify_delta()

    def get(self):
        """Blocking get (generator; use with ``yield from``). Returns the item."""
        while not self._items:
            yield self._data_written
        item = self._items.popleft()
        self._data_read.notify_delta()
        return item


class _MutexWaiter:
    """One queued acquirer: its label, private grant event, and grant flag.

    A token per waiter (rather than a shared released-event plus label list)
    makes the hand-off race-free: ``unlock`` wakes exactly one waiter, and a
    killed waiter removes *its own* token even when several waiters share a
    label.
    """

    __slots__ = ("label", "event", "granted")

    def __init__(self, label: str, event: Event) -> None:
        self.label = label
        self.event = event
        self.granted = False


class Mutex:
    """A mutual-exclusion lock with FIFO granting and owner tracking.

    ``unlock`` hands the lock *directly* to the longest waiter: ownership
    transfers before any other process runs, so a ``try_lock`` issued
    between release and the waiter's resumption cannot barge in.
    """

    def __init__(self, sim: "Simulator", name: str = "mutex") -> None:
        self.sim = sim
        self.name = name
        self._locked = False
        #: Name of the owning process/agent (caller-supplied label).
        self.owner: Optional[str] = None
        self._released = Event(sim, f"{name}.released")
        self._wait_queue: List[_MutexWaiter] = []
        self._seq = 0
        self.contention_count = 0

    @property
    def locked(self) -> bool:
        return self._locked

    @property
    def waiters(self) -> List[str]:
        """Labels of agents currently queued for the lock."""
        return [token.label for token in self._wait_queue]

    def try_lock(self, owner: str = "?") -> bool:
        """Non-blocking acquire."""
        if self._locked:
            return False
        self._locked = True
        self.owner = owner
        return True

    def lock(self, owner: str = "?"):
        """Blocking acquire (generator; use with ``yield from``)."""
        if not self._locked:
            self._locked = True
            self.owner = owner
            return
        self.contention_count += 1
        self._seq += 1
        token = _MutexWaiter(owner, Event(self.sim, f"{self.name}.grant.{self._seq}"))
        self._wait_queue.append(token)
        try:
            while not token.granted:
                yield token.event
        except GeneratorExit:
            if token.granted:
                # Granted but the waiter died before resuming: pass it on.
                self.unlock()
            else:
                self._wait_queue.remove(token)
            raise

    def unlock(self) -> None:
        """Release; ownership passes directly to the longest waiter."""
        if not self._locked:
            raise SimulationError(f"mutex {self.name} unlocked while not locked")
        if self._wait_queue:
            token = self._wait_queue.pop(0)
            token.granted = True
            # The lock stays held across the hand-off; only the owner label
            # changes.  No instant exists where try_lock could succeed.
            self.owner = token.label
            token.event.notify()  # immediate: winner resumes in this phase
            return
        self._locked = False
        self.owner = None
        self._released.notify()  # observers (deadlock probes) see the release


class Semaphore:
    """A counting semaphore with blocking wait."""

    def __init__(self, sim: "Simulator", initial: int, name: str = "semaphore") -> None:
        if initial < 0:
            raise ValueError("semaphore initial value must be >= 0")
        self.sim = sim
        self.name = name
        self._count = initial
        self._posted = Event(sim, f"{name}.posted")

    @property
    def count(self) -> int:
        return self._count

    def try_wait(self) -> bool:
        """Non-blocking decrement."""
        if self._count <= 0:
            return False
        self._count -= 1
        return True

    def wait(self):
        """Blocking decrement (generator; use with ``yield from``)."""
        while self._count <= 0:
            yield self._posted
        self._count -= 1

    def post(self) -> None:
        """Increment and wake one waiter."""
        self._count += 1
        self._posted.notify()
