"""The discrete-event scheduler.

Implements the SystemC 2.0 scheduling algorithm:

1. *Evaluation phase*: run every runnable process.  Immediate notifications
   make further processes runnable within the same phase.
2. *Update phase*: apply pending primitive-channel updates (e.g. committed
   signal writes), which may post delta notifications.
3. *Delta notification phase*: fire pending delta notifications; if any
   process became runnable, start a new delta cycle at the same time.
4. *Timed notification phase*: otherwise advance simulated time to the
   earliest pending timed action and fire everything scheduled there.

The scheduler is fully deterministic: runnable processes execute in FIFO
order of becoming runnable, timed actions in (time, insertion sequence)
order, and update/delta queues in insertion order.

Hot-path design notes: every per-event cost here is O(1).  Update-queue
dedup uses the channels' ``_update_requested`` flag (the update-request
protocol) instead of a membership scan; cancelled delta notifications
leave stale queue entries that the events skip on pop (see
:mod:`repro.kernel.event`); and the current time is kept both as an
integer femtosecond count (for arithmetic) and as a cached
:class:`SimTime` (for observation) so the inner loop never re-wraps it.

``trace_hooks`` fire once per *finished instant* — after the last delta
cycle at a timestamp has settled and before time advances — so delta-only
activity (e.g. everything happening at t=0) is traced too.  Activity a
hook itself injects runs at the same instant but does not re-fire the
hooks: "once per finished instant" is a hard guarantee, and the injected
effects are visible when the hooks fire at the next instant.

With ``specialize=True`` (the default) :meth:`Simulator.initialize` asks
:mod:`repro.kernel.specialize` for an elaboration-time static schedule:
signals the dataflow analysis proves single-writer with method-only
readers commit immediately (skipping the update-queue round trip and
delta notification), and the sensitive method processes run in a
topologically ranked wave inside the same evaluation phase.  Designs the
analysis cannot fully resolve fall back wholesale to the generic path.
"""

from __future__ import annotations

import heapq
import time
from collections import deque
from typing import Callable, Dict, List, Optional

from .errors import DeadlockError, ElaborationError, ProcessError, SchedulingError
from .event import Event
from .process import Process, ProcessState, ThreadProcess
from .simtime import SimTime, ZERO_TIME


class TimedAction:
    """A cancellable callback scheduled at an absolute simulation time."""

    __slots__ = ("time_fs", "seq", "callback", "cancelled")

    def __init__(self, time_fs: int, seq: int, callback: Callable[[], None]) -> None:
        self.time_fs = time_fs
        self.seq = seq
        self.callback = callback
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent the callback from firing (the heap entry is skipped)."""
        self.cancelled = True

    def __lt__(self, other: "TimedAction") -> bool:
        return (self.time_fs, self.seq) < (other.time_fs, other.seq)


class SimulatorStats:
    """Bookkeeping counters exposed by :attr:`Simulator.stats`."""

    __slots__ = (
        "process_executions",
        "delta_cycles",
        "timed_activations",
        "signal_updates",
        "specialized_commits",
        "register_commits",
        "compiled_thread_waits",
    )

    def __init__(self) -> None:
        self.process_executions = 0
        self.delta_cycles = 0
        self.timed_activations = 0
        self.signal_updates = 0
        #: Signal commits performed by the specialized fast path, i.e.
        #: update-queue round trips and delta notifications the static
        #: schedule proved unnecessary and skipped.  Always 0 on the
        #: generic path, so ``signal_updates + specialized_commits`` is
        #: comparable across the two schedulers.
        self.specialized_commits = 0
        #: Commits of register-class signals on the specialized fast path:
        #: the staged update-queue round trip is kept (so readers in the
        #: same instant still see the old value) but the proven-pointless
        #: notification scan is skipped.  A subset of ``signal_updates``,
        #: reported separately; always 0 on the generic path.
        self.register_commits = 0
        #: Waits armed through the compiled-thread fast path
        #: (:class:`repro.kernel.specialize._CompiledThread`): timed waits
        #: served by a pooled heap entry and event waits served by the
        #: direct-dispatch slot, both skipping the generic WaitHandle
        #: machinery.  Always 0 on the generic path.
        self.compiled_thread_waits = 0

    def as_dict(self) -> Dict[str, int]:
        """The counters as a plain dictionary (for reports)."""
        return {
            "process_executions": self.process_executions,
            "delta_cycles": self.delta_cycles,
            "timed_activations": self.timed_activations,
            "signal_updates": self.signal_updates,
            "specialized_commits": self.specialized_commits,
            "register_commits": self.register_commits,
            "compiled_thread_waits": self.compiled_thread_waits,
        }


class Simulator:
    """Owns the event queues, the module hierarchy, and the clock of record.

    Typical use::

        sim = Simulator()
        top = MySoc("top", sim=sim)
        sim.run(until=us(100))
    """

    def __init__(self, name: str = "sim", *, specialize: bool = True) -> None:
        self.name = name
        self._now_fs = 0
        self._now_obj = ZERO_TIME  # cached SimTime mirror of _now_fs
        self._running = False
        self._started = False
        self._stop_requested = False
        self._seq = 0
        self._runnable: deque = deque()
        self._timed_heap: List[TimedAction] = []
        self._delta_events: List[Event] = []
        self._update_queue: List[object] = []
        self._processes: List[Process] = []
        self._top_modules: List[object] = []
        self._end_of_elaboration_hooks: List[Callable[[], None]] = []
        # -- elaboration-time specialization (kernel/specialize.py) --------
        #: Master switch: ``specialize=False`` forces the generic scheduler
        #: regardless of what the static analysis could prove.
        self._specialize_enabled = specialize
        #: True while the static fast path is active.  Runtime events the
        #: plan could not foresee (dynamic spawn, hooks armed mid-run)
        #: revert the whole design via :meth:`_despecialize`.
        self._specialized = False
        #: Rank-indexed buckets of method processes marked runnable by
        #: fast signal commits; drained in rank order by the evaluation
        #: phase.  Empty list on the generic path.
        self._pending_buckets: List[List[Process]] = []
        self._pending_count = 0
        #: Signals whose class was swapped to a fast variant (for revert).
        self._fast_signals: List[object] = []
        #: Thread processes whose class was swapped to the compiled-thread
        #: fast variant (for revert).
        self._compiled_threads: List[object] = []
        #: The :class:`~repro.analysis.dataflow.SchedulePlan` built at
        #: :meth:`initialize`, or None (specialization disabled / analysis
        #: layer unavailable).
        self.schedule_plan = None
        #: Why the design fell back to the generic scheduler (empty when
        #: specialized, or when specialization was never attempted).
        self.specialize_fallback_reasons: List[str] = []
        self.stats = SimulatorStats()
        #: Called with the current time once per finished instant (after the
        #: last delta cycle at that timestamp, before time advances).
        self.trace_hooks: List[Callable[[SimTime], None]] = []
        #: True when the last run was stopped by the wall-clock watchdog.
        self.watchdog_fired = False
        #: Post-mortem attached by the watchdog (an
        #: :class:`~repro.analysis.deadlock.DeadlockReport` when the
        #: analysis layer is importable, else None).
        self.watchdog_report = None
        #: The process being executed by the evaluation phase right now
        #: (None between processes and outside run()).  Lets channel hooks
        #: — e.g. :attr:`Signal.write_hook` — attribute an action to the
        #: process that performed it.
        self.current_process: Optional[Process] = None

    # -- time --------------------------------------------------------------
    @property
    def now(self) -> SimTime:
        """Current simulated time.

        Lazily cached: the scheduler advances the integer ``_now_fs`` only,
        and the :class:`SimTime` wrapper is built at most once per instant,
        on first observation.
        """
        now = self._now_obj
        if now._fs != self._now_fs:
            now = self._now_obj = SimTime.from_fs(self._now_fs)
        return now

    @property
    def delta_count(self) -> int:
        """Total delta cycles executed so far."""
        return self.stats.delta_cycles

    # -- construction -------------------------------------------------------
    def event(self, name: str = "event") -> Event:
        """Create a kernel event owned by this simulator."""
        return Event(self, name)

    def register_top(self, module: object) -> None:
        """Record a top-level module (called by :class:`Module`)."""
        self._top_modules.append(module)

    def register_process(self, process: Process) -> None:
        if self._started:
            # Dynamic process: the static schedule cannot account for it,
            # so the whole design reverts to the generic scheduler.
            if self._specialized:
                self._despecialize(f"dynamic process {process.name!r} registered after start")
            self._processes.append(process)
            process.start()
        else:
            self._processes.append(process)

    def spawn(self, name: str, fn: Callable[[], object], daemon: bool = False) -> ThreadProcess:
        """Create (and, if the simulation has started, start) a thread process."""
        process = ThreadProcess(self, name, fn)
        process.daemon = daemon
        self.register_process(process)
        return process

    def add_end_of_elaboration_hook(self, hook: Callable[[], None]) -> None:
        """Register a callable run once, just before the first evaluation."""
        if self._started:
            raise ElaborationError("simulation already started")
        self._end_of_elaboration_hooks.append(hook)

    # -- kernel-internal scheduling hooks -------------------------------------
    def _next_seq(self) -> int:
        self._seq += 1
        return self._seq

    def _make_runnable(self, process: Process) -> None:
        self._runnable.append(process)

    def _schedule_timed_fs(self, time_fs: int, callback: Callable[[], None]) -> TimedAction:
        if time_fs < self._now_fs:
            raise SchedulingError("cannot schedule in the past")
        self._seq += 1
        action = TimedAction(time_fs, self._seq, callback)
        heapq.heappush(self._timed_heap, action)
        return action

    def schedule(self, delay: SimTime, callback: Callable[[], None]) -> TimedAction:
        """Schedule ``callback`` to run ``delay`` from now (kernel context)."""
        return self._schedule_timed_fs(self._now_fs + delay.femtoseconds, callback)

    def _enqueue_update(self, channel: object) -> None:
        """Set a channel's update-request flag and queue it (no dedup check).

        The single writer of the flag protocol: callers —
        :meth:`request_update` and flag-carrying channels such as
        :class:`~repro.kernel.Signal` — test ``_update_requested`` first
        and delegate here, so the set-flag-and-append step exists exactly
        once.
        """
        channel._update_requested = True  # type: ignore[attr-defined]
        self._update_queue.append(channel)

    def request_update(self, channel: object) -> None:
        """Queue a primitive channel for the next update phase (idempotent).

        ``channel`` must expose an ``_update()`` method.  Channels
        implementing the update-request protocol carry an
        ``_update_requested`` flag, making the dedup O(1); the flag is set
        here (or by the channel itself) and cleared by the update phase
        just before ``_update()`` runs.  Flagless objects (e.g. with
        ``__slots__``) fall back to a queue membership scan — by identity,
        not ``__eq__``: two distinct channels that happen to compare equal
        must still both be updated.
        """
        flag = getattr(channel, "_update_requested", None)
        if flag:
            return
        if flag is None:
            try:
                self._enqueue_update(channel)
            except AttributeError:
                if any(queued is channel for queued in self._update_queue):
                    return
                self._update_queue.append(channel)
        else:
            self._enqueue_update(channel)

    def _process_terminated(self, process: Process) -> None:
        # Kept in the list for post-mortem inspection; nothing to do here.
        pass

    # -- running --------------------------------------------------------------
    def initialize(self) -> None:
        """Run end-of-elaboration hooks and make all processes runnable.

        With specialization enabled (the default), this is also where the
        static schedule is built and applied: elaboration is complete, no
        process has run yet, so the dataflow analysis sees the final design.
        """
        if self._started:
            return
        self._started = True
        for hook in self._end_of_elaboration_hooks:
            hook()
        if self._specialize_enabled:
            from .specialize import try_specialize

            try_specialize(self)
        for process in self._processes:
            process.start()

    def _despecialize(self, reason: str = "runtime fallback trigger") -> None:
        """Revert the specialized fast path to the generic scheduler.

        Safe to call mid-run: pending static-schedule marks are flushed
        into the runnable queue (in rank order) and the fast signal
        classes are swapped back, so the current instant completes with
        generic semantics.  Idempotent.
        """
        if not self._specialized:
            return
        from .specialize import revert

        revert(self, reason)

    def stop(self) -> None:
        """Request the scheduler to stop after the current process returns."""
        self._stop_requested = True

    def run(
        self,
        until: Optional[SimTime] = None,
        *,
        max_deltas_per_instant: int = 100_000,
        error_on_deadlock: bool = False,
        max_wall_s: Optional[float] = None,
    ) -> SimTime:
        """Run the simulation.

        Parameters
        ----------
        until:
            Stop once simulated time would exceed this duration (measured
            from time zero, like ``sc_start``).  ``None`` runs to event
            starvation.
        max_deltas_per_instant:
            Guard against non-advancing delta loops (combinational cycles).
        error_on_deadlock:
            If true and the run ends by starvation while thread processes
            are still blocked, raise :class:`DeadlockError`.
        max_wall_s:
            Wall-clock watchdog: stop the run (instead of hanging forever)
            once this many real seconds have elapsed, setting
            :attr:`watchdog_fired` and attaching a post-mortem to
            :attr:`watchdog_report`.  Livelocks the simulated-time bound
            cannot catch — unbounded polling loops, runaway traffic
            generators — terminate cleanly this way.  ``None`` (the
            default) disables the check entirely.

        Returns the simulation time at which the run stopped.
        """
        if self._running:
            raise SchedulingError("run() is not reentrant")
        self.initialize()
        self._running = True
        self._stop_requested = False
        self.watchdog_fired = False
        wall_deadline = (
            time.monotonic() + max_wall_s if max_wall_s is not None else None
        )
        until_fs = until.femtoseconds if until is not None else None
        deltas_this_instant = 0
        instant_active = False  # anything happened at the current instant?
        hooks_fired = False  # trace hooks already ran at the current instant?
        runnable = self._runnable
        timed_heap = self._timed_heap
        stats = self.stats
        heappush, heappop = heapq.heappush, heapq.heappop
        try:
            while not self._stop_requested:
                # Evaluation phase.
                executed = False
                while True:
                    while runnable:
                        process = runnable.popleft()
                        executed = True
                        stats.process_executions += 1
                        self.current_process = process
                        process._execute()
                        if (
                            wall_deadline is not None
                            and (stats.process_executions & 0xFF) == 0
                            and time.monotonic() >= wall_deadline
                        ):
                            self._trip_watchdog(max_wall_s)
                        if self._stop_requested:
                            break
                    if not self._pending_count or self._stop_requested:
                        break
                    # Static-schedule drain: method processes marked by fast
                    # signal commits run in topological rank order, so each
                    # combinational wave settles in a single glitch-free
                    # pass (a rank-r method only marks ranks > r, which this
                    # same forward sweep then visits).  The plan proved these
                    # methods never call next_trigger/kill, so the state and
                    # pending-trigger bookkeeping of MethodProcess._execute
                    # is skipped and _fn is called directly.
                    executed = True
                    ran = 0
                    terminated = ProcessState.TERMINATED
                    for bucket in self._pending_buckets:
                        if bucket:
                            for process in bucket:
                                process._queued = False
                                if process.state is terminated:
                                    continue  # killed between initialize and run
                                ran += 1
                                self.current_process = process
                                try:
                                    process._fn()
                                except Exception as exc:
                                    process._terminate()
                                    raise ProcessError(
                                        process.name,
                                        f"{type(exc).__name__}: {exc}",
                                    ) from exc
                            bucket.clear()
                    stats.process_executions += ran
                    self._pending_count = 0
                if self._stop_requested:
                    break
                if executed:
                    instant_active = True
                # Update phase.
                if self._update_queue:
                    instant_active = True
                    updates, self._update_queue = self._update_queue, []
                    for channel in updates:
                        stats.signal_updates += 1
                        try:
                            channel._update_requested = False  # type: ignore[attr-defined]
                        except AttributeError:
                            pass  # flagless channel (scan-deduped)
                        channel._update()  # type: ignore[attr-defined]
                # Delta notification phase.
                if self._delta_events:
                    instant_active = True
                    events, self._delta_events = self._delta_events, []
                    for event in events:
                        event._delta_fire()
                if runnable:
                    stats.delta_cycles += 1
                    deltas_this_instant += 1
                    if deltas_this_instant > max_deltas_per_instant:
                        raise SchedulingError(
                            f"more than {max_deltas_per_instant} delta cycles at "
                            f"time {self.now}; combinational loop?"
                        )
                    continue
                if self._update_queue or self._delta_events:
                    # Updates/deltas may still be pending even without
                    # runnable processes; loop again before advancing time.
                    continue
                # The instant has settled: trace it, then advance time.
                if instant_active:
                    instant_active = False
                    if self.trace_hooks and not hooks_fired:
                        # Once per finished instant: activity a hook injects
                        # re-settles at this instant but is NOT re-traced
                        # (its effects are visible at the next firing).
                        hooks_fired = True
                        now_obj = self.now
                        for hook in self.trace_hooks:
                            hook(now_obj)
                        if (
                            runnable
                            or self._update_queue
                            or self._delta_events
                            or self._pending_count
                        ):
                            continue  # a hook injected activity at this instant
                # Timed notification phase.
                deltas_this_instant = 0
                if (
                    wall_deadline is not None
                    and (stats.timed_activations & 0xFF) == 0
                    and time.monotonic() >= wall_deadline
                ):
                    self._trip_watchdog(max_wall_s)
                    break
                next_action = self._pop_next_timed()
                if next_action is None:
                    break  # starvation
                if until_fs is not None and next_action.time_fs > until_fs:
                    heappush(timed_heap, next_action)
                    self._now_fs = until_fs
                    break
                self._now_fs = now_fs = next_action.time_fs
                hooks_fired = False
                stats.timed_activations += 1
                instant_active = True
                next_action.callback()
                # Fire everything else scheduled at the same instant.
                while timed_heap and timed_heap[0].time_fs == now_fs:
                    action = heappop(timed_heap)
                    if action.cancelled:
                        continue
                    stats.timed_activations += 1
                    action.callback()
        finally:
            self._running = False
            self.current_process = None
        if error_on_deadlock and not self._stop_requested:
            blocked = self.blocked_processes()
            if blocked:
                names = ", ".join(p.name for p in blocked)
                raise DeadlockError(
                    f"simulation starved at {self.now} with blocked processes: {names}"
                )
        return self.now

    def _trip_watchdog(self, max_wall_s: float) -> None:
        """Stop the run: the wall-clock budget is exhausted.

        Attaches a post-mortem (:func:`repro.analysis.deadlock.watchdog_report`)
        when the analysis layer is importable; the kernel itself stays
        dependency-free, so the import is lazy and failure-tolerant.
        """
        self.watchdog_fired = True
        self._stop_requested = True
        try:
            from ..analysis.deadlock import watchdog_report
        except ImportError:  # kernel used standalone, no analysis layer
            self.watchdog_report = None
        else:
            self.watchdog_report = watchdog_report(self, max_wall_s)

    def _pop_next_timed(self) -> Optional[TimedAction]:
        timed_heap = self._timed_heap
        while timed_heap:
            action = heapq.heappop(timed_heap)
            if not action.cancelled:
                return action
        return None

    # -- diagnosis ---------------------------------------------------------------
    def blocked_processes(self) -> List[Process]:
        """Thread processes currently suspended on a wait.

        After a run ends by starvation, any entry here whose wait is not a
        timeout indicates a process that can never resume — the raw material
        for deadlock analysis (:mod:`repro.analysis.deadlock`).
        """
        return [
            p
            for p in self._processes
            if isinstance(p, ThreadProcess) and p.state is ProcessState.WAITING
        ]

    def pending_timed_count(self) -> int:
        """Number of not-yet-cancelled timed actions still queued."""
        return sum(1 for a in self._timed_heap if not a.cancelled)

    def __repr__(self) -> str:
        return f"Simulator({self.name!r}, now={self.now})"
