"""Hierarchical modules (the ``sc_module`` analogue).

A module owns child modules, processes, signals and ports, and has a
hierarchical name (``top.bus.arbiter``).  Subclasses build their contents in
``__init__`` after calling ``super().__init__``::

    class HwAcc(Module):
        def __init__(self, name, parent=None, sim=None):
            super().__init__(name, parent=parent, sim=sim)
            self.clk = Port(self, name="clk")
            self.mst_port = Port(self, BusMasterIf, name="mst_port")
            self.add_thread(self.main)

        def main(self):
            yield from self.mst_port.read(0x1000)

Exactly one of ``parent`` / ``sim`` must locate the simulator: a root module
receives ``sim=``, children receive ``parent=``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Dict, Iterable, List, Optional

from .errors import ElaborationError
from .event import Event
from .process import MethodProcess, ThreadProcess

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .simulator import Simulator


class Module:
    """A node in the design hierarchy."""

    def __init__(
        self,
        name: str,
        parent: Optional["Module"] = None,
        sim: Optional["Simulator"] = None,
    ) -> None:
        if not name or "." in name:
            raise ElaborationError(f"invalid module name {name!r}")
        if parent is None and sim is None:
            raise ElaborationError(
                f"module {name!r} needs a parent module or an explicit sim="
            )
        self.basename = name
        self.parent = parent
        self._children: Dict[str, Module] = {}
        self._processes: List[object] = []
        if parent is not None:
            self.sim: "Simulator" = parent.sim
            parent._add_child(self)
            self.full_name = f"{parent.full_name}.{name}"
        else:
            assert sim is not None
            self.sim = sim
            self.full_name = name
            sim.register_top(self)

    # -- hierarchy -----------------------------------------------------------
    def _add_child(self, child: "Module") -> None:
        if child.basename in self._children:
            raise ElaborationError(
                f"{self.full_name} already has a child named {child.basename!r}"
            )
        self._children[child.basename] = child

    @property
    def children(self) -> List["Module"]:
        """Direct child modules, in instantiation order."""
        return list(self._children.values())

    def child(self, name: str) -> "Module":
        """Look up a direct child by base name."""
        try:
            return self._children[name]
        except KeyError:
            raise ElaborationError(
                f"{self.full_name} has no child {name!r}; "
                f"children: {sorted(self._children)}"
            ) from None

    def descendants(self) -> Iterable["Module"]:
        """Depth-first iteration over all modules below this one."""
        for child in self._children.values():
            yield child
            yield from child.descendants()

    # -- processes -------------------------------------------------------------
    def add_thread(
        self,
        fn: Callable[[], object],
        name: Optional[str] = None,
        daemon: bool = False,
    ) -> ThreadProcess:
        """Declare an SC_THREAD-style process running ``fn``.

        ``daemon`` marks server loops expected to wait forever, which the
        deadlock analyzer then ignores.
        """
        pname = f"{self.full_name}.{name or fn.__name__}"
        process = ThreadProcess(self.sim, pname, fn)
        process.daemon = daemon
        self._processes.append(process)
        self.sim.register_process(process)
        return process

    def add_method(
        self,
        fn: Callable[[], None],
        sensitivity: Iterable[Event] = (),
        name: Optional[str] = None,
        initialize: bool = True,
    ) -> MethodProcess:
        """Declare an SC_METHOD-style process with a static sensitivity list."""
        pname = f"{self.full_name}.{name or fn.__name__}"
        process = MethodProcess(self.sim, pname, fn, initialize=initialize)
        process.add_sensitivity(*sensitivity)
        self._processes.append(process)
        self.sim.register_process(process)
        return process

    @property
    def processes(self) -> List[object]:
        """Processes declared by this module, in declaration order."""
        return list(self._processes)

    def event(self, name: str = "event") -> Event:
        """Create an event named under this module."""
        return Event(self.sim, f"{self.full_name}.{name}")

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.full_name!r})"


def processes_of(module: Module) -> List[object]:
    """All processes declared by ``module`` (the process half of the
    introspection API, alongside ``ports_of`` and ``signals_of``)."""
    return list(module._processes)
