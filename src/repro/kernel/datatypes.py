"""Fixed-width hardware datatypes (the ``sc_uint``/``sc_int`` analogue).

:class:`BitVector` models an N-bit unsigned register with wrapping modular
arithmetic, bit and slice access, concatenation, and a two's-complement
signed view.  Accelerator models use it for bit-exact fixed-point
arithmetic so the executable specification and the mapped model compute
identical results (a property the paper's flow depends on: the system
specification doubles as the test bench for every later refinement).
"""

from __future__ import annotations

from typing import Union


class BitVector:
    """An immutable N-bit unsigned integer with hardware semantics.

    Arithmetic wraps modulo ``2**width`` and returns a :class:`BitVector`
    of the same width as the left operand (SystemC's ``sc_uint`` behaviour
    for same-width operands).  Comparison and hashing follow the unsigned
    value *and* the width.
    """

    __slots__ = ("width", "_value")

    def __init__(self, value: Union[int, "BitVector"], width: int) -> None:
        if width <= 0:
            raise ValueError(f"width must be positive, got {width}")
        if isinstance(value, BitVector):
            value = value._value
        self.width = width
        self._value = value & ((1 << width) - 1)

    # -- views -----------------------------------------------------------
    @property
    def unsigned(self) -> int:
        """The value interpreted as an unsigned integer."""
        return self._value

    @property
    def signed(self) -> int:
        """The value interpreted as two's-complement signed."""
        sign_bit = 1 << (self.width - 1)
        return self._value - (1 << self.width) if self._value & sign_bit else self._value

    @classmethod
    def from_signed(cls, value: int, width: int) -> "BitVector":
        """Encode a (possibly negative) integer as two's complement."""
        return cls(value, width)

    def __int__(self) -> int:
        return self._value

    def __index__(self) -> int:
        return self._value

    # -- bit access --------------------------------------------------------
    def __getitem__(self, key: Union[int, slice]) -> "BitVector":
        if isinstance(key, int):
            idx = self._norm_index(key)
            return BitVector((self._value >> idx) & 1, 1)
        if isinstance(key, slice):
            if key.step is not None:
                raise ValueError("BitVector slices do not support a step")
            # Verilog-style [high:low] inclusive range on bit indices.
            high = self.width - 1 if key.start is None else key.start
            low = 0 if key.stop is None else key.stop
            if high < low:
                raise ValueError(f"slice [{high}:{low}] has high < low")
            self._norm_index(high)
            self._norm_index(low)
            n = high - low + 1
            return BitVector((self._value >> low) & ((1 << n) - 1), n)
        raise TypeError(f"invalid index {key!r}")

    def _norm_index(self, idx: int) -> int:
        if idx < 0:
            idx += self.width
        if not 0 <= idx < self.width:
            raise IndexError(f"bit index {idx} out of range for width {self.width}")
        return idx

    def set_bit(self, idx: int, value: int) -> "BitVector":
        """A copy with bit ``idx`` set to ``value`` (0/1)."""
        idx = self._norm_index(idx)
        if value:
            return BitVector(self._value | (1 << idx), self.width)
        return BitVector(self._value & ~(1 << idx), self.width)

    def concat(self, other: "BitVector") -> "BitVector":
        """``{self, other}`` — self becomes the high bits."""
        return BitVector((self._value << other.width) | other._value, self.width + other.width)

    def resize(self, width: int) -> "BitVector":
        """Zero-extend or truncate to ``width`` bits."""
        return BitVector(self._value, width)

    def resize_signed(self, width: int) -> "BitVector":
        """Sign-extend or truncate to ``width`` bits."""
        return BitVector.from_signed(self.signed, width)

    def popcount(self) -> int:
        """Number of set bits."""
        return bin(self._value).count("1")

    def reversed_bits(self) -> "BitVector":
        """Bit-reversed copy (used by the FFT address generator)."""
        v = 0
        x = self._value
        for _ in range(self.width):
            v = (v << 1) | (x & 1)
            x >>= 1
        return BitVector(v, self.width)

    # -- arithmetic -----------------------------------------------------------
    def _coerce(self, other: Union[int, "BitVector"]) -> int:
        if isinstance(other, BitVector):
            return other._value
        if isinstance(other, int):
            return other
        return NotImplemented  # type: ignore[return-value]

    def _wrap(self, value: int) -> "BitVector":
        return BitVector(value, self.width)

    def __add__(self, other):
        rhs = self._coerce(other)
        return NotImplemented if rhs is NotImplemented else self._wrap(self._value + rhs)

    __radd__ = __add__

    def __sub__(self, other):
        rhs = self._coerce(other)
        return NotImplemented if rhs is NotImplemented else self._wrap(self._value - rhs)

    def __rsub__(self, other):
        lhs = self._coerce(other)
        return NotImplemented if lhs is NotImplemented else self._wrap(lhs - self._value)

    def __mul__(self, other):
        rhs = self._coerce(other)
        return NotImplemented if rhs is NotImplemented else self._wrap(self._value * rhs)

    __rmul__ = __mul__

    def __and__(self, other):
        rhs = self._coerce(other)
        return NotImplemented if rhs is NotImplemented else self._wrap(self._value & rhs)

    __rand__ = __and__

    def __or__(self, other):
        rhs = self._coerce(other)
        return NotImplemented if rhs is NotImplemented else self._wrap(self._value | rhs)

    __ror__ = __or__

    def __xor__(self, other):
        rhs = self._coerce(other)
        return NotImplemented if rhs is NotImplemented else self._wrap(self._value ^ rhs)

    __rxor__ = __xor__

    def __invert__(self) -> "BitVector":
        return self._wrap(~self._value)

    def __lshift__(self, n: int) -> "BitVector":
        return self._wrap(self._value << n)

    def __rshift__(self, n: int) -> "BitVector":
        return self._wrap(self._value >> n)

    def __neg__(self) -> "BitVector":
        return self._wrap(-self._value)

    # -- comparison ---------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if isinstance(other, BitVector):
            return self.width == other.width and self._value == other._value
        if isinstance(other, int):
            return self._value == other
        return NotImplemented

    def __lt__(self, other):
        rhs = self._coerce(other)
        return NotImplemented if rhs is NotImplemented else self._value < rhs

    def __le__(self, other):
        rhs = self._coerce(other)
        return NotImplemented if rhs is NotImplemented else self._value <= rhs

    def __gt__(self, other):
        rhs = self._coerce(other)
        return NotImplemented if rhs is NotImplemented else self._value > rhs

    def __ge__(self, other):
        rhs = self._coerce(other)
        return NotImplemented if rhs is NotImplemented else self._value >= rhs

    def __hash__(self) -> int:
        return hash((self.width, self._value))

    def __repr__(self) -> str:
        return f"BitVector(0x{self._value:0{(self.width + 3) // 4}x}, width={self.width})"


def uint(value: int, width: int) -> BitVector:
    """Shorthand constructor for an unsigned :class:`BitVector`."""
    return BitVector(value, width)


def sint(value: int, width: int) -> BitVector:
    """Shorthand constructor encoding a signed integer in two's complement."""
    return BitVector.from_signed(value, width)


def saturate_signed(value: int, width: int) -> int:
    """Clamp ``value`` into the signed N-bit range (DSP-style saturation)."""
    hi = (1 << (width - 1)) - 1
    lo = -(1 << (width - 1))
    return max(lo, min(hi, value))
