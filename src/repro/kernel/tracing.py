"""Waveform tracing.

:class:`VcdTracer` writes a minimal Value Change Dump file for the signals
registered with it, mirroring ``sc_trace``.  :class:`TimelineRecorder`
collects (time, label, payload) rows in memory for the utilization/timeline
reports used by the experiment harness.
"""

from __future__ import annotations

import io
from typing import Dict, List, Optional, Tuple

from .signal import Signal
from .simtime import SimTime


class VcdTracer:
    """Records signal changes and serializes them as a VCD document.

    Values are written as integers (scalar for 1-bit booleans, vector
    otherwise).  Times are in the VCD header's timescale of 1 ps.
    """

    _ID_ALPHABET = "!\"#$%&'()*+,-./0123456789:;<=>?@ABCDEFGHIJKLMNOPQRSTUVWXYZ"

    def __init__(self, design_name: str = "repro") -> None:
        self.design_name = design_name
        self._signals: List[Tuple[Signal, str, int, str]] = []  # (sig, name, width, id)
        self._changes: List[Tuple[int, str, object, int]] = []  # (time_ps, id, value, width)

    def trace(self, signal: Signal, name: Optional[str] = None, width: int = 1) -> None:
        """Register ``signal``; subsequent committed changes are recorded."""
        ident = self._make_id(len(self._signals))
        label = name or signal.name
        self._signals.append((signal, label, width, ident))
        # Record the initial value at time zero.
        self._changes.append((0, ident, signal.read(), width))
        signal.on_update(
            lambda t, v, ident=ident, width=width: self._changes.append(
                (int(t.to_ps()), ident, v, width)
            )
        )

    @classmethod
    def _make_id(cls, index: int) -> str:
        chars = []
        index += 1
        while index:
            index, rem = divmod(index - 1, len(cls._ID_ALPHABET))
            chars.append(cls._ID_ALPHABET[rem])
        return "".join(chars)

    @property
    def change_count(self) -> int:
        """Number of recorded value changes (including initial values)."""
        return len(self._changes)

    def dumps(self) -> str:
        """The VCD document as a string."""
        out = io.StringIO()
        out.write(f"$date reproduction run $end\n")
        out.write(f"$version repro VcdTracer $end\n")
        out.write("$timescale 1ps $end\n")
        out.write(f"$scope module {self.design_name} $end\n")
        for _sig, label, width, ident in self._signals:
            safe = label.replace(" ", "_")
            out.write(f"$var wire {width} {ident} {safe} $end\n")
        out.write("$upscope $end\n$enddefinitions $end\n")
        current_time = None
        for time_ps, ident, value, width in sorted(self._changes, key=lambda c: c[0]):
            if time_ps != current_time:
                out.write(f"#{time_ps}\n")
                current_time = time_ps
            out.write(self._format_change(ident, value, width))
        return out.getvalue()

    @staticmethod
    def _format_change(ident: str, value: object, width: int) -> str:
        # Mask to the declared width: VCD has no sign, so negative values
        # are emitted as two's complement (``f"{iv:b}"`` would produce an
        # illegal ``b-101`` token that waveform viewers reject).
        iv = int(value) & ((1 << width) - 1)  # type: ignore[arg-type]
        if width == 1:
            return f"{1 if iv else 0}{ident}\n"
        return f"b{iv:b} {ident}\n"

    def dump(self, path: str) -> None:
        """Write the VCD document to ``path``."""
        with open(path, "w", encoding="ascii") as fh:
            fh.write(self.dumps())


class TimelineRecorder:
    """Collects labelled intervals for activity/utilization reports.

    Used by the DRCF instrumentation and the bus monitor to produce the
    per-context activity timelines reported by the experiment harness.
    """

    def __init__(self) -> None:
        self._rows: List[Tuple[int, int, str, str]] = []  # (start_fs, end_fs, track, label)

    def record(self, start: SimTime, end: SimTime, track: str, label: str) -> None:
        """Record one interval on ``track``."""
        if end < start:
            raise ValueError("interval end precedes start")
        self._rows.append((start.femtoseconds, end.femtoseconds, track, label))

    @property
    def rows(self) -> List[Tuple[SimTime, SimTime, str, str]]:
        """All intervals, sorted by start time."""
        return [
            (SimTime.from_fs(s), SimTime.from_fs(e), track, label)
            for s, e, track, label in sorted(self._rows)
        ]

    def track_busy_time(self, track: str) -> SimTime:
        """Total busy time on ``track``, with overlapping intervals merged.

        Overlaps are common (e.g. pipelined bus transactions on one
        master's track); naively summing lengths would double-count the
        shared span and report utilizations above 100%.
        """
        intervals = sorted((s, e) for s, e, t, _ in self._rows if t == track)
        total = 0
        merged_end = None
        for s, e in intervals:
            if merged_end is None or s > merged_end:
                total += e - s
                merged_end = e
            elif e > merged_end:
                total += e - merged_end
                merged_end = e
        return SimTime.from_fs(total)

    def to_csv(self) -> str:
        """The intervals as CSV text (start_ns, end_ns, track, label)."""
        lines = ["start_ns,end_ns,track,label"]
        for start, end, track, label in self.rows:
            lines.append(f"{start.to_ns()},{end.to_ns()},{track},{label}")
        return "\n".join(lines) + "\n"

    def render_ascii(self, width: int = 72) -> str:
        """A human-readable fixed-width rendering of the timeline."""
        if not self._rows:
            return "(empty timeline)"
        t_max = max(e for _, e, _, _ in self._rows) or 1
        tracks: Dict[str, List[Tuple[int, int, str]]] = {}
        for s, e, track, label in sorted(self._rows):
            tracks.setdefault(track, []).append((s, e, label))
        lines = []
        for track, intervals in tracks.items():
            row = [" "] * width
            for s, e, label in intervals:
                a = min(width - 1, int(s / t_max * width))
                b = min(width, max(a + 1, int(e / t_max * width)))
                mark = label[0] if label else "#"
                for i in range(a, b):
                    row[i] = mark
            lines.append(f"{track:>18} |{''.join(row)}|")
        return "\n".join(lines)
