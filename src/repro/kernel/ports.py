"""Ports, exports and interfaces (the ``sc_port`` / ``sc_interface`` analogue).

An *interface* is an abstract base class of methods; a *channel* or module
implements it.  A *port* is a typed hole in a module that is bound to an
interface implementation during elaboration; the owning module calls the
interface's methods through the port.  This is precisely the mechanism the
paper's DRCF transformation manipulates: it reads a candidate module's ports
and implemented interfaces, and re-creates them on the generated DRCF
component.

Method calls delegate through the port::

    self.mst_port = Port(self, BusMasterIf, name="mst_port")
    ...
    data = yield from self.mst_port.read(addr)
"""

from __future__ import annotations

from abc import ABC
from typing import TYPE_CHECKING, List, Optional, Tuple, Type

from .errors import BindingError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .module import Module


class Interface(ABC):
    """Marker base class for all interfaces (``sc_interface``)."""


def implemented_interfaces(obj: object) -> List[Type[Interface]]:
    """All :class:`Interface` subclasses implemented by ``obj``'s class.

    Returns the most-derived interface classes only (direct ABC bases are
    filtered if a subclass of theirs is also present), in MRO order.  Used
    by the DRCF transformation's module-analysis phase.
    """
    from .module import Module  # local import to avoid a cycle at import time

    found: List[Type[Interface]] = []
    for klass in type(obj).__mro__:
        if (
            issubclass(klass, Interface)
            and klass is not Interface
            and not issubclass(klass, Module)  # implementations are not interfaces
            and klass not in found
        ):
            found.append(klass)
    # Drop base interfaces that are superclasses of another found interface.
    leaves = [
        k for k in found if not any(other is not k and issubclass(other, k) for other in found)
    ]
    return leaves


class Port:
    """A typed, bindable reference to an interface implementation.

    Parameters
    ----------
    owner:
        The module the port belongs to.
    iface:
        Optional interface class the bound object must implement.
    name:
        Port name (used in diagnostics and by the transformation tool).
    optional:
        Declare the port as allowed to stay unbound (an ``sc_port`` with a
        zero minimum binding count).  The static lint pass (REP201) skips
        optional ports; resolving one while unbound still raises.
    """

    def __init__(
        self,
        owner: "Module",
        iface: Optional[Type[Interface]] = None,
        name: str = "port",
        optional: bool = False,
    ) -> None:
        self.owner = owner
        self.iface = iface
        self.name = name
        self.optional = optional
        self._bound: Optional[object] = None
        if not hasattr(owner, "_ports"):
            owner._ports = []  # type: ignore[attr-defined]
        owner._ports.append(self)  # type: ignore[attr-defined]

    @property
    def full_name(self) -> str:
        return f"{self.owner.full_name}.{self.name}"

    @property
    def is_bound(self) -> bool:
        return self._bound is not None

    def bind(self, impl: object) -> None:
        """Bind the port to ``impl`` (a channel, module or another port)."""
        if self._bound is not None:
            raise BindingError(f"port {self.full_name} is already bound")
        if isinstance(impl, Port):
            # Hierarchical binding: delegate to the other port's binding,
            # resolved lazily at first access.
            self._bound = impl
            return
        if self.iface is not None and not isinstance(impl, self.iface):
            raise BindingError(
                f"port {self.full_name} requires {self.iface.__name__}, "
                f"got {type(impl).__name__}"
            )
        self._bound = impl

    def unbind(self) -> None:
        """Remove the current binding (used by model transformations)."""
        self._bound = None

    def resolve(self) -> object:
        """The final interface implementation, following port-to-port chains."""
        impl = self._bound
        if impl is None:
            raise BindingError(f"port {self.full_name} is not bound")
        while isinstance(impl, Port):
            if impl._bound is None:
                raise BindingError(
                    f"port {self.full_name} chains to unbound port {impl.full_name}"
                )
            impl = impl._bound
        if self.iface is not None and not isinstance(impl, self.iface):
            raise BindingError(
                f"port {self.full_name} resolved to {type(impl).__name__}, "
                f"which does not implement {self.iface.__name__}"
            )
        return impl

    def binding_chain(self) -> "Tuple[List[Port], Optional[object]]":
        """The port-to-port chain from this port to its implementation.

        Returns ``(ports, impl)`` where ``ports`` starts with this port and
        lists every port traversed, and ``impl`` is the terminal interface
        implementation — or ``None`` when the chain ends at an unbound port
        or revisits a port (a binding cycle).  Unlike :meth:`resolve` this
        never raises and never loops, which is what the static lint pass
        (REP201/REP202) needs to describe broken bindings.
        """
        chain: List[Port] = [self]
        seen = {id(self)}
        impl = self._bound
        while isinstance(impl, Port):
            if id(impl) in seen:
                return chain, None
            chain.append(impl)
            seen.add(id(impl))
            impl = impl._bound
        return chain, impl

    def __call__(self) -> object:
        """SystemC-style access: ``port()`` returns the bound interface."""
        return self.resolve()

    def __getattr__(self, attr: str):
        # Delegate interface-method access: ``port.read(...)``.
        if attr.startswith("_"):
            raise AttributeError(attr)
        return getattr(self.resolve(), attr)

    def __repr__(self) -> str:
        target = "unbound" if self._bound is None else type(self._bound).__name__
        iface = self.iface.__name__ if self.iface else "any"
        return f"Port({self.full_name!r}, iface={iface}, bound={target})"


def ports_of(module: "Module") -> List[Port]:
    """All ports declared by ``module``, in declaration order.

    This is the port half of the paper's module-analysis phase.
    """
    return list(getattr(module, "_ports", []))
