"""Elaboration-time kernel specialization (the static scheduling fast path).

At :meth:`Simulator.initialize`, once elaboration is complete and before
any process has run, the design is handed to the dataflow analysis
(:func:`repro.analysis.dataflow.build_schedule_plan`).  When the analysis
proves a signal has exactly one writer and only method-process readers
that are statically sensitive to it, the signal's class is swapped to a
fast variant whose ``write``:

* commits the value in place (no update-queue round trip, no delta
  notification, no extra delta cycle), and
* marks the dependent method processes directly into rank-indexed
  buckets, which the evaluation phase drains in topological order —
  one glitch-free pass per combinational wave.

Since PR 7 the plan also admits clocked, port-bound designs: the
control-flow layer (:mod:`repro.analysis.cfg`) proves clock-toggle
threads periodic single-instant writers, methods sensitive only to such
signals become rank-0 *sequential* methods, and nets touched exclusively
by sequential methods become *registers* (:class:`_RegisterSignal`) —
they keep the staged update-queue round trip so same-instant readers see
the old value, but skip the notification scan, counting the commit in
``stats.register_commits``.

This is the pymtl3/GT-HDL lesson applied to this kernel: pay for analysis
once at elaboration instead of running dynamic checks on every call.

The contract is **wholesale per design, never per signal** for
constructs that poison the analysis itself: an aliased write, a
free-function process, a dynamic ``spawn``, an armed
``write_hook``/``fault_hook``, ``--confirm`` instrumentation all reject
the whole design, which then runs on the generic scheduler unchanged.
Failed *admission proofs* are gentler: a multi-writer net, an unproven
or CFG-unresolved writer, a degenerate clock or a pulse writer only
leaves that signal on the generic protocol, with the reason recorded in
``plan.exclusions``.  Runtime events the plan could not
foresee — a process spawned mid-run, a hook armed after initialize, a
trace callback attached — revert the live simulation the same way via
:func:`revert`, flushing any pending static marks into the ordinary
runnable queue so the current instant completes with generic semantics.

Observable equivalence: the two paths produce byte-identical traces
(per-instant trace hooks, VCD, golden stats) and equal
``timed_activations``; ``delta_cycles``/``signal_updates``/
``process_executions`` may shrink on the fast path, and every skipped
commit round trip is reported in ``stats.specialized_commits`` (or
``stats.register_commits`` for the scan-skipping register commits)
rather than silently folded in.  ``Simulator(specialize=False)`` forces the
generic path unconditionally.
"""

from __future__ import annotations

from heapq import heappush
from typing import TYPE_CHECKING, List

from .event import Event
from .process import (
    _READY,
    _RUNNING,
    _TERMINATED,
    _WAITING,
    TIMEOUT,
    AnyOf,
    ProcessError,
    ThreadProcess,
)
from .signal import Signal
from .simtime import SimTime
from .simulator import TimedAction

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .simulator import Simulator


class _SilentSignal(Signal):
    """Fast variant for a proven single-writer signal nothing observes.

    ``__slots__ = ()`` keeps the memory layout identical to
    :class:`Signal`, so instances are specialized (and reverted) by plain
    class swap.
    """

    __slots__ = ()

    def write(self, value):
        if self.write_hook is not None:
            # Armed after initialize: the contract is wholesale fallback.
            self.sim._despecialize(f"write hook armed on {self.name} after initialize")
            Signal.write(self, value)
            return
        current = self._current
        self._next = value
        if value is current or value == current:
            return  # equal-value write absorbed, as on the generic path
        self._current = value
        self.sim.stats.specialized_commits += 1


class _ChainedSignal(Signal):
    """Fast variant for a single-writer signal driving chained methods.

    A committing write marks the dependent method processes (from the
    ``_dependents`` table installed by :func:`apply_plan`) straight into
    the simulator's rank buckets; the evaluation phase's forward sweep
    then runs the whole combinational wave in this same phase.
    """

    __slots__ = ()

    def write(self, value):
        if self.write_hook is not None:
            self.sim._despecialize(f"write hook armed on {self.name} after initialize")
            Signal.write(self, value)
            return
        current = self._current
        self._next = value
        if value is current or value == current:
            return
        self._current = value
        sim = self.sim
        sim.stats.specialized_commits += 1
        vc_deps, pos_deps, neg_deps = self._dependents
        buckets = sim._pending_buckets
        marked = 0
        for proc in vc_deps:
            if not proc._queued:
                proc._queued = True
                buckets[proc._rank].append(proc)
                marked += 1
        # Same edge semantics (and the same elif) as Signal._update.
        if not current and value:
            for proc in pos_deps:
                if not proc._queued:
                    proc._queued = True
                    buckets[proc._rank].append(proc)
                    marked += 1
        elif current and not value:
            for proc in neg_deps:
                if not proc._queued:
                    proc._queued = True
                    buckets[proc._rank].append(proc)
                    marked += 1
        if marked:
            sim._pending_count += marked


class _RegisterSignal(Signal):
    """Fast variant for a register-style signal between clocked methods.

    Unlike the silent/chained variants the write stays *staged*: readers
    in the same instant must keep seeing the old value (that is what makes
    it a register), so the update-queue round trip is preserved verbatim.
    What the plan proved unnecessary is the notification side — no process
    is sensitive to the signal, nothing waits on or notifies its events,
    nothing traces it — so ``_update`` commits the value and skips the
    event scan entirely.  Skipped scans are counted in
    ``stats.register_commits``.
    """

    __slots__ = ()

    def write(self, value):
        if self.write_hook is not None:
            self.sim._despecialize(f"write hook armed on {self.name} after initialize")
            Signal.write(self, value)
            return
        self._next = value
        if not self._update_requested:
            self.sim._enqueue_update(self)

    def _update(self):
        # Same identity-before-equality absorb as Signal._update.
        old = self._current
        new = self._next
        if new is old or new == old:
            return
        self._current = new
        self.sim.stats.register_commits += 1


class _CompiledThread(ThreadProcess):
    """Fast variant for a thread the rendezvous admission pass proved.

    ``__slots__ = ()`` keeps the layout identical to
    :class:`ThreadProcess`, so admission and revert are plain class swaps.

    The compiled runtime drives the thread's wait-state machine without
    the generic ``WaitHandle`` protocol:

    * a timed wait reuses one pooled :class:`TimedAction` per thread —
      no per-wait allocation, no ``arm_timeout``/``_on_timeout``
      indirection — pushed with exactly the sequence number the generic
      path would have drawn;
    * a single-event wait arms the event's direct-dispatch slot
      (``Event._direct``) when no dynamic waiter precedes it, so the
      notifying site resumes the thread straight from ``_trigger`` with
      no waiter-dict traffic;
    * an ``AnyOf`` composite (with or without timeout) arms the generic
      ``WaitHandle`` exactly as :meth:`ThreadProcess._suspend_on` would —
      byte-identical arming, skipping only the dispatch — so
      ``Clock``-style pause/timeout threads stay admissible instead of
      forcing a per-wait fallback.

    Order preservation is the correctness argument: both fast waits make
    the thread runnable at the same queue positions (same heap ordering,
    same resume point between the static and dynamic scans) the generic
    protocol would have used, so observable traces are byte-identical by
    construction.  Anything the runtime does not recognise — an ``AllOf``
    composite, an event that already has dynamic waiters, a
    static wait — falls back to :meth:`ThreadProcess._suspend_on` for
    that wait only; the admission proof
    (:func:`repro.analysis.cfg.thread_rendezvous_profile`) exists to keep
    such fallbacks rare and the exclusions diagnosable.  Fast waits are
    counted in ``stats.compiled_thread_waits``.
    """

    __slots__ = ()

    def _execute(self) -> None:
        if self.state is _TERMINATED:
            return
        self.state = _RUNNING
        gen = self._gen
        if gen is None:
            gen = self._fn()
            if not hasattr(gen, "send"):
                # Plain callable: ran to completion already.
                self._terminate()
                return
            self._gen = gen
            send_value = None
        else:
            send_value = self._resume_value
            self._resume_value = None
        try:
            spec = gen.send(send_value)
        except StopIteration:
            self._terminate()
            return
        except Exception as exc:
            self._terminate()
            raise ProcessError(self.name, f"{type(exc).__name__}: {exc}") from exc
        cls = spec.__class__
        if cls is SimTime:
            delay_fs = spec._fs
            if delay_fs >= 0:
                sim = self.sim
                sim.stats.compiled_thread_waits += 1
                self.state = _WAITING
                self._wait_spec = spec
                handle = self._wait_handle
                action = handle.timed_action
                sim._seq += 1
                if action is None:
                    action = TimedAction(
                        sim._now_fs + delay_fs, sim._seq, self._fast_timed_resume
                    )
                    handle.timed_action = action
                else:
                    # Pool invariant: the action left the heap when it fired
                    # (a compiled timed wait only ends that way), so it can
                    # be re-armed in place.
                    action.time_fs = sim._now_fs + delay_fs
                    action.seq = sim._seq
                    action.cancelled = False
                heappush(sim._timed_heap, action)
                self._handle = action
                return
            # Negative delay: the generic path raises the proper error.
        elif cls is Event:
            if spec._direct is None and not spec._dynamic_waiters:
                self.sim.stats.compiled_thread_waits += 1
                self.state = _WAITING
                self._wait_spec = spec
                self._handle = spec
                spec._direct = self
                return
            # A dynamic waiter registered first: the direct slot would
            # jump the queue, so take the generic protocol for this wait.
        elif cls is AnyOf:
            self.sim.stats.compiled_thread_waits += 1
            self.state = _WAITING
            handle = self._wait_handle
            handle.active = True
            handle.is_all = False
            # arm_events registers at the back of each event's dynamic
            # waiters and arm_timeout replaces the pooled fast-timed
            # action (which is always off-heap here: a fast timed wait
            # only ends by firing) — both identical to _suspend_on's
            # arming, so wake-up order is untouched.
            handle.arm_events(spec.events)
            if spec.timeout is not None:
                handle.arm_timeout(spec.timeout)
            self._wait_spec = spec
            self._handle = handle
            return
        self._suspend_on(spec)

    def _fast_timed_resume(self) -> None:
        if self.state is not _WAITING:
            return
        self._handle = None
        self._resume_value = TIMEOUT
        self.state = _READY
        self._wait_spec = None
        self.sim._runnable.append(self)

    def _direct_resume(self, event: Event) -> None:
        if self.state is not _WAITING or self._handle is not event:
            return
        self._handle = None
        self._resume_value = event
        self.state = _READY
        self._wait_spec = None
        self.sim._runnable.append(self)

    def _terminate(self) -> None:
        handle = self._handle
        if handle is not None:
            hcls = handle.__class__
            if hcls is TimedAction:
                handle.cancelled = True
                self._handle = None
            elif hcls is Event:
                if handle._direct is self:
                    handle._direct = None
                self._handle = None
            # else: a generic WaitHandle (per-wait fallback) —
            # ThreadProcess._terminate disarms it as usual.
        ThreadProcess._terminate(self)


def _live_fallback_reasons(sim: "Simulator") -> List[str]:
    """Cheap pre-analysis checks on the live design (hooks, hierarchy).

    These catch the instrumentation cases — fault-injection hooks,
    ``--confirm`` write hooks — without paying for any AST work, and stop
    at the first finding.
    """
    reasons: List[str] = []
    if not sim._top_modules:
        reasons.append("no module hierarchy (spawn-only design)")
        return reasons
    for top in sim._top_modules:
        for module in (top, *top.descendants()):
            if getattr(module, "fault_hook", None) is not None:
                reasons.append(f"fault hook armed on {module.full_name}")
                return reasons
            for value in vars(module).values():
                if getattr(value, "fault_hook", None) is not None:
                    reasons.append(f"fault hook armed inside {module.full_name}")
                    return reasons
                if isinstance(value, Signal) and value.write_hook is not None:
                    reasons.append(f"write hook armed on {value.name}")
                    return reasons
    return reasons


def try_specialize(sim: "Simulator") -> bool:
    """Attempt to specialize ``sim``; returns True when the fast path is on.

    On rejection the reasons are recorded in
    ``sim.specialize_fallback_reasons`` and the simulator is left exactly
    as the generic scheduler expects it.
    """
    reasons = sim.specialize_fallback_reasons
    live = _live_fallback_reasons(sim)
    if live:
        reasons.extend(live)
        return False
    try:
        from ..analysis.dataflow import build_schedule_plan
    except ImportError:  # kernel used standalone, no analysis layer
        reasons.append("analysis layer unavailable")
        return False
    plan = build_schedule_plan(sim)
    sim.schedule_plan = plan
    # Rendezvous admission runs independently of the signal plan: a
    # wholesale signal-side bail (blocking transport is exactly the case)
    # must not reject the threads, and vice versa.
    _admit_threads(sim, plan)
    if plan.specializable:
        apply_plan(sim, plan)
    if plan.compiled_threads:
        apply_compiled_threads(sim, plan)
    if sim._specialized:
        return True
    reasons.extend(plan.fallback_reasons)
    return False


def _admit_threads(sim: "Simulator", plan) -> None:
    """Rendezvous admission pass: prove threads for the compiled runtime.

    Every registered plain :class:`ThreadProcess` is offered to
    :func:`repro.analysis.cfg.thread_rendezvous_profile`; proven threads
    land in ``plan.compiled_threads``, rejected ones get a per-thread
    reason in ``plan.thread_exclusions`` (mirroring the per-signal
    ``exclusions`` — never a wholesale bail).
    """
    try:
        from ..analysis.cfg import thread_rendezvous_profile
    except ImportError:  # kernel used standalone, no analysis layer
        return
    for process in sim._processes:
        if process.kind != "thread" or type(process) is not ThreadProcess:
            continue
        profile = thread_rendezvous_profile(process)
        if profile.admissible:
            plan.compiled_threads.append(process)
        else:
            plan.thread_exclusions.append(f"thread {process.name}: {profile.reason}")


def apply_plan(sim: "Simulator", plan) -> None:
    """Install a :class:`SchedulePlan`: swap signal classes, set ranks."""
    for process, rank in plan.method_ranks:
        process._rank = rank
    sim._pending_buckets = [[] for _ in range(max(plan.rank_count, 1))]
    sim._pending_count = 0
    fast = sim._fast_signals
    for sig in plan.silent_signals:
        sig.__class__ = _SilentSignal
        fast.append(sig)
    for sig, deps in plan.chained_signals:
        sig._dependents = deps
        sig.__class__ = _ChainedSignal
        fast.append(sig)
    for sig in plan.register_signals:
        sig.__class__ = _RegisterSignal
        fast.append(sig)
    sim._specialized = True


def apply_compiled_threads(sim: "Simulator", plan) -> None:
    """Swap the admitted threads to the compiled runtime (class swap)."""
    tracked = sim._compiled_threads
    for thread in plan.compiled_threads:
        thread.__class__ = _CompiledThread
        tracked.append(thread)
    sim._specialized = True


def revert(sim: "Simulator", reason: str) -> None:
    """Return a specialized simulator to the generic scheduler, mid-run safe.

    Fast signal classes are swapped back and any pending static-schedule
    marks are flushed into the runnable queue in rank order (keeping their
    ``_queued`` flag, which ``_execute`` clears as usual), so the current
    instant completes with generic semantics and no activation is lost.
    """
    if not sim._specialized:
        return
    sim._specialized = False
    for sig in sim._fast_signals:
        sig.__class__ = Signal
        sig._dependents = None
    sim._fast_signals = []
    for thread in sim._compiled_threads:
        _revert_thread(thread)
    sim._compiled_threads = []
    for bucket in sim._pending_buckets:
        if bucket:
            for proc in bucket:
                if proc._queued:
                    sim._runnable.append(proc)
            bucket.clear()
    sim._pending_count = 0
    sim._pending_buckets = []
    sim.specialize_fallback_reasons.append(reason)


def _revert_thread(thread) -> None:
    """Return a compiled thread to the generic protocol, mid-wait safe.

    An in-flight fast wait is rewritten into the exact generic wait it
    mirrors, losslessly: the pooled heap entry keeps its ``(time, seq)``
    slot but is re-routed through the ``WaitHandle`` timeout path, and a
    direct event slot is re-registered at the *front* of the event's
    dynamic waiters — preserving the wake-up order the slot represented.
    """
    handle = thread._handle
    thread.__class__ = ThreadProcess
    if handle is None:
        return
    hcls = handle.__class__
    wh = thread._wait_handle
    if hcls is TimedAction:
        handle.callback = wh._on_timeout
        wh.timed_action = handle
        wh.active = True
        wh.is_all = False
        thread._handle = wh
    elif hcls is Event:
        if handle._direct is thread:
            handle._direct = None
        wh.timed_action = None  # drop the (popped) pooled action, if any
        wh.active = True
        wh.is_all = False
        wh.events.append(handle)
        rebuilt = {wh: None}
        rebuilt.update(handle._dynamic_waiters)
        handle._dynamic_waiters = rebuilt
        thread._handle = wh
    # else: a generic WaitHandle from a per-wait fallback — already the
    # generic protocol, nothing to rewrite.
