"""Elaboration-time kernel specialization (the static scheduling fast path).

At :meth:`Simulator.initialize`, once elaboration is complete and before
any process has run, the design is handed to the dataflow analysis
(:func:`repro.analysis.dataflow.build_schedule_plan`).  When the analysis
proves a signal has exactly one writer and only method-process readers
that are statically sensitive to it, the signal's class is swapped to a
fast variant whose ``write``:

* commits the value in place (no update-queue round trip, no delta
  notification, no extra delta cycle), and
* marks the dependent method processes directly into rank-indexed
  buckets, which the evaluation phase drains in topological order —
  one glitch-free pass per combinational wave.

Since PR 7 the plan also admits clocked, port-bound designs: the
control-flow layer (:mod:`repro.analysis.cfg`) proves clock-toggle
threads periodic single-instant writers, methods sensitive only to such
signals become rank-0 *sequential* methods, and nets touched exclusively
by sequential methods become *registers* (:class:`_RegisterSignal`) —
they keep the staged update-queue round trip so same-instant readers see
the old value, but skip the notification scan, counting the commit in
``stats.register_commits``.

This is the pymtl3/GT-HDL lesson applied to this kernel: pay for analysis
once at elaboration instead of running dynamic checks on every call.

The contract is **wholesale per design, never per signal** for
constructs that poison the analysis itself: an aliased write, a
free-function process, a dynamic ``spawn``, an armed
``write_hook``/``fault_hook``, ``--confirm`` instrumentation all reject
the whole design, which then runs on the generic scheduler unchanged.
Failed *admission proofs* are gentler: a multi-writer net, an unproven
or CFG-unresolved writer, a degenerate clock or a pulse writer only
leaves that signal on the generic protocol, with the reason recorded in
``plan.exclusions``.  Runtime events the plan could not
foresee — a process spawned mid-run, a hook armed after initialize, a
trace callback attached — revert the live simulation the same way via
:func:`revert`, flushing any pending static marks into the ordinary
runnable queue so the current instant completes with generic semantics.

Observable equivalence: the two paths produce byte-identical traces
(per-instant trace hooks, VCD, golden stats) and equal
``timed_activations``; ``delta_cycles``/``signal_updates``/
``process_executions`` may shrink on the fast path, and every skipped
commit round trip is reported in ``stats.specialized_commits`` (or
``stats.register_commits`` for the scan-skipping register commits)
rather than silently folded in.  ``Simulator(specialize=False)`` forces the
generic path unconditionally.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List

from .signal import Signal

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .simulator import Simulator


class _SilentSignal(Signal):
    """Fast variant for a proven single-writer signal nothing observes.

    ``__slots__ = ()`` keeps the memory layout identical to
    :class:`Signal`, so instances are specialized (and reverted) by plain
    class swap.
    """

    __slots__ = ()

    def write(self, value):
        if self.write_hook is not None:
            # Armed after initialize: the contract is wholesale fallback.
            self.sim._despecialize(f"write hook armed on {self.name} after initialize")
            Signal.write(self, value)
            return
        current = self._current
        self._next = value
        if value is current or value == current:
            return  # equal-value write absorbed, as on the generic path
        self._current = value
        self.sim.stats.specialized_commits += 1


class _ChainedSignal(Signal):
    """Fast variant for a single-writer signal driving chained methods.

    A committing write marks the dependent method processes (from the
    ``_dependents`` table installed by :func:`apply_plan`) straight into
    the simulator's rank buckets; the evaluation phase's forward sweep
    then runs the whole combinational wave in this same phase.
    """

    __slots__ = ()

    def write(self, value):
        if self.write_hook is not None:
            self.sim._despecialize(f"write hook armed on {self.name} after initialize")
            Signal.write(self, value)
            return
        current = self._current
        self._next = value
        if value is current or value == current:
            return
        self._current = value
        sim = self.sim
        sim.stats.specialized_commits += 1
        vc_deps, pos_deps, neg_deps = self._dependents
        buckets = sim._pending_buckets
        marked = 0
        for proc in vc_deps:
            if not proc._queued:
                proc._queued = True
                buckets[proc._rank].append(proc)
                marked += 1
        # Same edge semantics (and the same elif) as Signal._update.
        if not current and value:
            for proc in pos_deps:
                if not proc._queued:
                    proc._queued = True
                    buckets[proc._rank].append(proc)
                    marked += 1
        elif current and not value:
            for proc in neg_deps:
                if not proc._queued:
                    proc._queued = True
                    buckets[proc._rank].append(proc)
                    marked += 1
        if marked:
            sim._pending_count += marked


class _RegisterSignal(Signal):
    """Fast variant for a register-style signal between clocked methods.

    Unlike the silent/chained variants the write stays *staged*: readers
    in the same instant must keep seeing the old value (that is what makes
    it a register), so the update-queue round trip is preserved verbatim.
    What the plan proved unnecessary is the notification side — no process
    is sensitive to the signal, nothing waits on or notifies its events,
    nothing traces it — so ``_update`` commits the value and skips the
    event scan entirely.  Skipped scans are counted in
    ``stats.register_commits``.
    """

    __slots__ = ()

    def write(self, value):
        if self.write_hook is not None:
            self.sim._despecialize(f"write hook armed on {self.name} after initialize")
            Signal.write(self, value)
            return
        self._next = value
        if not self._update_requested:
            self.sim._enqueue_update(self)

    def _update(self):
        # Same identity-before-equality absorb as Signal._update.
        old = self._current
        new = self._next
        if new is old or new == old:
            return
        self._current = new
        self.sim.stats.register_commits += 1


def _live_fallback_reasons(sim: "Simulator") -> List[str]:
    """Cheap pre-analysis checks on the live design (hooks, hierarchy).

    These catch the instrumentation cases — fault-injection hooks,
    ``--confirm`` write hooks — without paying for any AST work, and stop
    at the first finding.
    """
    reasons: List[str] = []
    if not sim._top_modules:
        reasons.append("no module hierarchy (spawn-only design)")
        return reasons
    for top in sim._top_modules:
        for module in (top, *top.descendants()):
            if getattr(module, "fault_hook", None) is not None:
                reasons.append(f"fault hook armed on {module.full_name}")
                return reasons
            for value in vars(module).values():
                if getattr(value, "fault_hook", None) is not None:
                    reasons.append(f"fault hook armed inside {module.full_name}")
                    return reasons
                if isinstance(value, Signal) and value.write_hook is not None:
                    reasons.append(f"write hook armed on {value.name}")
                    return reasons
    return reasons


def try_specialize(sim: "Simulator") -> bool:
    """Attempt to specialize ``sim``; returns True when the fast path is on.

    On rejection the reasons are recorded in
    ``sim.specialize_fallback_reasons`` and the simulator is left exactly
    as the generic scheduler expects it.
    """
    reasons = sim.specialize_fallback_reasons
    live = _live_fallback_reasons(sim)
    if live:
        reasons.extend(live)
        return False
    try:
        from ..analysis.dataflow import build_schedule_plan
    except ImportError:  # kernel used standalone, no analysis layer
        reasons.append("analysis layer unavailable")
        return False
    plan = build_schedule_plan(sim)
    sim.schedule_plan = plan
    if not plan.specializable:
        reasons.extend(plan.fallback_reasons)
        return False
    apply_plan(sim, plan)
    return True


def apply_plan(sim: "Simulator", plan) -> None:
    """Install a :class:`SchedulePlan`: swap signal classes, set ranks."""
    for process, rank in plan.method_ranks:
        process._rank = rank
    sim._pending_buckets = [[] for _ in range(max(plan.rank_count, 1))]
    sim._pending_count = 0
    fast = sim._fast_signals
    for sig in plan.silent_signals:
        sig.__class__ = _SilentSignal
        fast.append(sig)
    for sig, deps in plan.chained_signals:
        sig._dependents = deps
        sig.__class__ = _ChainedSignal
        fast.append(sig)
    for sig in plan.register_signals:
        sig.__class__ = _RegisterSignal
        fast.append(sig)
    sim._specialized = True


def revert(sim: "Simulator", reason: str) -> None:
    """Return a specialized simulator to the generic scheduler, mid-run safe.

    Fast signal classes are swapped back and any pending static-schedule
    marks are flushed into the runnable queue in rank order (keeping their
    ``_queued`` flag, which ``_execute`` clears as usual), so the current
    instant completes with generic semantics and no activation is lost.
    """
    if not sim._specialized:
        return
    sim._specialized = False
    for sig in sim._fast_signals:
        sig.__class__ = Signal
        sig._dependents = None
    sim._fast_signals = []
    for bucket in sim._pending_buckets:
        if bucket:
            for proc in bucket:
                if proc._queued:
                    sim._runnable.append(proc)
            bucket.clear()
    sim._pending_count = 0
    sim._pending_buckets = []
    sim.specialize_fallback_reasons.append(reason)
