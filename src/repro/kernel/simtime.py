"""Simulation time.

SystemC represents time as an integer multiple of a global resolution; we do
the same with a fixed resolution of one femtosecond.  :class:`SimTime` is an
immutable value type with exact integer arithmetic, so long simulations never
accumulate floating-point drift and event ordering is fully deterministic.

Construction helpers mirror the ``sc_time`` units::

    from repro.kernel import ns, us

    t = ns(10)            # 10 nanoseconds
    t2 = t + us(1)        # exact arithmetic
    t2.to_ns()            # 1010.0
"""

from __future__ import annotations

from functools import total_ordering
from typing import Union

#: Number of femtoseconds per unit, keyed by unit name.
_UNIT_FS = {
    "fs": 1,
    "ps": 10**3,
    "ns": 10**6,
    "us": 10**9,
    "ms": 10**12,
    "s": 10**15,
}


@total_ordering
class SimTime:
    """An exact, immutable point/duration on the simulation time axis.

    Internally an integer count of femtoseconds.  Supports addition,
    subtraction, scaling by integers/floats (rounded to the resolution),
    division, and total ordering.  Durations and absolute times share this
    type, as in SystemC.
    """

    __slots__ = ("_fs",)

    def __init__(self, value: Union[int, float], unit: str = "fs") -> None:
        try:
            scale = _UNIT_FS[unit]
        except KeyError:
            raise ValueError(f"unknown time unit {unit!r}; expected one of {sorted(_UNIT_FS)}") from None
        fs = value * scale
        self._fs = int(round(fs))
        if self._fs < 0:
            raise ValueError(f"negative time not allowed: {value} {unit}")

    # -- constructors -----------------------------------------------------
    @classmethod
    def from_fs(cls, fs: int) -> "SimTime":
        """Build a :class:`SimTime` directly from an integer femtosecond count."""
        t = cls.__new__(cls)
        if fs < 0:
            raise ValueError(f"negative time not allowed: {fs} fs")
        t._fs = int(fs)
        return t

    # -- accessors ---------------------------------------------------------
    @property
    def femtoseconds(self) -> int:
        """The exact integer femtosecond count."""
        return self._fs

    def to_fs(self) -> int:
        return self._fs

    def to_ps(self) -> float:
        return self._fs / _UNIT_FS["ps"]

    def to_ns(self) -> float:
        return self._fs / _UNIT_FS["ns"]

    def to_us(self) -> float:
        return self._fs / _UNIT_FS["us"]

    def to_ms(self) -> float:
        return self._fs / _UNIT_FS["ms"]

    def to_seconds(self) -> float:
        return self._fs / _UNIT_FS["s"]

    def is_zero(self) -> bool:
        return self._fs == 0

    # -- arithmetic ---------------------------------------------------------
    def __add__(self, other: "SimTime") -> "SimTime":
        if not isinstance(other, SimTime):
            return NotImplemented
        return SimTime.from_fs(self._fs + other._fs)

    def __sub__(self, other: "SimTime") -> "SimTime":
        if not isinstance(other, SimTime):
            return NotImplemented
        if other._fs > self._fs:
            raise ValueError("SimTime subtraction would be negative")
        return SimTime.from_fs(self._fs - other._fs)

    def __mul__(self, factor: Union[int, float]) -> "SimTime":
        if not isinstance(factor, (int, float)):
            return NotImplemented
        return SimTime.from_fs(int(round(self._fs * factor)))

    __rmul__ = __mul__

    def __truediv__(self, other: Union["SimTime", int, float]):
        if isinstance(other, SimTime):
            if other._fs == 0:
                raise ZeroDivisionError("division by zero SimTime")
            return self._fs / other._fs
        if isinstance(other, (int, float)):
            return SimTime.from_fs(int(round(self._fs / other)))
        return NotImplemented

    def __floordiv__(self, other: "SimTime") -> int:
        if not isinstance(other, SimTime):
            return NotImplemented
        if other._fs == 0:
            raise ZeroDivisionError("division by zero SimTime")
        return self._fs // other._fs

    def __mod__(self, other: "SimTime") -> "SimTime":
        if not isinstance(other, SimTime):
            return NotImplemented
        if other._fs == 0:
            raise ZeroDivisionError("modulo by zero SimTime")
        return SimTime.from_fs(self._fs % other._fs)

    # -- comparison ----------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        return isinstance(other, SimTime) and self._fs == other._fs

    def __lt__(self, other: "SimTime") -> bool:
        if not isinstance(other, SimTime):
            return NotImplemented
        return self._fs < other._fs

    def __hash__(self) -> int:
        return hash(("SimTime", self._fs))

    def __bool__(self) -> bool:
        return self._fs != 0

    # -- formatting ------------------------------------------------------------
    def __repr__(self) -> str:
        return f"SimTime({self._fs} fs)"

    def __str__(self) -> str:
        fs = self._fs
        for unit in ("s", "ms", "us", "ns", "ps"):
            scale = _UNIT_FS[unit]
            if fs >= scale and fs % scale == 0:
                return f"{fs // scale} {unit}"
        if fs >= _UNIT_FS["ns"]:
            return f"{fs / _UNIT_FS['ns']:.3f} ns"
        return f"{fs} fs"


#: The zero duration; also the simulation start time.
ZERO_TIME = SimTime.from_fs(0)


def fs(value: Union[int, float]) -> SimTime:
    """``value`` femtoseconds as a :class:`SimTime`."""
    return SimTime(value, "fs")


def ps(value: Union[int, float]) -> SimTime:
    """``value`` picoseconds as a :class:`SimTime`."""
    return SimTime(value, "ps")


def ns(value: Union[int, float]) -> SimTime:
    """``value`` nanoseconds as a :class:`SimTime`."""
    return SimTime(value, "ns")


def us(value: Union[int, float]) -> SimTime:
    """``value`` microseconds as a :class:`SimTime`."""
    return SimTime(value, "us")


def ms(value: Union[int, float]) -> SimTime:
    """``value`` milliseconds as a :class:`SimTime`."""
    return SimTime(value, "ms")


def sec(value: Union[int, float]) -> SimTime:
    """``value`` seconds as a :class:`SimTime`."""
    return SimTime(value, "s")


def cycles_to_time(n_cycles: int, frequency_hz: float) -> SimTime:
    """Duration of ``n_cycles`` clock cycles at ``frequency_hz``.

    Rounds to the femtosecond resolution; used throughout the timing models
    to convert cycle-count estimates into kernel time.
    """
    if frequency_hz <= 0:
        raise ValueError("frequency must be positive")
    if n_cycles < 0:
        raise ValueError("cycle count must be non-negative")
    return SimTime.from_fs(int(round(n_cycles * 1e15 / frequency_hz)))
