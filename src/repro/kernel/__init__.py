"""A SystemC-2.0-like discrete-event simulation kernel in pure Python.

This package is the substrate the reproduction rests on: the paper models
dynamically reconfigurable hardware *in SystemC 2.0 with no language
extensions*, so we provide the corresponding kernel facilities —
hierarchical modules, ports bound to interfaces (port-to-port chaining
plays the role of ``sc_export``), events with immediate/delta/timed
notification, signals with evaluate/update semantics, coroutine thread
processes and callback method processes, pausable clocks, blocking
channels, fixed-width datatypes and waveform tracing.

Quick tour::

    from repro.kernel import Simulator, Module, Signal, ns

    class Ping(Module):
        def __init__(self, name, sim):
            super().__init__(name, sim=sim)
            self.count = 0
            self.add_thread(self.run)

        def run(self):
            while True:
                yield ns(10)
                self.count += 1

    sim = Simulator()
    ping = Ping("ping", sim)
    sim.run(until=ns(100))
    assert ping.count == 10
"""

from .channels import Fifo, Mutex, Semaphore
from .datatypes import BitVector, saturate_signed, sint, uint
from .errors import (
    BindingError,
    DeadlockError,
    ElaborationError,
    KernelError,
    ProcessError,
    SchedulingError,
    SimulationError,
)
from .event import Event, events_of
from .module import Module, processes_of
from .ports import Interface, Port, implemented_interfaces, ports_of
from .process import TIMEOUT, AllOf, AnyOf, MethodProcess, ProcessState, ThreadProcess
from .signal import Clock, Signal, signals_of
from .simtime import ZERO_TIME, SimTime, cycles_to_time, fs, ms, ns, ps, sec, us
from .simulator import Simulator, SimulatorStats, TimedAction
from .tracing import TimelineRecorder, VcdTracer

__all__ = [
    "AllOf",
    "AnyOf",
    "BindingError",
    "BitVector",
    "Clock",
    "DeadlockError",
    "ElaborationError",
    "Event",
    "Fifo",
    "Interface",
    "KernelError",
    "MethodProcess",
    "Module",
    "Mutex",
    "Port",
    "ProcessError",
    "ProcessState",
    "SchedulingError",
    "Semaphore",
    "Signal",
    "SimTime",
    "SimulationError",
    "Simulator",
    "SimulatorStats",
    "ThreadProcess",
    "TimedAction",
    "TimelineRecorder",
    "TIMEOUT",
    "VcdTracer",
    "ZERO_TIME",
    "cycles_to_time",
    "events_of",
    "fs",
    "implemented_interfaces",
    "ms",
    "ns",
    "ports_of",
    "processes_of",
    "ps",
    "saturate_signed",
    "sec",
    "signals_of",
    "sint",
    "uint",
    "us",
]
