"""Exception hierarchy for the simulation kernel.

All kernel-raised errors derive from :class:`KernelError` so callers can
catch simulation problems without masking ordinary Python bugs in user
models.  Errors raised *inside* a user process are re-raised wrapped in
:class:`ProcessError` with the process name attached, so a failing model is
attributable even in large hierarchies.
"""

from __future__ import annotations


class KernelError(Exception):
    """Base class for all simulation-kernel errors."""


class ElaborationError(KernelError):
    """Raised for structural problems detected while building the model.

    Examples: binding a port twice, instantiating a module without a
    simulator, registering two children under the same name.
    """


class BindingError(ElaborationError):
    """Raised when a port/interface binding is missing or ill-typed."""


class SimulationError(KernelError):
    """Raised for problems detected while the simulation is running."""


class ProcessError(SimulationError):
    """Wraps an exception escaping a user process.

    Attributes
    ----------
    process_name:
        Hierarchical name of the process whose body raised.
    """

    def __init__(self, process_name: str, message: str) -> None:
        super().__init__(f"process '{process_name}': {message}")
        self.process_name = process_name


class SchedulingError(SimulationError):
    """Raised for illegal scheduling requests (e.g. negative delays)."""


class DeadlockError(SimulationError):
    """Raised when the kernel is asked to treat starvation as an error.

    The kernel itself never raises this spontaneously; see
    :meth:`repro.kernel.simulator.Simulator.run` with ``error_on_deadlock``
    and :mod:`repro.analysis.deadlock` for diagnosis helpers.
    """
