"""Processes: the SC_THREAD / SC_METHOD analogues.

A *thread process* is a Python generator.  Each ``yield`` suspends the
process on a *wait specification*; the kernel resumes it when the wait is
satisfied.  Supported wait specifications:

``SimTime``
    Timeout: resume after the given duration (``yield ns(10)``).
``Event``
    Resume when the event fires.
``AnyOf([...])``
    Resume on the first of several events / a timeout.  ``yield`` returns
    the triggering event, or :data:`TIMEOUT` on timeout.
``AllOf([...])``
    Resume once every listed event has fired at least once.
``None``
    Wait on the process's static sensitivity list.

Blocking interface methods (TLM-style ``b_transport``) are themselves
generators and are invoked with ``yield from``, composing transparently
with this protocol.

A *method process* is a plain callback invoked from the evaluation phase
whenever one of its sensitivity events fires; it must not block.

Hot-path design notes: a thread suspends and resumes once per simulated
event, so this file is the kernel's inner loop.  Each :class:`ThreadProcess`
owns a single reusable :class:`WaitHandle` (re-armed on every ``yield``
instead of allocated), event registration goes through the events'
insertion-ordered waiter dicts (O(1) disarm), the fire path is inlined,
and :attr:`Process.wait_description` is computed lazily from the stored
wait spec rather than formatted on every suspend.
"""

from __future__ import annotations

import enum
from typing import TYPE_CHECKING, Callable, Iterable, List, Optional, Sequence, Union

from .errors import ProcessError, SchedulingError
from .event import Event
from .simtime import SimTime

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .simulator import Simulator, TimedAction


class _Timeout:
    """Sentinel returned from a wait when an :class:`AnyOf` timeout fired."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return "TIMEOUT"


#: Returned by ``yield AnyOf(...)`` when the timeout fired first.
TIMEOUT = _Timeout()


class AnyOf:
    """Wait for the first of several events, optionally bounded by a timeout.

    ``yield AnyOf([e1, e2], timeout=ns(100))`` resumes with the event that
    fired, or :data:`TIMEOUT` if the timeout expired first.
    """

    __slots__ = ("events", "timeout")

    def __init__(self, events: Iterable[Event], timeout: Optional[SimTime] = None) -> None:
        self.events: List[Event] = list(events)
        self.timeout = timeout
        if not self.events and timeout is None:
            raise SchedulingError("AnyOf requires at least one event or a timeout")


class AllOf:
    """Wait until every listed event has fired at least once."""

    __slots__ = ("events",)

    def __init__(self, events: Iterable[Event]) -> None:
        self.events: List[Event] = list(events)
        if not self.events:
            raise SchedulingError("AllOf requires at least one event")


WaitSpec = Union[SimTime, Event, AnyOf, AllOf, None]


class ProcessState(enum.Enum):
    """Lifecycle of a process."""

    CREATED = "created"
    READY = "ready"
    RUNNING = "running"
    WAITING = "waiting"
    TERMINATED = "terminated"


class WaitHandle:
    """The kernel-side record of a suspended thread's current wait.

    Arms itself on the referenced events (and a timeout, if any); on the
    first satisfying trigger it disarms everything and schedules the owning
    process runnable with the resume value.  Each thread process owns one
    handle for its whole lifetime, re-armed per wait.
    """

    __slots__ = ("process", "events", "pending_all", "timed_action", "active", "is_all")

    def __init__(self, process: "ThreadProcess") -> None:
        self.process = process
        self.events: List[Event] = []
        self.pending_all: List[Event] = []
        self.timed_action: Optional["TimedAction"] = None
        self.active = True
        self.is_all = False

    # -- arming ------------------------------------------------------------
    def arm_events(self, events: Sequence[Event], *, all_of: bool = False) -> None:
        self.is_all = all_of
        own = self.events
        for event in events:
            event._dynamic_waiters[self] = None
            own.append(event)
        if all_of:
            self.pending_all.extend(events)

    def arm_timeout(self, delay: SimTime) -> None:
        sim = self.process.sim
        self.timed_action = sim._schedule_timed_fs(
            sim._now_fs + delay.femtoseconds, self._on_timeout
        )

    # -- triggering ---------------------------------------------------------
    def on_trigger(self, event: Event) -> None:
        if not self.active:
            return
        if self.is_all:
            if event in self.pending_all:
                # Remove every occurrence: a duplicated event in AllOf is
                # satisfied entirely by one trigger.
                self.pending_all[:] = [e for e in self.pending_all if e is not event]
                self.events[:] = [e for e in self.events if e is not event]
                event._dynamic_waiters.pop(self, None)
            if self.pending_all:
                return
        self._fire(event)

    def _on_timeout(self) -> None:
        self.timed_action = None
        if not self.active:
            return
        self._fire(TIMEOUT)

    def _fire(self, value: object) -> None:
        # disarm() and process._schedule_resume(), inlined: this runs once
        # per thread resume and is the kernel's hottest path.
        self.active = False
        events = self.events
        if events:
            for event in events:
                event._dynamic_waiters.pop(self, None)
            events.clear()
        if self.pending_all:
            self.pending_all.clear()
        action = self.timed_action
        if action is not None:
            action.cancelled = True
            self.timed_action = None
        process = self.process
        if process.state is not _TERMINATED:
            process._resume_value = value
            process._handle = None
            process.state = _READY
            process._wait_spec = None
            process.sim._runnable.append(process)

    def disarm(self) -> None:
        """Detach from all events and cancel the timeout."""
        self.active = False
        for event in self.events:
            event._dynamic_waiters.pop(self, None)
        self.events.clear()
        if self.pending_all:
            self.pending_all.clear()
        if self.timed_action is not None:
            self.timed_action.cancel()
            self.timed_action = None


#: Sentinel for ``Process._wait_spec`` while waiting on static sensitivity.
_STATIC_WAIT = "static"

# Hot-path aliases of the enum members (module globals resolve faster than
# class-attribute lookups in the inner loop).
_CREATED = ProcessState.CREATED
_READY = ProcessState.READY
_RUNNING = ProcessState.RUNNING
_WAITING = ProcessState.WAITING
_TERMINATED = ProcessState.TERMINATED


class Process:
    """Common behaviour of thread and method processes."""

    #: ``"thread"`` or ``"method"`` on the concrete subclasses; analyses
    #: branch on this instead of isinstance checks.
    kind = "process"

    __slots__ = (
        "sim",
        "name",
        "state",
        "static_sensitivity",
        "daemon",
        "terminated_event",
        "_wait_spec",
    )

    def __init__(self, sim: "Simulator", name: str) -> None:
        self.sim = sim
        self.name = name
        self.state = ProcessState.CREATED
        self.static_sensitivity: List[Event] = []
        #: Daemon processes are expected to wait forever (server loops);
        #: the deadlock analyzer ignores them.
        self.daemon = False
        #: Fires when the process terminates (normally or via kill()).
        self.terminated_event = Event(sim, f"{name}.terminated")
        # The current wait spec (None, _STATIC_WAIT, or the yielded spec);
        # wait_description renders it on demand.
        self._wait_spec: object = None

    @property
    def terminated(self) -> bool:
        return self.state is ProcessState.TERMINATED

    @property
    def fn(self) -> Callable:
        """The Python callable this process runs (for introspection/lint)."""
        return self._fn

    @property
    def wait_description(self) -> Optional[str]:
        """Description of the current wait, for deadlock diagnosis."""
        spec = self._wait_spec
        if spec is None:
            return None
        if spec is _STATIC_WAIT:
            return "static sensitivity"
        if isinstance(spec, SimTime):
            return f"timeout {spec}"
        if isinstance(spec, Event):
            return f"event {spec.name}"
        if isinstance(spec, AnyOf):
            names = ", ".join(e.name for e in spec.events)
            return f"any of [{names}]"
        if isinstance(spec, AllOf):
            names = ", ".join(e.name for e in spec.events)
            return f"all of [{names}]"
        return repr(spec)

    def add_sensitivity(self, *events: Event) -> None:
        """Extend the static sensitivity list."""
        for event in events:
            self.static_sensitivity.append(event)
            event._add_static(self)

    def _static_trigger(self, event: Event) -> None:
        raise NotImplementedError

    def _execute(self) -> None:
        raise NotImplementedError

    def kill(self) -> None:
        """Terminate the process without running it further."""
        if self.state is ProcessState.TERMINATED:
            return
        self._terminate()

    def _terminate(self) -> None:
        self.state = ProcessState.TERMINATED
        self._wait_spec = None
        for event in self.static_sensitivity:
            event._remove_static(self)
        self.sim._process_terminated(self)
        self.terminated_event.notify_delta()

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name!r}, {self.state.value})"


class ThreadProcess(Process):
    """An SC_THREAD-style coroutine process.

    ``fn`` is a zero-argument callable returning a generator (typically a
    bound generator method of a module).  A non-generator callable is also
    accepted and runs once to completion at start.
    """

    kind = "thread"

    __slots__ = ("_fn", "_gen", "_handle", "_resume_value", "_wait_handle")

    @property
    def runs_at_start(self) -> bool:
        """Threads are always runnable in the first evaluation phase."""
        return True

    def __init__(self, sim: "Simulator", name: str, fn: Callable[[], object]) -> None:
        super().__init__(sim, name)
        self._fn = fn
        self._gen = None
        self._handle: Optional[WaitHandle] = None
        self._resume_value: object = None
        # The reusable wait handle (armed/disarmed once per yield).
        self._wait_handle = WaitHandle(self)

    def start(self) -> None:
        """Make the process runnable for the first evaluation phase."""
        if self.state is not ProcessState.CREATED:
            return
        self.state = ProcessState.READY
        self.sim._make_runnable(self)

    def _static_trigger(self, event: Event) -> None:
        # Threads use static sensitivity only while suspended on `yield None`.
        if self.state is _WAITING and self._handle is None:
            self._schedule_resume(event)

    def _schedule_resume(self, value: object) -> None:
        if self.state is _TERMINATED:
            return
        self._resume_value = value
        self._handle = None
        self.state = _READY
        self._wait_spec = None
        self.sim._runnable.append(self)

    def _execute(self) -> None:
        if self.state is _TERMINATED:
            return
        self.state = _RUNNING
        if self._gen is None:
            result = self._fn()
            if not hasattr(result, "send"):
                # Plain callable: ran to completion already.
                self._terminate()
                return
            self._gen = result
            send_value = None
        else:
            send_value = self._resume_value
            self._resume_value = None
        try:
            spec = self._gen.send(send_value)
        except StopIteration:
            self._terminate()
            return
        except Exception as exc:
            self._terminate()
            raise ProcessError(self.name, f"{type(exc).__name__}: {exc}") from exc
        self._suspend_on(spec)

    def _suspend_on(self, spec: WaitSpec) -> None:
        self.state = _WAITING
        if spec is None:
            if not self.static_sensitivity:
                raise ProcessError(
                    self.name, "yield None requires a static sensitivity list"
                )
            self._handle = None
            self._wait_spec = _STATIC_WAIT
            return
        handle = self._wait_handle
        handle.active = True
        handle.is_all = False
        if isinstance(spec, SimTime):
            handle.arm_timeout(spec)
        elif isinstance(spec, Event):
            # Single-event wait: register directly (the common case).
            handle.events.append(spec)
            spec._dynamic_waiters[handle] = None
        elif isinstance(spec, AnyOf):
            handle.arm_events(spec.events)
            if spec.timeout is not None:
                handle.arm_timeout(spec.timeout)
        elif isinstance(spec, AllOf):
            handle.arm_events(spec.events, all_of=True)
        else:
            self._terminate()
            raise ProcessError(
                self.name,
                f"invalid wait specification yielded: {spec!r} "
                "(expected SimTime, Event, AnyOf, AllOf, or None)",
            )
        self._wait_spec = spec
        self._handle = handle

    def _terminate(self) -> None:
        if self._handle is not None:
            self._handle.disarm()
            self._handle = None
        if self._gen is not None:
            self._gen.close()
            self._gen = None
        super()._terminate()


class _MethodTrigger:
    """One-shot dynamic trigger installed by ``MethodProcess.next_trigger``."""

    __slots__ = ("process", "events", "timed_action", "active")

    def __init__(self, process: "MethodProcess") -> None:
        self.process = process
        self.events: List[Event] = []
        self.timed_action: Optional["TimedAction"] = None
        self.active = True

    def arm_event(self, event: Event) -> None:
        event._add_dynamic(self)
        self.events.append(event)

    def arm_timeout(self, delay: SimTime) -> None:
        sim = self.process.sim
        self.timed_action = sim._schedule_timed_fs(
            sim._now_fs + delay.femtoseconds, self._on_timeout
        )

    def on_trigger(self, event: Event) -> None:
        if not self.active:
            return
        self._fire()

    def _on_timeout(self) -> None:
        self.timed_action = None
        if self.active:
            self._fire()

    def _fire(self) -> None:
        self.disarm()
        self.process._dynamic_fire()

    def disarm(self) -> None:
        self.active = False
        for event in self.events:
            event._remove_dynamic(self)
        self.events.clear()
        if self.timed_action is not None:
            self.timed_action.cancel()
            self.timed_action = None


class MethodProcess(Process):
    """An SC_METHOD-style callback process.

    Runs once per trigger of its static sensitivity; must not block.  With
    ``initialize=True`` (the SystemC default) it also runs once at
    simulation start.  :meth:`next_trigger` installs a one-shot dynamic
    trigger that overrides the static sensitivity for the next activation,
    exactly as in SystemC 2.0.
    """

    kind = "method"

    __slots__ = ("_fn", "_initialize", "_queued", "_dynamic", "_pending_trigger", "_rank")

    @property
    def runs_at_start(self) -> bool:
        """True when the method runs once at start (``initialize=True``)."""
        return self._initialize

    def __init__(
        self,
        sim: "Simulator",
        name: str,
        fn: Callable[[], None],
        *,
        initialize: bool = True,
    ) -> None:
        super().__init__(sim, name)
        self._fn = fn
        self._initialize = initialize
        self._queued = False
        self._dynamic: Optional[_MethodTrigger] = None
        self._pending_trigger: Optional[object] = "unset"
        # Topological rank assigned by the static schedule
        # (kernel/specialize.py); 0 and unused on the generic path.
        self._rank = 0

    def start(self) -> None:
        if self.state is not ProcessState.CREATED:
            return
        self.state = ProcessState.WAITING
        if self._initialize:
            self._enqueue()

    def next_trigger(self, spec: "WaitSpec" = None) -> None:
        """Override the sensitivity for the *next* activation (one-shot).

        ``None`` restores the static sensitivity list; an :class:`Event`
        or :class:`SimTime` makes exactly the next activation fire on that
        event/timeout.  Usually called from within the method body.
        """
        self._pending_trigger = spec

    def _static_trigger(self, event: Event) -> None:
        if self._dynamic is not None:
            return  # a dynamic trigger overrides static sensitivity
        self._enqueue()

    def _dynamic_fire(self) -> None:
        self._dynamic = None
        self._enqueue()

    def _enqueue(self) -> None:
        if self.state is _TERMINATED or self._queued:
            return
        self._queued = True
        self.sim._runnable.append(self)

    def _execute(self) -> None:
        self._queued = False
        if self.state is _TERMINATED:
            return
        self.state = _RUNNING
        self._pending_trigger = "unset"
        try:
            self._fn()
        except Exception as exc:
            self._terminate()
            raise ProcessError(self.name, f"{type(exc).__name__}: {exc}") from exc
        if self._pending_trigger != "unset":
            self._install_dynamic(self._pending_trigger)
        if self.state is ProcessState.RUNNING:
            self.state = ProcessState.WAITING

    def _install_dynamic(self, spec: "WaitSpec") -> None:
        if self._dynamic is not None:
            self._dynamic.disarm()
            self._dynamic = None
        if spec is None:
            return  # back to the static sensitivity list
        trigger = _MethodTrigger(self)
        if isinstance(spec, Event):
            trigger.arm_event(spec)
        elif isinstance(spec, SimTime):
            trigger.arm_timeout(spec)
        elif isinstance(spec, AnyOf):
            for event in spec.events:
                trigger.arm_event(event)
            if spec.timeout is not None:
                trigger.arm_timeout(spec.timeout)
        else:
            raise ProcessError(
                self.name,
                f"invalid next_trigger specification: {spec!r} "
                "(expected Event, SimTime, AnyOf, or None)",
            )
        self._dynamic = trigger

    def _terminate(self) -> None:
        if self._dynamic is not None:
            self._dynamic.disarm()
            self._dynamic = None
        super()._terminate()
