"""Events and notification semantics.

Implements the SystemC 2.0 notification model:

* ``notify()`` — *immediate*: waiting processes become runnable in the
  current evaluation phase.
* ``notify(ZERO_TIME)`` — *delta*: waiting processes become runnable in the
  next delta cycle (after the update phase).
* ``notify(t)`` with ``t > 0`` — *timed*: waiting processes become runnable
  when simulated time has advanced by ``t``.

An event carries at most one pending notification.  A pending notification
is only replaced by an *earlier* one: immediate overrides delta and timed,
delta overrides timed, and an earlier timed notification overrides a later
one.  ``cancel()`` removes any pending delta/timed notification.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional

from .errors import SchedulingError
from .simtime import SimTime, ZERO_TIME

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .process import Process, WaitHandle
    from .simulator import Simulator, TimedAction


class Event:
    """A synchronization primitive processes can wait on.

    Two kinds of waiters exist, mirroring SystemC:

    * *static* waiters — processes whose sensitivity list includes this
      event; they are notified on every trigger and never disarm.
    * *dynamic* waiters — suspended processes whose current ``yield``
      references this event; they disarm once resumed.
    """

    def __init__(self, sim: "Simulator", name: str = "event") -> None:
        self.sim = sim
        self.name = name
        self._static_waiters: List["Process"] = []
        self._dynamic_waiters: List["WaitHandle"] = []
        # Pending notification: None, the string "delta", or a TimedAction.
        self._pending = None  # type: Optional[object]
        self._trigger_count = 0
        self._last_trigger_time: Optional[SimTime] = None

    # -- introspection -----------------------------------------------------
    @property
    def trigger_count(self) -> int:
        """Number of times this event has fired since construction."""
        return self._trigger_count

    @property
    def last_trigger_time(self) -> Optional[SimTime]:
        """Simulation time of the most recent trigger, or ``None``."""
        return self._last_trigger_time

    def has_waiters(self) -> bool:
        """True if any process is statically or dynamically waiting."""
        return bool(self._static_waiters or self._dynamic_waiters)

    # -- waiter management (kernel internal) -------------------------------
    def _add_static(self, process: "Process") -> None:
        if process not in self._static_waiters:
            self._static_waiters.append(process)

    def _remove_static(self, process: "Process") -> None:
        if process in self._static_waiters:
            self._static_waiters.remove(process)

    def _add_dynamic(self, handle: "WaitHandle") -> None:
        self._dynamic_waiters.append(handle)

    def _remove_dynamic(self, handle: "WaitHandle") -> None:
        if handle in self._dynamic_waiters:
            self._dynamic_waiters.remove(handle)

    # -- notification --------------------------------------------------------
    def notify(self, delay: Optional[SimTime] = None) -> None:
        """Notify the event.

        ``delay=None`` requests immediate notification, ``ZERO_TIME`` a
        delta notification, any positive :class:`SimTime` a timed one.
        """
        if delay is None:
            self._notify_immediate()
        elif not isinstance(delay, SimTime):
            raise SchedulingError(
                f"notify() delay must be a SimTime or None, got {type(delay).__name__}"
            )
        elif delay == ZERO_TIME:
            self.notify_delta()
        else:
            self._notify_timed(delay)

    def _notify_immediate(self) -> None:
        self._cancel_pending()
        self._trigger()

    def notify_delta(self) -> None:
        """Schedule a delta notification (unless an equal/earlier one pends)."""
        if self._pending == "delta":
            return
        # Delta overrides timed.
        self._cancel_pending()
        self._pending = "delta"
        self.sim._queue_delta_event(self)

    def _notify_timed(self, delay: SimTime) -> None:
        target_fs = self.sim._now_fs + delay.femtoseconds
        pending = self._pending
        if pending == "delta":
            return  # delta is earlier than any timed notification
        if pending is not None:
            # pending is a TimedAction
            if pending.time_fs <= target_fs:  # type: ignore[attr-defined]
                return
            pending.cancel()  # type: ignore[attr-defined]
            self._pending = None
        action = self.sim._schedule_timed_fs(target_fs, self._timed_fire)
        self._pending = action

    def cancel(self) -> None:
        """Cancel any pending delta or timed notification."""
        self._cancel_pending()

    def _cancel_pending(self) -> None:
        pending = self._pending
        if pending is None:
            return
        if pending == "delta":
            self.sim._dequeue_delta_event(self)
        else:
            pending.cancel()  # type: ignore[attr-defined]
        self._pending = None

    # -- firing (called by the kernel) -----------------------------------------
    def _timed_fire(self) -> None:
        self._pending = None
        self._trigger()

    def _delta_fire(self) -> None:
        self._pending = None
        self._trigger()

    def _trigger(self) -> None:
        self._trigger_count += 1
        self._last_trigger_time = self.sim.now
        # Static waiters first (deterministic registration order), then
        # dynamic.  Copy because handlers mutate the lists.
        for process in list(self._static_waiters):
            process._static_trigger(self)
        for handle in list(self._dynamic_waiters):
            handle.on_trigger(self)

    def __repr__(self) -> str:
        return f"Event({self.name!r})"
