"""Events and notification semantics.

Implements the SystemC 2.0 notification model:

* ``notify()`` — *immediate*: waiting processes become runnable in the
  current evaluation phase.
* ``notify(ZERO_TIME)`` — *delta*: waiting processes become runnable in the
  next delta cycle (after the update phase).
* ``notify(t)`` with ``t > 0`` — *timed*: waiting processes become runnable
  when simulated time has advanced by ``t``.

An event carries at most one pending notification.  A pending notification
is only replaced by an *earlier* one: immediate overrides delta and timed,
delta overrides timed, and an earlier timed notification overrides a later
one.  ``cancel()`` removes any pending delta/timed notification.

Hot-path design notes (these structures sit under every notification in
the system, so their costs multiply into everything):

* Waiter sets are insertion-ordered dicts, giving O(1) add/remove while
  preserving the deterministic registration-order iteration the scheduler
  guarantees (a list would make ``remove`` O(n) per disarm — quadratic for
  fan-out patterns).
* A cancelled delta notification does not search the simulator's delta
  queue; the queue entry goes *stale* and is skipped when popped.
  ``_delta_entries`` counts this event's entries (live + stale) in the
  queue; because re-notification always appends, only the newest entry can
  be live, so an entry fires iff it is the last one out and a delta is
  still pending — reproducing exactly the ordering of eager removal.
* ``last_trigger_time`` is stored as a plain femtosecond integer and
  wrapped into a :class:`SimTime` only on inspection.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Optional

from .errors import SchedulingError
from .simtime import SimTime

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .process import Process
    from .simulator import Simulator

#: Sentinel stored in ``Event._pending`` while a delta notification pends.
#: Always compared with ``is``.
_DELTA = "delta"


class Event:
    """A synchronization primitive processes can wait on.

    Two kinds of waiters exist, mirroring SystemC:

    * *static* waiters — processes whose sensitivity list includes this
      event; they are notified on every trigger and never disarm.
    * *dynamic* waiters — suspended processes whose current ``yield``
      references this event; they disarm once resumed.
    """

    __slots__ = (
        "sim",
        "name",
        "_static_waiters",
        "_dynamic_waiters",
        "_direct",
        "_pending",
        "_trigger_count",
        "_last_trigger_fs",
        "_delta_entries",
    )

    def __init__(self, sim: "Simulator", name: str = "event") -> None:
        self.sim = sim
        self.name = name
        # Insertion-ordered sets (dicts with None values): O(1) membership
        # and removal, deterministic iteration in registration order.
        self._static_waiters: Dict["Process", None] = {}
        self._dynamic_waiters: Dict[object, None] = {}
        # Direct-dispatch slot for a compiled thread (kernel/specialize.py):
        # at most one waiter, armed only when no dynamic waiter preceded it,
        # resumed between the static and dynamic scans — i.e. exactly where
        # the earliest-armed dynamic waiter would have been resumed.
        self._direct = None  # type: Optional[object]
        # Pending notification: None, _DELTA, or a TimedAction.
        self._pending = None  # type: Optional[object]
        self._trigger_count = 0
        self._last_trigger_fs: Optional[int] = None
        # Entries (live + stale) this event has in the simulator's delta
        # queue; see the module docstring.
        self._delta_entries = 0

    # -- introspection -----------------------------------------------------
    @property
    def trigger_count(self) -> int:
        """Number of times this event has fired since construction."""
        return self._trigger_count

    @property
    def last_trigger_time(self) -> Optional[SimTime]:
        """Simulation time of the most recent trigger, or ``None``."""
        if self._last_trigger_fs is None:
            return None
        return SimTime.from_fs(self._last_trigger_fs)

    def has_waiters(self) -> bool:
        """True if any process is statically or dynamically waiting."""
        return bool(
            self._static_waiters or self._dynamic_waiters or self._direct is not None
        )

    def static_waiters(self) -> "list[Process]":
        """Statically sensitive processes, in registration order.

        The order is the order the scheduler notifies them in, which the
        static schedule (:mod:`repro.kernel.specialize`) preserves when it
        marks sensitive methods directly.
        """
        return list(self._static_waiters)

    # -- waiter management (kernel internal) -------------------------------
    def _add_static(self, process: "Process") -> None:
        self._static_waiters.setdefault(process)

    def _remove_static(self, process: "Process") -> None:
        self._static_waiters.pop(process, None)

    def _add_dynamic(self, handle: object) -> None:
        self._dynamic_waiters[handle] = None

    def _remove_dynamic(self, handle: object) -> None:
        self._dynamic_waiters.pop(handle, None)

    # -- notification --------------------------------------------------------
    def notify(self, delay: Optional[SimTime] = None) -> None:
        """Notify the event.

        ``delay=None`` requests immediate notification, ``ZERO_TIME`` a
        delta notification, any positive :class:`SimTime` a timed one.
        """
        if delay is None:
            if self._pending is not None:
                self._cancel_pending()
            self._trigger()
        elif not isinstance(delay, SimTime):
            raise SchedulingError(
                f"notify() delay must be a SimTime or None, got {type(delay).__name__}"
            )
        elif delay._fs == 0:
            self.notify_delta()
        else:
            self._notify_timed(delay)

    def _notify_immediate(self) -> None:
        if self._pending is not None:
            self._cancel_pending()
        self._trigger()

    def notify_delta(self) -> None:
        """Schedule a delta notification (unless an equal/earlier one pends)."""
        pending = self._pending
        if pending is _DELTA:
            return
        if pending is not None:
            pending.cancel()  # delta overrides a pending timed notification
        self._pending = _DELTA
        self._delta_entries += 1
        self.sim._delta_events.append(self)

    def _notify_timed(self, delay: SimTime) -> None:
        target_fs = self.sim._now_fs + delay.femtoseconds
        pending = self._pending
        if pending is _DELTA:
            return  # delta is earlier than any timed notification
        if pending is not None:
            # pending is a TimedAction
            if pending.time_fs <= target_fs:  # type: ignore[attr-defined]
                return
            pending.cancel()  # type: ignore[attr-defined]
            self._pending = None
        action = self.sim._schedule_timed_fs(target_fs, self._timed_fire)
        self._pending = action

    def cancel(self) -> None:
        """Cancel any pending delta or timed notification."""
        if self._pending is not None:
            self._cancel_pending()

    def _cancel_pending(self) -> None:
        pending = self._pending
        if pending is None:
            return
        if pending is not _DELTA:
            pending.cancel()  # type: ignore[attr-defined]
        # A pending delta's queue entry goes stale and is skipped when the
        # delta queue drains; no O(n) removal here.
        self._pending = None

    # -- firing (called by the kernel) -----------------------------------------
    def _timed_fire(self) -> None:
        self._pending = None
        self._trigger()

    def _delta_fire(self) -> None:
        # One queue entry consumed.  Only the newest entry can correspond
        # to a live notification (re-notification always appends), so fire
        # iff this is the last entry out and a delta is still pending.
        self._delta_entries -= 1
        if self._delta_entries or self._pending is not _DELTA:
            return
        self._pending = None
        self._trigger()

    def _trigger(self) -> None:
        self._trigger_count += 1
        self._last_trigger_fs = self.sim._now_fs
        # Static waiters first (deterministic registration order), then
        # dynamic.  Copy because handlers mutate the dicts.
        if self._static_waiters:
            for process in list(self._static_waiters):
                process._static_trigger(self)
        direct = self._direct
        if direct is not None:
            self._direct = None
            direct._direct_resume(self)
        if self._dynamic_waiters:
            for handle in list(self._dynamic_waiters):
                handle.on_trigger(self)

    def __repr__(self) -> str:
        return f"Event({self.name!r})"


def events_of(module: object) -> "Dict[str, Event]":
    """Events held in attributes of ``module``, keyed by attribute name.

    The event third of the introspection API (``ports_of``/``signals_of``
    are the other two): modules do not register their events anywhere, so
    this scans the instance attributes — sufficient for the idiomatic
    ``self.done = Event(...)`` declaration style, and what the process
    dataflow analysis (:mod:`repro.analysis.dataflow`) uses to resolve
    waited/notified events to their owning module.
    """
    found: Dict[str, Event] = {}
    for attr, value in vars(module).items():
        if isinstance(value, Event):
            found[attr] = value
    return found
