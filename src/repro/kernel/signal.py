"""Signals and clocks with SystemC evaluate/update semantics.

A :class:`Signal` is a primitive channel: ``write`` stages a new value; the
value becomes visible only in the update phase at the end of the current
delta cycle, and a change fires the signal's ``value_changed`` event as a
delta notification.  This gives race-free communication between processes
running in the same evaluation phase — the property RTL-style models rely
on, and which the bus-cycle-accurate models in this library use for request/
grant lines.

:class:`Clock` is a module generating a periodic boolean signal with
``posedge``/``negedge`` events.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Generic, List, Optional, TypeVar

from .event import Event
from .module import Module
from .simtime import SimTime

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .simulator import Simulator

T = TypeVar("T")


class Signal(Generic[T]):
    """A single-writer-per-delta signal with deferred update.

    Reads return the value committed at the last update phase; writes take
    effect one delta later.  ``value_changed`` fires only on actual change
    (write of an equal value is absorbed, as in ``sc_signal``).

    Follows the kernel's update-request protocol: ``_update_requested``
    dedups queueing in O(1) (the simulator clears it before calling
    :meth:`_update`), so a thousand writes in one evaluation phase cost one
    queue entry and no membership scans.
    """

    __slots__ = (
        "sim",
        "name",
        "_current",
        "_next",
        "_update_requested",
        "value_changed",
        "posedge",
        "negedge",
        "_trace_callbacks",
        "write_hook",
        "_dependents",
    )

    def __init__(self, sim: "Simulator", init: T, name: str = "signal") -> None:
        self.sim = sim
        self.name = name
        self._current: T = init
        self._next: T = init
        self._update_requested = False
        #: Fires (delta) whenever the committed value changes.
        self.value_changed = Event(sim, f"{name}.value_changed")
        #: Fires (delta) on a False->True / zero->nonzero transition.
        self.posedge = Event(sim, f"{name}.posedge")
        #: Fires (delta) on a True->False / nonzero->zero transition.
        self.negedge = Event(sim, f"{name}.negedge")
        self._trace_callbacks: List[object] = []
        #: Optional ``hook(signal, staged_value)`` called on every write
        #: (before staging).  Used by the lint dynamic cross-check to
        #: attribute same-delta writers; disarmed cost is one ``is None``
        #: test, same contract as the fault hooks.
        self.write_hook = None
        #: Static-schedule dependency table installed by the specialized
        #: scheduler (:mod:`repro.kernel.specialize`); None on the generic
        #: path.
        self._dependents = None

    # -- access ---------------------------------------------------------------
    def read(self) -> T:
        """The committed value."""
        return self._current

    @property
    def value(self) -> T:
        """Alias for :meth:`read` (property form)."""
        return self._current

    def write(self, value: T) -> None:
        """Stage ``value``; committed at the end of the current delta."""
        if self.write_hook is not None:
            self.write_hook(self, value)
        self._next = value
        if not self._update_requested:
            self.sim._enqueue_update(self)

    def _update(self) -> None:
        # _update_requested was cleared by the scheduler's update phase.
        # Identity first: a NaN payload compares unequal to itself, and the
        # equality-only guard would re-fire value_changed on every commit of
        # the same NaN object.
        old = self._current
        new = self._next
        if new is old or new == old:
            return
        self._current = new
        self.value_changed.notify_delta()
        if not old and new:
            self.posedge.notify_delta()
        elif old and not new:
            self.negedge.notify_delta()
        if self._trace_callbacks:
            now = self.sim.now
            for callback in self._trace_callbacks:
                callback(now, new)  # type: ignore[operator]

    def on_update(self, callback) -> None:
        """Register ``callback(time, value)`` run at each committed change.

        Trace callbacks observe every committed change, which the
        specialized fast path skips — so attaching one reverts the
        simulator to the generic scheduler (wholesale, per the
        specialization contract).
        """
        if self.sim._specialized:
            self.sim._despecialize()
        self._trace_callbacks.append(callback)

    def events(self) -> "tuple[Event, Event, Event]":
        """The signal's notification events (value_changed, posedge, negedge).

        Lets analyses map a sensitivity-list event back to the signal it
        belongs to without guessing from event names.
        """
        return (self.value_changed, self.posedge, self.negedge)

    def __repr__(self) -> str:
        return f"Signal({self.name!r}={self._current!r})"


def signals_of(module: Module) -> "dict[str, Signal]":
    """Signals held in attributes of ``module``, keyed by attribute name.

    The signal half of the introspection API (``ports_of`` is the port
    half): modules do not register their signals anywhere, so this scans
    the instance attributes — sufficient for the idiomatic
    ``self.done = Signal(...)`` declaration style, and what the static
    lint pass (REP204) uses to match signals against writer processes.
    """
    found: dict[str, Signal] = {}
    for attr, value in vars(module).items():
        if isinstance(value, Signal):
            found[attr] = value
    return found


class Clock(Module):
    """A periodic boolean clock signal, pausable for clock morphing.

    Parameters
    ----------
    period:
        Full clock period.
    duty:
        High fraction of the period (default 0.5).
    start_low:
        If true the clock starts low and the first posedge occurs after
        the low phase.

    :meth:`pause`/:meth:`resume` freeze and release the waveform: while
    paused no edges occur and the interrupted phase completes after
    resuming.  This is the *clock morphing* mechanism of the paper's
    reference [7] (Vasilko & Cabanis, FCCM 1999): a virtual clock
    distributed to the contexts of reconfigurable hardware is halted while
    their context is being reconfigured, so RTL processes clocked by it
    simply do not advance during reconfiguration.
    """

    def __init__(
        self,
        name: str,
        period: SimTime,
        parent: Optional[Module] = None,
        sim: Optional["Simulator"] = None,
        duty: float = 0.5,
        start_low: bool = False,
    ) -> None:
        super().__init__(name, parent=parent, sim=sim)
        if period.femtoseconds <= 0:
            raise ValueError("clock period must be positive")
        if not 0.0 < duty < 1.0:
            raise ValueError("duty cycle must be in (0, 1)")
        self.period = period
        self.duty = duty
        self._high_time = SimTime.from_fs(int(round(period.femtoseconds * duty)))
        self._low_time = period - self._high_time
        self.signal: Signal[bool] = Signal(self.sim, not start_low, name=f"{self.full_name}.sig")
        self._start_low = start_low
        self._paused = False
        self._pause_event = Event(self.sim, f"{self.full_name}.pause")
        self._resume_event = Event(self.sim, f"{self.full_name}.resume")
        self._paused_fs = 0
        self.add_thread(self._toggle, name="toggle", daemon=True)
        self._cycle_count = 0

    @property
    def posedge(self) -> Event:
        """Event fired at each rising edge."""
        return self.signal.posedge

    @property
    def negedge(self) -> Event:
        """Event fired at each falling edge."""
        return self.signal.negedge

    @property
    def cycles_elapsed(self) -> int:
        """Number of full periods completed."""
        return self._cycle_count

    def read(self) -> bool:
        """Current clock level."""
        return self.signal.read()

    # -- clock morphing (ref [7]) ------------------------------------------
    @property
    def paused(self) -> bool:
        return self._paused

    @property
    def total_paused_time(self) -> SimTime:
        """Accumulated time spent frozen (completed pauses only)."""
        return SimTime.from_fs(self._paused_fs)

    def pause(self) -> None:
        """Freeze the waveform (idempotent)."""
        if self._paused:
            return
        self._paused = True
        self._pause_event.notify()

    def resume(self) -> None:
        """Release a paused waveform (idempotent)."""
        if not self._paused:
            return
        self._paused = False
        self._resume_event.notify()

    def _phase(self, duration: SimTime):
        """One clock phase, stretchable by pause/resume."""
        from .process import TIMEOUT, AnyOf

        remaining_fs = duration.femtoseconds
        while remaining_fs > 0:
            if self._paused:
                pause_start = self.sim._now_fs
                yield self._resume_event
                self._paused_fs += self.sim._now_fs - pause_start
                continue
            started_fs = self.sim._now_fs
            result = yield AnyOf(
                [self._pause_event], timeout=SimTime.from_fs(remaining_fs)
            )
            if result is TIMEOUT:
                return
            remaining_fs -= self.sim._now_fs - started_fs

    def _toggle(self):
        if self._start_low:
            self.signal.write(False)
            yield from self._phase(self._low_time)
        while True:
            self.signal.write(True)
            yield from self._phase(self._high_time)
            self.signal.write(False)
            yield from self._phase(self._low_time)
            self._cycle_count += 1
