"""Reconfigurable-technology parameter library.

:class:`ReconfigTechnology` captures the three technology issues the paper
says must be parameterized at system level (block speed, largest-context
resources, reconfiguration delay/memory cost); :mod:`presets` anchors them
to the Chapter 3 device data (Virtex-II Pro, VariCore, MorphoSys, ASIC);
:mod:`estimate` regenerates the Figure 2 flexibility/efficiency bands.
"""

from .estimate import (
    FIGURE2_CLASSES,
    ArchitectureClass,
    architecture_class,
    class_for_technology,
    efficiency_span_factor,
    efficiency_table,
    estimate_efficiency,
    instruction_processor_efficiency,
)
from .presets import (
    ASIC,
    MORPHOSYS,
    PRESETS,
    SLOW_FPGA,
    VARICORE,
    VIRTEX2PRO,
    preset,
    reconfigurable_presets,
)
from .technology import ReconfigTechnology

__all__ = [
    "ASIC",
    "ArchitectureClass",
    "FIGURE2_CLASSES",
    "MORPHOSYS",
    "PRESETS",
    "ReconfigTechnology",
    "SLOW_FPGA",
    "VARICORE",
    "VIRTEX2PRO",
    "architecture_class",
    "class_for_technology",
    "efficiency_span_factor",
    "efficiency_table",
    "estimate_efficiency",
    "instruction_processor_efficiency",
    "preset",
    "reconfigurable_presets",
]
