"""Architecture-class efficiency estimation (paper Figure 2).

Figure 2 (after Brodersen) plots flexibility against implementation
efficiency for architectural styles, spanning a factor of 100–1000 between
general-purpose processors and dedicated hardware:

=============================  ==================  ============
class                          efficiency band     flexibility
=============================  ==================  ============
general-purpose processor      0.1–1 MIPS/mW       5 (highest)
embedded processor (LP ARM)    1–10 MIPS/mW        4
DSP / ASIP                     10–100 MOPS/mW      3
reconfigurable processor/FPGA  100–1000 MOPS/mW    2
dedicated ASIC                 ×100–1000 over GPP  1 (lowest)
=============================  ==================  ============

:func:`estimate_efficiency` computes an achieved MOPS/mW figure for a
technology preset from its own power/clock model, and
:func:`efficiency_table` regenerates the Figure 2 ordering — the E2 bench
asserts both the ordering and the orders-of-magnitude span.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from .technology import ReconfigTechnology


@dataclass(frozen=True)
class ArchitectureClass:
    """One band of the Figure 2 trade-off chart."""

    key: str
    label: str
    #: (low, high) efficiency band in MOPS/mW.
    mops_per_mw: Tuple[float, float]
    #: Ordinal flexibility, 5 = fully programmable, 1 = fixed.
    flexibility: int
    #: Parallelism style from the figure's axes.
    computation_style: str


#: The five bands of Figure 2, in decreasing flexibility.
FIGURE2_CLASSES: List[ArchitectureClass] = [
    ArchitectureClass(
        "gpp", "General-purpose instruction set processor", (0.1, 1.0), 5, "temporal"
    ),
    ArchitectureClass(
        "embedded", "Embedded processor (LP ARM)", (1.0, 10.0), 4, "temporal"
    ),
    ArchitectureClass(
        "dsp_asip", "DSP / application-specific instruction processor", (10.0, 100.0), 3, "temporal"
    ),
    ArchitectureClass(
        "reconfigurable", "Reconfigurable processor / embedded FPGA", (100.0, 1000.0), 2, "spatial"
    ),
    ArchitectureClass(
        "asic", "Dedicated / direct-mapped hardware (ASIC)", (1000.0, 10000.0), 1, "spatial"
    ),
]

_CLASS_BY_KEY = {c.key: c for c in FIGURE2_CLASSES}

#: Mapping from technology-preset granularity to a Figure 2 class.
_GRANULARITY_CLASS = {
    "fine": "reconfigurable",
    "medium": "reconfigurable",
    "coarse": "reconfigurable",
    "none": "asic",
}


def architecture_class(key: str) -> ArchitectureClass:
    """Look up a Figure 2 band by key."""
    try:
        return _CLASS_BY_KEY[key]
    except KeyError:
        raise KeyError(
            f"unknown architecture class {key!r}; known: {sorted(_CLASS_BY_KEY)}"
        ) from None


def class_for_technology(tech: ReconfigTechnology) -> ArchitectureClass:
    """The Figure 2 band a technology preset belongs to."""
    return _CLASS_BY_KEY[_GRANULARITY_CLASS[tech.granularity]]


def estimate_efficiency(
    tech: ReconfigTechnology,
    *,
    gates: int = 20_000,
    ops_per_cycle_per_kgate: float = 8.0,
) -> float:
    """Achieved efficiency of a mapped block in MOPS/mW.

    The operations throughput of a spatial block scales with its gate count
    (parallel datapath) and fabric clock; power comes from the preset's
    dynamic coefficient.  ``ops_per_cycle_per_kgate`` calibrates how many
    useful operations one kilogate of datapath performs per cycle; the
    Figure 2 charts count narrow (8/16-bit) word operations of fully
    spatial datapaths, where one kilogate sustains several ops per cycle
    (8 reproduces the published MOPS/mW decades with the Chapter 3 power
    figures).
    """
    if gates <= 0:
        raise ValueError("gate count must be positive")
    ops_per_cycle = (gates / 1000.0) * ops_per_cycle_per_kgate * tech.speed_factor
    mops = ops_per_cycle * tech.fabric_clock_hz / 1e6
    power_mw = (tech.active_power_w(gates) + tech.idle_power_w(gates)) * 1e3
    if power_mw <= 0:
        raise ValueError(f"{tech.name}: non-positive power model")
    return mops / power_mw


def instruction_processor_efficiency(class_key: str) -> float:
    """Geometric-mean efficiency (MOPS/mW) of an instruction-set band."""
    band = architecture_class(class_key).mops_per_mw
    return (band[0] * band[1]) ** 0.5


def efficiency_table(
    techs: Sequence[ReconfigTechnology] = (),
) -> List[Dict[str, object]]:
    """Regenerate Figure 2 as rows of (class, band, flexibility, examples).

    Technology presets passed in are placed into their class with their
    *modelled* efficiency, so the bench can check the model lands inside
    (or near) the published band.
    """
    rows: List[Dict[str, object]] = []
    for cls in FIGURE2_CLASSES:
        modeled = {
            t.name: estimate_efficiency(t)
            for t in techs
            if _GRANULARITY_CLASS[t.granularity] == cls.key
        }
        rows.append(
            {
                "class": cls.key,
                "label": cls.label,
                "band_mops_per_mw": cls.mops_per_mw,
                "flexibility": cls.flexibility,
                "computation_style": cls.computation_style,
                "modeled": modeled,
            }
        )
    return rows


def efficiency_span_factor() -> float:
    """The end-to-end efficiency span of Figure 2 (should be 100–1000+)."""
    lo = FIGURE2_CLASSES[0].mops_per_mw[1]  # best GPP
    hi = FIGURE2_CLASSES[-1].mops_per_mw[0]  # worst ASIC
    return hi / lo
