"""Reconfigurable-technology parameter model.

The paper's Section 5.5 concludes that technology effects cannot be
generalized at system level and must instead be *parameterized*: the three
issues that matter are (1) processing speed of a functional block, (2)
resources needed for the largest context, and (3) delays and memory
consumption caused by reconfiguration.  :class:`ReconfigTechnology`
captures exactly those knobs, plus the structural properties Chapter 3
distinguishes between technology classes (granularity, number of resident
contexts, background loadability, partial reconfiguration).

All derived quantities (context bitstream size, reconfiguration time,
energy) are computed here so every consumer — the DRCF scheduler, the area
estimator, the DSE sweeps — agrees on them.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from ..kernel import SimTime, ZERO_TIME, cycles_to_time


@dataclass(frozen=True)
class ReconfigTechnology:
    """Parameters of one (re)configurable implementation technology.

    Attributes
    ----------
    name:
        Preset identifier (e.g. ``"virtex2pro"``).
    granularity:
        ``"fine"`` (bit-level LUT fabric), ``"medium"``, ``"coarse"``
        (word-level processing elements) or ``"none"`` (fixed ASIC).
    fabric_clock_hz:
        Clock of mapped functional blocks (issue 1 of Section 5.5).
    config_port_width_bits / config_port_freq_hz:
        Bandwidth of the configuration interface; together with the context
        size these produce the reconfiguration delay (issue 3).
    bits_per_gate:
        Configuration bits needed per equivalent ASIC gate of mapped
        functionality (issue 2/3: context size and memory consumption).
    context_slots:
        Number of contexts resident on the fabric simultaneously (1 for a
        single-context FPGA, 2+ for multi-context devices like MorphoSys).
    background_load:
        Whether an inactive context slot can be loaded while another
        context executes (MorphoSys-style).
    activation_overhead_cycles:
        Fabric cycles to switch to an *already resident* context.
    reconfig_overhead:
        Fixed extra delay per reconfiguration beyond the raw config-data
        transfer (controller setup, CRC, routing settle).
    speed_factor:
        Throughput of a block on this fabric relative to the same block as
        dedicated ASIC logic (< 1 for FPGAs: routing/LUT overhead).
    area_per_gate_um2:
        Silicon area per equivalent gate of mapped logic.
    active_power_w_per_gate_mhz:
        Dynamic power coefficient while computing (W per gate per MHz).
    config_power_w:
        Power drawn while reconfiguring.
    idle_power_w_per_gate:
        Static power per instantiated gate.
    partial_reconfig:
        Whether a fraction of the fabric can be reconfigured while the rest
        runs.
    """

    name: str
    granularity: str
    fabric_clock_hz: float
    config_port_width_bits: int
    config_port_freq_hz: float
    bits_per_gate: float
    context_slots: int = 1
    background_load: bool = False
    activation_overhead_cycles: int = 2
    reconfig_overhead: SimTime = ZERO_TIME
    speed_factor: float = 1.0
    area_per_gate_um2: float = 1.0
    active_power_w_per_gate_mhz: float = 1e-7
    config_power_w: float = 0.05
    idle_power_w_per_gate: float = 1e-9
    partial_reconfig: bool = False

    def __post_init__(self) -> None:
        if self.granularity not in ("fine", "medium", "coarse", "none"):
            raise ValueError(f"unknown granularity {self.granularity!r}")
        if self.granularity != "none":
            if self.config_port_width_bits <= 0 or self.config_port_freq_hz <= 0:
                raise ValueError(f"{self.name}: config port must have positive bandwidth")
            if self.context_slots < 1:
                raise ValueError(f"{self.name}: need at least one context slot")
            if self.bits_per_gate <= 0:
                raise ValueError(f"{self.name}: bits_per_gate must be positive")
        if self.speed_factor <= 0:
            raise ValueError(f"{self.name}: speed_factor must be positive")

    # -- structural ---------------------------------------------------------
    @property
    def is_reconfigurable(self) -> bool:
        return self.granularity != "none"

    @property
    def config_bandwidth_bits_per_s(self) -> float:
        """Raw configuration-port bandwidth."""
        return self.config_port_width_bits * self.config_port_freq_hz

    # -- derived quantities (Section 5.5 issues) ------------------------------
    def context_size_bits(self, gates: int) -> int:
        """Configuration bitstream size for a block of ``gates`` gates."""
        if not self.is_reconfigurable:
            return 0
        return int(math.ceil(gates * self.bits_per_gate))

    def context_size_bytes(self, gates: int) -> int:
        """Bitstream size in bytes (rounded up to whole bytes)."""
        return (self.context_size_bits(gates) + 7) // 8

    def raw_load_time(self, context_bits: int) -> SimTime:
        """Time to push ``context_bits`` through the configuration port."""
        if not self.is_reconfigurable or context_bits == 0:
            return ZERO_TIME
        beats = math.ceil(context_bits / self.config_port_width_bits)
        return cycles_to_time(beats, self.config_port_freq_hz)

    def reconfig_time(self, context_bits: int) -> SimTime:
        """Full reconfiguration delay: data load plus fixed overhead."""
        if not self.is_reconfigurable or context_bits == 0:
            return ZERO_TIME
        return self.raw_load_time(context_bits) + self.reconfig_overhead

    def activation_time(self) -> SimTime:
        """Switch delay to a context already resident in a slot."""
        if not self.is_reconfigurable:
            return ZERO_TIME
        return cycles_to_time(self.activation_overhead_cycles, self.fabric_clock_hz)

    def block_cycles(self, asic_cycles: int) -> int:
        """Cycles a block needs on this fabric, given its ASIC cycle count.

        Applies the ``speed_factor`` throughput derating (issue 1).
        """
        return int(math.ceil(asic_cycles / self.speed_factor))

    def block_compute_time(self, asic_cycles: int) -> SimTime:
        """Wall time for ``asic_cycles`` worth of work on this fabric."""
        return cycles_to_time(self.block_cycles(asic_cycles), self.fabric_clock_hz)

    # -- area / power --------------------------------------------------------
    def fabric_area_um2(self, gates: int) -> float:
        """Silicon area to host a block of ``gates`` gates."""
        return gates * self.area_per_gate_um2

    def active_power_w(self, gates: int) -> float:
        """Dynamic power while a ``gates``-gate block computes."""
        return gates * self.active_power_w_per_gate_mhz * (self.fabric_clock_hz / 1e6)

    def active_energy_j(self, gates: int, duration: SimTime) -> float:
        """Energy of an active period."""
        return self.active_power_w(gates) * duration.to_seconds()

    def config_energy_j(self, duration: SimTime) -> float:
        """Energy of a reconfiguration period."""
        return self.config_power_w * duration.to_seconds()

    def idle_power_w(self, gates: int) -> float:
        """Static power of an instantiated ``gates``-gate block."""
        return gates * self.idle_power_w_per_gate

    # -- variation ---------------------------------------------------------------
    def scaled(self, **overrides) -> "ReconfigTechnology":
        """A copy with fields replaced (used by DSE parameter sweeps)."""
        return replace(self, **overrides)

    def describe(self) -> str:
        """One-line human-readable summary used in reports."""
        if not self.is_reconfigurable:
            return f"{self.name}: fixed ASIC @ {self.fabric_clock_hz / 1e6:.0f} MHz"
        bw = self.config_bandwidth_bits_per_s / 8e6
        return (
            f"{self.name}: {self.granularity}-grain, "
            f"{self.fabric_clock_hz / 1e6:.0f} MHz fabric, "
            f"{self.context_slots} context slot(s), "
            f"config {bw:.1f} MB/s"
            f"{', background load' if self.background_load else ''}"
            f"{', partial' if self.partial_reconfig else ''}"
        )
