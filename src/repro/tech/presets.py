"""Technology presets parameterized from the paper's Chapter 3.

Each preset is anchored to the figures the paper prints:

* **Xilinx Virtex-II Pro** (system-level FPGA): fine-grain 1-bit SRAM
  fabric, byte-wide SelectMAP-style configuration port (we use 66 MHz →
  66 MB/s), single configuration plane, partial reconfiguration supported,
  fabric up to ~300 MHz (we derate mapped blocks to 150 MHz).  Bits per
  gate follows the family's ~34 Mbit bitstream over ~638 K logic gates
  (~53 bits/gate).
* **Actel VariCore EPGA** (embedded reconfigurable core): 0.18 µm, clocks
  up to 250 MHz, PEG blocks of 2 500 ASIC gates, 0.075 µW/gate/MHz,
  typically 240 mW at 100 MHz and 80 % utilization.  Configuration over the
  SoC's 32-bit bus; partitionable → partial reconfiguration.
* **MorphoSys** (array of processing elements): coarse-grain 8×8 RC array,
  32 context words of which 16 execute while the other 16 reload in the
  background — modelled as 2 resident context banks with background
  loading and a tiny per-block context (coarse granularity ⇒ ~2 bits of
  configuration per equivalent gate).
* **ASIC**: the non-reconfigurable reference with granularity ``"none"``
  (the Figure 1(a) hardwired accelerators).

Numbers not printed in the paper (e.g. leakage) are engineering estimates
for the 2003-era 0.18/0.13 µm nodes; experiments depend on ratios between
presets, not on their absolute calibration.
"""

from __future__ import annotations

from typing import Dict, List

from ..kernel import us, ZERO_TIME
from .technology import ReconfigTechnology

#: Xilinx Virtex-II Pro-style system-level FPGA.
VIRTEX2PRO = ReconfigTechnology(
    name="virtex2pro",
    granularity="fine",
    fabric_clock_hz=150e6,
    config_port_width_bits=8,
    config_port_freq_hz=66e6,
    bits_per_gate=53.0,
    context_slots=1,
    background_load=False,
    activation_overhead_cycles=0,
    reconfig_overhead=us(5),  # controller sync + CRC per reconfiguration
    speed_factor=0.5,  # LUT/routing derating vs ASIC
    area_per_gate_um2=35.0,  # fine-grain fabric area overhead
    active_power_w_per_gate_mhz=1.0e-7,
    config_power_w=0.15,
    idle_power_w_per_gate=6.0e-9,
    partial_reconfig=True,
)

#: Actel VariCore-style embedded reconfigurable core.
VARICORE = ReconfigTechnology(
    name="varicore",
    granularity="medium",
    fabric_clock_hz=250e6,
    config_port_width_bits=32,
    config_port_freq_hz=50e6,
    bits_per_gate=30.0,
    context_slots=1,
    background_load=False,
    activation_overhead_cycles=0,
    reconfig_overhead=us(2),
    speed_factor=0.7,
    area_per_gate_um2=20.0,
    active_power_w_per_gate_mhz=7.5e-8,  # the printed 0.075 uW/gate/MHz
    config_power_w=0.08,
    idle_power_w_per_gate=3.0e-9,
    partial_reconfig=True,
)

#: MorphoSys-style coarse-grain multi-context array.
MORPHOSYS = ReconfigTechnology(
    name="morphosys",
    granularity="coarse",
    fabric_clock_hz=100e6,
    config_port_width_bits=32,
    config_port_freq_hz=100e6,
    bits_per_gate=2.0,
    context_slots=2,  # active bank + background-loadable bank
    background_load=True,
    activation_overhead_cycles=1,
    reconfig_overhead=ZERO_TIME,
    speed_factor=0.9,  # word-level datapaths map near-natively
    area_per_gate_um2=8.0,
    active_power_w_per_gate_mhz=1.2e-7,
    config_power_w=0.04,
    idle_power_w_per_gate=2.0e-9,
    partial_reconfig=False,
)

#: Fixed, dedicated hardware (Figure 1(a) accelerators).
ASIC = ReconfigTechnology(
    name="asic",
    granularity="none",
    fabric_clock_hz=200e6,
    config_port_width_bits=1,
    config_port_freq_hz=1.0,
    bits_per_gate=1.0,
    context_slots=1,
    speed_factor=1.0,
    area_per_gate_um2=1.0,
    active_power_w_per_gate_mhz=2.5e-8,
    config_power_w=0.0,
    idle_power_w_per_gate=1.0e-9,
    partial_reconfig=False,
)

#: A deliberately slow single-context FPGA used to stress context thrash.
SLOW_FPGA = VIRTEX2PRO.scaled(
    name="slow_fpga",
    config_port_width_bits=8,
    config_port_freq_hz=20e6,
    reconfig_overhead=us(20),
)

#: All presets by name.
PRESETS: Dict[str, ReconfigTechnology] = {
    t.name: t
    for t in (VIRTEX2PRO, VARICORE, MORPHOSYS, ASIC, SLOW_FPGA)
}


def preset(name: str) -> ReconfigTechnology:
    """Look up a preset by name."""
    try:
        return PRESETS[name]
    except KeyError:
        raise KeyError(f"unknown technology preset {name!r}; known: {sorted(PRESETS)}") from None


def reconfigurable_presets() -> List[ReconfigTechnology]:
    """All presets that actually reconfigure (E6 sweeps iterate these)."""
    return [t for t in PRESETS.values() if t.is_reconfigurable]
