"""Real-time frame processing: periodic release, deadlines, miss rates.

The paper's motivating workloads are frame-structured (wireless baseband,
media).  At system level the designer's question is *sustainable frame
rate*: does the architecture finish each frame's block invocations before
the next frame arrives?  A :class:`FrameSource` releases frames
periodically into a queue; :func:`frame_consumer_task` drains it on a CPU;
:class:`RealTimeReport` turns the per-frame latencies into deadline-miss
statistics.  Experiment A9 sweeps the frame period across technologies to
locate each preset's sustainable rate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List

from ..cpu import Processor
from ..kernel import Fifo, Module, SimTime
from .driver import JobSpec, run_accelerator_job


@dataclass
class FrameRecord:
    """Timing of one processed frame."""

    index: int
    release_ns: float
    completion_ns: float

    @property
    def latency_ns(self) -> float:
        return self.completion_ns - self.release_ns


class FrameSource(Module):
    """Releases one frame of jobs every ``period`` into a queue.

    ``make_frame(index)`` returns the job list of frame ``index``; frames
    are queued even when processing lags (the real-time backlog case).
    """

    def __init__(
        self,
        name: str,
        parent=None,
        sim=None,
        *,
        period: SimTime,
        n_frames: int,
        make_frame: Callable[[int], List[JobSpec]],
    ) -> None:
        super().__init__(name, parent=parent, sim=sim)
        if n_frames <= 0:
            raise ValueError("need at least one frame")
        self.period = period
        self.n_frames = n_frames
        self.make_frame = make_frame
        self.queue: Fifo = Fifo(self.sim, capacity=None, name=f"{self.full_name}.q")
        self.released = 0
        self.add_thread(self._release, name="release")

    def _release(self):
        for index in range(self.n_frames):
            self.queue.nb_put((index, self.sim.now.to_ns(), self.make_frame(index)))
            self.released += 1
            if index + 1 < self.n_frames:
                yield self.period


def frame_consumer_task(
    source: FrameSource,
    bases: Dict[str, int],
    records: List[FrameRecord],
    *,
    buffer_words: int = 256,
):
    """CPU task draining the frame queue until all frames are processed."""

    def task(cpu: Processor):
        processed = 0
        while processed < source.n_frames:
            index, release_ns, jobs = yield from source.queue.get()
            for spec in jobs:
                yield from run_accelerator_job(
                    cpu,
                    bases[spec.accel],
                    spec.inputs,
                    param=spec.param,
                    coefs=spec.coefs,
                    n_outputs=spec.n_outputs,
                    buffer_words=buffer_words,
                )
            records.append(
                FrameRecord(
                    index=index,
                    release_ns=release_ns,
                    completion_ns=cpu.sim.now.to_ns(),
                )
            )
            processed += 1

    task.__name__ = "frame_consumer"
    return task


@dataclass
class RealTimeReport:
    """Deadline statistics over a set of frame records."""

    deadline_ns: float
    records: List[FrameRecord] = field(default_factory=list)

    @property
    def frames(self) -> int:
        return len(self.records)

    @property
    def misses(self) -> int:
        return sum(1 for r in self.records if r.latency_ns > self.deadline_ns)

    @property
    def miss_rate(self) -> float:
        return self.misses / self.frames if self.records else 0.0

    @property
    def max_latency_ns(self) -> float:
        return max((r.latency_ns for r in self.records), default=0.0)

    @property
    def mean_latency_ns(self) -> float:
        if not self.records:
            return 0.0
        return sum(r.latency_ns for r in self.records) / len(self.records)

    def backlog_grows(self) -> bool:
        """True if frame latency trends upward (unsustainable rate)."""
        if len(self.records) < 4:
            return False
        half = len(self.records) // 2
        first = sum(r.latency_ns for r in self.records[:half]) / half
        second = sum(r.latency_ns for r in self.records[half:]) / (
            len(self.records) - half
        )
        return second > 1.5 * first

    def summary(self) -> Dict[str, object]:
        return {
            "frames": self.frames,
            "misses": self.misses,
            "miss_rate": self.miss_rate,
            "mean_latency_us": self.mean_latency_ns / 1e3,
            "max_latency_us": self.max_latency_ns / 1e3,
            "backlog_grows": self.backlog_grows(),
        }
