"""Workload generators.

The paper's introduction motivates dynamic reconfiguration with wireless
equipment that must track "multiple or migrating international standards":
frame-structured baseband processing where different algorithm blocks run
in different runtime periods.  These generators produce :class:`JobSpec`
schedules with controllable *context locality*:

* :func:`frame_interleaved_jobs` — every frame touches every block in
  sequence (worst-case switch rate: one switch per invocation on a
  single-context fabric);
* :func:`batched_jobs` — all invocations of a block run back to back
  (best case: one switch per block);
* :func:`random_mix_jobs` — seeded random block order (intermediate);
* :func:`golden_outputs` — reference results from the executable
  specification, for end-to-end verification.

All randomness is drawn from seeded private generators; identical
arguments give identical schedules.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence

from .accelerators import (
    dct_blocks,
    fft_fixed,
    fir_filter,
    matmul_int,
    viterbi_decode,
    convolutional_encode,
    xtea_process,
)
from .driver import JobSpec

#: Default per-block job sizing (kept small so simulations stay fast while
#: still moving realistic burst traffic).
DEFAULT_SIZES = {
    "fir": 64,       # samples
    "fft": 32,       # points (64 words)
    "dct": 64,       # one 8x8 block
    "viterbi": 48,   # information bits
    "xtea": 32,      # words (16 blocks)
    "matmul": 6,     # N (72 words)
}

_FIR_TAPS = 8
_XTEA_KEY = [0x0123_4567, 0x89AB_CDEF, 0xFEDC_BA98, 0x7654_3210]


def _make_job(kind: str, rng: random.Random, sizes: Dict[str, int], label: str) -> JobSpec:
    size = sizes[kind]
    if kind == "fir":
        samples = [rng.randint(-20_000, 20_000) for _ in range(size)]
        coefs = [rng.randint(-8_000, 8_000) for _ in range(_FIR_TAPS)]
        return JobSpec("fir", samples, param=_FIR_TAPS, coefs=coefs, label=label)
    if kind == "fft":
        data = [rng.randint(-10_000, 10_000) for _ in range(2 * size)]
        return JobSpec("fft", data, param=size, label=label)
    if kind == "dct":
        pixels = [rng.randint(-128, 127) for _ in range(size)]
        return JobSpec("dct", pixels, param=0, label=label)
    if kind == "viterbi":
        bits = [rng.randint(0, 1) for _ in range(size)]
        symbols = convolutional_encode(bits)
        return JobSpec(
            "viterbi", symbols, param=size, n_outputs=size, label=label
        )
    if kind == "xtea":
        words = [rng.getrandbits(31) for _ in range(size)]
        return JobSpec("xtea", words, param=0, coefs=_XTEA_KEY, label=label)
    if kind == "matmul":
        n = size
        data = [rng.randint(-50, 50) for _ in range(2 * n * n)]
        return JobSpec("matmul", data, param=n, n_outputs=n * n, label=label)
    raise KeyError(f"unknown workload kind {kind!r}")


def frame_interleaved_jobs(
    accels: Sequence[str],
    n_frames: int,
    *,
    seed: int = 42,
    sizes: Optional[Dict[str, int]] = None,
) -> List[JobSpec]:
    """One invocation of every block per frame, frames back to back.

    On a single-context fabric this forces a context switch per
    invocation — the paper's costly case.
    """
    rng = random.Random(seed)
    sizes = {**DEFAULT_SIZES, **(sizes or {})}
    jobs: List[JobSpec] = []
    for frame in range(n_frames):
        for kind in accels:
            jobs.append(_make_job(kind, rng, sizes, f"frame{frame}.{kind}"))
    return jobs


def batched_jobs(
    accels: Sequence[str],
    n_frames: int,
    *,
    seed: int = 42,
    sizes: Optional[Dict[str, int]] = None,
) -> List[JobSpec]:
    """The same work as :func:`frame_interleaved_jobs`, grouped by block.

    One context switch per block regardless of frame count — the paper's
    cheap case ("several roughly same sized hardware accelerators that are
    not used in the same time").
    """
    rng = random.Random(seed)
    sizes = {**DEFAULT_SIZES, **(sizes or {})}
    jobs: List[JobSpec] = []
    for kind in accels:
        for frame in range(n_frames):
            jobs.append(_make_job(kind, rng, sizes, f"batch.{kind}.{frame}"))
    return jobs


def random_mix_jobs(
    accels: Sequence[str],
    n_jobs: int,
    *,
    seed: int = 42,
    sizes: Optional[Dict[str, int]] = None,
) -> List[JobSpec]:
    """A seeded random block order (intermediate context locality)."""
    rng = random.Random(seed)
    sizes = {**DEFAULT_SIZES, **(sizes or {})}
    return [
        _make_job(rng.choice(list(accels)), rng, sizes, f"mix{i}")
        for i in range(n_jobs)
    ]


def golden_outputs(spec: JobSpec) -> List[int]:
    """Reference result of a job from the executable specification."""
    if spec.accel == "fir":
        return fir_filter(spec.inputs, spec.coefs[: spec.param])
    if spec.accel == "fft":
        return fft_fixed(spec.inputs, spec.param)
    if spec.accel == "dct":
        return dct_blocks(spec.inputs)
    if spec.accel == "viterbi":
        return viterbi_decode(spec.inputs, spec.param)
    if spec.accel == "xtea":
        masked = [w & 0xFFFFFFFF for w in spec.inputs]
        out = xtea_process(masked, [k & 0xFFFFFFFF for k in spec.coefs], decrypt=bool(spec.param))
        return [w - (1 << 32) if w & 0x80000000 else w for w in out]
    if spec.accel == "matmul":
        n = spec.param
        return matmul_int(spec.inputs[: n * n], spec.inputs[n * n : 2 * n * n], n)
    raise KeyError(f"no golden model for {spec.accel!r}")


def switch_count_lower_bound(jobs: Sequence[JobSpec]) -> int:
    """Minimum context switches a single-context fabric needs for ``jobs``.

    Equals the number of adjacent job pairs that target different blocks,
    plus one for the initial load — the quantity the scheduler's
    instrumentation is checked against in tests.
    """
    if not jobs:
        return 0
    switches = 1
    for prev, cur in zip(jobs, jobs[1:]):
        if prev.accel != cur.accel:
            switches += 1
    return switches
