"""Software driver for the accelerator register protocol.

These are the software tasks the paper's flow runs on the CPU model: write
coefficients and parameters, stream the input buffer over the bus, issue
START, poll STATUS, and read back the output buffer.  The same driver works
unchanged whether the target is a dedicated accelerator (Figure 1(a)) or a
context inside a DRCF (Figure 1(b)) — that transparency is the point of the
methodology.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..cpu import Processor
from .accelerators import (
    CMD_START,
    INBUF_OFFSET,
    REG_COEF_BASE,
    REG_CTRL,
    REG_JOBSIZE,
    REG_PARAM,
    REG_STATUS,
    STATUS_DONE,
    from_words,
    to_words,
)

#: Default words per bus burst when streaming buffers.
DEFAULT_CHUNK_WORDS = 32


def run_accelerator_job(
    cpu: Processor,
    base: int,
    inputs: Sequence[int],
    *,
    param: int = 0,
    coefs: Optional[Sequence[int]] = None,
    n_outputs: Optional[int] = None,
    buffer_words: int = 256,
    chunk_words: int = DEFAULT_CHUNK_WORDS,
    poll_interval_cycles: int = 16,
    irq: Optional[tuple] = None,
):
    """Drive one job on the accelerator at ``base`` (generator).

    Returns the signed output words.  Raises if the job does not fit the
    device's buffers.

    Completion detection is STATUS polling by default.  Pass
    ``irq=(controller, source)`` (an
    :class:`~repro.bus.InterruptController` and the registered source
    name) to sleep on the interrupt line instead — no poll reads on the
    bus; the handler acknowledges the line over the bus.
    """
    if not inputs:
        raise ValueError("job needs at least one input word")
    if len(inputs) > buffer_words:
        raise ValueError(
            f"job of {len(inputs)} words exceeds buffer of {buffer_words}"
        )
    if coefs:
        yield from cpu.write(base + REG_COEF_BASE, to_words(coefs))
    yield from cpu.write(base + REG_JOBSIZE, len(inputs))
    yield from cpu.write(base + REG_PARAM, param)
    words = to_words(inputs)
    inbuf = base + INBUF_OFFSET
    for i in range(0, len(words), chunk_words):
        chunk = words[i : i + chunk_words]
        yield from cpu.write(inbuf + 4 * i, chunk)
    yield from cpu.write(base + REG_CTRL, CMD_START)
    if irq is not None:
        controller, source = irq
        line = controller.register_source(source)
        if not controller.is_pending(source):
            yield from cpu.wait_event(controller.line_event(source))
        # Interrupt handler: acknowledge the line over the bus.
        from ..bus.interrupt import REG_ACK

        yield from cpu.write(controller.base + REG_ACK, 1 << line)
    else:
        yield from cpu.poll(
            base + REG_STATUS, STATUS_DONE, STATUS_DONE, interval_cycles=poll_interval_cycles
        )
    count = n_outputs if n_outputs is not None else len(inputs)
    outbuf = base + INBUF_OFFSET + buffer_words * 4
    out_words: List[int] = []
    for i in range(0, count, chunk_words):
        n = min(chunk_words, count - i)
        chunk = yield from cpu.read(outbuf + 4 * i, n)
        out_words.extend(chunk)
    return from_words(out_words)


@dataclass
class JobSpec:
    """A declarative accelerator invocation (used by workload schedules)."""

    accel: str
    inputs: List[int]
    param: int = 0
    coefs: Optional[List[int]] = None
    n_outputs: Optional[int] = None
    label: str = ""

    def __post_init__(self) -> None:
        if not self.label:
            self.label = self.accel


@dataclass
class JobResult:
    """Outcome of one executed :class:`JobSpec`."""

    spec: JobSpec
    outputs: List[int]
    start_ns: float
    end_ns: float

    @property
    def latency_ns(self) -> float:
        return self.end_ns - self.start_ns


class JobRunner:
    """Executes :class:`JobSpec` sequences on a CPU and collects results.

    ``bases`` maps accelerator component names to bus base addresses (the
    SoC template provides it); results land in :attr:`results` in issue
    order.
    """

    def __init__(self, bases: Dict[str, int], buffer_words: int = 256) -> None:
        self.bases = dict(bases)
        self.buffer_words = buffer_words
        self.results: List[JobResult] = []

    def task(self, jobs: Sequence[JobSpec]):
        """A CPU task running ``jobs`` back to back."""

        def run_jobs(cpu: Processor):
            for spec in jobs:
                base = self.bases[spec.accel]
                start = cpu.sim.now.to_ns()
                outputs = yield from run_accelerator_job(
                    cpu,
                    base,
                    spec.inputs,
                    param=spec.param,
                    coefs=spec.coefs,
                    n_outputs=spec.n_outputs,
                    buffer_words=self.buffer_words,
                )
                self.results.append(
                    JobResult(
                        spec=spec,
                        outputs=outputs,
                        start_ns=start,
                        end_ns=cpu.sim.now.to_ns(),
                    )
                )

        run_jobs.__name__ = "job_runner"
        return run_jobs

    @property
    def total_latency_ns(self) -> float:
        return sum(r.latency_ns for r in self.results)

    def latency_by_accel(self) -> Dict[str, float]:
        out: Dict[str, float] = {}
        for result in self.results:
            out[result.spec.accel] = out.get(result.spec.accel, 0.0) + result.latency_ns
        return out
