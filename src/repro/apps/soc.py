"""SoC architecture templates (paper Figure 1).

:func:`make_baseline_netlist` builds the Figure 1(a) architecture — CPU,
DMA, memory and a set of dedicated hardware accelerators on a shared bus.
:func:`make_reconfigurable_netlist` applies the DRCF transformation to get
the Figure 1(b) architecture: selected accelerators fold into a
reconfigurable fabric whose bitstreams live in a configuration memory.

Both return the netlist plus a :class:`SocInfo` carrying the address map,
so the same workload drives either architecture unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..bus import Bus, ConfigMemory, DmaController, Memory
from ..core import Netlist, TransformReport, transform_to_drcf
from ..core.policies import ReplacementPolicy
from ..cpu import Processor
from ..tech import ReconfigTechnology, VIRTEX2PRO
from .accelerators import (
    CryptoAccelerator,
    DctAccelerator,
    FftAccelerator,
    FirAccelerator,
    MatMulAccelerator,
    ViterbiAccelerator,
)

#: Accelerator classes by short name.
ACCELERATOR_CLASSES: Dict[str, type] = {
    "fir": FirAccelerator,
    "fft": FftAccelerator,
    "dct": DctAccelerator,
    "viterbi": ViterbiAccelerator,
    "xtea": CryptoAccelerator,
    "matmul": MatMulAccelerator,
}

#: Default address map.
MEM_BASE = 0x0000_0000
ACCEL_BASE = 0x1000_0000
ACCEL_STRIDE = 0x0001_0000
CFG_BASE = 0x2000_0000


@dataclass
class SocInfo:
    """Address map and parameters shared by a SoC template's consumers."""

    accel_bases: Dict[str, int]
    mem_base: int
    cfg_base: int
    buffer_words: int
    bus_name: str = "system_bus"
    cpu_name: str = "cpu"
    config_memory_name: str = "cfgmem"
    #: Filled by :func:`make_reconfigurable_netlist`.
    drcf_name: Optional[str] = None
    transform_report: Optional[TransformReport] = None


def make_baseline_netlist(
    accels: Sequence[str] = ("fir", "fft", "viterbi", "xtea"),
    *,
    name: str = "top",
    bus_protocol: str = "split",
    arbitration: str = "fifo",
    bus_clock_hz: float = 100e6,
    cpu_clock_hz: float = 200e6,
    buffer_words: int = 256,
    mem_size_words: int = 64 * 1024,
    include_dma: bool = False,
    include_config_memory: bool = True,
    cfg_size_words: int = 4 * 1024 * 1024,
    cfg_latency_cycles: int = 2,
    accel_tech: Optional[ReconfigTechnology] = None,
) -> Tuple[Netlist, SocInfo]:
    """The Figure 1(a) SoC: dedicated accelerators on a shared bus.

    The configuration memory is included by default (idle in the baseline)
    so the transformed architecture differs *only* in the accelerator
    mapping — a controlled comparison for experiment E1.
    """
    unknown = [a for a in accels if a not in ACCELERATOR_CLASSES]
    if unknown:
        raise KeyError(f"unknown accelerators {unknown}; known: {sorted(ACCELERATOR_CLASSES)}")
    netlist = Netlist(name)
    netlist.add(
        "system_bus",
        Bus,
        clock_freq_hz=bus_clock_hz,
        protocol=bus_protocol,
        arbitration=arbitration,
    )
    netlist.add("cpu", Processor, master_of="system_bus", clock_freq_hz=cpu_clock_hz)
    netlist.add(
        "mem",
        Memory,
        slave_of="system_bus",
        base=MEM_BASE,
        size_words=mem_size_words,
        clock_freq_hz=bus_clock_hz,
    )
    if include_dma:
        netlist.add("dma", DmaController, master_of="system_bus")
    bases: Dict[str, int] = {}
    for index, short in enumerate(accels):
        base = ACCEL_BASE + index * ACCEL_STRIDE
        bases[short] = base
        kwargs: Dict[str, object] = dict(base=base, buffer_words=buffer_words)
        if accel_tech is not None:
            kwargs["tech"] = accel_tech
        netlist.add(short, ACCELERATOR_CLASSES[short], slave_of="system_bus", **kwargs)
    if include_config_memory:
        netlist.add(
            "cfgmem",
            ConfigMemory,
            slave_of="system_bus",
            base=CFG_BASE,
            size_words=cfg_size_words,
            latency_cycles=cfg_latency_cycles,
            clock_freq_hz=bus_clock_hz,
        )
    info = SocInfo(
        accel_bases=bases,
        mem_base=MEM_BASE,
        cfg_base=CFG_BASE,
        buffer_words=buffer_words,
    )
    return netlist, info


def make_reconfigurable_netlist(
    accels: Sequence[str] = ("fir", "fft", "viterbi", "xtea"),
    *,
    tech: ReconfigTechnology = VIRTEX2PRO,
    drcf_name: str = "drcf1",
    static_accels: Sequence[str] = (),
    policy: Optional[ReplacementPolicy] = None,
    use_area_slots: bool = False,
    fabric_capacity_gates: Optional[int] = None,
    config_burst_words: int = 64,
    dedicated_config_bus: bool = False,
    config_bus_clock_hz: float = 100e6,
    **baseline_kwargs,
) -> Tuple[Netlist, SocInfo]:
    """The Figure 1(b) SoC: ``accels`` folded into a DRCF.

    ``static_accels`` stay as dedicated blocks (the mixed architecture of
    Figure 1(b), which keeps some fixed accelerators alongside the
    fabric).  With ``dedicated_config_bus`` the configuration memory and
    the DRCF's master port move onto a private bus, removing configuration
    traffic from the component interface bus (memory-organization study).
    """
    all_accels = list(accels) + [a for a in static_accels if a not in accels]
    netlist, info = make_baseline_netlist(all_accels, **baseline_kwargs)
    config_bus_name = None
    if dedicated_config_bus:
        # Move the configuration memory to a private bus.
        cfg_spec = netlist.component("cfgmem")
        cfg_spec.slave_of = "config_bus"
        netlist.add(
            "config_bus",
            Bus,
            clock_freq_hz=config_bus_clock_hz,
            protocol="blocking",
            arbitration="fifo",
        )
        config_bus_name = "config_bus"
    result = transform_to_drcf(
        netlist,
        list(accels),
        tech=tech,
        config_memory="cfgmem",
        drcf_name=drcf_name,
        config_base=info.cfg_base,
        config_bus=config_bus_name,
        policy=policy,
        use_area_slots=use_area_slots,
        fabric_capacity_gates=fabric_capacity_gates,
        config_burst_words=config_burst_words,
    )
    info.drcf_name = drcf_name
    info.transform_report = result.report
    return result.netlist, info


def make_multi_fabric_netlist(
    groups: Dict[str, Tuple[Sequence[str], ReconfigTechnology]],
    *,
    config_region_bytes: int = 0x0040_0000,
    **baseline_kwargs,
) -> Tuple[Netlist, SocInfo]:
    """A SoC with several DRCFs — the "more complex architectures" the
    paper says real designs need beyond a single reconfigurable block.

    ``groups`` maps each fabric name to (accelerator names, technology).
    Each group is folded by its own transformation; bitstream regions are
    placed in disjoint windows of the shared configuration memory.  Groups
    must be disjoint.
    """
    all_accels: List[str] = []
    for accels, _tech in groups.values():
        for name in accels:
            if name in all_accels:
                raise KeyError(f"accelerator {name!r} appears in two fabric groups")
            all_accels.append(name)
    netlist, info = make_baseline_netlist(tuple(all_accels), **baseline_kwargs)
    region = info.cfg_base
    for drcf_name, (accels, tech) in groups.items():
        result = transform_to_drcf(
            netlist,
            list(accels),
            tech=tech,
            config_memory="cfgmem",
            config_base=region,
            drcf_name=drcf_name,
        )
        netlist = result.netlist
        region += config_region_bytes
    info.drcf_name = next(iter(groups))
    return netlist, info


def accelerator_gate_counts(accels: Sequence[str]) -> Dict[str, int]:
    """Default gate counts of the named accelerator classes."""
    return {name: ACCELERATOR_CLASSES[name].DEFAULT_GATES for name in accels}


def architecture_area_um2(
    accels: Sequence[str],
    *,
    asic_tech: ReconfigTechnology,
    fabric_tech: Optional[ReconfigTechnology] = None,
    folded: Sequence[str] = (),
) -> float:
    """Accelerator-subsystem silicon area of a template.

    Dedicated blocks each pay their own area in ASIC gates; folded blocks
    share one fabric sized for the largest context (plus nothing else —
    configuration memory is accounted separately by the DSE reports).
    """
    gates = accelerator_gate_counts(accels)
    area = 0.0
    folded_set = set(folded)
    for name in accels:
        if name not in folded_set:
            area += asic_tech.fabric_area_um2(gates[name])
    if folded_set:
        if fabric_tech is None:
            raise ValueError("fabric_tech required when blocks are folded")
        largest = max(gates[name] for name in folded_set)
        area += fabric_tech.fabric_area_um2(largest)
    return area
