"""Application layer: accelerator IP, SoC templates and workloads.

Everything needed to build and drive the Figure 1 architectures: the
accelerator library (:mod:`~repro.apps.accelerators`), the software driver
protocol (:mod:`~repro.apps.driver`), the baseline/reconfigurable SoC
netlists (:mod:`~repro.apps.soc`) and the frame-structured workload
generators (:mod:`~repro.apps.workloads`).
"""

from .driver import (
    DEFAULT_CHUNK_WORDS,
    JobResult,
    JobRunner,
    JobSpec,
    run_accelerator_job,
)
from .pipeline import (
    PipelineStage,
    golden_pipeline,
    run_cpu_mediated_pipeline,
    run_dma_mediated_pipeline,
)
from .realtime import (
    FrameRecord,
    FrameSource,
    RealTimeReport,
    frame_consumer_task,
)
from .soc import (
    ACCEL_BASE,
    ACCEL_STRIDE,
    ACCELERATOR_CLASSES,
    CFG_BASE,
    MEM_BASE,
    SocInfo,
    accelerator_gate_counts,
    architecture_area_um2,
    make_baseline_netlist,
    make_multi_fabric_netlist,
    make_reconfigurable_netlist,
)
from .workloads import (
    DEFAULT_SIZES,
    batched_jobs,
    frame_interleaved_jobs,
    golden_outputs,
    random_mix_jobs,
    switch_count_lower_bound,
)

__all__ = [
    "ACCEL_BASE",
    "ACCEL_STRIDE",
    "ACCELERATOR_CLASSES",
    "CFG_BASE",
    "DEFAULT_CHUNK_WORDS",
    "DEFAULT_SIZES",
    "FrameRecord",
    "FrameSource",
    "JobResult",
    "JobRunner",
    "JobSpec",
    "MEM_BASE",
    "PipelineStage",
    "RealTimeReport",
    "SocInfo",
    "accelerator_gate_counts",
    "architecture_area_um2",
    "batched_jobs",
    "frame_consumer_task",
    "frame_interleaved_jobs",
    "golden_outputs",
    "golden_pipeline",
    "make_baseline_netlist",
    "make_multi_fabric_netlist",
    "make_reconfigurable_netlist",
    "random_mix_jobs",
    "run_accelerator_job",
    "run_cpu_mediated_pipeline",
    "run_dma_mediated_pipeline",
    "switch_count_lower_bound",
]
