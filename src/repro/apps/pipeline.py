"""Accelerator pipelines: chaining jobs through multiple blocks.

Frame processing rarely stops at one block — FIR output feeds the FFT,
decoder output feeds the cipher.  Two data-movement styles are modelled:

* :func:`run_cpu_mediated_pipeline` — software reads stage N's output
  buffer and writes it into stage N+1's input buffer (two bus crossings
  per word, CPU occupied);
* :func:`run_dma_mediated_pipeline` — a DMA descriptor copies output
  buffer → input buffer directly.

The DMA variant exposes a modeling-visible pathology the methodology
exists to catch: when both stages are *contexts of the same DRCF*, every
DMA burst alternates between source and destination addresses, forcing a
context switch **per burst chunk**.  Experiment A8 sweeps the burst length
to show the thrash and its remedy (whole-buffer bursts or fabrics sized to
keep both contexts resident).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..bus import DmaController, DmaDescriptor
from ..cpu import Processor
from .accelerators import (
    CMD_START,
    INBUF_OFFSET,
    REG_COEF_BASE,
    REG_CTRL,
    REG_JOBSIZE,
    REG_PARAM,
    REG_STATUS,
    STATUS_DONE,
    from_words,
    to_words,
)
from .driver import DEFAULT_CHUNK_WORDS
from .workloads import golden_outputs
from .driver import JobSpec


@dataclass
class PipelineStage:
    """One stage of an accelerator pipeline (inputs come from upstream)."""

    accel: str
    param: int = 0
    coefs: Optional[List[int]] = None
    #: Words produced per job; None = same as the stage's input length.
    n_outputs: Optional[int] = None


def _outbuf(base: int, buffer_words: int) -> int:
    return base + INBUF_OFFSET + buffer_words * 4


def _configure_and_start(cpu: Processor, base: int, n_inputs: int, stage: PipelineStage):
    if stage.coefs:
        yield from cpu.write(base + REG_COEF_BASE, to_words(stage.coefs))
    yield from cpu.write(base + REG_JOBSIZE, n_inputs)
    yield from cpu.write(base + REG_PARAM, stage.param)
    yield from cpu.write(base + REG_CTRL, CMD_START)
    yield from cpu.poll(base + REG_STATUS, STATUS_DONE, STATUS_DONE)


def run_cpu_mediated_pipeline(
    cpu: Processor,
    bases: Dict[str, int],
    stages: Sequence[PipelineStage],
    inputs: Sequence[int],
    *,
    buffer_words: int = 256,
    chunk_words: int = DEFAULT_CHUNK_WORDS,
):
    """Run ``stages`` with software moving the data (generator).

    Returns the final stage's signed output words.
    """
    data = to_words(inputs)
    for stage in stages:
        base = bases[stage.accel]
        for i in range(0, len(data), chunk_words):
            yield from cpu.write(base + INBUF_OFFSET + 4 * i, data[i : i + chunk_words])
        yield from _configure_and_start(cpu, base, len(data), stage)
        count = stage.n_outputs if stage.n_outputs is not None else len(data)
        out: List[int] = []
        src = _outbuf(base, buffer_words)
        for i in range(0, count, chunk_words):
            n = min(chunk_words, count - i)
            chunk = yield from cpu.read(src + 4 * i, n)
            out.extend(chunk)
        data = out
    return from_words(data)


def run_dma_mediated_pipeline(
    cpu: Processor,
    dma: DmaController,
    bases: Dict[str, int],
    stages: Sequence[PipelineStage],
    inputs: Sequence[int],
    *,
    buffer_words: int = 256,
    chunk_words: int = DEFAULT_CHUNK_WORDS,
    dma_burst_words: int = DEFAULT_CHUNK_WORDS,
):
    """Run ``stages`` with DMA moving inter-stage data (generator).

    The CPU loads only the first stage's input and reads only the last
    stage's output; buffer-to-buffer copies go through ``dma``.
    """
    if not stages:
        raise ValueError("pipeline needs at least one stage")
    data = to_words(inputs)
    first = bases[stages[0].accel]
    for i in range(0, len(data), chunk_words):
        yield from cpu.write(first + INBUF_OFFSET + 4 * i, data[i : i + chunk_words])
    count = len(data)
    for index, stage in enumerate(stages):
        base = bases[stage.accel]
        yield from _configure_and_start(cpu, base, count, stage)
        count = stage.n_outputs if stage.n_outputs is not None else count
        if index + 1 < len(stages):
            nxt = bases[stages[index + 1].accel]
            done = dma.submit(
                DmaDescriptor(
                    src=_outbuf(base, buffer_words),
                    dst=nxt + INBUF_OFFSET,
                    words=count,
                    burst=dma_burst_words,
                    tags=["pipeline"],
                )
            )
            yield from cpu.wait_event(done)
    last = bases[stages[-1].accel]
    out: List[int] = []
    src = _outbuf(last, buffer_words)
    for i in range(0, count, chunk_words):
        n = min(chunk_words, count - i)
        chunk = yield from cpu.read(src + 4 * i, n)
        out.extend(chunk)
    return from_words(out)


def golden_pipeline(stages: Sequence[PipelineStage], inputs: Sequence[int]) -> List[int]:
    """Executable-specification result of the whole pipeline."""
    data = list(inputs)
    for stage in stages:
        spec = JobSpec(
            stage.accel,
            data,
            param=stage.param,
            coefs=stage.coefs,
            n_outputs=stage.n_outputs,
        )
        data = golden_outputs(spec)
        if stage.n_outputs is not None:
            data = data[: stage.n_outputs]
    return data
