"""8×8 integer DCT accelerator (image/video pipeline block).

Processes JOBSIZE/64 independent 8×8 blocks with a separable 2-D type-II
DCT using a Q12 cosine table: rows then columns, with a 12-bit rescale per
pass.  Matches the shape of the JPEG/MPEG forward DCT used in 2003-era SoC
media accelerators.
"""

from __future__ import annotations

import math
from typing import List, Sequence

from .base import Accelerator

_Q = 12
#: Q12 type-II DCT basis: C[k][n] = s(k)·cos(π(2n+1)k/16).
_DCT_TABLE: List[List[int]] = []
for _k in range(8):
    _s = math.sqrt(1.0 / 8.0) if _k == 0 else math.sqrt(2.0 / 8.0)
    _DCT_TABLE.append(
        [round(_s * math.cos(math.pi * (2 * _n + 1) * _k / 16.0) * (1 << _Q)) for _n in range(8)]
    )


def dct_1d(vec: Sequence[int]) -> List[int]:
    """One 8-point integer DCT pass (Q12 table, rescaled)."""
    if len(vec) != 8:
        raise ValueError("dct_1d needs exactly 8 values")
    return [
        (sum(_DCT_TABLE[k][n] * vec[n] for n in range(8)) + (1 << (_Q - 1))) >> _Q
        for k in range(8)
    ]


def dct_block(block: Sequence[int]) -> List[int]:
    """2-D DCT of one row-major 8×8 block."""
    if len(block) != 64:
        raise ValueError("dct_block needs exactly 64 values")
    rows = [dct_1d(block[8 * r : 8 * r + 8]) for r in range(8)]
    out = [0] * 64
    for c in range(8):
        col = dct_1d([rows[r][c] for r in range(8)])
        for r in range(8):
            out[8 * r + c] = col[r]
    return out


def dct_blocks(samples: Sequence[int]) -> List[int]:
    """2-D DCT of consecutive 8×8 blocks (length must be a multiple of 64)."""
    if len(samples) % 64:
        raise ValueError("input length must be a multiple of 64")
    out: List[int] = []
    for b in range(0, len(samples), 64):
        out.extend(dct_block(samples[b : b + 64]))
    return out


class DctAccelerator(Accelerator):
    """2-D 8×8 DCT over JOBSIZE/64 blocks (JOBSIZE multiple of 64).

    Cycle model: 160 cycles per block (16 one-dimensional passes at
    ~10 cycles each on a 4-multiplier datapath).
    """

    DEFAULT_GATES = 18_000
    ALGORITHM = "dct"
    CYCLES_PER_BLOCK = 160

    def compute(self, inputs: List[int], param: int, coefs: List[int]) -> List[int]:
        return dct_blocks(inputs)

    def job_cycles(self, jobsize: int, param: int) -> int:
        return (jobsize // 64) * self.CYCLES_PER_BLOCK + 16
