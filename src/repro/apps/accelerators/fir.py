"""FIR filter accelerator (Q15 fixed point).

The archetypal wireless-baseband block (channel/pulse-shaping filter).
Coefficients are Q15 signed values in the COEF registers; PARAM holds the
tap count.  The golden function is exposed as :func:`fir_filter` so tests
and the executable specification share it.
"""

from __future__ import annotations

from typing import List, Sequence

from ...kernel import saturate_signed
from .base import Accelerator


def fir_filter(samples: Sequence[int], coefs: Sequence[int]) -> List[int]:
    """Direct-form FIR: ``y[n] = sat32(Σ_k coef[k]·x[n−k] >> 15)``.

    Samples before the start of the sequence are zero (streaming reset).
    """
    out: List[int] = []
    n_taps = len(coefs)
    for n in range(len(samples)):
        acc = 0
        for k in range(n_taps):
            if n - k >= 0:
                acc += coefs[k] * samples[n - k]
        out.append(saturate_signed(acc >> 15, 32))
    return out


class FirAccelerator(Accelerator):
    """A ``PARAM``-tap Q15 FIR filter over ``JOBSIZE`` samples.

    Cycle model: 4 parallel MAC units, one output per ``ceil(taps/4)``
    cycles, plus an 8-cycle pipeline fill.
    """

    DEFAULT_GATES = 12_000
    ALGORITHM = "fir"
    MAC_UNITS = 4

    def compute(self, inputs: List[int], param: int, coefs: List[int]) -> List[int]:
        n_taps = max(1, min(param, len(coefs)))
        return fir_filter(inputs, coefs[:n_taps])

    def job_cycles(self, jobsize: int, param: int) -> int:
        n_taps = max(1, param)
        per_sample = -(-n_taps // self.MAC_UNITS)
        return jobsize * per_sample + 8
