"""Integer matrix-multiply accelerator.

A word-level, highly regular kernel — exactly the workload class the paper
says MorphoSys-style coarse-grain arrays target ("inherent parallelism,
high regularity, word-level granularity and computation intensive
nature").  PARAM is the dimension N; the input buffer holds A then B
row-major (2·N² words); the output is C = A·B (wrapping 32-bit signed).
"""

from __future__ import annotations

from typing import List, Sequence

from .base import Accelerator

_MASK = 0xFFFFFFFF


def _wrap32(value: int) -> int:
    value &= _MASK
    return value - (1 << 32) if value & 0x80000000 else value


def matmul_int(a: Sequence[int], b: Sequence[int], n: int) -> List[int]:
    """Row-major N×N integer matrix product with 32-bit wrapping."""
    if len(a) < n * n or len(b) < n * n:
        raise ValueError(f"need {n * n} words per operand")
    out: List[int] = []
    for i in range(n):
        row = a[i * n : (i + 1) * n]
        for j in range(n):
            acc = 0
            for k in range(n):
                acc += row[k] * b[k * n + j]
            out.append(_wrap32(acc))
    return out


class MatMulAccelerator(Accelerator):
    """N×N integer matrix multiply (N = PARAM, JOBSIZE = 2·N²).

    Cycle model: a 4×4 MAC array retiring 16 multiply-accumulates per
    cycle ⇒ ``N³/16`` compute cycles plus ``2·N²`` operand streaming.
    """

    DEFAULT_GATES = 22_000
    ALGORITHM = "matmul"
    MAC_ARRAY = 16

    def compute(self, inputs: List[int], param: int, coefs: List[int]) -> List[int]:
        n = param
        if n <= 0 or len(inputs) < 2 * n * n:
            raise ValueError(f"matmul needs 2*N^2={2 * n * n} input words, got {len(inputs)}")
        return matmul_int(inputs[: n * n], inputs[n * n : 2 * n * n], n)

    def job_cycles(self, jobsize: int, param: int) -> int:
        n = max(1, param)
        return -(-(n ** 3) // self.MAC_ARRAY) + 2 * n * n
