"""Hard-decision Viterbi decoder accelerator (K=7, rate 1/2).

The convolutional decoder of IS-95/802.11a-era wireless standards, using
the standard generator polynomials G0=171₈, G1=133₈ over 64 states.  Input
words each carry one received symbol pair in bits [1:0]; output words carry
one decoded bit each.  PARAM gives the number of information bits
(``jobsize`` symbols are consumed, including the tail).
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from .base import Accelerator

K = 7
N_STATES = 1 << (K - 1)
G0 = 0o171
G1 = 0o133


def _parity(x: int) -> int:
    return bin(x).count("1") & 1


def _encode_step(state: int, bit: int) -> Tuple[int, int]:
    """One encoder step: (new_state, 2-bit output symbol)."""
    reg = (bit << (K - 1)) | state
    symbol = (_parity(reg & G0) << 1) | _parity(reg & G1)
    return reg >> 1, symbol


def convolutional_encode(bits: Sequence[int]) -> List[int]:
    """Encode ``bits`` (plus an implicit K−1 zero tail) into symbol words."""
    state = 0
    symbols: List[int] = []
    for bit in list(bits) + [0] * (K - 1):
        state, symbol = _encode_step(state, bit & 1)
        symbols.append(symbol)
    return symbols


# Precomputed trellis: for each (state, input bit): next state and symbol.
_NEXT: List[List[int]] = [[0] * 2 for _ in range(N_STATES)]
_SYM: List[List[int]] = [[0] * 2 for _ in range(N_STATES)]
for _s in range(N_STATES):
    for _b in range(2):
        _ns, _sym = _encode_step(_s, _b)
        _NEXT[_s][_b] = _ns
        _SYM[_s][_b] = _sym


def viterbi_decode(symbols: Sequence[int], n_bits: int) -> List[int]:
    """Hard-decision Viterbi decode of ``symbols`` to ``n_bits`` bits.

    Standard add-compare-select over the 64-state trellis, full traceback.
    Requires ``len(symbols) >= n_bits + K - 1`` (tail included).
    """
    n_sym = n_bits + K - 1
    if len(symbols) < n_sym:
        raise ValueError(f"need {n_sym} symbols to decode {n_bits} bits")
    inf = 1 << 30
    metrics = [inf] * N_STATES
    metrics[0] = 0
    # survivors[t][state] = (prev_state, bit)
    survivors: List[List[Tuple[int, int]]] = []
    for t in range(n_sym):
        rx = symbols[t] & 0x3
        new_metrics = [inf] * N_STATES
        column: List[Tuple[int, int]] = [(0, 0)] * N_STATES
        for state in range(N_STATES):
            metric = metrics[state]
            if metric >= inf:
                continue
            for bit in range(2):
                branch = _SYM[state][bit] ^ rx
                cost = metric + ((branch >> 1) & 1) + (branch & 1)
                nxt = _NEXT[state][bit]
                if cost < new_metrics[nxt]:
                    new_metrics[nxt] = cost
                    column[nxt] = (state, bit)
        metrics = new_metrics
        survivors.append(column)
    # Tail forces the encoder back to state 0.
    state = 0
    bits_rev: List[int] = []
    for t in range(n_sym - 1, -1, -1):
        prev, bit = survivors[t][state]
        bits_rev.append(bit)
        state = prev
    decoded = bits_rev[::-1][:n_bits]
    return decoded


class ViterbiAccelerator(Accelerator):
    """K=7 rate-1/2 hard-decision Viterbi decoder.

    JOBSIZE = number of symbol words; PARAM = number of information bits.
    Cycle model: 8 parallel ACS units over 64 states per symbol (8 cycles
    per symbol) plus a one-cycle-per-bit traceback.
    """

    DEFAULT_GATES = 30_000
    ALGORITHM = "viterbi"
    ACS_UNITS = 8

    def compute(self, inputs: List[int], param: int, coefs: List[int]) -> List[int]:
        return viterbi_decode(inputs, param)

    def job_cycles(self, jobsize: int, param: int) -> int:
        return jobsize * (N_STATES // self.ACS_UNITS) + param
