"""Block-cipher accelerator (XTEA).

The field-upgradeable crypto block from the paper's motivation: ciphers are
exactly the functionality equipment makers swap via firmware when standards
migrate.  XTEA (64-bit blocks, 128-bit key, 32 rounds) is implemented
bit-exactly on 32-bit words; the key lives in COEF[0..3].  PARAM selects
encrypt (0) or decrypt (1).
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from .base import Accelerator

_MASK = 0xFFFFFFFF
_DELTA = 0x9E3779B9
N_ROUNDS = 32


def xtea_encrypt_block(v0: int, v1: int, key: Sequence[int]) -> Tuple[int, int]:
    """Encrypt one 64-bit block (two 32-bit words) with a 4-word key."""
    v0 &= _MASK
    v1 &= _MASK
    total = 0
    for _ in range(N_ROUNDS):
        v0 = (v0 + ((((v1 << 4) ^ (v1 >> 5)) + v1) ^ (total + key[total & 3]))) & _MASK
        total = (total + _DELTA) & _MASK
        v1 = (v1 + ((((v0 << 4) ^ (v0 >> 5)) + v0) ^ (total + key[(total >> 11) & 3]))) & _MASK
    return v0, v1


def xtea_decrypt_block(v0: int, v1: int, key: Sequence[int]) -> Tuple[int, int]:
    """Inverse of :func:`xtea_encrypt_block`."""
    v0 &= _MASK
    v1 &= _MASK
    total = (_DELTA * N_ROUNDS) & _MASK
    for _ in range(N_ROUNDS):
        v1 = (v1 - ((((v0 << 4) ^ (v0 >> 5)) + v0) ^ (total + key[(total >> 11) & 3]))) & _MASK
        total = (total - _DELTA) & _MASK
        v0 = (v0 - ((((v1 << 4) ^ (v1 >> 5)) + v1) ^ (total + key[total & 3]))) & _MASK
    return v0, v1


def xtea_process(words: Sequence[int], key: Sequence[int], decrypt: bool = False) -> List[int]:
    """Encrypt/decrypt an even-length word sequence block by block."""
    if len(words) % 2:
        raise ValueError("XTEA needs an even number of words")
    if len(key) < 4:
        raise ValueError("XTEA needs a 4-word key")
    op = xtea_decrypt_block if decrypt else xtea_encrypt_block
    out: List[int] = []
    for i in range(0, len(words), 2):
        v0, v1 = op(words[i], words[i + 1], key)
        out.append(v0)
        out.append(v1)
    return out


class CryptoAccelerator(Accelerator):
    """XTEA cipher over JOBSIZE words (PARAM: 0 = encrypt, 1 = decrypt).

    Cycle model: one round per cycle, two half-rounds pipelined ⇒ 32
    cycles per 64-bit block plus a 4-cycle key schedule.
    """

    DEFAULT_GATES = 8_000
    ALGORITHM = "xtea"

    def compute(self, inputs: List[int], param: int, coefs: List[int]) -> List[int]:
        key = [c & _MASK for c in coefs[:4]]
        return xtea_process([w & _MASK for w in inputs], key, decrypt=bool(param))

    def job_cycles(self, jobsize: int, param: int) -> int:
        return (jobsize // 2) * N_ROUNDS + 4
