"""Hardware-accelerator base model.

These are the ``hwacc`` modules of the paper's example: bus slaves with an
address range advertised through ``get_low_add``/``get_high_add`` and a
register + buffer map, driven by software over the bus:

======================  =======================================================
offset (from base)      register
======================  =======================================================
``0x00``                CTRL (write 1 = START, write 2 = SOFT RESET)
``0x04``                STATUS (bit0 DONE, bit1 BUSY; read clears nothing)
``0x08``                JOBSIZE (number of input words to process)
``0x0c``                PARAM (algorithm-specific scalar, e.g. FFT points)
``0x10``–``0x4f``       COEF[0..15] (coefficients/keys)
``0x100``…              input buffer (``buffer_words`` words)
``0x100 + 4·buffer``…   output buffer (``buffer_words`` words)
======================  =======================================================

An accelerator is *functional and timed*: a START command launches an
internal thread that computes the subclass's golden function bit-exactly
(:meth:`compute`) and consumes the time given by the subclass's cycle model
(:meth:`job_cycles`) mapped through the implementation technology
(Section 5.5 issue 1 — the same block is slower on a fine-grain fabric than
as dedicated logic).  While computing, ``busy`` is set and ``idle_event``
fires on completion; the DRCF scheduler honours this handshake so a context
is never reconfigured away mid-computation.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Union

from ...bus import BusSlaveIf, normalize_write_data
from ...kernel import Event, Module, SimTime, SimulationError, ZERO_TIME
from ...tech import ASIC, ReconfigTechnology

#: Register word offsets.
REG_CTRL = 0x00
REG_STATUS = 0x04
REG_JOBSIZE = 0x08
REG_PARAM = 0x0C
REG_COEF_BASE = 0x10
N_COEFS = 16
#: Offset of the input buffer from the accelerator base address.
INBUF_OFFSET = 0x100

#: CTRL commands.
CMD_START = 1
CMD_RESET = 2

#: STATUS bits.
STATUS_DONE = 0x1
STATUS_BUSY = 0x2

_WORD_MASK = 0xFFFFFFFF


class Accelerator(Module, BusSlaveIf):
    """Base class for all accelerator IP blocks.

    Subclasses implement :meth:`compute` (the golden function over signed
    32-bit words) and :meth:`job_cycles` (the ASIC-reference cycle count),
    and may set :attr:`DEFAULT_GATES`.

    Parameters
    ----------
    base:
        Base address on the bus.
    buffer_words:
        Capacity of each of the input and output buffers.
    gates:
        Equivalent gate count (resource model; defaults to the class's
        ``DEFAULT_GATES``).
    tech:
        Implementation technology (timing derate + clock); dedicated ASIC
        by default, replaced by the fabric preset when mapped to a DRCF.
    access_cycles:
        Slave-side cycles to serve one register/buffer access.
    """

    DEFAULT_GATES = 10_000
    #: Human-readable algorithm name (overridden by subclasses).
    ALGORITHM = "generic"

    def __init__(
        self,
        name: str,
        parent: Optional[Module] = None,
        sim=None,
        *,
        base: int,
        buffer_words: int = 256,
        gates: Optional[int] = None,
        tech: ReconfigTechnology = ASIC,
        access_cycles: int = 1,
    ) -> None:
        super().__init__(name, parent=parent, sim=sim)
        if base % 4:
            raise SimulationError(f"{name}: base address must be word aligned")
        if buffer_words <= 0:
            raise SimulationError(f"{name}: buffer_words must be positive")
        self.base = base
        self.buffer_words = buffer_words
        self.gates = gates if gates is not None else self.DEFAULT_GATES
        self.tech = tech
        self.access_cycles = access_cycles
        # Register file.
        self._status = 0
        self._jobsize = 0
        self._param = 0
        self._coefs: List[int] = [0] * N_COEFS
        self._inbuf: List[int] = [0] * buffer_words
        self._outbuf: List[int] = [0] * buffer_words
        # Execution state.
        self.busy = False
        self.idle_event = Event(self.sim, f"{self.full_name}.idle")
        self._start_event = Event(self.sim, f"{self.full_name}.start")
        #: Optional hook set by a wrapping DRCF: ``sink(start, end)``.
        self.compute_sink = None
        #: Optional interrupt sink (see :meth:`connect_irq`).
        self.irq_sink = None
        self.irq_source = self.full_name
        # Statistics.
        self.jobs_done = 0
        self.total_compute_time: SimTime = ZERO_TIME
        self.add_thread(self._engine, name="engine", daemon=True)

    def connect_irq(self, controller, line: Optional[int] = None) -> int:
        """Route job completion to an interrupt controller line.

        Registers this accelerator as a source on ``controller`` (an
        :class:`~repro.bus.InterruptController`) and returns the line
        number.  Software can then sleep on
        ``controller.line_event(self.irq_source)`` instead of polling
        STATUS — removing the poll reads from the bus.
        """
        line = controller.register_source(self.irq_source, line)
        self.irq_sink = controller
        return line

    # -- subclass hooks ------------------------------------------------------
    def compute(self, inputs: List[int], param: int, coefs: List[int]) -> List[int]:
        """Golden function: signed-word inputs → signed-word outputs."""
        raise NotImplementedError

    def job_cycles(self, jobsize: int, param: int) -> int:
        """Cycle count of one job on dedicated (ASIC) logic."""
        raise NotImplementedError

    # -- address map ----------------------------------------------------------
    def get_low_add(self) -> int:
        return self.base

    def get_high_add(self) -> int:
        return self.base + INBUF_OFFSET + 2 * self.buffer_words * 4 - 1

    @property
    def inbuf_addr(self) -> int:
        """Bus address of the input buffer."""
        return self.base + INBUF_OFFSET

    @property
    def outbuf_addr(self) -> int:
        """Bus address of the output buffer."""
        return self.base + INBUF_OFFSET + self.buffer_words * 4

    # -- BusSlaveIf -----------------------------------------------------------
    def read(self, addr: int, count: int = 1):
        """Slave burst read (generator)."""
        yield self._access_time(count)
        offset = self._offset(addr)
        return [self._read_word(offset + 4 * i) for i in range(count)]

    def write(self, addr: int, data: Union[int, Sequence[int]]):
        """Slave burst write (generator)."""
        words = normalize_write_data(data)
        yield self._access_time(len(words))
        offset = self._offset(addr)
        for i, word in enumerate(words):
            self._write_word(offset + 4 * i, word & _WORD_MASK)
        return True

    def _access_time(self, words: int) -> SimTime:
        return self.tech.block_compute_time(self.access_cycles * words)

    def _offset(self, addr: int) -> int:
        if addr % 4:
            raise SimulationError(f"{self.full_name}: unaligned access {addr:#x}")
        offset = addr - self.base
        if offset < 0 or addr > self.get_high_add():
            raise SimulationError(
                f"{self.full_name}: access {addr:#x} outside "
                f"[{self.get_low_add():#x}, {self.get_high_add():#x}]"
            )
        return offset

    def _read_word(self, offset: int) -> int:
        if offset == REG_CTRL:
            return 0
        if offset == REG_STATUS:
            return self._status
        if offset == REG_JOBSIZE:
            return self._jobsize
        if offset == REG_PARAM:
            return self._param
        if REG_COEF_BASE <= offset < REG_COEF_BASE + 4 * N_COEFS:
            return self._coefs[(offset - REG_COEF_BASE) // 4]
        index = (offset - INBUF_OFFSET) // 4
        if 0 <= index < self.buffer_words:
            return self._inbuf[index]
        index -= self.buffer_words
        if 0 <= index < self.buffer_words:
            return self._outbuf[index]
        raise SimulationError(f"{self.full_name}: read from unmapped offset {offset:#x}")

    def _write_word(self, offset: int, word: int) -> None:
        if offset == REG_CTRL:
            self._command(word)
        elif offset == REG_JOBSIZE:
            self._jobsize = word
        elif offset == REG_PARAM:
            self._param = word
        elif REG_COEF_BASE <= offset < REG_COEF_BASE + 4 * N_COEFS:
            self._coefs[(offset - REG_COEF_BASE) // 4] = word
        elif offset == REG_STATUS:
            pass  # read-only; writes ignored like real status registers
        else:
            index = (offset - INBUF_OFFSET) // 4
            if 0 <= index < self.buffer_words:
                self._inbuf[index] = word
            else:
                index -= self.buffer_words
                if 0 <= index < self.buffer_words:
                    self._outbuf[index] = word
                else:
                    raise SimulationError(
                        f"{self.full_name}: write to unmapped offset {offset:#x}"
                    )

    def _command(self, word: int) -> None:
        if word == CMD_START:
            if self.busy:
                raise SimulationError(f"{self.full_name}: START while busy")
            if not 0 < self._jobsize <= self.buffer_words:
                raise SimulationError(
                    f"{self.full_name}: START with invalid JOBSIZE {self._jobsize}"
                )
            self._status = STATUS_BUSY
            self.busy = True
            self._start_event.notify()
        elif word == CMD_RESET:
            if self.busy:
                raise SimulationError(f"{self.full_name}: RESET while busy")
            self._status = 0
            self._jobsize = 0
            self._param = 0
        else:
            raise SimulationError(f"{self.full_name}: unknown CTRL command {word}")

    # -- the compute engine ----------------------------------------------------
    def _engine(self):
        while True:
            yield self._start_event
            start = self.sim.now
            inputs = [_to_signed(w) for w in self._inbuf[: self._jobsize]]
            outputs = self.compute(inputs, self._param, [_to_signed(c) for c in self._coefs])
            if len(outputs) > self.buffer_words:
                raise SimulationError(
                    f"{self.full_name}: compute produced {len(outputs)} words, "
                    f"buffer holds {self.buffer_words}"
                )
            duration = self.tech.block_compute_time(
                self.job_cycles(self._jobsize, self._param)
            )
            if duration > ZERO_TIME:
                yield duration
            for i, value in enumerate(outputs):
                self._outbuf[i] = value & _WORD_MASK
            end = self.sim.now
            self.jobs_done += 1
            self.total_compute_time = self.total_compute_time + (end - start)
            if self.compute_sink is not None:
                self.compute_sink(start, end)
            self.busy = False
            self._status = STATUS_DONE
            self.idle_event.notify()
            if self.irq_sink is not None:
                self.irq_sink.raise_irq(self.irq_source)

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}({self.full_name!r}, base={self.base:#x}, "
            f"tech={self.tech.name})"
        )


def _to_signed(word: int) -> int:
    """Reinterpret a 32-bit unsigned word as signed."""
    word &= _WORD_MASK
    return word - (1 << 32) if word & 0x80000000 else word


def to_words(values: Sequence[int]) -> List[int]:
    """Encode signed integers as 32-bit bus words (two's complement)."""
    return [v & _WORD_MASK for v in values]


def from_words(words: Sequence[int]) -> List[int]:
    """Decode 32-bit bus words to signed integers."""
    return [_to_signed(w) for w in words]
