"""Streaming (bus-master) accelerators.

The paper's ``hwacc`` has a master port (``mst_port``) bound through the
generated DRCF (``hwa->mst_port(mst_port)``): accelerators that fetch
their own operands from system memory instead of having the CPU push them.
:class:`StreamingAccelerator` adds that mode to any accelerator algorithm:

* two extra registers, SRC (``0x50``) and DST (``0x54``), hold system
  memory addresses;
* on START the engine master-reads JOBSIZE words from SRC, computes the
  inherited golden function, and master-writes the results to DST (also
  mirrored into the output buffer for register-style readback).

Inside a DRCF the master traffic rides the fabric's port — visible on the
bus as coming from the DRCF, exactly like the paper's generated binding.

Concrete classes are built by mixing with an algorithm class, e.g.
:class:`StreamingFirAccelerator`.
"""

from __future__ import annotations

from typing import List

from ...bus import BusMasterIf
from ...kernel import Port, SimulationError, ZERO_TIME
from .base import Accelerator, STATUS_DONE, _to_signed, _WORD_MASK
from .fir import FirAccelerator
from .crypto import CryptoAccelerator

#: Extra register offsets (between COEF[15] at 0x4C and the 0x100 buffer).
REG_SRC = 0x50
REG_DST = 0x54

#: Words per master-port burst while streaming.
STREAM_BURST_WORDS = 32


class StreamingAccelerator(Accelerator):
    """Accelerator variant that fetches/stores its data as a bus master."""

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.mst_port = Port(self, BusMasterIf, name="mst_port")
        self._src = 0
        self._dst = 0
        self.words_streamed = 0

    # -- register map extension ---------------------------------------------
    def _read_word(self, offset: int) -> int:
        if offset == REG_SRC:
            return self._src
        if offset == REG_DST:
            return self._dst
        return super()._read_word(offset)

    def _write_word(self, offset: int, word: int) -> None:
        if offset == REG_SRC:
            self._src = word
        elif offset == REG_DST:
            self._dst = word
        else:
            super()._write_word(offset, word)

    # -- the streaming engine ---------------------------------------------------
    def _engine(self):
        label = self.full_name
        while True:
            yield self._start_event
            start = self.sim.now
            # Fetch operands from system memory (master reads).
            data: List[int] = []
            fetched = 0
            while fetched < self._jobsize:
                chunk = min(STREAM_BURST_WORDS, self._jobsize - fetched)
                words = yield from self.mst_port.read(
                    self._src + 4 * fetched, chunk, master=label, tags=["stream"]
                )
                data.extend(words)
                fetched += chunk
            self.words_streamed += fetched
            inputs = [_to_signed(w) for w in data]
            outputs = self.compute(
                inputs, self._param, [_to_signed(c) for c in self._coefs]
            )
            if len(outputs) > self.buffer_words:
                raise SimulationError(
                    f"{self.full_name}: compute produced {len(outputs)} words, "
                    f"buffer holds {self.buffer_words}"
                )
            duration = self.tech.block_compute_time(
                self.job_cycles(self._jobsize, self._param)
            )
            if duration > ZERO_TIME:
                yield duration
            # Store results (master writes) and mirror into the out buffer.
            raw = [w & _WORD_MASK for w in outputs]
            for i, value in enumerate(raw):
                self._outbuf[i] = value
            stored = 0
            while stored < len(raw):
                chunk = raw[stored : stored + STREAM_BURST_WORDS]
                yield from self.mst_port.write(
                    self._dst + 4 * stored, chunk, master=label, tags=["stream"]
                )
                stored += len(chunk)
            self.words_streamed += len(raw)
            end = self.sim.now
            self.jobs_done += 1
            self.total_compute_time = self.total_compute_time + (end - start)
            if self.compute_sink is not None:
                self.compute_sink(start, end)
            self.busy = False
            self._status = STATUS_DONE
            self.idle_event.notify()
            if self.irq_sink is not None:
                self.irq_sink.raise_irq(self.irq_source)


class StreamingFirAccelerator(StreamingAccelerator, FirAccelerator):
    """Master-mode FIR filter (operands streamed from system memory)."""

    ALGORITHM = "fir-streaming"


class StreamingCryptoAccelerator(StreamingAccelerator, CryptoAccelerator):
    """Master-mode XTEA engine (in-memory encryption of a buffer)."""

    ALGORITHM = "xtea-streaming"
