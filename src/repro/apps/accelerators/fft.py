"""Fixed-point radix-2 FFT accelerator.

OFDM demodulation workhorse.  Data is interleaved complex
``[re0, im0, re1, im1, ...]``; PARAM is the transform length N (a power of
two), so JOBSIZE is ``2·N`` words.  The implementation is a bit-exact
integer decimation-in-time radix-2 FFT with Q14 twiddles and a one-bit
right-shift per stage (block floating point style), so the executable
specification and any mapped model agree word for word.
"""

from __future__ import annotations

import math
from typing import List, Sequence, Tuple

from ...kernel import BitVector
from .base import Accelerator

_TWIDDLE_Q = 14


def _twiddles(n: int) -> List[Tuple[int, int]]:
    """Q14 twiddle factors ``W_n^k = exp(-2πik/n)`` for ``k < n/2``."""
    scale = 1 << _TWIDDLE_Q
    out = []
    for k in range(n // 2):
        angle = -2.0 * math.pi * k / n
        out.append((round(math.cos(angle) * scale), round(math.sin(angle) * scale)))
    return out


def bit_reverse_permute(values: Sequence, n_bits: int) -> List:
    """Reorder ``values`` by bit-reversed index (radix-2 input ordering)."""
    out = list(values)
    for i in range(len(values)):
        j = BitVector(i, n_bits).reversed_bits().unsigned
        if j > i:
            out[i], out[j] = out[j], out[i]
    return out


def fft_fixed(interleaved: Sequence[int], n: int) -> List[int]:
    """Bit-exact integer radix-2 DIT FFT.

    ``interleaved`` holds N complex points as 2N signed words; the result
    uses the same layout.  Each stage right-shifts by one to bound growth,
    so the output is scaled by ``1/N`` relative to the exact DFT.
    """
    if n < 2 or n & (n - 1):
        raise ValueError(f"FFT length must be a power of two >= 2, got {n}")
    if len(interleaved) < 2 * n:
        raise ValueError(f"need {2 * n} words for a {n}-point FFT")
    n_bits = n.bit_length() - 1
    re = [interleaved[2 * i] for i in range(n)]
    im = [interleaved[2 * i + 1] for i in range(n)]
    re = bit_reverse_permute(re, n_bits)
    im = bit_reverse_permute(im, n_bits)
    tw = _twiddles(n)
    half = 1
    while half < n:
        step = n // (2 * half)
        for start in range(0, n, 2 * half):
            for k in range(half):
                w_re, w_im = tw[k * step]
                i, j = start + k, start + k + half
                t_re = (re[j] * w_re - im[j] * w_im) >> _TWIDDLE_Q
                t_im = (re[j] * w_im + im[j] * w_re) >> _TWIDDLE_Q
                re[j] = (re[i] - t_re) >> 1
                im[j] = (im[i] - t_im) >> 1
                re[i] = (re[i] + t_re) >> 1
                im[i] = (im[i] + t_im) >> 1
        half *= 2
    out: List[int] = []
    for i in range(n):
        out.append(re[i])
        out.append(im[i])
    return out


class FftAccelerator(Accelerator):
    """An N-point fixed-point FFT (N = PARAM, data interleaved re/im).

    Cycle model: one radix-2 butterfly per cycle over ``(N/2)·log2 N``
    butterflies, plus N cycles of buffer streaming.
    """

    DEFAULT_GATES = 25_000
    ALGORITHM = "fft"

    def compute(self, inputs: List[int], param: int, coefs: List[int]) -> List[int]:
        return fft_fixed(inputs, param)

    def job_cycles(self, jobsize: int, param: int) -> int:
        n = max(2, param)
        log2n = n.bit_length() - 1
        return (n // 2) * log2n + n
