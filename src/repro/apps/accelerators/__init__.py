"""Accelerator IP library.

Six functional, cycle-modelled bus-slave accelerators spanning the paper's
motivating domains (wireless baseband, media, security, linear algebra),
each exposing its golden function for reuse as executable specification:

* :class:`FirAccelerator` / :func:`fir_filter`
* :class:`FftAccelerator` / :func:`fft_fixed`
* :class:`DctAccelerator` / :func:`dct_blocks`
* :class:`ViterbiAccelerator` / :func:`viterbi_decode`
* :class:`CryptoAccelerator` / :func:`xtea_process`
* :class:`MatMulAccelerator` / :func:`matmul_int`
"""

from .base import (
    CMD_RESET,
    CMD_START,
    INBUF_OFFSET,
    N_COEFS,
    REG_COEF_BASE,
    REG_CTRL,
    REG_JOBSIZE,
    REG_PARAM,
    REG_STATUS,
    STATUS_BUSY,
    STATUS_DONE,
    Accelerator,
    from_words,
    to_words,
)
from .crypto import (
    CryptoAccelerator,
    xtea_decrypt_block,
    xtea_encrypt_block,
    xtea_process,
)
from .dct import DctAccelerator, dct_1d, dct_block, dct_blocks
from .fft import FftAccelerator, bit_reverse_permute, fft_fixed
from .fir import FirAccelerator, fir_filter
from .matmul import MatMulAccelerator, matmul_int
from .streaming import (
    REG_DST,
    REG_SRC,
    StreamingAccelerator,
    StreamingCryptoAccelerator,
    StreamingFirAccelerator,
)
from .viterbi import (
    ViterbiAccelerator,
    convolutional_encode,
    viterbi_decode,
)

__all__ = [
    "Accelerator",
    "CMD_RESET",
    "CMD_START",
    "CryptoAccelerator",
    "DctAccelerator",
    "FftAccelerator",
    "FirAccelerator",
    "INBUF_OFFSET",
    "MatMulAccelerator",
    "N_COEFS",
    "REG_COEF_BASE",
    "REG_CTRL",
    "REG_JOBSIZE",
    "REG_PARAM",
    "REG_DST",
    "REG_SRC",
    "REG_STATUS",
    "STATUS_BUSY",
    "STATUS_DONE",
    "StreamingAccelerator",
    "StreamingCryptoAccelerator",
    "StreamingFirAccelerator",
    "ViterbiAccelerator",
    "bit_reverse_permute",
    "convolutional_encode",
    "dct_1d",
    "dct_block",
    "dct_blocks",
    "fft_fixed",
    "fir_filter",
    "from_words",
    "matmul_int",
    "to_words",
    "viterbi_decode",
    "xtea_decrypt_block",
    "xtea_encrypt_block",
    "xtea_process",
]
