"""Task graphs.

The partitioning phase of the ADRIATIC flow (paper Section 5.1) operates on
the functional blocks of the executable specification.  A
:class:`TaskGraph` captures those blocks and their data dependencies; the
:class:`TaskGraphExecutor` runs them on one or more processors, respecting
dependencies, and records per-task completion times.  The profiling report
it produces feeds the partitioning rules of thumb (see
:mod:`repro.dse.partition`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import networkx as nx

from ..kernel import Event, SimTime, SimulationError
from .processor import Processor, Task


@dataclass
class TaskNode:
    """One node of a task graph."""

    name: str
    task: Task
    deps: List[str] = field(default_factory=list)
    #: Optional preferred processor index for multi-CPU execution.
    affinity: Optional[int] = None


class TaskGraph:
    """A DAG of software tasks."""

    def __init__(self, name: str = "taskgraph") -> None:
        self.name = name
        self._graph = nx.DiGraph()
        self._nodes: Dict[str, TaskNode] = {}

    def add(self, name: str, task: Task, deps: Sequence[str] = (), affinity: Optional[int] = None) -> None:
        """Add a node; all ``deps`` must already exist."""
        if name in self._nodes:
            raise SimulationError(f"task graph {self.name}: duplicate node {name!r}")
        for dep in deps:
            if dep not in self._nodes:
                raise SimulationError(
                    f"task graph {self.name}: node {name!r} depends on unknown {dep!r}"
                )
        node = TaskNode(name=name, task=task, deps=list(deps), affinity=affinity)
        self._nodes[name] = node
        self._graph.add_node(name)
        for dep in deps:
            self._graph.add_edge(dep, name)
        if not nx.is_directed_acyclic_graph(self._graph):
            raise SimulationError(f"task graph {self.name}: adding {name!r} created a cycle")

    @property
    def node_names(self) -> List[str]:
        return list(self._nodes)

    def node(self, name: str) -> TaskNode:
        return self._nodes[name]

    def topological_order(self) -> List[str]:
        """A deterministic topological ordering (lexicographic tie-break)."""
        return list(nx.lexicographical_topological_sort(self._graph))

    def critical_path(self, weights: Dict[str, float]) -> List[str]:
        """Longest path through the DAG under per-node ``weights``."""
        graph = self._graph.copy()
        for u, v in graph.edges:
            graph.edges[u, v]["w"] = weights.get(v, 0.0)
        # Add a virtual source so entry-node weights count.
        for name in self._nodes:
            if graph.in_degree(name) == 0:
                graph.add_edge("__src__", name, w=weights.get(name, 0.0))
        path = nx.dag_longest_path(graph, weight="w")
        return [n for n in path if n != "__src__"]


class TaskGraphExecutor:
    """Runs a :class:`TaskGraph` on one or more processors.

    Each task runs as its own process on its assigned CPU, starting once
    all its dependencies' completion events have fired.  With a single CPU
    a mutex serializes execution (one in-order core).
    """

    def __init__(self, graph: TaskGraph, processors: Sequence[Processor]) -> None:
        if not processors:
            raise SimulationError("executor needs at least one processor")
        self.graph = graph
        self.processors = list(processors)
        sim = processors[0].sim
        self.sim = sim
        self._done_events: Dict[str, Event] = {}
        self._completed: set = set()
        self.start_times: Dict[str, SimTime] = {}
        self.finish_times: Dict[str, SimTime] = {}
        from ..kernel import Mutex

        self._cpu_locks = [Mutex(sim, f"{cpu.full_name}.lock") for cpu in self.processors]

    def start(self) -> None:
        """Spawn all task processes (call before ``sim.run``)."""
        for name in self.graph.topological_order():
            node = self.graph.node(name)
            self._done_events[name] = Event(self.sim, f"{self.graph.name}.{name}.done")
            cpu_index = (
                node.affinity
                if node.affinity is not None
                else self._static_assign(name)
            )
            self.sim.spawn(
                f"{self.graph.name}.{name}", self._make_body(node, cpu_index)
            )

    def _static_assign(self, name: str) -> int:
        # Deterministic spreading by topological position.
        order = self.graph.topological_order()
        return order.index(name) % len(self.processors)

    def _make_body(self, node: TaskNode, cpu_index: int):
        def body():
            # Level-sensitive dependency wait: re-check the completed set so
            # a dependency finishing before this process first suspends is
            # not missed (events are edges, `_completed` is the level).
            for dep in node.deps:
                while dep not in self._completed:
                    yield self._done_events[dep]
            cpu = self.processors[cpu_index]
            lock = self._cpu_locks[cpu_index]
            yield from lock.lock(node.name)
            try:
                self.start_times[node.name] = self.sim.now
                yield from node.task(cpu)
                self.finish_times[node.name] = self.sim.now
            finally:
                lock.unlock()
            self._completed.add(node.name)
            self._done_events[node.name].notify()

        return body

    def makespan(self) -> SimTime:
        """Completion time of the last task (after the run)."""
        if len(self.finish_times) != len(self.graph.node_names):
            missing = set(self.graph.node_names) - set(self.finish_times)
            raise SimulationError(f"task graph incomplete; unfinished: {sorted(missing)}")
        return max(self.finish_times.values())

    def profile(self) -> Dict[str, float]:
        """Per-task execution time in nanoseconds (the 'profiling report')."""
        return {
            name: (self.finish_times[name] - self.start_times[name]).to_ns()
            for name in self.finish_times
        }
