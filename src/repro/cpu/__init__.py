"""Processor and software-task substrate.

A :class:`Processor` is a bus master executing generator-based software
tasks; :class:`TaskGraph`/:class:`TaskGraphExecutor` run dependency DAGs of
tasks and produce the profiling data the partitioning phase consumes;
:class:`TrafficGenerator` produces reproducible background bus load.
"""

from .processor import Processor, Task
from .tasks import TaskGraph, TaskGraphExecutor, TaskNode
from .trafficgen import TrafficGenerator

__all__ = [
    "Processor",
    "Task",
    "TaskGraph",
    "TaskGraphExecutor",
    "TaskNode",
    "TrafficGenerator",
]
