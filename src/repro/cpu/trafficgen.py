"""Synthetic bus traffic generators.

Experiment E8 needs controllable *background* bus load to show that a model
omitting configuration-memory traffic (the ref-[8] baseline) diverges as
contention grows.  :class:`TrafficGenerator` issues reads/writes to a
memory region at a configurable target utilization, using a seeded
deterministic pseudo-random stream so runs are exactly reproducible.
"""

from __future__ import annotations

import random
from typing import Optional

from ..bus import BusMasterIf
from ..kernel import Module, Port, cycles_to_time


class TrafficGenerator(Module):
    """Issues a stream of burst transactions against an address window.

    Parameters
    ----------
    base, span_bytes:
        Address window targeted (must decode to a bus slave).
    burst_words:
        Words per transaction.
    gap_cycles:
        Mean idle bus cycles between transactions; 0 saturates the bus.
    read_fraction:
        Probability of a read (vs write) per transaction.
    seed:
        Seed of the private PRNG; identical seeds give identical streams.
    n_transactions:
        Stop after this many transactions (``None`` = run forever).
    """

    def __init__(
        self,
        name: str,
        parent=None,
        sim=None,
        *,
        base: int,
        span_bytes: int,
        burst_words: int = 4,
        gap_cycles: int = 20,
        read_fraction: float = 0.5,
        clock_freq_hz: float = 100e6,
        seed: int = 1,
        n_transactions: Optional[int] = None,
        word_bytes: int = 4,
    ) -> None:
        super().__init__(name, parent=parent, sim=sim)
        if span_bytes < burst_words * word_bytes:
            raise ValueError("address span smaller than one burst")
        self.mst_port = Port(self, BusMasterIf, name="mst_port")
        self.base = base
        self.span_bytes = span_bytes
        self.burst_words = burst_words
        self.gap_cycles = gap_cycles
        self.read_fraction = read_fraction
        self.clock_freq_hz = clock_freq_hz
        self.word_bytes = word_bytes
        self.n_transactions = n_transactions
        self._rng = random.Random(seed)
        self.issued = 0
        self.add_thread(self._run, name="gen", daemon=(n_transactions is None))

    def _random_addr(self) -> int:
        max_slot = (self.span_bytes - self.burst_words * self.word_bytes) // self.word_bytes
        slot = self._rng.randint(0, max_slot)
        return self.base + slot * self.word_bytes

    def _run(self):
        while self.n_transactions is None or self.issued < self.n_transactions:
            if self.gap_cycles > 0:
                gap = self._rng.randint(0, 2 * self.gap_cycles)
                if gap:
                    yield cycles_to_time(gap, self.clock_freq_hz)
            addr = self._random_addr()
            if self._rng.random() < self.read_fraction:
                yield from self.mst_port.read(
                    addr, self.burst_words, master=self.full_name, tags=["background"]
                )
            else:
                payload = [self._rng.getrandbits(32) for _ in range(self.burst_words)]
                yield from self.mst_port.write(
                    addr, payload, master=self.full_name, tags=["background"]
                )
            self.issued += 1
