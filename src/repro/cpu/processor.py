"""Processor model.

A bus-master CPU executing *software tasks*.  Per the paper's flow
(Section 5.1), the executable specification's software parts are "compiled
for getting some running time and memory usage statistics"; here a task is
a Python generator that interleaves modelled compute time with bus
transactions — the system-level abstraction of profiled software.

A task is any callable ``task(cpu)`` returning a generator and using the
CPU's services::

    def my_task(cpu):
        yield from cpu.compute(1200)            # 1200 CPU cycles
        yield from cpu.write(0x4000, payload)   # over the bus
        status = yield from cpu.poll(0x4008, mask=0x1, expect=0x1)
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Sequence, Union

from ..bus import BusMasterIf
from ..kernel import (
    Event,
    Module,
    Port,
    SimTime,
    SimulationError,
    ThreadProcess,
    cycles_to_time,
)

#: A software task: called with the executing CPU, returns a generator.
Task = Callable[["Processor"], object]


class Processor(Module):
    """A simple in-order CPU issuing blocking bus transactions.

    Parameters
    ----------
    clock_freq_hz:
        CPU clock, used by :meth:`compute`.
    master_label:
        Name used on the bus (defaults to the hierarchical name).
    """

    def __init__(
        self,
        name: str,
        parent: Optional[Module] = None,
        sim=None,
        *,
        clock_freq_hz: float = 200e6,
        master_label: Optional[str] = None,
    ) -> None:
        super().__init__(name, parent=parent, sim=sim)
        self.clock_freq_hz = clock_freq_hz
        self.mst_port = Port(self, BusMasterIf, name="mst_port")
        self.master_label = master_label or self.full_name
        self.compute_cycles = 0
        self.bus_reads = 0
        self.bus_writes = 0
        self.tasks_completed = 0
        self._task_done_times: Dict[str, SimTime] = {}

    # -- task services -----------------------------------------------------
    def compute(self, n_cycles: int):
        """Consume ``n_cycles`` of CPU time (generator)."""
        if n_cycles < 0:
            raise SimulationError("compute cycle count must be non-negative")
        self.compute_cycles += n_cycles
        if n_cycles:
            yield cycles_to_time(n_cycles, self.clock_freq_hz)

    def read(self, addr: int, count: int = 1):
        """Bus burst read (generator); returns the word list."""
        self.bus_reads += count
        data = yield from self.mst_port.read(addr, count, master=self.master_label)
        return data

    def read_word(self, addr: int):
        """Bus single-word read (generator); returns the word."""
        data = yield from self.read(addr, 1)
        return data[0]

    def write(self, addr: int, data: Union[int, Sequence[int]]):
        """Bus burst write (generator)."""
        n = 1 if isinstance(data, int) else len(data)
        self.bus_writes += n
        yield from self.mst_port.write(addr, data, master=self.master_label)

    def poll(self, addr: int, mask: int, expect: int, interval_cycles: int = 8, max_polls: int = 1_000_000):
        """Poll ``addr`` until ``word & mask == expect`` (generator).

        Returns the final word read.  ``interval_cycles`` of compute time
        separate successive polls (back-off of a software busy-wait loop).
        """
        for _ in range(max_polls):
            word = yield from self.read_word(addr)
            if word & mask == expect:
                return word
            yield from self.compute(interval_cycles)
        raise SimulationError(
            f"{self.full_name}: poll of {addr:#x} exceeded {max_polls} attempts"
        )

    def wait_event(self, event: Event):
        """Suspend until ``event`` fires (generator) — interrupt-style wait."""
        yield event

    def delay(self, duration: SimTime):
        """Idle for a fixed duration (generator)."""
        yield duration

    # -- task execution ----------------------------------------------------------
    def run_task(self, task: Task, name: Optional[str] = None) -> ThreadProcess:
        """Spawn ``task`` as a process on this CPU; returns the process."""
        label = name or getattr(task, "__name__", "task")

        def body():
            yield from task(self)
            self.tasks_completed += 1
            self._task_done_times[label] = self.sim.now

        return self.sim.spawn(f"{self.full_name}.{label}", body)

    def run_sequence(self, tasks: Sequence[Task], name: str = "sequence") -> ThreadProcess:
        """Run ``tasks`` back to back in one process (a software schedule)."""

        def body():
            for i, task in enumerate(tasks):
                yield from task(self)
                label = getattr(task, "__name__", f"task{i}")
                self._task_done_times[f"{name}.{label}.{i}"] = self.sim.now
                self.tasks_completed += 1

        return self.sim.spawn(f"{self.full_name}.{name}", body)

    def task_completion_time(self, label: str) -> SimTime:
        """When the named task finished (KeyError if it has not)."""
        return self._task_done_times[label]

    @property
    def completion_times(self) -> Dict[str, SimTime]:
        return dict(self._task_done_times)
