"""Static model verification: a rule-based linter for netlists and designs.

The paper's methodology rewrites architectures mechanically (the DRCF
transformation) and then finds out at *runtime* whether the result is
sound — the Section 5.4 limitations surface as elaboration errors or, worst
of all, as a simulation that silently deadlocks (limitation 3, experiment
E7).  This module is the static companion: it checks

* a declarative :class:`~repro.core.netlist.Netlist` before elaboration
  (dangling bindings, overlapping address ranges, the limitation-3
  blocking-bus precondition),
* an elaborated module hierarchy (unbound ports, broken port chains,
  interface mismatches, multi-writer signals), and
* the DRCF configuration itself (context regions that overlap or fall
  outside the configuration memory),

without ever running the simulator.  Every finding is a structured
:class:`Diagnostic` with a stable ``REPnnn`` code, a severity, a location
and a fix hint, so reports are machine-consumable (``--json`` in the CLI)
and individual rules can be suppressed.  ``docs/LINT.md`` documents every
code with a minimal triggering example.

Rules register themselves in :data:`RULES` through the :func:`rule`
decorator; adding a check is writing one generator function::

    @rule("REP9xx", layer="netlist", summary="...")
    def _check_something(ctx):
        for spec in ctx.netlist.specs:
            if bad(spec):
                yield f"{ctx.netlist.name}.{spec.name}", "what is wrong", "how to fix it"

Entry point: :func:`run_lint` (also ``python -m repro lint``).
"""

from __future__ import annotations

import inspect
from dataclasses import asdict, dataclass, field, replace
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple, Union

from ..bus import Bus, BusMasterIf, BusSlaveIf
from ..core.drcf import Drcf
from ..core.netlist import ComponentSpec, ElaboratedDesign, Netlist
from ..kernel import Module, Simulator, ports_of, processes_of, signals_of
from .cfg import (
    ProcessControlFlow,
    analyze_process,
    one_sided_wait_branches,
    unreachable_statements,
    waitless_loops,
    write_coverage,
)
from .dataflow import DesignDataflow
from .interproc import ACQUIRE_COUNTERPARTS, LockTrace, acquire_sites, lock_order_trace, release_closure

#: The code of the limitation-3 (blocking-bus deadlock) precondition rule.
#: The runtime deadlock diagnosis (:mod:`repro.analysis.deadlock`) cross-
#: references it so post-mortem reports point back at the static check
#: that would have caught the architecture before any simulation ran.
DEADLOCK_RULE_CODE = "REP310"

#: The code of the interprocedural wait-for-cycle rule (REP601): the
#: *live-design* sharpening of :data:`DEADLOCK_RULE_CODE`, proven on the
#: elaborated hierarchy (binding chains, live bus protocol, registered
#: slaves) rather than on netlist specs.  The runtime post-mortem
#: cross-references both.
STATIC_DEADLOCK_RULE_CODE = "REP601"

#: Diagnostic severities, most severe first.
SEVERITIES = ("error", "warning", "info")

#: Rule layers, in the order the engine runs them.  ``meta`` rules are
#: emitted by the engine itself (elaboration/rule failures), not checked.
#: The ``dataflow`` layer (REP4xx, process-body analysis), the ``cfg``
#: layer (REP5xx, control-flow analysis) and the ``interproc`` layer
#: (REP6xx, interprocedural wait-effect analysis) are opt-in:
#: :func:`run_lint` only runs them with ``dataflow=True`` / ``cfg=True`` /
#: ``interproc=True``.
LAYERS = (
    "netlist", "transform", "design", "drcf", "dataflow", "cfg", "interproc", "meta"
)

#: How registry layers appear on diagnostics (the ``layer`` field in
#: ``--json`` output): the pre-elaboration/design/DRCF/meta layers are all
#: part of the always-on core; the opt-in analysis layers keep their name
#: so CI diffs can attribute regressions to the layer that found them.
_DISPLAY_LAYERS = {"dataflow": "dataflow", "cfg": "cfg", "interproc": "interproc"}


def display_layer(layer: str) -> str:
    """The diagnostic-facing layer name (``core``/``dataflow``/``cfg``/
    ``interproc``)."""
    return _DISPLAY_LAYERS.get(layer, "core")


# --------------------------------------------------------------------------
# Diagnostics and reports
# --------------------------------------------------------------------------

@dataclass(frozen=True)
class Diagnostic:
    """One finding: a stable code, a severity, a location and a fix hint.

    ``layer`` names the analysis layer that produced the finding
    (``core``, ``dataflow`` or ``cfg``) so machine consumers can attribute
    regressions when the opt-in layers are toggled.
    """

    code: str
    severity: str  # one of SEVERITIES
    message: str
    location: str = ""
    hint: str = ""
    layer: str = "core"

    def render(self) -> str:
        """One line (two with a hint): ``REP102 error top.fir: message``."""
        where = f" {self.location}" if self.location else ""
        line = f"{self.code} {self.severity}{where}: {self.message}"
        if self.hint:
            line += f"\n    hint: {self.hint}"
        return line

    def to_dict(self) -> Dict[str, str]:
        return asdict(self)


@dataclass
class LintReport:
    """All diagnostics of one :func:`run_lint` call."""

    diagnostics: List[Diagnostic] = field(default_factory=list)

    @property
    def errors(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == "error"]

    @property
    def warnings(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == "warning"]

    @property
    def infos(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == "info"]

    @property
    def has_errors(self) -> bool:
        return any(d.severity == "error" for d in self.diagnostics)

    def codes(self) -> List[str]:
        """Distinct diagnostic codes present, sorted."""
        return sorted({d.code for d in self.diagnostics})

    def by_code(self, code: str) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.code == code]

    def render(self) -> str:
        """Human-readable report with a trailing summary line."""
        lines = [d.render() for d in self.diagnostics]
        if not self.diagnostics:
            lines.append("clean: no diagnostics")
        else:
            lines.append(
                f"{len(self.errors)} error(s), {len(self.warnings)} "
                f"warning(s), {len(self.infos)} info(s)"
            )
        return "\n".join(lines)

    def to_dicts(self) -> List[Dict[str, str]]:
        """JSON-ready list of diagnostic dicts."""
        return [d.to_dict() for d in self.diagnostics]


# --------------------------------------------------------------------------
# Rule registry
# --------------------------------------------------------------------------

#: What a check may yield: a full Diagnostic (to override severity), or a
#: ``(location, message)`` / ``(location, message, hint)`` tuple.
CheckResult = Union[Diagnostic, Tuple[str, str], Tuple[str, str, str]]


@dataclass(frozen=True)
class Rule:
    """A registered check: stable code, layer, default severity, summary.

    ``example`` is an optional minimal triggering snippet shown by
    ``python -m repro lint --explain REPnnn``.
    """

    code: str
    layer: str
    severity: str
    summary: str
    check: Optional[Callable[["LintContext"], Iterable[CheckResult]]]
    example: str = ""


#: All registered rules by code.  Mutated only through register_rule().
RULES: Dict[str, Rule] = {}


def register_rule(entry: Rule) -> Rule:
    """Add a rule to the registry; codes must be unique."""
    if entry.code in RULES:
        raise ValueError(f"duplicate lint rule code {entry.code!r}")
    if entry.severity not in SEVERITIES:
        raise ValueError(f"rule {entry.code}: unknown severity {entry.severity!r}")
    if entry.layer not in LAYERS:
        raise ValueError(f"rule {entry.code}: unknown layer {entry.layer!r}")
    RULES[entry.code] = entry
    return entry


def rule(
    code: str, *, layer: str, severity: str = "error", summary: str = "", example: str = ""
):
    """Decorator registering a check function under ``code``."""

    def decorate(fn: Callable) -> Callable:
        register_rule(
            Rule(code, layer, severity, summary or (fn.__doc__ or "").strip(), fn, example)
        )
        return fn

    return decorate


# REP001 is emitted by the engine itself when analysis cannot proceed
# (netlist fails to elaborate, or a rule crashes); it has no check function.
register_rule(
    Rule(
        "REP001",
        layer="meta",
        severity="error",
        summary="analysis could not complete (elaboration or rule failure)",
        check=None,
    )
)


@dataclass
class LintContext:
    """Everything a check may look at.  Fields are None when not supplied."""

    netlist: Optional[Netlist] = None
    top: Optional[Module] = None
    candidates: Optional[List[str]] = None
    config_memory: Optional[str] = None
    _dataflow: Optional[DesignDataflow] = field(default=None, repr=False)
    _cfg: Optional[List[ProcessControlFlow]] = field(default=None, repr=False)
    _lock_traces: Optional[List[LockTrace]] = field(default=None, repr=False)

    def dataflow_analysis(self) -> DesignDataflow:
        """The process-body dataflow analysis of the elaborated design.

        Built on first use and cached for the rest of the run: REP204 and
        every REP4xx rule share one AST pass over the design.
        """
        if self._dataflow is None:
            if self.top is None:
                raise ValueError("no elaborated design to analyze")
            self._dataflow = DesignDataflow(self.top)
        return self._dataflow

    def cfg_analysis(self) -> List[ProcessControlFlow]:
        """Control-flow analysis of every registered process, name-sorted.

        Built on first use and cached; every REP5xx rule shares one CFG
        pass per process body (unresolved bodies carry a reason, never
        raise).
        """
        if self._cfg is None:
            if self.top is None:
                raise ValueError("no elaborated design to analyze")
            flows = [
                analyze_process(p)
                for module in (self.top, *self.top.descendants())
                for p in processes_of(module)
            ]
            flows.sort(key=lambda pcf: pcf.name)
            self._cfg = flows
        return self._cfg

    def lock_traces(self) -> List[LockTrace]:
        """Lock-order traces of every thread process, name-sorted.

        Built on first use and cached; REP602 and REP603 share one
        source-order walk per thread body (unresolved traces carry a
        reason, never raise).
        """
        if self._lock_traces is None:
            if self.top is None:
                raise ValueError("no elaborated design to analyze")
            traces = [
                lock_order_trace(p)
                for module in (self.top, *self.top.descendants())
                for p in processes_of(module)
                if getattr(p, "kind", None) == "thread"
            ]
            traces.sort(key=lambda trace: trace.name)
            self._lock_traces = traces
        return self._lock_traces


# --------------------------------------------------------------------------
# Engine
# --------------------------------------------------------------------------

def _normalize_codes(codes: Union[str, Iterable[str], None]) -> Optional[List[str]]:
    """Accept ``"REP1,REP305"`` or an iterable; return upper-cased prefixes."""
    if codes is None:
        return None
    if isinstance(codes, str):
        codes = codes.split(",")
    cleaned = [c.strip().upper() for c in codes if c and c.strip()]
    return cleaned or None


def _enabled(code: str, select: Optional[List[str]], ignore: Optional[List[str]]) -> bool:
    """Prefix-based selection: ``REP3`` matches ``REP301``; ignore wins."""
    if ignore and any(code.startswith(prefix) for prefix in ignore):
        return False
    if select:
        return any(code.startswith(prefix) for prefix in select)
    return True


def _as_diagnostic(entry: Rule, item: CheckResult) -> Diagnostic:
    layer = display_layer(entry.layer)
    if isinstance(item, Diagnostic):
        return item if item.layer == layer else replace(item, layer=layer)
    location, message = item[0], item[1]
    hint = item[2] if len(item) > 2 else ""
    return Diagnostic(entry.code, entry.severity, message, location, hint, layer)


def _run_layer(
    layer: str,
    ctx: LintContext,
    select: Optional[List[str]],
    ignore: Optional[List[str]],
    out: List[Diagnostic],
) -> None:
    for entry in sorted(RULES.values(), key=lambda item: item.code):
        if entry.layer != layer or entry.check is None:
            continue
        if not _enabled(entry.code, select, ignore):
            continue
        try:
            for item in entry.check(ctx) or ():
                diag = _as_diagnostic(entry, item)
                if _enabled(diag.code, select, ignore):
                    out.append(diag)
        except Exception as exc:  # a crashing rule must not kill the report
            if _enabled("REP001", select, ignore):
                out.append(
                    Diagnostic(
                        "REP001",
                        "error",
                        f"rule {entry.code} failed: {exc}",
                        location=layer,
                    )
                )


def run_lint(
    netlist: Optional[Netlist] = None,
    *,
    design: Union[ElaboratedDesign, Module, None] = None,
    candidates: Optional[Sequence[str]] = None,
    config_memory: Optional[str] = None,
    elaborate: bool = True,
    dataflow: bool = False,
    cfg: bool = False,
    interproc: bool = False,
    select: Union[str, Iterable[str], None] = None,
    ignore: Union[str, Iterable[str], None] = None,
) -> LintReport:
    """Run every applicable rule and return a :class:`LintReport`.

    Parameters
    ----------
    netlist:
        Declarative architecture to check (netlist-layer rules).  Unless
        ``design`` is given, it is also elaborated under a scratch
        simulator — never run — so the design/DRCF layers see the live
        hierarchy.  Elaboration failure is reported as ``REP001``.
    design:
        An already-elaborated :class:`ElaboratedDesign` (or top
        :class:`Module`) to check instead of scratch-elaborating.
    candidates, config_memory:
        Planned arguments of a future
        :func:`~repro.core.transform.transform_to_drcf` call; supplying
        them enables the transform-precondition rules (REP304-REP306).
    elaborate:
        Set False to run only the pre-elaboration layers.
    dataflow:
        Set True to also run the process-body dataflow rules (REP4xx);
        they parse every process function, so they are opt-in.
    cfg:
        Set True to also run the control-flow rules (REP5xx); they build a
        CFG and wait-state machine per process body (on top of the
        dataflow analysis, which is built as needed), so they are opt-in.
    interproc:
        Set True to also run the interprocedural wait-effect rules
        (REP6xx): the static wait-for/lock-order analysis over callee
        wait-effect summaries (:mod:`repro.analysis.interproc`).  They
        walk thread bodies *and* the methods those bodies block on, so
        they are opt-in.
    select, ignore:
        Code prefixes (comma-separated string or iterable) enabling or
        suppressing rules; ``ignore`` wins over ``select``.
    """
    select_list = _normalize_codes(select)
    ignore_list = _normalize_codes(ignore)
    diagnostics: List[Diagnostic] = []
    top = design.top if isinstance(design, ElaboratedDesign) else design
    ctx = LintContext(
        netlist=netlist,
        top=top,
        candidates=list(candidates) if candidates else None,
        config_memory=config_memory,
    )
    if ctx.netlist is not None:
        _run_layer("netlist", ctx, select_list, ignore_list, diagnostics)
        if ctx.candidates:
            _run_layer("transform", ctx, select_list, ignore_list, diagnostics)
        if ctx.top is None and elaborate:
            try:
                ctx.top = ctx.netlist.elaborate(Simulator(name="lint")).top
            except Exception as exc:
                if _enabled("REP001", select_list, ignore_list):
                    diagnostics.append(
                        Diagnostic(
                            "REP001",
                            "error",
                            f"netlist does not elaborate: {exc}",
                            location=ctx.netlist.name,
                            hint="fix the static diagnostics and re-run",
                        )
                    )
    if ctx.top is not None:
        _run_layer("design", ctx, select_list, ignore_list, diagnostics)
        _run_layer("drcf", ctx, select_list, ignore_list, diagnostics)
        if dataflow:
            try:
                ctx.dataflow_analysis()
            except Exception as exc:
                if _enabled("REP001", select_list, ignore_list):
                    diagnostics.append(
                        Diagnostic(
                            "REP001",
                            "error",
                            f"dataflow analysis failed: {exc}",
                            location="dataflow",
                        )
                    )
            else:
                _run_layer("dataflow", ctx, select_list, ignore_list, diagnostics)
        if cfg:
            try:
                # REP503/505/506 correlate control flow with the dataflow
                # summaries, so both analyses must be buildable.
                ctx.dataflow_analysis()
                ctx.cfg_analysis()
            except Exception as exc:
                if _enabled("REP001", select_list, ignore_list):
                    diagnostics.append(
                        Diagnostic(
                            "REP001",
                            "error",
                            f"control-flow analysis failed: {exc}",
                            location="cfg",
                        )
                    )
            else:
                _run_layer("cfg", ctx, select_list, ignore_list, diagnostics)
        if interproc:
            # Each REP6xx rule builds what it needs lazily (lock traces,
            # wait-effect summaries) and degrades to silence on unresolved
            # bodies; a genuinely crashing rule is caught per-rule by
            # _run_layer and reported as REP001.
            _run_layer("interproc", ctx, select_list, ignore_list, diagnostics)
    diagnostics.sort(key=lambda d: (d.code, d.location, d.message))
    return LintReport(diagnostics)


def all_rule_codes() -> List[str]:
    """Every registered diagnostic code, sorted (docs and tests use this)."""
    return sorted(RULES)


# --------------------------------------------------------------------------
# Netlist-layer rules (pre-elaboration)
# --------------------------------------------------------------------------

def _spec_loc(ctx: LintContext, spec: ComponentSpec) -> str:
    return f"{ctx.netlist.name}.{spec.name}"


@rule("REP101", layer="netlist", summary="ill-formed component spec")
def _check_spec_wellformed(ctx: LintContext) -> Iterator[CheckResult]:
    """Instance names must be non-empty and dot-free; factories callable."""
    for spec in ctx.netlist.specs:
        if not spec.name or "." in spec.name:
            yield (
                _spec_loc(ctx, spec),
                f"invalid instance name {spec.name!r} (must be non-empty, no dots)",
                "rename the component; the kernel rejects it at elaboration",
            )
        if not callable(spec.factory):
            yield (
                _spec_loc(ctx, spec),
                f"factory {spec.factory!r} is not callable",
                "pass a Module subclass or a factory function",
            )


@rule("REP102", layer="netlist", summary="binding references unknown component")
def _check_dangling_refs(ctx: LintContext) -> Iterator[CheckResult]:
    """master_of/slave_of must name a component in the netlist."""
    names = set(ctx.netlist.component_names)
    for spec in ctx.netlist.specs:
        for what, target in (("master_of", spec.master_of), ("slave_of", spec.slave_of)):
            if target is not None and target not in names:
                yield (
                    _spec_loc(ctx, spec),
                    f"{what} references unknown component {target!r}",
                    f"add a bus named {target!r} or fix the reference",
                )


@rule("REP103", layer="netlist", summary="binding target is not a bus")
def _check_ref_is_bus(ctx: LintContext) -> Iterator[CheckResult]:
    """The target of master_of/slave_of must provide the bus interface."""
    specs = {spec.name: spec for spec in ctx.netlist.specs}
    for spec in ctx.netlist.specs:
        for what, target in (("master_of", spec.master_of), ("slave_of", spec.slave_of)):
            target_spec = specs.get(target)
            if target_spec is None or not inspect.isclass(target_spec.factory):
                continue
            factory = target_spec.factory
            if what == "slave_of" and not hasattr(factory, "register_slave"):
                yield (
                    _spec_loc(ctx, spec),
                    f"slave_of target {target!r} ({factory.__name__}) has no "
                    "register_slave; it cannot accept slaves",
                    "point slave_of at a Bus component",
                )
            elif what == "master_of" and not issubclass(factory, BusMasterIf):
                yield (
                    _spec_loc(ctx, spec),
                    f"master_of target {target!r} ({factory.__name__}) does not "
                    "implement BusMasterIf; mst_port cannot bind to it",
                    "point master_of at a Bus component",
                )


def _scratch_slave_ranges(netlist: Netlist) -> Dict[str, Tuple[int, int]]:
    """Address range of each slave spec, by standalone scratch elaboration.

    Each spec is instantiated under its own throwaway simulator (the same
    move as :func:`~repro.core.transform.analyze_module_spec`); specs that
    fail to build standalone are skipped — elaboration-order problems are
    REP001's job, not this helper's.
    """
    ranges: Dict[str, Tuple[int, int]] = {}
    for spec in netlist.specs:
        if spec.slave_of is None or not callable(spec.factory):
            continue
        try:
            scratch = Simulator(name=f"lint_scratch_{spec.name}")
            instance = spec.factory(spec.name, sim=scratch, **spec.kwargs)
            ranges[spec.name] = (int(instance.get_low_add()), int(instance.get_high_add()))
        except Exception:
            continue
    return ranges


@rule("REP104", layer="netlist", summary="slave address ranges invalid or overlapping")
def _check_static_ranges(ctx: LintContext) -> Iterator[CheckResult]:
    """Slaves of one bus must advertise valid, disjoint address ranges."""
    ranges = _scratch_slave_ranges(ctx.netlist)
    by_bus: Dict[str, List[Tuple[int, int, str]]] = {}
    for spec in ctx.netlist.specs:
        if spec.name not in ranges:
            continue
        low, high = ranges[spec.name]
        if low < 0 or high < low:
            yield (
                _spec_loc(ctx, spec),
                f"invalid address range [{low:#x}, {high:#x}]",
                "check base/size parameters",
            )
            continue
        by_bus.setdefault(spec.slave_of, []).append((low, high, spec.name))
    for bus_name, entries in by_bus.items():
        entries.sort()
        for (low1, high1, name1), (low2, high2, name2) in zip(entries, entries[1:]):
            if high1 >= low2:
                yield (
                    f"{ctx.netlist.name}.{name2}",
                    f"address range [{low2:#x}, {high2:#x}] overlaps "
                    f"[{low1:#x}, {high1:#x}] of {name1!r} on bus {bus_name!r}",
                    "give each slave a disjoint base/size window",
                )


@rule("REP105", layer="netlist", summary="slave component does not implement BusSlaveIf")
def _check_slave_interface(ctx: LintContext) -> Iterator[CheckResult]:
    """A component with slave_of must implement the slave interface."""
    for spec in ctx.netlist.specs:
        if spec.slave_of is None or not inspect.isclass(spec.factory):
            continue
        if not issubclass(spec.factory, BusSlaveIf):
            yield (
                _spec_loc(ctx, spec),
                f"{spec.factory.__name__} is a slave of {spec.slave_of!r} but "
                "does not implement BusSlaveIf",
                "derive the class from BusSlaveIf (get_low_add/get_high_add/read/write)",
            )


@rule(
    DEADLOCK_RULE_CODE,
    layer="netlist",
    summary="master and slave of the same blocking bus (deadlock precondition)",
)
def _check_blocking_self_dependency(ctx: LintContext) -> Iterator[CheckResult]:
    """The paper's limitation 3: a component that serves slave calls on a
    blocking bus while needing that same bus as a master deadlocks the
    system (experiment E7).  Components that declare
    ``FETCHES_CONFIG_OVER_BUS = False`` (e.g. the reference-[8] baseline)
    are exempt; unknown components get a hedged warning."""
    specs = {spec.name: spec for spec in ctx.netlist.specs}
    for spec in ctx.netlist.specs:
        if spec.master_of is None or spec.master_of != spec.slave_of:
            continue
        bus_spec = specs.get(spec.master_of)
        if bus_spec is None:  # dangling reference: REP102's finding
            continue
        if bus_spec.kwargs.get("protocol", "blocking") != "blocking":
            continue
        fetches = (
            getattr(spec.factory, "FETCHES_CONFIG_OVER_BUS", None)
            if inspect.isclass(spec.factory)
            else None
        )
        hint = (
            'use protocol="split" on the bus, or move configuration traffic '
            "to a dedicated bus (dedicated_config_bus)"
        )
        location = _spec_loc(ctx, spec)
        if fetches:
            yield Diagnostic(
                DEADLOCK_RULE_CODE,
                "error",
                f"{spec.name!r} is both a master and a slave of blocking bus "
                f"{spec.master_of!r} and fetches configuration data over it: "
                "the first slave call that triggers a context switch "
                "deadlocks (paper Section 5.4, limitation 3)",
                location,
                hint,
            )
        elif fetches is None:
            yield Diagnostic(
                DEADLOCK_RULE_CODE,
                "warning",
                f"{spec.name!r} is both a master and a slave of blocking bus "
                f"{spec.master_of!r}; if it issues master transfers while "
                "serving a slave call the system deadlocks",
                location,
                hint,
            )
        # fetches is explicitly falsy (e.g. Ref8Drcf): no bus traffic, exempt.


# --------------------------------------------------------------------------
# Transform-layer rules (planned transform_to_drcf arguments)
# --------------------------------------------------------------------------

@rule("REP304", layer="transform", summary="transformation preconditions violated")
def _check_transform_preconditions(ctx: LintContext) -> Iterator[CheckResult]:
    """Candidates must exist, be unique, and share one bus (limitation 1)."""
    netlist = ctx.netlist
    names = set(netlist.component_names)
    seen: Dict[str, int] = {}
    for candidate in ctx.candidates:
        seen[candidate] = seen.get(candidate, 0) + 1
    for candidate, count in seen.items():
        if count > 1:
            yield (
                f"{netlist.name}.{candidate}",
                f"candidate {candidate!r} listed {count} times",
                "each candidate may appear once",
            )
        if candidate not in names:
            yield (
                f"{netlist.name}.{candidate}",
                f"unknown candidate {candidate!r}",
                f"components: {sorted(names)}",
            )
    if ctx.config_memory is not None and ctx.config_memory not in names:
        yield (
            f"{netlist.name}.{ctx.config_memory}",
            f"unknown configuration memory {ctx.config_memory!r}",
            "name an existing memory component",
        )
    buses: Dict[str, List[str]] = {}
    for candidate in ctx.candidates:
        if candidate not in names:
            continue
        spec = netlist.component(candidate)
        if spec.slave_of is None:
            yield (
                _spec_loc(ctx, spec),
                f"candidate {candidate!r} is not a slave of any bus",
                "the DRCF replaces candidates on their shared bus",
            )
        else:
            buses.setdefault(spec.slave_of, []).append(candidate)
    if len(buses) > 1:
        detail = ", ".join(f"{bus}: {sorted(members)}" for bus, members in sorted(buses.items()))
        yield (
            netlist.name,
            "candidates must all be slaves of the same bus (paper Section "
            f"5.4, limitation 1); got {detail}",
            "transform each bus's candidates into its own DRCF",
        )


@rule("REP305", layer="transform", summary="candidate lacks address-range methods")
def _check_candidate_ranges(ctx: LintContext) -> Iterator[CheckResult]:
    """Limitation 2: candidates need get_low_add/get_high_add for routing."""
    names = set(ctx.netlist.component_names)
    for candidate in ctx.candidates:
        if candidate not in names:
            continue
        factory = ctx.netlist.component(candidate).factory
        if not inspect.isclass(factory):
            continue
        if not (hasattr(factory, "get_low_add") and hasattr(factory, "get_high_add")):
            yield (
                f"{ctx.netlist.name}.{candidate}",
                f"{factory.__name__} lacks get_low_add/get_high_add; the "
                "transformation needs them to build the routing multiplexer "
                "(paper Section 5.4, limitation 2)",
                "add both methods returning the decoded address range",
            )


@rule("REP306", layer="transform", summary="candidate does not implement BusSlaveIf")
def _check_candidate_slave_if(ctx: LintContext) -> Iterator[CheckResult]:
    """The DRCF can only take the bus place of BusSlaveIf implementations."""
    names = set(ctx.netlist.component_names)
    for candidate in ctx.candidates:
        if candidate not in names:
            continue
        factory = ctx.netlist.component(candidate).factory
        if inspect.isclass(factory) and not issubclass(factory, BusSlaveIf):
            yield (
                f"{ctx.netlist.name}.{candidate}",
                f"candidate {candidate!r} ({factory.__name__}) does not "
                "implement BusSlaveIf; the DRCF cannot take its place on the bus",
                "fold only bus slaves into the fabric",
            )


# --------------------------------------------------------------------------
# Design-layer rules (elaborated hierarchy)
# --------------------------------------------------------------------------

def _modules_of(top: Module) -> Iterator[Module]:
    yield top
    yield from top.descendants()


@rule("REP201", layer="design", summary="required port left unbound")
def _check_unbound_ports(ctx: LintContext) -> Iterator[CheckResult]:
    """Every non-optional port must resolve to an implementation."""
    for module in _modules_of(ctx.top):
        for port in ports_of(module):
            if port.optional:
                continue
            chain, impl = port.binding_chain()
            if impl is not None or chain[-1]._bound is not None:
                continue  # bound, or a cycle (REP202's finding)
            if len(chain) == 1:
                message = "port is unbound"
            else:
                message = f"port chains to unbound port {chain[-1].full_name}"
            yield (
                port.full_name,
                message,
                "bind it during elaboration, or declare it with optional=True",
            )


@rule("REP202", layer="design", summary="port binding chain forms a cycle")
def _check_port_cycles(ctx: LintContext) -> Iterator[CheckResult]:
    """Port-to-port bindings must terminate at an implementation."""
    for module in _modules_of(ctx.top):
        for port in ports_of(module):
            chain, impl = port.binding_chain()
            if impl is None and chain[-1]._bound is not None:
                path = " -> ".join(p.full_name for p in chain)
                yield (
                    port.full_name,
                    f"port binding chain forms a cycle: {path} -> "
                    f"{chain[-1]._bound.full_name}",
                    "one port in the cycle must bind to a channel or module",
                )


@rule("REP203", layer="design", summary="port bound to wrong interface")
def _check_port_interfaces(ctx: LintContext) -> Iterator[CheckResult]:
    """The resolved implementation must satisfy the port's interface."""
    for module in _modules_of(ctx.top):
        for port in ports_of(module):
            if port.iface is None:
                continue
            _, impl = port.binding_chain()
            if impl is not None and not isinstance(impl, port.iface):
                yield (
                    port.full_name,
                    f"bound to {type(impl).__name__}, which does not implement "
                    f"{port.iface.__name__}",
                    "bind an implementation of the declared interface",
                )


@rule("REP204", layer="design", severity="warning", summary="signal written by several processes")
def _check_multi_writer_signals(ctx: LintContext) -> Iterator[CheckResult]:
    """``sc_signal`` semantics assume one writer; two racing writers make
    the committed value depend on evaluation order within a delta.

    Uses the design-wide dataflow analysis, which resolves writes through
    port binding chains — a process driving another module's signal via a
    bound port counts against that signal, so cross-module double-drivers
    are reported too.  (REP401, in the opt-in dataflow layer, sharpens
    this heuristic by proving the writers can race in one delta.)
    """
    analysis = ctx.dataflow_analysis()
    for use in analysis.signal_uses():
        names = sorted({writer.name for writer in use.writers})
        if len(names) >= 2:
            yield (
                use.label,
                f"signal is written by {len(names)} processes: {', '.join(names)}",
                "give each signal a single writer (or merge the processes)",
            )


@rule("REP205", layer="design", summary="elaborated bus has invalid or overlapping slaves")
def _check_elaborated_ranges(ctx: LintContext) -> Iterator[CheckResult]:
    """Re-checks slave ranges on the live bus (catches post-elaboration
    mutation that bypassed register_slave's own guard)."""
    for module in _modules_of(ctx.top):
        if not isinstance(module, Bus):
            continue
        entries: List[Tuple[int, int, str]] = []
        for slave in module.slaves:
            name = getattr(slave, "full_name", type(slave).__name__)
            try:
                low, high = int(slave.get_low_add()), int(slave.get_high_add())
            except Exception:
                yield (module.full_name, f"slave {name} cannot report its address range")
                continue
            if low < 0 or high < low:
                yield (
                    module.full_name,
                    f"slave {name} advertises invalid range [{low:#x}, {high:#x}]",
                )
            else:
                entries.append((low, high, name))
        entries.sort()
        for (low1, high1, name1), (low2, high2, name2) in zip(entries, entries[1:]):
            if high1 >= low2:
                yield (
                    module.full_name,
                    f"slaves {name1} [{low1:#x}, {high1:#x}] and {name2} "
                    f"[{low2:#x}, {high2:#x}] overlap",
                    "give each slave a disjoint window",
                )


@rule("REP206", layer="design", severity="info", summary="bus has no slaves")
def _check_empty_bus(ctx: LintContext) -> Iterator[CheckResult]:
    """A bus without slaves fails every transfer at runtime."""
    for module in _modules_of(ctx.top):
        if isinstance(module, Bus) and not module.slaves:
            yield (
                module.full_name,
                "bus has no slaves; every transfer will fail to decode",
                "register at least one slave, or drop the bus",
            )


# --------------------------------------------------------------------------
# DRCF-layer rules (elaborated fabrics)
# --------------------------------------------------------------------------

def _drcfs_of(top: Module) -> Iterator[Drcf]:
    for module in _modules_of(top):
        if isinstance(module, Drcf):
            yield module


def _store_of(drcf: Drcf) -> Optional[object]:
    """Where this fabric's configuration fetches go (bus or direct memory)."""
    _, impl = drcf.mst_port.binding_chain()
    return impl


def _slave_serving(store: object, addr: int) -> Optional[object]:
    """The slave (or the store itself) decoding ``addr``, if determinable."""
    if isinstance(store, Bus):
        for slave in store.slaves:
            if int(slave.get_low_add()) <= addr <= int(slave.get_high_add()):
                return slave
        return None
    if hasattr(store, "get_low_add"):
        if int(store.get_low_add()) <= addr <= int(store.get_high_add()):
            return store
        return None
    return None


def _store_name(store: object) -> str:
    return getattr(store, "full_name", type(store).__name__)


@rule("REP301", layer="drcf", summary="context configuration regions overlap")
def _check_region_overlap(ctx: LintContext) -> Iterator[CheckResult]:
    """Bitstream regions sharing one backing memory must be disjoint —
    also across fabrics, which no single transformation can see."""
    regions: List[Tuple[int, str, int, int, str]] = []
    for drcf in _drcfs_of(ctx.top):
        store = _store_of(drcf)
        if store is None:
            continue  # unbound master port: REP201's finding
        for context in drcf.contexts:
            params = context.params
            if params.size_bytes <= 0 or params.config_addr < 0:
                continue  # REP303's finding
            low = params.config_addr
            high = low + params.size_bytes - 1
            backing = _slave_serving(store, low) or store
            regions.append(
                (id(backing), _store_name(backing), low, high, f"{drcf.full_name}:{context.name}")
            )
    regions.sort(key=lambda r: (r[0], r[2], r[3]))
    for (key1, store1, low1, high1, label1), (key2, _, low2, high2, label2) in zip(
        regions, regions[1:]
    ):
        if key1 == key2 and high1 >= low2:
            yield (
                label2,
                f"configuration region [{low2:#x}, {high2:#x}] overlaps "
                f"[{low1:#x}, {high1:#x}] of {label1} in {store1}",
                "allocate disjoint bitstream windows (raise config_region_bytes "
                "or pass distinct config_base values)",
            )


@rule("REP302", layer="drcf", summary="context region not backed by a memory slave")
def _check_region_backing(ctx: LintContext) -> Iterator[CheckResult]:
    """Every bitstream region must fit inside a slave reachable from the
    fabric's master port, or the first context switch fails to decode."""
    for drcf in _drcfs_of(ctx.top):
        store = _store_of(drcf)
        if store is None:
            continue
        if not isinstance(store, Bus) and not hasattr(store, "get_low_add"):
            continue  # not range-introspectable; nothing to check statically
        for context in drcf.contexts:
            params = context.params
            if params.size_bytes <= 0 or params.config_addr < 0:
                continue
            low = params.config_addr
            high = low + params.size_bytes - 1
            location = f"{drcf.full_name}:{context.name}"
            backing = _slave_serving(store, low)
            if backing is None:
                yield (
                    location,
                    f"no slave on {_store_name(store)} serves the configuration "
                    f"region [{low:#x}, {high:#x}]",
                    "place the region inside the configuration memory's range",
                )
            elif high > int(backing.get_high_add()):
                yield (
                    location,
                    f"configuration region [{low:#x}, {high:#x}] extends past "
                    f"the end of {_store_name(backing)} "
                    f"({int(backing.get_high_add()):#x})",
                    "grow the memory or move the region",
                )


@rule("REP303", layer="drcf", summary="invalid context parameters")
def _check_context_params(ctx: LintContext) -> Iterator[CheckResult]:
    """Context sizes must be positive and addresses non-negative."""
    for drcf in _drcfs_of(ctx.top):
        for context in drcf.contexts:
            params = context.params
            location = f"{drcf.full_name}:{context.name}"
            if params.size_bytes <= 0:
                yield (
                    location,
                    f"context size {params.size_bytes} bytes is not positive",
                    "a context's bitstream must occupy at least one byte",
                )
            if params.config_addr < 0:
                yield (
                    location,
                    f"configuration address {params.config_addr} is negative",
                    "allocate the bitstream at a non-negative address",
                )


# --------------------------------------------------------------------------
# Dataflow-layer rules (process-body analysis; opt-in via run_lint(dataflow=True))
# --------------------------------------------------------------------------

@rule("REP401", layer="dataflow", summary="same-delta multi-driver race")
def _check_same_delta_race(ctx: LintContext) -> Iterator[CheckResult]:
    """Sharpens REP204: two writers of one signal that can be *runnable in
    the same delta cycle* (both run at start, or share an activation event)
    make the committed value depend on evaluation order — a genuine race,
    not just a style warning."""
    analysis = ctx.dataflow_analysis()
    for use in analysis.signal_uses():
        if len(use.writers) < 2:
            continue
        reported = set()
        for i, a in enumerate(use.writers):
            for b in use.writers[i + 1:]:
                if a.process is b.process:
                    continue
                reason = analysis.corunnable(a, b)
                if reason is None:
                    continue
                pair = tuple(sorted((a.name, b.name)))
                if pair in reported:
                    continue
                reported.add(pair)
                yield (
                    use.label,
                    f"processes {pair[0]!r} and {pair[1]!r} can both write "
                    f"this signal in the same delta cycle ({reason}); the "
                    "committed value depends on evaluation order",
                    "give the signal a single driver, or make the writers "
                    "mutually exclusive (disjoint activation events)",
                )


@rule(
    "REP402",
    layer="dataflow",
    severity="warning",
    summary="method process reads a signal missing from its sensitivity list",
)
def _check_method_sensitivity(ctx: LintContext) -> Iterator[CheckResult]:
    """An SC_METHOD that reads a signal it is not sensitive to does not
    re-evaluate when that input changes, so its output goes stale.  Signals
    the method itself writes are exempt (reading your own output is state
    feedback, and being sensitive to it would be REP403's loop)."""
    analysis = ctx.dataflow_analysis()
    for summary in analysis.summaries:
        if summary.kind != "method":
            continue
        sensitivity_ids = {id(e) for e in getattr(summary.process, "static_sensitivity", ())}
        written_ids = {id(sig) for sig in summary.signal_writes}
        for sig in summary.signal_reads:
            if id(sig) in written_ids:
                continue
            if any(id(event) in sensitivity_ids for event in sig.events()):
                continue
            yield (
                summary.name,
                f"method process reads signal {analysis.signal_label(sig)} "
                "but is not sensitive to it; the method will not re-run when "
                "the signal changes",
                "add the signal's value_changed (or edge) event to the "
                "method's sensitivity list",
            )


@rule(
    "REP403",
    layer="dataflow",
    severity="warning",
    summary="combinational loop through method processes",
)
def _check_combinational_loop(ctx: LintContext) -> Iterator[CheckResult]:
    """Method processes whose write -> sensitivity edges form a cycle keep
    re-triggering each other within one instant; at best the value churns
    through deltas, at worst the run dies on the per-instant delta guard."""
    analysis = ctx.dataflow_analysis()
    for cycle in analysis.method_cycles():
        names = sorted(summary.name for summary in cycle)
        yield (
            names[0],
            "method processes form a combinational loop (each writes a "
            f"signal another is sensitive to): {', '.join(names)}",
            "break the cycle with a clocked thread process, or drop the "
            "feedback signal from a sensitivity list",
        )


@rule("REP404", layer="dataflow", summary="yield inside a method process")
def _check_method_yield(ctx: LintContext) -> Iterator[CheckResult]:
    """SC_METHODs must not block.  In this kernel a ``yield`` makes the
    registered callback a generator function: calling it returns a
    generator the scheduler never iterates, so the body *silently never
    executes* — worse than a crash."""
    analysis = ctx.dataflow_analysis()
    for summary in analysis.summaries:
        if summary.kind == "method" and summary.yields_in_body:
            yield (
                summary.name,
                "method process body contains yield / yield from; calling it "
                "returns a generator the kernel never iterates, so the body "
                "silently does nothing",
                "register the function with add_thread, or stay non-blocking "
                "and use next_trigger() for dynamic sensitivity",
            )


@rule("REP405", layer="dataflow", summary="wait on an event nothing ever notifies")
def _check_dead_wait(ctx: LintContext) -> Iterator[CheckResult]:
    """A process waiting on an event that no process or interface method in
    the design ever notifies can never resume — REP310's deadlock class
    (paper Section 5.4), proven at the process level.  Signal-derived and
    kernel-notified (terminated) events are exempt, and the rule stays
    silent if any notify call escaped the static analysis (it could target
    any event)."""
    analysis = ctx.dataflow_analysis()
    notified_ids, unresolved = analysis.notify_scan()
    if unresolved:
        return
    for summary in analysis.summaries:
        for event in summary.waited_events:
            event_id = id(event)
            if (
                event_id in notified_ids
                or analysis.is_signal_event(event_id)
                or analysis.is_terminated_event(event_id)
            ):
                continue
            yield (
                analysis.event_label(event),
                f"process {summary.name!r} waits on event "
                f"{analysis.event_label(event)}, which nothing in the design "
                "ever notifies; the wait can never complete",
                "notify the event from some process or interface method, or "
                "remove the dead wait",
            )


@rule(
    "REP406",
    layer="dataflow",
    severity="warning",
    summary="DRCF unreachable from any bus master",
)
def _check_drcf_reachable(ctx: LintContext) -> Iterator[CheckResult]:
    """A fabric whose slave interface no master port can reach is dead
    logic: its contexts' interface methods are statically unreachable, so
    no context switch (the whole point of the transformation) ever runs."""
    top = ctx.top
    drcfs = list(_drcfs_of(top))
    if not drcfs:
        return
    masters_of: Dict[int, List[object]] = {}
    for module in _modules_of(top):
        for port in ports_of(module):
            _, impl = port.binding_chain()
            if isinstance(impl, Bus):
                masters_of.setdefault(id(impl), []).append(port)
    buses = [m for m in _modules_of(top) if isinstance(m, Bus)]
    for drcf in drcfs:
        context_names = ", ".join(c.name for c in drcf.contexts) or "none"
        hosting = [bus for bus in buses if any(s is drcf for s in bus.slaves)]
        if not hosting:
            yield (
                drcf.full_name,
                "fabric is not registered as a slave of any bus; its context "
                f"interface methods (contexts: {context_names}) are "
                "unreachable from any master",
                "register the fabric on a bus (slave_of in the netlist)",
            )
            continue
        reachable = any(
            port is not drcf.mst_port and port.owner is not drcf
            for bus in hosting
            for port in masters_of.get(id(bus), ())
        )
        if not reachable:
            bus_names = " / ".join(bus.full_name for bus in hosting)
            yield (
                drcf.full_name,
                f"no master port other than the fabric's own config port "
                f"reaches bus {bus_names}; context interface methods "
                f"(contexts: {context_names}) are statically unreachable",
                "attach a master (e.g. a CPU) to the fabric's bus",
            )


# --------------------------------------------------------------------------
# CFG-layer rules (control-flow analysis; opt-in via run_lint(cfg=True))
# --------------------------------------------------------------------------

def _edge_signal_map(ctx: LintContext) -> Dict[int, object]:
    """``id(edge event) -> signal`` for every signal in the design,
    including signals only reachable through port bindings (the dataflow
    summaries already resolved those)."""
    analysis = ctx.dataflow_analysis()
    edge_of: Dict[int, object] = {}

    def add(sig) -> None:
        edge_of[id(sig.posedge)] = sig
        edge_of[id(sig.negedge)] = sig

    for module in analysis.modules:
        for sig in signals_of(module).values():
            add(sig)
    for summary in analysis.summaries:
        for sig in (*summary.signal_writes, *summary.signal_reads):
            add(sig)
    return edge_of


def _clock_domains(ctx: LintContext):
    """``(clock_ids, domains)``: thread-toggled signals that clock at least
    one method, and per-method-process the set of clock-signal ids whose
    edges appear in its static sensitivity."""
    analysis = ctx.dataflow_analysis()
    edge_of = _edge_signal_map(ctx)
    method_summaries = [s for s in analysis.summaries if s.kind == "method"]
    sens_ids = [
        {id(e) for e in getattr(s.process, "static_sensitivity", ())}
        for s in method_summaries
    ]
    clock_ids: set = set()
    for use in analysis.signal_uses():
        if not any(w.kind == "thread" for w in use.writers):
            continue
        pos, neg = id(use.signal.posedge), id(use.signal.negedge)
        if any(pos in sens or neg in sens for sens in sens_ids):
            clock_ids.add(id(use.signal))
    domains: Dict[int, frozenset] = {}
    for summary, sens in zip(method_summaries, sens_ids):
        domains[id(summary.process)] = frozenset(
            id(edge_of[event_id])
            for event_id in sens
            if event_id in edge_of and id(edge_of[event_id]) in clock_ids
        )
    return clock_ids, domains


@rule(
    "REP501",
    layer="cfg",
    severity="warning",
    summary="zero-delay livelock: infinite loop with a wait-free back edge",
    example=(
        "def poll(self):\n"
        "    while True:\n"
        "        if self.ready.read():\n"
        "            yield self.done.posedge\n"
        "        # not-ready falls straight back to the loop head"
    ),
)
def _check_zero_delay_livelock(ctx: LintContext) -> Iterator[CheckResult]:
    """A ``while True`` thread loop with a back edge reachable without
    passing any wait can spin forever *within one delta cycle*: simulated
    time never advances and the run only ends on the watchdog.  Back edges
    re-entered through an enclosing loop do not count, and unresolved
    bodies stay silent."""
    for pcf in ctx.cfg_analysis():
        if pcf.kind != "thread" or pcf.unresolved:
            continue
        for lineno, source in waitless_loops(pcf.flow):
            yield (
                pcf.name,
                f"infinite loop (line {lineno}, test `{source}`) has a back "
                "edge reachable without any wait; on that path the thread "
                "spins without ever advancing simulated time",
                "make every iteration wait (timed or event) on all paths "
                "through the loop body",
            )


@rule(
    "REP502",
    layer="cfg",
    severity="warning",
    summary="unreachable statements in a process body",
    example=(
        "def run(self):\n"
        "    while True:\n"
        "        yield ns(10)\n"
        "    self.done.write(True)  # never reached"
    ),
)
def _check_unreachable_code(ctx: LintContext) -> Iterator[CheckResult]:
    """Statements no control path from the process entry reaches — usually
    code after an exit-free infinite loop or after every branch returned —
    never execute.  Exception edges count as paths, so code reachable only
    through a handler is not flagged."""
    for pcf in ctx.cfg_analysis():
        if pcf.unresolved:
            continue
        for lineno, source in unreachable_statements(pcf.flow):
            yield (
                pcf.name,
                f"statement at line {lineno} (`{source}`) is unreachable "
                "from the process entry and never executes",
                "delete the dead code, or restructure the loop it sits "
                "behind so it can exit",
            )


@rule(
    "REP503",
    layer="cfg",
    severity="warning",
    summary="conditional signal write in an edge-clocked method (latch-style)",
    example=(
        "def stage(self):  # sensitive to clk.posedge only\n"
        "    if self.enable.read():\n"
        "        self.q.write(self.d.read())\n"
        "    # no else: q silently holds its old value"
    ),
)
def _check_latch_style(ctx: LintContext) -> Iterator[CheckResult]:
    """An edge-clocked method that writes a signal on some control paths
    but not all of them silently holds the old value on the skipped paths —
    inferred-latch behaviour that RTL reviews flag because the hold is an
    accident of control flow, not a declared register.  Bodies with opaque
    calls or unresolved control flow stay silent."""
    analysis = ctx.dataflow_analysis()
    edge_of = _edge_signal_map(ctx)
    flows = {pcf.name: pcf for pcf in ctx.cfg_analysis()}
    for summary in analysis.summaries:
        if summary.kind != "method" or summary.opaque_calls:
            continue
        sens = list(getattr(summary.process, "static_sensitivity", ()))
        if not sens or not all(id(event) in edge_of for event in sens):
            continue
        pcf = flows.get(summary.name)
        if pcf is None or pcf.unresolved:
            continue
        may, must = write_coverage(pcf.flow)
        if may == must:
            continue
        must_sigs = {id(sig) for path in must for sig in [pcf.resolve_signal(path)] if sig}
        reported: set = set()
        for path in sorted(may - must):
            sig = pcf.resolve_signal(path)
            if sig is None or id(sig) in must_sigs or id(sig) in reported:
                continue
            reported.add(id(sig))
            yield (
                summary.name,
                f"edge-clocked method writes signal "
                f"{analysis.signal_label(sig)} on only some control paths; "
                "on the others it silently holds its old value (inferred "
                "latch)",
                "write the signal on every path (e.g. a default assignment "
                "before the branch)",
            )


@rule(
    "REP504",
    layer="cfg",
    severity="warning",
    summary="wait on only one branch arm (variable-latency protocol hazard)",
    example=(
        "def handshake(self):\n"
        "    while True:\n"
        "        if not self.ack.read():\n"
        "            yield self.ack.posedge  # waits only when slow\n"
        "        self.data.write(self.next_beat())\n"
        "        yield ns(10)"
    ),
)
def _check_one_sided_wait(ctx: LintContext) -> Iterator[CheckResult]:
    """A branch whose arms rejoin but where one arm must wait and the other
    can fall through without waiting gives the thread data-dependent
    latency: downstream timing silently shifts by a delta (or more)
    depending on which arm ran.  In handshake protocols this is the
    classic source of one-cycle-off bugs.  Arms that leave the region
    (early return, break) are guards, not latency branches, and are not
    compared."""
    for pcf in ctx.cfg_analysis():
        if pcf.kind != "thread" or pcf.unresolved:
            continue
        for lineno, source in one_sided_wait_branches(pcf.flow):
            yield (
                pcf.name,
                f"branch at line {lineno} (`if {source}`) waits on one arm "
                "but can rejoin waitlessly through the other; completion "
                "timing depends on data",
                "wait on both arms (or neither), or split the fast path "
                "into its own state",
            )


@rule(
    "REP505",
    layer="cfg",
    severity="warning",
    summary="clock-domain crossing without a synchronizer stage",
    example=(
        "# producer method clocked by clk_a writes self.flag;\n"
        "# consumer method clocked by clk_b reads self.flag directly\n"
        "# (no intermediate method that only moves flag between domains)"
    ),
)
def _check_clock_domain_crossing(ctx: LintContext) -> Iterator[CheckResult]:
    """A signal written only by methods of one clock domain and read by a
    method of a disjoint domain crosses clock domains; in the modeled
    hardware that read samples an asynchronous input (metastability,
    missed pulses).  A reader that acts as a synchronizer flop — it reads
    nothing but the crossing signal and writes exactly one signal — is
    exempt, as are signals whose writers span domains (already covered by
    the race rules)."""
    analysis = ctx.dataflow_analysis()
    clock_ids, domains = _clock_domains(ctx)
    if not clock_ids:
        return
    for use in analysis.signal_uses():
        if id(use.signal) in clock_ids or not use.writers:
            continue
        if any(w.kind != "method" for w in use.writers):
            continue
        writer_domains: set = set()
        for writer in use.writers:
            writer_domains |= domains.get(id(writer.process), frozenset())
        if len(writer_domains) != 1:
            continue
        for reader in use.readers:
            if reader.kind != "method":
                continue
            reader_domain = domains.get(id(reader.process), frozenset())
            if not reader_domain or writer_domains & reader_domain:
                continue
            if (
                len({id(s) for s in reader.signal_reads}) == 1
                and len({id(s) for s in reader.signal_writes}) == 1
            ):
                continue  # synchronizer flop: single-input, single-output
            yield (
                use.label,
                f"signal crosses clock domains: written under one clock, "
                f"read by {reader.name!r} under a disjoint clock without a "
                "synchronizer stage",
                "pass the signal through a synchronizer method in the "
                "reader's domain (reads only this signal, writes one "
                "registered copy)",
            )


@rule(
    "REP506",
    layer="cfg",
    severity="warning",
    summary="two threads write the same signal before their first wait",
    example=(
        "def init_a(self):\n"
        "    self.mode.write(1)   # runs at t=0\n"
        "    yield ns(10)\n"
        "def init_b(self):\n"
        "    self.mode.write(2)   # also runs at t=0: order decides\n"
        "    yield ns(10)"
    ),
)
def _check_entry_write_race(ctx: LintContext) -> Iterator[CheckResult]:
    """Sharpens REP401 with position: two start-running threads whose
    *entry segments* (code before the first wait) write the same signal
    definitely collide in the very first instant — not merely "may race",
    the conflicting writes are unconditionally reachable before any wait
    could separate them.  The committed value is whichever thread the
    scheduler happened to run last."""
    analysis = ctx.dataflow_analysis()
    writers: List[Tuple[ProcessControlFlow, Dict[int, object]]] = []
    for pcf in ctx.cfg_analysis():
        if pcf.kind != "thread" or pcf.unresolved:
            continue
        if not getattr(pcf.process, "runs_at_start", True):
            continue
        sigs: Dict[int, object] = {}
        for path in sorted(pcf.flow.entry_writes):
            sig = pcf.resolve_signal(path)
            if sig is not None:
                sigs[id(sig)] = sig
        if sigs:
            writers.append((pcf, sigs))
    for i, (a, a_sigs) in enumerate(writers):
        for b, b_sigs in writers[i + 1:]:
            shared = set(a_sigs) & set(b_sigs)
            for sig_id in sorted(shared, key=lambda s: analysis.signal_label(a_sigs[s])):
                sig = a_sigs[sig_id]
                pair = tuple(sorted((a.name, b.name)))
                yield (
                    analysis.signal_label(sig),
                    f"threads {pair[0]!r} and {pair[1]!r} both write this "
                    "signal before their first wait; the writes land in the "
                    "same first instant and the committed value depends on "
                    "evaluation order",
                    "stagger the writers with a wait, or give the signal a "
                    "single driver",
                )


# --------------------------------------------------------------------------
# Interproc-layer rules (wait-effect analysis; opt-in via run_lint(interproc=True))
# --------------------------------------------------------------------------

def _wait_for_graph(top: Module):
    """The static wait-for graph of the elaborated design.

    Nodes are live components (keyed by id); an edge ``a -> b`` means "a
    blocked call in *a* cannot complete until *b* returns":

    * ``bus -> slave`` for every slave of a *blocking* bus (the transfer
      holds the bus until the slave's interface generator finishes);
    * ``drcf -> bus`` when a fabric fetches configuration bitstreams over
      a bus reachable from its master port (the context switch blocks
      mid-slave-call until the fetch completes);
    * ``bridge -> downstream bus`` for a :class:`~repro.bus.BusBridge`
      (forwarding blocks the upstream slave call on downstream
      arbitration).

    Returns ``(edges, objects)``: successor ids per node id, and the live
    object behind each id.
    """
    from ..bus.bridge import BusBridge

    edges: Dict[int, List[int]] = {}
    objects: Dict[int, object] = {}

    def add(src: object, dst: object) -> None:
        objects[id(src)] = src
        objects[id(dst)] = dst
        edges.setdefault(id(src), []).append(id(dst))

    for module in _modules_of(top):
        if isinstance(module, Bus) and module.protocol == "blocking":
            for slave in module.slaves:
                add(module, slave)
        if isinstance(module, BusBridge):
            _, downstream = module.dn_port.binding_chain()
            if downstream is not None:
                add(module, downstream)
    for drcf in _drcfs_of(top):
        if not getattr(type(drcf), "FETCHES_CONFIG_OVER_BUS", True):
            continue
        store = _store_of(drcf)
        if isinstance(store, Bus):
            add(drcf, store)
    return edges, objects


def _find_cycle(edges: Dict[int, List[int]], start: int) -> Optional[List[int]]:
    """A path ``start -> ... -> start`` through ``edges``, or None."""
    stack: List[Tuple[int, List[int]]] = [(start, [start])]
    seen: set = set()
    while stack:
        node, path = stack.pop()
        for succ in edges.get(node, ()):
            if succ == start:
                return path + [start]
            if succ not in seen:
                seen.add(succ)
                stack.append((succ, path + [succ]))
    return None


@rule(
    STATIC_DEADLOCK_RULE_CODE,
    layer="interproc",
    summary="wait-for cycle: configuration fetched over the blocking bus being served",
    example=(
        "netlist = make_reconfigurable_netlist(\n"
        '    ("fir", "xtea"), bus_protocol="blocking"\n'
        ")[0]\n"
        "# drcf1 serves slave calls on `bus` AND fetches its bitstreams\n"
        "# over `bus`: the first call that triggers a context switch\n"
        "# deadlocks (bus -> drcf1 -> bus in the wait-for graph)"
    ),
)
def _check_static_wait_for_cycle(ctx: LintContext) -> Iterator[CheckResult]:
    """The paper's Section 5.4 limitation-3 deadlock, proven on the *live*
    elaborated design: a cycle in the static wait-for graph (blocking bus
    -> slave it holds for -> bus it must master) means the first context
    switch triggered from a slave call can never complete.  This sharpens
    the netlist-level REP310 precondition — binding chains, the live bus
    protocol and the registered slave set are checked, not spec kwargs —
    and is the static twin of the runtime post-mortem
    (:func:`repro.analysis.deadlock.diagnose`), which cross-references
    this code in its reports."""
    edges, objects = _wait_for_graph(ctx.top)
    for drcf in _drcfs_of(ctx.top):
        cycle = _find_cycle(edges, id(drcf))
        if cycle is None:
            continue
        chain = " -> ".join(
            getattr(objects[node], "full_name", type(objects[node]).__name__)
            for node in cycle
        )
        yield (
            drcf.full_name,
            f"static wait-for cycle: {chain}; a slave call that triggers a "
            "context switch blocks the bus its own configuration fetch "
            "needs, so the system deadlocks (paper Section 5.4, "
            "limitation 3; runtime twin: REP310 / "
            "analysis.deadlock.diagnose)",
            'use protocol="split" on the bus, or fetch bitstreams over a '
            "dedicated configuration bus (dedicated_config_bus)",
        )


@rule(
    "REP602",
    layer="interproc",
    severity="warning",
    summary="lock-order inversion between threads",
    example=(
        "def worker_a(self):\n"
        "    yield from self.m1.lock('a')\n"
        "    yield from self.m2.lock('a')  # holds m1, takes m2\n"
        "    ...\n"
        "def worker_b(self):\n"
        "    yield from self.m2.lock('b')\n"
        "    yield from self.m1.lock('b')  # holds m2, takes m1: inversion"
    ),
)
def _check_lock_order_inversion(ctx: LintContext) -> Iterator[CheckResult]:
    """Two threads that acquire the same two mutexes in opposite orders can
    interleave into a hold-and-wait cycle (A holds m1 wanting m2, B holds
    m2 wanting m1) that no notify ever breaks.  The lock traces are
    source-order approximations, so this is a warning; traces with
    unresolvable lock targets stay silent."""
    holders: Dict[Tuple[int, int], Tuple[str, int, object, object]] = {}
    for trace in ctx.lock_traces():
        if trace.unresolved is not None:
            continue
        for acq in trace.acquisitions:
            for held in acq.held:
                if held is acq.mutex:
                    continue
                holders.setdefault(
                    (id(held), id(acq.mutex)),
                    (trace.name, acq.lineno, held, acq.mutex),
                )
    for (held_id, taken_id), (name, lineno, held, taken) in sorted(
        holders.items(), key=lambda kv: kv[1][0]
    ):
        if held_id >= taken_id:
            continue  # report each inverted pair once
        reverse = holders.get((taken_id, held_id))
        if reverse is None:
            continue
        other_name, other_lineno, _, _ = reverse
        yield (
            name,
            f"acquires mutex {getattr(taken, 'name', '?')!r} while holding "
            f"{getattr(held, 'name', '?')!r} (line {lineno}), but thread "
            f"{other_name!r} acquires them in the opposite order (line "
            f"{other_lineno}); the interleaving can hold-and-wait deadlock",
            "acquire shared mutexes in one global order everywhere",
        )


@rule(
    "REP603",
    layer="interproc",
    severity="warning",
    summary="blocking bus transport issued while holding a mutex on the config path",
    example=(
        "def task(self):\n"
        "    yield from self.m.lock('task')\n"
        "    # blocking transport on the bus DRCF bitstream fetches use:\n"
        "    yield from self.bus.write(addr, data)\n"
        "    self.m.unlock()"
    ),
)
def _check_blocking_call_while_locked(ctx: LintContext) -> Iterator[CheckResult]:
    """A blocking bus call made with a mutex held extends the lock's hold
    time by arbitration plus the slave's entire latency — and when the bus
    carries a DRCF's configuration traffic, a context switch triggered by
    the very call serializes the whole reconfiguration behind the lock.
    Every other acquirer then transitively waits on bus traffic it cannot
    see, the hold-and-wait half of the Section 5.4 deadlock."""
    config_path_ids: set = set()
    for drcf in _drcfs_of(ctx.top):
        if not getattr(type(drcf), "FETCHES_CONFIG_OVER_BUS", True):
            continue
        store = _store_of(drcf)
        if store is None:
            continue
        config_path_ids.add(id(store))
        if isinstance(store, Bus):
            config_path_ids.update(id(s) for s in store.slaves)
    if not config_path_ids:
        return
    for trace in ctx.lock_traces():
        if trace.unresolved is not None:
            continue
        for call in trace.bus_calls_while_held:
            if id(call.target) not in config_path_ids:
                continue
            held = ", ".join(
                repr(getattr(m, "name", "?")) for m in call.held
            )
            target_name = getattr(
                call.target, "full_name", type(call.target).__name__
            )
            yield (
                trace.name,
                f"blocking {type(call.target).__name__.lower()} call "
                f"self.{'.'.join(call.path)}.{call.method} (line "
                f"{call.lineno}) is issued while holding mutex(es) {held}, "
                f"and {target_name} carries DRCF configuration traffic: a "
                "context switch triggered by this call serializes the "
                "reconfiguration behind the lock",
                "release the mutex before blocking transport, or move "
                "configuration traffic off this bus",
            )


@rule(
    "REP604",
    layer="interproc",
    severity="warning",
    summary="blocking acquire whose releasing counterpart never appears",
    example=(
        "def worker(self):\n"
        "    yield from self.sem.wait()   # no process ever calls\n"
        "    ...                          # self.sem.post(): the wait\n"
        "                                 # can never complete"
    ),
)
def _check_release_free_acquire(ctx: LintContext) -> Iterator[CheckResult]:
    """A thread parking in ``Mutex.lock`` / ``Semaphore.wait`` can only
    resume when some reachable code calls the releasing counterpart
    (``unlock`` / ``post``) on the *same live object*.  The release
    closure follows ``self`` helpers and resolvable foreign calls
    transitively (a post buried inside a channel method still counts);
    if any thread body or closure is unresolved the rule stays silent —
    a release could hide anywhere it cannot see."""
    processes = [
        p for module in _modules_of(ctx.top) for p in processes_of(module)
    ]
    sites = []
    for process in processes:
        if getattr(process, "kind", None) != "thread":
            continue
        found, unresolved = acquire_sites(process)
        if unresolved is not None:
            return  # a blocking call escaped the analysis: stay silent
        sites.extend(found)
    if not sites:
        return
    released: set = set()
    for process in processes:
        fn = getattr(process, "fn", None)
        owner = getattr(fn, "__self__", None)
        if fn is None or owner is None:
            return
        ids, complete = release_closure(owner, fn)
        if not complete:
            return
        released |= ids
    for site in sites:
        if id(site.target) in released:
            continue
        counterpart = ACQUIRE_COUNTERPARTS[(type(site.target).__name__, site.method)]
        yield (
            site.process_name,
            f"blocks in self.{'.'.join(site.path)}.{site.method}() (line "
            f"{site.lineno}), but no process in the design ever calls "
            f".{counterpart}() on that {type(site.target).__name__.lower()}; "
            "the acquire can never complete",
            f"call .{counterpart}() from the releasing side, or drop the "
            "acquire",
        )
