"""AST-level dataflow analysis of process bodies over an elaborated design.

The netlist linter (:mod:`repro.analysis.lint`) checks the *declared*
architecture; this module looks *inside* the registered processes.  Each
process function (``Process.fn``) is parsed with :mod:`ast` and reduced to
an effect summary — which signals it reads and writes, which events it
waits on and notifies — and the summaries are assembled into a design-wide
dataflow view that the REP4xx lint rules query:

* same-delta multi-driver races (REP401),
* method processes reading outside their sensitivity list (REP402),
* combinational loops through method processes (REP403),
* blocking waits inside method processes (REP404),
* waits on events nothing ever notifies (REP405) — the Section 5.4
  deadlock class, proven at the process level before any simulation runs.

The analysis is two-phase so it stays near-linear in design size:

1. *Syntactic phase* — one AST walk per function body, producing
   :class:`_FnFacts` (attribute paths rooted at ``self``, not objects).
   Cached per code object, so a class instantiated a hundred times is
   parsed once.
2. *Resolution phase* — per process, the attribute paths are resolved
   against the **live** elaborated design with ``getattr`` chains.  A path
   landing on a :class:`~repro.kernel.Port` is followed through
   ``binding_chain()`` to the bound signal, so cross-module drivers are
   attributed to the signal itself, not the port object.

Everything is a conservative approximation: unresolvable constructs set
``unresolved_*`` flags that make the rules *weaker* (fewer findings), never
wrong.  :func:`cross_check` closes the loop the other way — a short bounded
simulation tags each REP401/REP405 finding ``confirmed``/``unconfirmed``
against actual kernel behaviour.
"""

from __future__ import annotations

import ast
import inspect
import textwrap
import types
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..kernel import (
    Event,
    Module,
    Port,
    Signal,
    SimTime,
    Simulator,
    events_of,
    ports_of,
    processes_of,
    signals_of,
    us,
)

#: Sentinel: an attribute path that does not resolve on the live design.
_UNRESOLVED = object()

#: Call names recognised as pure-timeout wait expressions (``yield ns(10)``).
_TIME_FUNCS = frozenset({"fs", "ps", "ns", "us", "ms", "sec", "from_fs", "cycles_to_time", "SimTime"})

#: Calls that change the process/scheduling structure at runtime.  A design
#: whose process bodies contain any of these cannot be statically
#: scheduled: the plan built at elaboration would not account for them.
_DYNAMIC_CALL_NAMES = frozenset(
    {"spawn", "next_trigger", "add_thread", "add_method", "kill", "on_update"}
)

#: Name calls (builtins and kernel constructors) known to be free of side
#: effects on the design.  Anything else makes the body *opaque*: it may
#: read or write signals through aliases the path analysis cannot see.
_PURE_NAME_CALLS = frozenset(
    {
        "len", "int", "float", "bool", "str", "abs", "min", "max", "sum",
        "round", "range", "enumerate", "zip", "sorted", "reversed", "tuple",
        "list", "dict", "set", "frozenset", "divmod", "pow", "ord", "chr",
        "isinstance", "issubclass", "all", "any", "repr", "hash", "id",
        "getattr", "hasattr", "iter", "next", "format", "AnyOf", "AllOf",
    }
    | _TIME_FUNCS
)

#: Attribute calls that only *read* their receiver (safe on any object).
_PURE_ATTR_CALLS = frozenset(
    {
        "read", "get", "items", "keys", "values", "count", "index", "copy",
        "bit_length", "to_ns", "to_ps", "to_us", "femtoseconds", "startswith",
        "endswith", "join", "split", "format", "lower", "upper", "events",
    }
    | _TIME_FUNCS
)


# --------------------------------------------------------------------------
# Syntactic phase: per-function effect facts
# --------------------------------------------------------------------------

@dataclass(frozen=True)
class _FnFacts:
    """Syntactic effects of one function body (attribute paths, no objects)."""

    writes: Tuple[Tuple[str, ...], ...]
    reads: Tuple[Tuple[str, ...], ...]
    notifies: Tuple[Tuple[str, ...], ...]
    waits: Tuple[Tuple[str, ...], ...]
    self_calls: Tuple[str, ...]
    static_wait: bool
    unresolved_wait: bool
    unresolved_notify: bool
    yields_in_body: bool
    #: Body stores state outside local variables (attribute/subscript
    #: assignment, global/nonlocal): running it a different number of
    #: times is observable, so it is not a combinational function.
    stateful: bool = False
    #: Body calls something whose effects the path analysis cannot see
    #: (unknown free function, unknown method, write/read via an alias).
    opaque_calls: bool = False
    #: Body calls a process-control API (:data:`_DYNAMIC_CALL_NAMES`).
    dynamic_calls: bool = False


class _FactsVisitor(ast.NodeVisitor):
    """Collects :class:`_FnFacts` from one function body.

    Nested function definitions and lambdas are *not* entered: their bodies
    run in another context (callbacks, listeners), so attributing their
    effects to this process would over-claim — and a ``yield`` inside one
    must not count as the process itself blocking.
    """

    def __init__(self) -> None:
        self.writes: List[Tuple[str, ...]] = []
        self.reads: List[Tuple[str, ...]] = []
        self.notifies: List[Tuple[str, ...]] = []
        self.waits: List[Tuple[str, ...]] = []
        self.self_calls: List[str] = []
        self.static_wait = False
        self.unresolved_wait = False
        self.unresolved_notify = False
        self.yields_in_body = False
        self.stateful = False
        self.opaque_calls = False
        self.dynamic_calls = False

    # -- scope fences -------------------------------------------------------
    def _skip_scope(self, node: ast.AST) -> None:
        pass

    visit_FunctionDef = _skip_scope
    visit_AsyncFunctionDef = _skip_scope
    visit_Lambda = _skip_scope

    # -- helpers ------------------------------------------------------------
    @staticmethod
    def _path(node: ast.AST) -> Optional[Tuple[str, ...]]:
        """``self.a.b`` -> ``("a", "b")``; ``self`` -> ``()``; else None."""
        parts: List[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if isinstance(node, ast.Name) and node.id == "self":
            return tuple(reversed(parts))
        return None

    # -- state stores --------------------------------------------------------
    def _check_store_targets(self, targets) -> None:
        # Stores to anything but plain local names (self.x = ..., d[k] = ...,
        # including inside tuple targets) persist across invocations.
        for target in targets:
            if isinstance(target, (ast.Tuple, ast.List)):
                self._check_store_targets(target.elts)
            elif not isinstance(target, ast.Name):
                self.stateful = True

    def visit_Assign(self, node: ast.Assign) -> None:
        self._check_store_targets(node.targets)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._check_store_targets([node.target])
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None:
            self._check_store_targets([node.target])
        self.generic_visit(node)

    def visit_Delete(self, node: ast.Delete) -> None:
        self._check_store_targets(node.targets)
        self.generic_visit(node)

    def visit_Global(self, node: ast.Global) -> None:
        self.stateful = True

    def visit_Nonlocal(self, node: ast.Nonlocal) -> None:
        self.stateful = True

    # -- effects ------------------------------------------------------------
    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute):
            attr = func.attr
            path = self._path(func.value)
            if attr in _DYNAMIC_CALL_NAMES:
                self.dynamic_calls = True
            if attr == "write":
                if path == ():
                    self.self_calls.append(attr)
                elif path:
                    self.writes.append(path)
                else:
                    # A write through a local alias could target any signal.
                    self.opaque_calls = True
            elif attr == "read":
                if path == ():
                    self.self_calls.append(attr)
                elif path:
                    self.reads.append(path)
                else:
                    self.opaque_calls = True
            elif attr in ("notify", "notify_delta"):
                if path == ():
                    self.self_calls.append(attr)
                elif path:
                    self.notifies.append(path)
                else:
                    self.unresolved_notify = True
            elif path == ():
                self.self_calls.append(attr)
            elif attr not in _PURE_ATTR_CALLS and attr not in _DYNAMIC_CALL_NAMES:
                # Unknown method call: could mutate state or touch signals
                # the path analysis cannot attribute.
                self.opaque_calls = True
        elif isinstance(func, ast.Name):
            if func.id in _DYNAMIC_CALL_NAMES:
                self.dynamic_calls = True
            elif func.id not in _PURE_NAME_CALLS:
                self.opaque_calls = True
        else:
            self.opaque_calls = True
        self.generic_visit(node)

    def visit_Attribute(self, node: ast.Attribute) -> None:
        if node.attr == "value":
            path = self._path(node.value)
            if path:
                self.reads.append(path)
            elif path is None:
                # ``.value`` on a non-self expression: if that expression
                # aliases a signal, this is a read the path analysis cannot
                # attribute (usually it is something harmless — an enum, an
                # AST node — but the static schedule must assume the worst).
                self.opaque_calls = True
        self.generic_visit(node)

    def _record_wait(self, value: ast.AST) -> None:
        path = self._path(value)
        if path:
            self.waits.append(path)
            return
        if isinstance(value, ast.Call):
            func = value.func
            name = None
            if isinstance(func, ast.Name):
                name = func.id
            elif isinstance(func, ast.Attribute):
                name = func.attr
            if name in _TIME_FUNCS:
                return  # pure timeout; no event involved
            if name in ("AnyOf", "AllOf"):
                if value.args and isinstance(value.args[0], (ast.List, ast.Tuple)):
                    for elt in value.args[0].elts:
                        elt_path = self._path(elt)
                        if elt_path:
                            self.waits.append(elt_path)
                        else:
                            self.unresolved_wait = True
                else:
                    self.unresolved_wait = True
                return
        self.unresolved_wait = True

    def visit_Yield(self, node: ast.Yield) -> None:
        self.yields_in_body = True
        value = node.value
        if value is None or (isinstance(value, ast.Constant) and value.value is None):
            self.static_wait = True
        else:
            self._record_wait(value)
        self.generic_visit(node)

    def visit_YieldFrom(self, node: ast.YieldFrom) -> None:
        self.yields_in_body = True
        value = node.value
        inlined = (
            isinstance(value, ast.Call)
            and isinstance(value.func, ast.Attribute)
            and isinstance(value.func.value, ast.Name)
            and value.func.value.id == "self"
        )
        if not inlined:
            # Delegating to a foreign generator (port call, channel method):
            # whatever it waits on is invisible here.
            self.unresolved_wait = True
        self.generic_visit(node)


#: Facts per code object (None = unparseable).  Class methods are parsed
#: once however many instances the design contains.
_FACTS_CACHE: Dict[object, Optional[_FnFacts]] = {}


def _fn_facts(func: object) -> Optional[_FnFacts]:
    """The (cached) syntactic facts of ``func``, or None if unparseable."""
    func = getattr(func, "__func__", func)
    code = getattr(func, "__code__", None)
    if code is None:
        return None
    if code in _FACTS_CACHE:
        return _FACTS_CACHE[code]
    facts: Optional[_FnFacts] = None
    try:
        tree = ast.parse(textwrap.dedent(inspect.getsource(func)))
    except (OSError, TypeError, SyntaxError, IndentationError, ValueError):
        tree = None
    if tree is not None:
        fn_node = next(
            (n for n in tree.body if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef))),
            None,
        )
        if fn_node is not None:
            visitor = _FactsVisitor()
            for stmt in fn_node.body:
                visitor.visit(stmt)
            facts = _FnFacts(
                writes=tuple(visitor.writes),
                reads=tuple(visitor.reads),
                notifies=tuple(visitor.notifies),
                waits=tuple(visitor.waits),
                self_calls=tuple(dict.fromkeys(visitor.self_calls)),
                static_wait=visitor.static_wait,
                unresolved_wait=visitor.unresolved_wait,
                unresolved_notify=visitor.unresolved_notify,
                yields_in_body=visitor.yields_in_body,
                stateful=visitor.stateful,
                opaque_calls=visitor.opaque_calls,
                dynamic_calls=visitor.dynamic_calls,
            )
    _FACTS_CACHE[code] = facts
    return facts


# --------------------------------------------------------------------------
# Resolution phase: paths -> live design objects
# --------------------------------------------------------------------------

def _resolve_path(owner: object, path: Tuple[str, ...]) -> object:
    """Follow ``owner.<a>.<b>...``; any failure yields :data:`_UNRESOLVED`."""
    obj = owner
    for attr in path:
        try:
            obj = getattr(obj, attr)
        except Exception:
            return _UNRESOLVED
    return obj


def _as_signal(obj: object) -> Optional[Signal]:
    """``obj`` as a Signal, following a port's binding chain if needed."""
    if isinstance(obj, Signal):
        return obj
    if isinstance(obj, Port):
        try:
            _, impl = obj.binding_chain()
        except Exception:
            return None
        if isinstance(impl, Signal):
            return impl
    return None


def _as_event(obj: object) -> Optional[Event]:
    if isinstance(obj, Event):
        return obj
    if isinstance(obj, Port):
        try:
            _, impl = obj.binding_chain()
        except Exception:
            return None
        if isinstance(impl, Event):
            return impl
    return None


def _add_unique(items: List[object], obj: object) -> None:
    if not any(existing is obj for existing in items):
        items.append(obj)


@dataclass
class ProcessSummary:
    """Resolved dataflow effects of one registered process.

    ``owner`` is the object the body's ``self`` refers to (usually the
    declaring module); effects of same-class helper methods invoked as
    ``self.helper(...)`` / ``yield from self.helper(...)`` are folded in
    transitively.  The ``unresolved_*`` flags record that some construct
    escaped the analysis, which consuming rules must treat as "anything
    could happen" (i.e. stay silent).
    """

    process: object
    owner: Optional[object]
    name: str
    kind: str
    runs_at_start: bool
    signal_reads: List[Signal] = field(default_factory=list)
    signal_writes: List[Signal] = field(default_factory=list)
    waited_events: List[Event] = field(default_factory=list)
    notified_events: List[Event] = field(default_factory=list)
    static_wait: bool = False
    unresolved_wait: bool = False
    unresolved_notify: bool = False
    yields_in_body: bool = False
    stateful: bool = False
    opaque_calls: bool = False
    dynamic_calls: bool = False

    def activation_events(self) -> List[Event]:
        """Events that can make this process runnable (sensitivity + waits)."""
        events: List[Event] = list(getattr(self.process, "static_sensitivity", ()))
        for event in self.waited_events:
            _add_unique(events, event)
        return events


def _accumulate(
    owner: object, func: object, summary: ProcessSummary, seen: Set[object], top: bool
) -> None:
    plain = getattr(func, "__func__", func)
    code = getattr(plain, "__code__", None)
    if code is None or code in seen:
        return
    seen.add(code)
    facts = _fn_facts(plain)
    if facts is None:
        summary.unresolved_wait = True
        summary.unresolved_notify = True
        summary.opaque_calls = True
        return
    if top:
        summary.yields_in_body = facts.yields_in_body
    summary.static_wait = summary.static_wait or facts.static_wait
    summary.unresolved_wait = summary.unresolved_wait or facts.unresolved_wait
    summary.unresolved_notify = summary.unresolved_notify or facts.unresolved_notify
    summary.stateful = summary.stateful or facts.stateful
    summary.opaque_calls = summary.opaque_calls or facts.opaque_calls
    summary.dynamic_calls = summary.dynamic_calls or facts.dynamic_calls
    for path in facts.writes:
        sig = _as_signal(_resolve_path(owner, path))
        if sig is not None:
            _add_unique(summary.signal_writes, sig)
    for path in facts.reads:
        sig = _as_signal(_resolve_path(owner, path))
        if sig is not None:
            _add_unique(summary.signal_reads, sig)
    for path in facts.notifies:
        obj = _resolve_path(owner, path)
        event = _as_event(obj)
        if event is not None:
            _add_unique(summary.notified_events, event)
        elif obj is _UNRESOLVED:
            summary.unresolved_notify = True
    for path in facts.waits:
        obj = _resolve_path(owner, path)
        event = _as_event(obj)
        if event is not None:
            _add_unique(summary.waited_events, event)
        elif not isinstance(obj, SimTime):
            summary.unresolved_wait = True
    for name in facts.self_calls:
        target = getattr(type(owner), name, None)
        target = getattr(target, "__func__", target)
        if isinstance(target, types.FunctionType):
            _accumulate(owner, target, summary, seen, top=False)


def summarize_process(process: object) -> ProcessSummary:
    """Build the effect summary of one process from its ``fn``."""
    fn = getattr(process, "fn", None)
    owner = getattr(fn, "__self__", None)
    summary = ProcessSummary(
        process=process,
        owner=owner,
        name=getattr(process, "name", repr(process)),
        kind=getattr(process, "kind", "process"),
        runs_at_start=bool(getattr(process, "runs_at_start", True)),
    )
    if fn is None or owner is None:
        # A free function / closure process: self-rooted resolution is
        # impossible, so report "anything could happen".
        summary.unresolved_wait = True
        summary.unresolved_notify = True
        summary.opaque_calls = True
        return summary
    _accumulate(owner, fn, summary, set(), top=True)
    return summary


# --------------------------------------------------------------------------
# Design-wide view
# --------------------------------------------------------------------------

@dataclass
class SignalUse:
    """All statically known writers and readers of one signal."""

    label: str
    signal: Signal
    writers: List[ProcessSummary] = field(default_factory=list)
    readers: List[ProcessSummary] = field(default_factory=list)


class DesignDataflow:
    """Module-level dataflow graph over an elaborated design.

    Built from the top module: one :class:`ProcessSummary` per registered
    process of every module in the hierarchy, plus label/identity indexes
    for signals and events.  The REP4xx rules and :func:`cross_check`
    query this object; construction is the expensive step (one AST parse
    per distinct function body, then per-process resolution), so the lint
    engine caches it per run on the :class:`~repro.analysis.lint.LintContext`.
    """

    def __init__(self, top: Module) -> None:
        self.top = top
        self.modules: List[Module] = [top, *top.descendants()]
        self.summaries: List[ProcessSummary] = []
        self._signal_labels: Dict[int, str] = {}
        self._signal_event_ids: Set[int] = set()
        self._event_labels: Dict[int, str] = {}
        self._terminated_ids: Set[int] = set()
        self._notify_scan: Optional[Tuple[Set[int], bool]] = None
        for module in self.modules:
            base = module.full_name
            for attr, sig in signals_of(module).items():
                self._signal_labels.setdefault(id(sig), f"{base}.{attr}")
                for event in sig.events():
                    self._signal_event_ids.add(id(event))
            for attr, event in events_of(module).items():
                self._event_labels.setdefault(id(event), f"{base}.{attr}")
        for module in self.modules:
            for process in processes_of(module):
                summary = summarize_process(process)
                self.summaries.append(summary)
                terminated = getattr(process, "terminated_event", None)
                if terminated is not None:
                    self._terminated_ids.add(id(terminated))
                for sig in (*summary.signal_writes, *summary.signal_reads):
                    # Signals reached through ports/references still get a
                    # label (their own name) even if no module owns them.
                    self._signal_labels.setdefault(id(sig), sig.name)
                    for event in sig.events():
                        self._signal_event_ids.add(id(event))

    # -- labels -------------------------------------------------------------
    def signal_label(self, signal: Signal) -> str:
        return self._signal_labels.get(id(signal), signal.name)

    def event_label(self, event: Event) -> str:
        return self._event_labels.get(id(event), event.name)

    def is_signal_event(self, event_id: int) -> bool:
        """True for a signal's value_changed/posedge/negedge event."""
        return event_id in self._signal_event_ids

    def is_terminated_event(self, event_id: int) -> bool:
        """True for a process's terminated_event (notified by the kernel)."""
        return event_id in self._terminated_ids

    # -- queries ------------------------------------------------------------
    def signal_uses(self) -> List[SignalUse]:
        """Per-signal writer/reader sets, sorted by label."""
        uses: Dict[int, SignalUse] = {}
        for summary in self.summaries:
            for sig in summary.signal_writes:
                use = uses.setdefault(id(sig), SignalUse(self.signal_label(sig), sig))
                use.writers.append(summary)
            for sig in summary.signal_reads:
                use = uses.setdefault(id(sig), SignalUse(self.signal_label(sig), sig))
                use.readers.append(summary)
        return sorted(uses.values(), key=lambda use: use.label)

    def corunnable(self, a: ProcessSummary, b: ProcessSummary) -> Optional[str]:
        """Why ``a`` and ``b`` can both be runnable in one delta, or None.

        Two grounds are provable statically: both run in the first
        evaluation phase, or some event appears in both activation sets
        (static sensitivity plus resolvable waited events).
        """
        if a.runs_at_start and b.runs_at_start:
            return "both are runnable in the first delta cycle"
        b_events = b.activation_events()
        shared = sorted(
            self.event_label(event)
            for event in a.activation_events()
            if any(event is other for other in b_events)
        )
        if shared:
            return f"both are activated by event {shared[0]}"
        return None

    def method_cycles(self) -> List[List[ProcessSummary]]:
        """Cycles among method processes via write -> sensitivity edges.

        Edge ``u -> v`` when ``u`` writes a signal one of whose events is
        in ``v``'s static sensitivity: committing u's write re-triggers v
        in the next delta.  Returns the strongly connected components that
        contain a cycle (including self-loops), deterministically ordered.
        """
        methods = [s for s in self.summaries if s.kind == "method"]
        n = len(methods)
        sens_ids: List[Set[int]] = [
            {id(e) for e in getattr(s.process, "static_sensitivity", ())} for s in methods
        ]
        adjacency: List[Set[int]] = [set() for _ in range(n)]
        for ui, u in enumerate(methods):
            written: Set[int] = set()
            for sig in u.signal_writes:
                written.update(id(e) for e in sig.events())
            if not written:
                continue
            for vi in range(n):
                if written & sens_ids[vi]:
                    adjacency[ui].add(vi)
        # Transitive closure; method-process counts are small and
        # tools/bench_lint.py guards against pathological growth.
        reach = [set(edges) for edges in adjacency]
        changed = True
        while changed:
            changed = False
            for i in range(n):
                extra: Set[int] = set()
                for j in reach[i]:
                    extra |= reach[j]
                if not extra <= reach[i]:
                    reach[i] |= extra
                    changed = True
        cycles: List[List[ProcessSummary]] = []
        assigned: Set[int] = set()
        for i in range(n):
            if i in assigned or i not in reach[i]:
                continue
            component = sorted({i} | {j for j in reach[i] if i in reach[j]})
            assigned.update(component)
            cycles.append([methods[j] for j in component])
        return cycles

    def notify_scan(self) -> Tuple[Set[int], bool]:
        """``(notified_event_ids, has_unresolved_notify)`` for the design.

        Scans every class method of every module (and of every process
        owner) — not just process bodies — because events are legitimately
        notified from interface methods called by *other* modules' processes
        (e.g. a slave's ``write`` kicking its worker thread).  Cached.
        """
        if self._notify_scan is not None:
            return self._notify_scan
        notified: Set[int] = set()
        unresolved = False
        owners: List[object] = list(self.modules)
        for summary in self.summaries:
            notified.update(id(e) for e in summary.notified_events)
            unresolved = unresolved or summary.unresolved_notify
            if summary.owner is not None and all(summary.owner is not o for o in owners):
                owners.append(summary.owner)
        scanned: Set[Tuple[int, int]] = set()
        for owner in owners:
            for klass in type(owner).__mro__:
                if klass is object:
                    continue
                for member in vars(klass).values():
                    func = member
                    if isinstance(member, (staticmethod, classmethod)):
                        func = member.__func__
                    if not isinstance(func, types.FunctionType):
                        continue
                    key = (id(owner), id(func.__code__))
                    if key in scanned:
                        continue
                    scanned.add(key)
                    facts = _fn_facts(func)
                    if facts is None:
                        continue
                    if facts.unresolved_notify:
                        unresolved = True
                    for path in facts.notifies:
                        obj = _resolve_path(owner, path)
                        event = _as_event(obj)
                        if event is not None:
                            notified.add(id(event))
                        elif obj is _UNRESOLVED:
                            unresolved = True
        self._notify_scan = (notified, unresolved)
        return self._notify_scan


# --------------------------------------------------------------------------
# Elaboration-time static schedule (consumed by repro.kernel.specialize)
# --------------------------------------------------------------------------

@dataclass
class SchedulePlan:
    """What the dataflow analysis could prove about an elaborated design,
    packaged for the kernel's specialization pass.

    ``silent_signals`` are single-writer signals with no observers at all:
    a write can commit in place, skipping the update queue and the delta
    notification entirely.  ``chained_signals`` additionally drive method
    processes through their static sensitivity; each entry carries the
    dependent methods per event kind (value_changed, posedge, negedge) in
    registration order, and ``method_ranks`` assigns those methods a
    topological rank so one forward sweep per evaluation phase settles the
    whole combinational wave.  ``register_signals`` are register-style
    nets between clocked methods: their writes stay staged (readers in the
    same instant keep seeing the old value, which is what makes them
    registers) but the plan proved nothing observes their events, so the
    update skips the notification scan.

    A non-empty ``fallback_reasons`` means the design must run on the
    generic scheduler; the decision is wholesale — a single unprovable
    construct anywhere rejects the entire design, so the two paths can
    never mix semantics.  ``exclusions`` is finer grained: per-signal
    reasons why an otherwise-interesting net was left on the generic
    commit protocol (multiple writers — including port-bound nets resolved
    through ``binding_chain()`` — or a writer the CFG layer could not
    prove writes at most once per instant); an excluded signal does not by
    itself reject the design.
    """

    fallback_reasons: List[str] = field(default_factory=list)
    #: Per-signal admission failures (informational; not a wholesale bail).
    exclusions: List[str] = field(default_factory=list)
    summaries: List[ProcessSummary] = field(default_factory=list)
    silent_signals: List[Signal] = field(default_factory=list)
    #: ``(signal, (value_changed_deps, posedge_deps, negedge_deps))``
    chained_signals: List[Tuple[Signal, Tuple[tuple, tuple, tuple]]] = field(
        default_factory=list
    )
    #: Register-style signals: staged commit kept, notification scan skipped.
    register_signals: List[Signal] = field(default_factory=list)
    #: ``(method_process, rank)`` for every chained method.
    method_ranks: List[Tuple[object, int]] = field(default_factory=list)
    rank_count: int = 0
    #: Thread processes admitted to the compiled-thread (rendezvous) fast
    #: path by :func:`repro.analysis.cfg.thread_rendezvous_profile`.  The
    #: admission pass runs in :func:`repro.kernel.specialize.try_specialize`
    #: and is independent of the signal plan: a wholesale signal-side bail
    #: (``fallback_reasons``) does not reject the threads, and vice versa.
    compiled_threads: List[object] = field(default_factory=list)
    #: Per-thread admission failures, mirroring ``exclusions`` for signals
    #: (informational; an excluded thread just stays on the generic
    #: generator protocol).
    thread_exclusions: List[str] = field(default_factory=list)

    @property
    def specializable(self) -> bool:
        """True when the signal fast path applies (no fallback, something
        to gain).  Compiled threads are admitted separately and do not
        feed this verdict."""
        return not self.fallback_reasons and bool(
            self.silent_signals or self.chained_signals or self.register_signals
        )


def build_schedule_plan(sim: Simulator) -> SchedulePlan:
    """Analyze an elaborated (not yet started) design for static scheduling.

    Bails out with a recorded reason on the *first* construct that defeats
    the analysis — unresolved waits/notifies, opaque or process-control
    calls, free-function processes — so rejected designs (the common case
    for spawn-heavy models) pay almost nothing at elaboration.

    A signal is eligible when the analysis proves: exactly one writing
    process, which never reads it back in the same body; no trace
    callbacks or write hook; no thread ever waits on (or anything
    notifies) its events; and every reader is a method process statically
    sensitive to it.  Observed (chained) signals additionally need the
    CFG layer's write-count proof on their writer — at most one write per
    instant for a thread (a live :class:`~repro.kernel.Clock` toggle
    qualifies via its positive phase durations), at most one per
    activation for a method — because in-place commits mark dependents
    per write where the generic path absorbs a pulse in one staged
    update.  A method is chainable when it is combinational —
    stateless, non-blocking, notifies nothing — and all the signals it
    touches stay inside the eligible set (reads restricted to its own
    sensitivity or constant signals).  *Sequential* methods — chainable
    methods clocked entirely by proven thread-driven nets — may
    additionally read and write register-style signals: unobservable
    nets that keep the staged-commit protocol.  All sets are pruned to a
    mutual fixpoint, then ranked longest-path over writer->reader edges;
    a combinational cycle rejects the design wholesale.  Per-signal
    admission failures worth reporting (multi-writer nets, failed writer
    proofs) are recorded in ``plan.exclusions`` without rejecting the
    design.
    """
    plan = SchedulePlan()
    reasons = plan.fallback_reasons
    if not sim._top_modules:
        reasons.append("no module hierarchy (spawn-only design)")
        return plan
    processes = list(sim._processes)
    if not processes:
        reasons.append("no registered processes")
        return plan

    summaries: List[ProcessSummary] = []
    for process in processes:
        summary = summarize_process(process)
        summaries.append(summary)
        if summary.unresolved_wait or summary.unresolved_notify:
            reasons.append(f"process {summary.name}: unresolved waits/notifies")
            return plan
        if summary.dynamic_calls:
            reasons.append(f"process {summary.name}: dynamic process-control calls")
            return plan
        if summary.opaque_calls:
            reasons.append(f"process {summary.name}: opaque calls (possible signal aliasing)")
            return plan
        if summary.kind == "method" and getattr(process, "_dynamic", None) is not None:
            reasons.append(f"process {summary.name}: dynamic trigger armed")
            return plan
    plan.summaries = summaries

    # -- usage maps (identity-keyed) ---------------------------------------
    sig_by_id: Dict[int, Signal] = {}
    writer_of: Dict[int, List[ProcessSummary]] = {}
    readers_of: Dict[int, List[ProcessSummary]] = {}
    for summary in summaries:
        for sig in summary.signal_writes:
            sig_by_id[id(sig)] = sig
            writer_of.setdefault(id(sig), []).append(summary)
        for sig in summary.signal_reads:
            sig_by_id[id(sig)] = sig
            readers_of.setdefault(id(sig), []).append(summary)
    for top in sim._top_modules:
        for module in (top, *top.descendants()):
            for sig in signals_of(module).values():
                sig_by_id.setdefault(id(sig), sig)
            # Chase each port's binding chain so port-bound nets are
            # analyzed like locally-owned ones: a signal reachable only
            # through ports still takes part in multi-writer accounting
            # and zero-writer (constant) classification.
            for port in ports_of(module):
                _, impl = port.binding_chain()
                if isinstance(impl, Signal):
                    sig_by_id.setdefault(id(impl), impl)

    waited_ids = {id(e) for s in summaries for e in s.waited_events}
    notified_ids = {id(e) for s in summaries for e in s.notified_events}
    method_summaries = {id(s.process): s for s in summaries if s.kind == "method"}

    # -- initial candidate signals ------------------------------------------
    # Lazy import: repro.analysis.cfg imports helpers from this module.
    from .cfg import analyze_process, proven_single_instant_writer

    candidates: Dict[int, Signal] = {}
    exclusions = plan.exclusions
    flow_cache: Dict[int, object] = {}

    def _writer_flow(summary: ProcessSummary):
        pid = id(summary.process)
        if pid not in flow_cache:
            flow_cache[pid] = analyze_process(summary.process)
        return flow_cache[pid]

    for sid, sig in sig_by_id.items():
        writers = writer_of.get(sid, [])
        if len(writers) != 1:
            if len(writers) > 1:
                names = ", ".join(sorted(w.name for w in writers))
                exclusions.append(f"signal {sig.name}: multiple writers ({names})")
            continue
        writer = writers[0]
        if any(r is sig for r in writer.signal_reads):
            continue  # same-body read-back: commit order would be observable
        if sig._trace_callbacks or sig.write_hook is not None:
            continue
        events = sig.events()
        if any(id(e) in waited_ids or id(e) in notified_ids for e in events):
            continue
        ok = True
        for event in events:
            if event._dynamic_waiters:
                ok = False
                break
            for proc in event._static_waiters:
                if id(proc) not in method_summaries:
                    ok = False  # a thread's static sensitivity includes it
                    break
            if not ok:
                break
        if not ok:
            continue
        for reader in readers_of.get(sid, []):
            proc = reader.process
            if id(proc) not in method_summaries or not any(
                any(e is se for se in proc.static_sensitivity) for e in events
            ):
                ok = False  # a reader the wave would not re-run
                break
        if not ok:
            continue
        # An observed signal commits in place on the fast path, so every
        # commit marks dependents immediately — whereas the generic path
        # absorbs a write-then-overwrite pulse in one staged update and
        # fires nothing.  Admission therefore needs the CFG layer's proof
        # that the writer commits at most once per instant (threads) or
        # per activation (methods).  Unobserved (silent) signals need no
        # proof: in-place multi-commits are invisible.
        if any(e._static_waiters for e in events):
            if writer.kind == "thread":
                proven, why = proven_single_instant_writer(writer.process, sig)
                if not proven:
                    exclusions.append(
                        f"signal {sig.name}: thread writer {writer.name}: {why}"
                    )
                    continue
            else:
                flow = _writer_flow(writer)
                if flow.unresolved:
                    exclusions.append(
                        f"signal {sig.name}: writer {writer.name}: "
                        f"control flow unresolved: {flow.reason}"
                    )
                    continue
                count = flow.live_write_counts().get(id(sig), (sig, 0))[1]
                if count > 1:
                    exclusions.append(
                        f"signal {sig.name}: writer {writer.name} may write "
                        f"it more than once per activation"
                    )
                    continue
        candidates[sid] = sig

    # -- register-eligible signals ------------------------------------------
    # A register-style net keeps the staged-commit protocol (readers in
    # the same instant must see the old value), so multiple writers and
    # read-backs are all fine; what matters is that its events are
    # provably unobservable, making the notification scan skippable, and
    # — checked inside the fixpoint below — that every access comes from a
    # clocked (sequential) method so commit timing shifts uniformly
    # between the two schedulers.
    register_eligible: Dict[int, Signal] = {}
    for sid, sig in sig_by_id.items():
        if sid not in writer_of or sid in candidates:
            continue
        if sig._trace_callbacks or sig.write_hook is not None:
            continue
        events = sig.events()
        if any(id(e) in waited_ids or id(e) in notified_ids for e in events):
            continue
        if any(e._static_waiters or e._dynamic_waiters for e in events):
            continue
        register_eligible[sid] = sig

    # -- initial chainable methods ------------------------------------------
    chainable: Dict[int, ProcessSummary] = {}
    for summary in summaries:
        if summary.kind != "method":
            continue
        if summary.stateful or summary.yields_in_body:
            continue
        if summary.notified_events or summary.waited_events:
            continue
        if not summary.process.static_sensitivity:
            continue
        chainable[id(summary.process)] = summary

    # -- mutual fixpoint ----------------------------------------------------
    # A signal no process writes is constant — unless elaboration code
    # staged a write that will only commit in the first update phase, in
    # which case a wave running in delta 0 would read the pre-commit value.
    zero_writer_ids = {
        sid
        for sid, sig in sig_by_id.items()
        if sid not in writer_of and not sig._update_requested
    }
    seq_pids: Set[int] = set()
    register_ids: Set[int] = set()
    changed = True
    while changed:
        changed = False
        cand_event_ids: Dict[int, int] = {}
        for sid, sig in candidates.items():
            for event in sig.events():
                cand_event_ids[id(event)] = sid
        # Sequential (clocked) methods: every sensitivity event belongs to
        # a candidate net driven by a proven single-instant-writer thread
        # (a clock).  Such methods run exactly when the clock commits — in
        # the commit's own evaluation phase on the fast path, one delta
        # later on the generic path — so every register they touch shifts
        # commit timing by the same uniform delta and reads stay
        # equivalent on both schedulers.
        seq_pids = set()
        for pid, summary in chainable.items():
            sens = summary.process.static_sensitivity
            if sens and all(
                id(e) in cand_event_ids
                and writer_of[cand_event_ids[id(e)]][0].kind == "thread"
                for e in sens
            ):
                seq_pids.add(pid)
        register_ids = {
            sid
            for sid in register_eligible
            if all(id(s.process) in seq_pids for s in writer_of.get(sid, []))
            and all(id(s.process) in seq_pids for s in readers_of.get(sid, []))
        }
        for pid, summary in list(chainable.items()):
            proc = summary.process
            is_seq = pid in seq_pids
            ok = all(id(e) in cand_event_ids for e in proc.static_sensitivity)
            if ok:
                sens_sids = {cand_event_ids[id(e)] for e in proc.static_sensitivity}
                ok = all(
                    id(sig) in candidates or (is_seq and id(sig) in register_ids)
                    for sig in summary.signal_writes
                ) and all(
                    id(sig) in sens_sids
                    or id(sig) in zero_writer_ids
                    or (is_seq and id(sig) in register_ids)
                    for sig in summary.signal_reads
                )
            if not ok:
                del chainable[pid]
                changed = True
        for sid, sig in list(candidates.items()):
            ok = all(
                id(proc) in chainable
                for event in sig.events()
                for proc in event._static_waiters
            ) and all(
                id(reader.process) in chainable for reader in readers_of.get(sid, [])
            )
            if not ok:
                del candidates[sid]
                changed = True

    # -- topological ranks (longest path over writer -> dependent edges) ----
    preds: Dict[int, Set[int]] = {pid: set() for pid in chainable}
    for sid, sig in candidates.items():
        writer = writer_of[sid][0]
        wpid = id(writer.process)
        if wpid not in chainable:
            continue  # thread-driven source
        for event in sig.events():
            for proc in event._static_waiters:
                if id(proc) in chainable:
                    preds[id(proc)].add(wpid)
    ranks: Dict[int, int] = {pid: 0 for pid in chainable}
    for _ in range(len(chainable) + 1):
        moved = False
        for pid, above in preds.items():
            for wpid in above:
                if ranks[pid] <= ranks[wpid]:
                    ranks[pid] = ranks[wpid] + 1
                    moved = True
        if not moved:
            break
    else:
        reasons.append("combinational cycle among method processes")
        return plan

    plan.method_ranks = [
        (summary.process, ranks[pid]) for pid, summary in chainable.items()
    ]
    plan.rank_count = (max(ranks.values()) + 1) if ranks else 0
    for sid, sig in candidates.items():
        deps = tuple(
            tuple(event._static_waiters) for event in sig.events()
        )
        if any(deps):
            plan.chained_signals.append((sig, deps))
        else:
            plan.silent_signals.append(sig)
    plan.register_signals = [
        sig for sid, sig in register_eligible.items() if sid in register_ids
    ]
    if not plan.silent_signals and not plan.chained_signals:
        reasons.append("no signals eligible for static scheduling")
        plan.register_signals = []
    return plan


# --------------------------------------------------------------------------
# Dynamic cross-check
# --------------------------------------------------------------------------

def cross_check(
    netlist: object,
    diagnostics: Sequence[object],
    *,
    until: Optional[SimTime] = None,
    max_deltas_per_instant: int = 10_000,
    max_wall_s: float = 5.0,
) -> Dict[Tuple[str, str], str]:
    """Confirm REP401/REP405 findings against a short bounded simulation.

    Elaborates ``netlist`` fresh, instruments the raced signals with
    :attr:`Signal.write_hook` (attributing each write to
    ``Simulator.current_process``), runs for ``until`` (default 10 us)
    under a wall-clock watchdog, and returns ``{(code, location):
    "confirmed" | "unconfirmed"}`` for every REP401/REP405 diagnostic:

    * REP401 is *confirmed* when two distinct processes wrote the signal in
      the same instant (same timestamp and delta count).
    * REP405 is *confirmed* when the waited event never fired
      (``trigger_count == 0`` after the run).

    "unconfirmed" means the bounded run produced no witness — the static
    finding may still be reachable on a longer run or other stimulus.
    """
    targets = [d for d in diagnostics if d.code in ("REP401", "REP405")]
    if not targets:
        return {}
    sim = Simulator(name="lint_confirm")
    try:
        design = netlist.elaborate(sim)
    except Exception:
        return {(d.code, d.location): "unconfirmed" for d in targets}
    top = design.top
    modules = {m.full_name: m for m in [top, *top.descendants()]}

    def _located(location: str) -> object:
        module_name, _, attr = location.rpartition(".")
        module = modules.get(module_name)
        if module is None:
            return None
        return vars(module).get(attr)

    race_signals: Dict[str, Signal] = {}
    dead_events: Dict[str, Event] = {}
    for diag in targets:
        obj = _located(diag.location)
        if diag.code == "REP401" and isinstance(obj, Signal):
            race_signals[diag.location] = obj
        elif diag.code == "REP405" and isinstance(obj, Event):
            dead_events[diag.location] = obj

    raced: Set[str] = set()
    if race_signals:
        location_by_id = {id(sig): loc for loc, sig in race_signals.items()}
        writers: Dict[int, Tuple[Tuple[int, int], Set[str]]] = {}

        def _hook(signal: Signal, value: object) -> None:
            instant = (sim._now_fs, sim.delta_count)
            process = sim.current_process
            who = process.name if process is not None else "<elaboration>"
            record = writers.get(id(signal))
            if record is None or record[0] != instant:
                writers[id(signal)] = (instant, {who})
            else:
                record[1].add(who)
                if len(record[1]) >= 2:
                    raced.add(location_by_id[id(signal)])

        for sig in race_signals.values():
            sig.write_hook = _hook

    try:
        sim.run(
            until=until if until is not None else us(10),
            max_deltas_per_instant=max_deltas_per_instant,
            max_wall_s=max_wall_s,
        )
    except Exception:
        pass  # a crashing design still leaves the collected evidence usable

    statuses: Dict[Tuple[str, str], str] = {}
    for diag in targets:
        if diag.code == "REP401":
            witnessed = diag.location in raced
        else:
            event = dead_events.get(diag.location)
            witnessed = event is not None and event.trigger_count == 0
        statuses[(diag.code, diag.location)] = "confirmed" if witnessed else "unconfirmed"
    return statuses
