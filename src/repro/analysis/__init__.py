"""Post-run analysis: metric aggregation, deadlock diagnosis, static lint."""

from .deadlock import BlockedProcess, DeadlockReport, diagnose, watchdog_report
from .lint import (
    DEADLOCK_RULE_CODE,
    RULES,
    Diagnostic,
    LintContext,
    LintReport,
    Rule,
    all_rule_codes,
    register_rule,
    rule,
    run_lint,
)
from .metrics import RunReport, collect_run_metrics, per_context_rows, speedup

__all__ = [
    "BlockedProcess",
    "DEADLOCK_RULE_CODE",
    "DeadlockReport",
    "Diagnostic",
    "LintContext",
    "LintReport",
    "RULES",
    "Rule",
    "RunReport",
    "all_rule_codes",
    "collect_run_metrics",
    "diagnose",
    "per_context_rows",
    "register_rule",
    "rule",
    "run_lint",
    "speedup",
    "watchdog_report",
]
