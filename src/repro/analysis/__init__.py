"""Post-run analysis: metric aggregation, deadlock diagnosis, static lint."""

from .dataflow import (
    DesignDataflow,
    ProcessSummary,
    SchedulePlan,
    SignalUse,
    build_schedule_plan,
    cross_check,
    summarize_process,
)
from .deadlock import BlockedProcess, DeadlockReport, diagnose, watchdog_report
from .lint import (
    DEADLOCK_RULE_CODE,
    RULES,
    Diagnostic,
    LintContext,
    LintReport,
    Rule,
    all_rule_codes,
    register_rule,
    rule,
    run_lint,
)
from .metrics import RunReport, collect_run_metrics, per_context_rows, speedup

__all__ = [
    "BlockedProcess",
    "DEADLOCK_RULE_CODE",
    "DeadlockReport",
    "DesignDataflow",
    "Diagnostic",
    "LintContext",
    "LintReport",
    "ProcessSummary",
    "RULES",
    "Rule",
    "RunReport",
    "SchedulePlan",
    "SignalUse",
    "all_rule_codes",
    "build_schedule_plan",
    "collect_run_metrics",
    "cross_check",
    "diagnose",
    "per_context_rows",
    "register_rule",
    "rule",
    "run_lint",
    "speedup",
    "summarize_process",
    "watchdog_report",
]
