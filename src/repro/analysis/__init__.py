"""Post-run analysis: metric aggregation, deadlock diagnosis, static lint."""

from .cfg import (
    Cfg,
    FunctionControlFlow,
    ProcessControlFlow,
    WaitStateMachine,
    analyze_function,
    analyze_process,
    proven_single_instant_writer,
)
from .dataflow import (
    DesignDataflow,
    ProcessSummary,
    SchedulePlan,
    SignalUse,
    build_schedule_plan,
    cross_check,
    summarize_process,
)
from .deadlock import BlockedProcess, DeadlockReport, diagnose, watchdog_report
from .lint import (
    DEADLOCK_RULE_CODE,
    RULES,
    Diagnostic,
    LintContext,
    LintReport,
    Rule,
    all_rule_codes,
    register_rule,
    rule,
    run_lint,
)
from .metrics import RunReport, collect_run_metrics, per_context_rows, speedup

__all__ = [
    "BlockedProcess",
    "Cfg",
    "DEADLOCK_RULE_CODE",
    "DeadlockReport",
    "DesignDataflow",
    "Diagnostic",
    "FunctionControlFlow",
    "LintContext",
    "LintReport",
    "ProcessControlFlow",
    "ProcessSummary",
    "RULES",
    "Rule",
    "RunReport",
    "SchedulePlan",
    "SignalUse",
    "WaitStateMachine",
    "all_rule_codes",
    "analyze_function",
    "analyze_process",
    "build_schedule_plan",
    "proven_single_instant_writer",
    "collect_run_metrics",
    "cross_check",
    "diagnose",
    "per_context_rows",
    "register_rule",
    "rule",
    "run_lint",
    "speedup",
    "summarize_process",
    "watchdog_report",
]
