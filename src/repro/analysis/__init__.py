"""Post-run analysis: metric aggregation and deadlock diagnosis."""

from .deadlock import BlockedProcess, DeadlockReport, diagnose
from .metrics import RunReport, collect_run_metrics, per_context_rows, speedup

__all__ = [
    "BlockedProcess",
    "DeadlockReport",
    "RunReport",
    "collect_run_metrics",
    "diagnose",
    "per_context_rows",
    "speedup",
]
