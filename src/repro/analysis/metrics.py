"""Run-level metric aggregation.

Collects the quantities the paper's methodology exists to expose — context
activity, reconfiguration overhead, bus traffic split into data vs
configuration, utilizations — into one report structure the examples and
benches print.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..bus import Bus
from ..core import Drcf, PowerModel
from ..kernel import Simulator


@dataclass
class RunReport:
    """A flattened metric dictionary plus rendering helpers."""

    values: Dict[str, object] = field(default_factory=dict)

    def __getitem__(self, key: str):
        return self.values[key]

    def get(self, key: str, default=None):
        return self.values.get(key, default)

    def render(self, title: str = "run report") -> str:
        lines = [title]
        width = max((len(k) for k in self.values), default=0)
        for key, value in self.values.items():
            if isinstance(value, float):
                lines.append(f"  {key.ljust(width)} : {value:,.3f}")
            else:
                lines.append(f"  {key.ljust(width)} : {value}")
        return "\n".join(lines)


def collect_run_metrics(
    sim: Simulator,
    *,
    bus: Optional[Bus] = None,
    drcf: Optional[Drcf] = None,
    extra: Optional[Dict[str, object]] = None,
) -> RunReport:
    """Gather kernel, bus and DRCF metrics after a run."""
    values: Dict[str, object] = {
        "sim_time_us": sim.now.to_us(),
        "delta_cycles": sim.stats.delta_cycles,
        "process_executions": sim.stats.process_executions,
    }
    if bus is not None:
        summary = bus.monitor.summary()
        values.update(
            bus_transactions=summary["transactions"],
            bus_total_words=summary["total_words"],
            bus_config_words=summary["config_words"],
            bus_data_words=summary["data_words"],
            bus_utilization=bus.monitor.utilization(sim.now),
            bus_mean_arb_wait_ns=summary["mean_arbitration_wait_ns"],
        )
    if drcf is not None:
        summary = drcf.stats.summary()
        values.update(
            drcf_calls=summary["calls"],
            drcf_switches=summary["switches"],
            drcf_fetch_misses=summary["fetch_misses"],
            drcf_resident_hits=summary["resident_hits"],
            drcf_prefetch_hits=summary["prefetch_hits"],
            drcf_active_time_us=summary["active_time_ns"] / 1e3,
            drcf_reconfig_time_us=summary["reconfig_time_ns"] / 1e3,
            drcf_overhead_fraction=summary["reconfig_overhead_fraction"],
            drcf_config_words=summary["config_words"],
        )
        energy = PowerModel(drcf.tech).drcf_total(drcf, sim.now)
        values["drcf_energy_mj"] = energy.total_j * 1e3
    if extra:
        values.update(extra)
    return RunReport(values=values)


def per_context_rows(drcf: Drcf) -> List[Dict[str, object]]:
    """Per-context instrumentation as table rows (step 5 of the protocol)."""
    summary = drcf.stats.summary()["per_context"]
    rows: List[Dict[str, object]] = []
    for name, stats in summary.items():
        rows.append({"context": name, **stats})
    return rows


def speedup(reference_us: float, candidate_us: float) -> float:
    """Reference/candidate ratio (>1 means the candidate is faster)."""
    if candidate_us <= 0:
        raise ValueError("candidate time must be positive")
    return reference_us / candidate_us
