"""Deadlock diagnosis (paper Section 5.4, limitation 3).

"The interface methods must be non-blocking or must support split
transactions if the context memory bus is the same as the interface bus of
the components.  If this is not the case, a data transfer to a component in
DRCF would block the bus until the transfer is completed and the DRCF could
not load a new context, since the bus is already blocked.  This results in
deadlock of the bus."

After a run ends by starvation, :func:`diagnose` inspects the kernel's
blocked processes and the bus arbiter's ownership/wait queues to decide
whether the system deadlocked and to reconstruct the wait-for chain for the
report — experiment E7 reproduces exactly the paper's condition.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from ..bus import Bus
from ..kernel import Simulator
from .lint import DEADLOCK_RULE_CODE, STATIC_DEADLOCK_RULE_CODE


@dataclass
class BlockedProcess:
    """One process stuck at starvation time."""

    name: str
    waiting_on: str


@dataclass
class DeadlockReport:
    """Outcome of a deadlock diagnosis."""

    deadlocked: bool
    blocked: List[BlockedProcess] = field(default_factory=list)
    chains: List[str] = field(default_factory=list)
    #: The static lint rules that flag this failure mode pre-simulation;
    #: rendered in the report so a post-mortem points back at the checks
    #: that would have caught the architecture without running anything.
    #: ``static_rule`` is the netlist-spec precondition; ``interproc_rule``
    #: is its interprocedural twin, proving the wait-for cycle on the live
    #: elaborated design (``lint --interproc``).
    static_rule: str = DEADLOCK_RULE_CODE
    interproc_rule: str = STATIC_DEADLOCK_RULE_CODE
    #: True when the run was cut short by ``Simulator.run(max_wall_s=...)``
    #: rather than ending by event starvation; ``wall_s`` is the budget
    #: that expired.
    watchdog: bool = False
    wall_s: Optional[float] = None

    def render(self) -> str:
        """Human-readable report."""
        if self.watchdog:
            lines = [
                f"WATCHDOG: run stopped after {self.wall_s:g}s wall-clock "
                "without finishing (hang / livelock)"
            ]
            for item in self.blocked:
                lines.append(f"  process {item.name} waiting on {item.waiting_on}")
            for chain in self.chains:
                lines.append(f"  wait-for: {chain}")
            lines.append(
                f"  note: static lint rules {self.static_rule} and "
                f"{self.interproc_rule} flag the bus-deadlock architecture "
                "before simulation (python -m repro lint --interproc)"
            )
            return "\n".join(lines)
        if not self.deadlocked:
            return "no deadlock: simulation completed without stuck processes"
        lines = ["DEADLOCK detected:"]
        for item in self.blocked:
            lines.append(f"  process {item.name} waiting on {item.waiting_on}")
        for chain in self.chains:
            lines.append(f"  wait-for: {chain}")
        lines.append(
            f"  note: static lint rules {self.static_rule} and "
            f"{self.interproc_rule} flag this architecture before "
            "simulation (python -m repro lint --interproc)"
        )
        return "\n".join(lines)


def diagnose(sim: Simulator, buses: Sequence[Bus] = ()) -> DeadlockReport:
    """Inspect a starved simulation for deadlock.

    A process blocked on a pure timeout is merely early termination of the
    run; a process waiting on an event with no pending timed activity is
    permanently stuck.  When the supplied buses' arbiters are held while
    other requesters queue, the ownership edge is rendered as a wait-for
    chain (``waiter -> owner``) — the signature of the Section 5.4 bus
    deadlock is the DRCF queued behind the very master whose transfer it
    is servicing.
    """
    blocked: List[BlockedProcess] = []
    for process in sim.blocked_processes():
        if process.daemon:
            continue  # server loops are expected to wait forever
        description = process.wait_description or "?"
        if description.startswith("timeout"):
            continue  # would have resumed had the run continued
        blocked.append(BlockedProcess(name=process.name, waiting_on=description))
    chains: List[str] = []
    for bus in buses:
        arbiter = bus.arbiter
        if arbiter.busy and arbiter.waiters:
            for waiter in arbiter.waiters:
                chains.append(
                    f"{waiter} -> {arbiter.owner} (bus {bus.full_name} held)"
                )
    deadlocked = bool(blocked) and sim.pending_timed_count() == 0
    return DeadlockReport(deadlocked=deadlocked, blocked=blocked, chains=chains)


def watchdog_report(sim: Simulator, wall_s: float) -> DeadlockReport:
    """Post-mortem for a run tripped by the wall-clock watchdog.

    Called by the kernel (lazily, so the kernel keeps working without the
    analysis layer) when ``Simulator.run(max_wall_s=...)`` expires.  Unlike
    :func:`diagnose` this runs on a *stopped*, not starved, simulation:
    processes parked on timeouts are still listed because in a livelock the
    timeouts are exactly what keeps the hang alive.
    """
    blocked = [
        BlockedProcess(name=p.name, waiting_on=p.wait_description or "?")
        for p in sim.blocked_processes()
        if not p.daemon
    ]
    return DeadlockReport(
        deadlocked=False, blocked=blocked, watchdog=True, wall_s=wall_s
    )
