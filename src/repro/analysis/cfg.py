"""Control-flow-sensitive process analysis: CFGs and wait-state machines.

:mod:`repro.analysis.dataflow` reduces each process body to *flat* effect
facts — which signals it touches, which events it waits on — with no notion
of *where* in the body those effects sit.  That is enough for single-writer
reasoning but blind to control structure: it cannot tell a thread that
writes a signal once per clock phase from one that pulses it twice in the
same delta, and it cannot see that code after an exit-free ``while True``
loop is dead.

This module adds the control-flow layer:

* :func:`build_cfg` — a statement-level control-flow graph per function
  body (branches, loops with ``break``/``continue``/``else``, ``try`` /
  ``except`` / ``finally``, early ``return``), with per-node read/write
  effects expressed as ``self``-rooted attribute paths.
* :func:`extract_machine` — for generator (thread) bodies, a **wait-state
  machine**: every ``yield`` (event wait, timed wait, ``AnyOf`` /
  ``AllOf``) is a state, and edges carry the read/write effects
  accumulated between waits.  ``yield from self.helper(...)`` is spliced
  in recursively; delegating to a foreign generator marks the machine
  *unresolved* rather than guessing.
* A per-instant **write-count analysis** over the machine: how many times
  each signal path can be written within one simulated instant.  Timed
  waits with a provably positive constant duration start a new instant;
  event waits conservatively do not (a notify can wake the thread in the
  same delta).  The one path-sensitive refinement: after ``result = yield
  AnyOf([...], timeout=...)``, the ``result is TIMEOUT`` branch proves the
  timer fired, i.e. simulated time advanced.
* :func:`proven_single_instant_writer` — the admission proof the kernel's
  static scheduler (:func:`repro.analysis.dataflow.build_schedule_plan`)
  needs before it may commit a thread-written signal in place: at most one
  write per instant, so the generic scheduler's stage-then-commit protocol
  and the fast path's commit-in-place are indistinguishable.  A live
  :class:`~repro.kernel.Clock` toggle thread is recognised directly — the
  static machine cannot prove its pause-stretchable phase helper always
  advances time, but the elaborated clock's phase durations can be checked
  to be positive, which is the missing fact.

Everything here follows the conservative contract of the dataflow layer:
analysis never raises — unsupported constructs set ``unresolved`` with a
reason, which consumers must read as "anything could happen" (lint rules
stay silent, the scheduler excludes the signal).
"""

from __future__ import annotations

import ast
import inspect
import textwrap
import types
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from ..kernel import Clock, Event, Signal
from .dataflow import _TIME_FUNCS, _UNRESOLVED, _as_signal, _resolve_path

#: A ``self``-rooted attribute path, as in :mod:`repro.analysis.dataflow`.
Path = Tuple[str, ...]

#: Write counts saturate here: "2" already means "more than once per
#: instant", which is all any consumer distinguishes.
MANY = 2


# --------------------------------------------------------------------------
# Node model
# --------------------------------------------------------------------------

@dataclass(frozen=True)
class WaitInfo:
    """Classification of one ``yield`` site.

    ``advances`` is True only when *every* resumption of this wait is
    provably in a later simulated instant than its suspension — a pure
    timed wait with a positive constant duration.  Event waits are False:
    an immediate or delta notify can wake the thread within the same
    instant.  ``anyof_timeout`` waits are False at the wait itself; the
    ``result is TIMEOUT`` branch refinement (recorded on the guarding
    branch node) supplies the advance on the timeout path.
    """

    kind: str  # 'timed' | 'event' | 'static' | 'anyof_timeout' | 'external' | 'unknown'
    advances: bool
    #: For ``event`` waits on a plain ``self.<...>`` path and for
    #: ``external`` waits (``yield from self.<chain>.<method>(...)``): the
    #: ``self``-rooted path of the waited object / call target, resolvable
    #: on the live owner.  None for composite or unresolvable targets.
    target: Optional[Path] = None
    #: For ``external`` waits: the method name invoked on ``target``.
    method: str = ""
    #: For composite (``AnyOf``) waits: the member event paths, when every
    #: member is a plain ``self.<...>`` path.  ``()`` is a resolved empty
    #: member list (a pure-timeout ``AnyOf``); None means at least one
    #: member escaped the static analysis.
    members: Optional[Tuple[Path, ...]] = None
    #: For composite waits: True when the ``AnyOf`` carries a timeout
    #: (positional or keyword) that is not literally ``None``.
    has_timeout: bool = False


@dataclass
class CfgNode:
    """One statement-level node of a :class:`Cfg`."""

    index: int
    kind: str  # 'entry' | 'exit' | 'stmt' | 'wait' | 'branch' | 'arm' | 'return'
    lineno: int = 0
    source: str = ""
    succs: List[int] = field(default_factory=list)
    #: Conservative exception edges (any statement inside a ``try`` may
    #: transfer to its handlers).  Used for reachability and write counts,
    #: ignored by the livelock path search (waits do not raise in practice).
    exc_succs: List[int] = field(default_factory=list)
    reads: Tuple[Path, ...] = ()
    writes: Tuple[Path, ...] = ()
    wait: Optional[WaitInfo] = None
    is_if: bool = False
    is_loop: bool = False
    #: Constant loop/branch test: True (``while True``), False, or None.
    const_test: Optional[bool] = None
    true_succ: int = -1
    false_succ: int = -1
    #: For ``if`` branches: the synthetic node where the arms rejoin
    #: (arms that return/break/continue bypass it).
    join_succ: int = -1
    #: Timeout-guard refinement: traversing to ``true_succ`` /
    #: ``false_succ`` provably starts a new simulated instant.
    resets_true: bool = False
    resets_false: bool = False


@dataclass
class Cfg:
    """A statement-level control-flow graph of one function body."""

    fn_name: str
    nodes: List[CfgNode]
    entry: int
    exit: int

    def reachable(self, *, exceptions: bool = True) -> Set[int]:
        """Node indices reachable from the entry."""
        seen = {self.entry}
        stack = [self.entry]
        while stack:
            node = self.nodes[stack.pop()]
            succs = node.succs + (node.exc_succs if exceptions else [])
            for nxt in succs:
                if nxt not in seen:
                    seen.add(nxt)
                    stack.append(nxt)
        return seen


@dataclass(frozen=True)
class WaitState:
    """One state of a wait-state machine (START, a wait site, or END)."""

    index: int
    kind: str  # 'start' | 'end' | a WaitInfo kind
    lineno: int
    label: str
    advances: bool
    #: The full classification of the underlying wait site (None for the
    #: synthetic START/END states).  Carries the resolvable target path
    #: for event/external waits, which the rendezvous admission proof
    #: (:func:`thread_rendezvous_profile`) resolves on the live owner.
    info: Optional[WaitInfo] = None


@dataclass
class MachineEdge:
    """Effects accumulated along paths between two wait states."""

    src: int
    dst: int
    reads: FrozenSet[Path] = frozenset()
    writes: FrozenSet[Path] = frozenset()


@dataclass
class WaitStateMachine:
    """Wait-state machine of one thread body (states + effect edges)."""

    fn_name: str
    states: List[WaitState]
    edges: List[MachineEdge]

    def state_count(self) -> int:
        return len(self.states)

    def edge(self, src: int, dst: int) -> Optional[MachineEdge]:
        for e in self.edges:
            if e.src == src and e.dst == dst:
                return e
        return None


@dataclass
class FunctionControlFlow:
    """Everything the control-flow analysis proved about one function.

    ``unresolved`` means some construct escaped the analysis (foreign
    ``yield from``, recursion through helpers, a yield in an expression
    position, unparseable source); consumers must then assume anything.
    The CFG is still returned when it could be built — reachability-style
    queries degrade gracefully — but ``write_counts`` must not be trusted.
    """

    fn_name: str
    cfg: Optional[Cfg]
    machine: Optional[WaitStateMachine]
    #: Max writes per path per *instant* (threads) / per call (methods).
    write_counts: Dict[Path, int] = field(default_factory=dict)
    #: Paths written on some path before the first wait (the entry segment).
    entry_writes: FrozenSet[Path] = frozenset()
    read_paths: FrozenSet[Path] = frozenset()
    unresolved: bool = False
    reason: str = ""
    #: True when the body contains external (blocking-call) wait states.
    #: Their callees run in foreign frames, so ``write_counts`` /
    #: ``entry_writes`` cover only this body's own effects — single-writer
    #: proofs must not trust them.
    external_waits: bool = False


# --------------------------------------------------------------------------
# Expression effect scanning
# --------------------------------------------------------------------------

def _self_path(node: ast.AST) -> Optional[Path]:
    """``self.a.b`` -> ``("a", "b")``; ``self`` -> ``()``; else None."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name) and node.id == "self":
        return tuple(reversed(parts))
    return None


class _ExprScanner(ast.NodeVisitor):
    """Occurrence-level read/write collection within one expression tree.

    Unlike the dataflow facts visitor this keeps *multiplicity*: a
    statement writing the same signal twice contributes two occurrences,
    which is exactly what the per-instant write-count analysis needs.
    Nested function definitions and lambdas are not entered.
    """

    def __init__(self) -> None:
        self.reads: List[Path] = []
        self.writes: List[Path] = []
        self.self_calls: List[str] = []
        self.yields: List[ast.AST] = []

    def _skip_scope(self, node: ast.AST) -> None:
        pass

    visit_FunctionDef = _skip_scope
    visit_AsyncFunctionDef = _skip_scope
    visit_Lambda = _skip_scope

    def visit_Yield(self, node: ast.Yield) -> None:
        self.yields.append(node)
        self.generic_visit(node)

    def visit_YieldFrom(self, node: ast.YieldFrom) -> None:
        self.yields.append(node)
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute):
            path = _self_path(func.value)
            if func.attr == "write" and path:
                self.writes.append(path)
            elif func.attr == "read" and path:
                self.reads.append(path)
            elif path == ():
                self.self_calls.append(func.attr)
        self.generic_visit(node)

    def visit_Attribute(self, node: ast.Attribute) -> None:
        if node.attr == "value":
            path = _self_path(node.value)
            if path:
                self.reads.append(path)
        self.generic_visit(node)


def _scan(*exprs: Optional[ast.AST]) -> _ExprScanner:
    scanner = _ExprScanner()
    for expr in exprs:
        if expr is not None:
            scanner.visit(expr)
    return scanner


def _const_truth(test: ast.AST) -> Optional[bool]:
    """The constant truth value of a test expression, or None."""
    if isinstance(test, ast.Constant):
        try:
            return bool(test.value)
        except Exception:  # pragma: no cover - exotic constants
            return None
    return None


def _is_timeout_ref(node: ast.AST) -> bool:
    return (isinstance(node, ast.Name) and node.id == "TIMEOUT") or (
        isinstance(node, ast.Attribute) and node.attr == "TIMEOUT"
    )


def _timeout_guard(test: ast.AST, var: str) -> Optional[bool]:
    """Parse ``var is [not] TIMEOUT``; True = the *true* branch timed out."""
    if not (
        isinstance(test, ast.Compare)
        and len(test.ops) == 1
        and isinstance(test.left, ast.Name)
        and test.left.id == var
        and _is_timeout_ref(test.comparators[0])
    ):
        return None
    if isinstance(test.ops[0], (ast.Is, ast.Eq)):
        return True
    if isinstance(test.ops[0], (ast.IsNot, ast.NotEq)):
        return False
    return None


def _positive_constant_duration(call: ast.Call) -> bool:
    """True for ``ns(10)``-style calls with a positive numeric literal."""
    if len(call.args) != 1 or call.keywords:
        return False
    arg = call.args[0]
    return (
        isinstance(arg, ast.Constant)
        and isinstance(arg.value, (int, float))
        and not isinstance(arg.value, bool)
        and arg.value > 0
    )


def _anyof_members(call: ast.Call) -> Optional[Tuple[Path, ...]]:
    """Member event paths of an ``AnyOf([...])`` literal, or None.

    Resolvable only when the first argument is a list/tuple literal whose
    every element is a plain ``self.<...>`` path.  An empty literal is the
    (resolved) pure-timeout form and returns ``()``.
    """
    if not call.args or not isinstance(call.args[0], (ast.List, ast.Tuple)):
        return None
    members: List[Path] = []
    for elt in call.args[0].elts:
        path = _self_path(elt)
        if not path:
            return None
        members.append(path)
    return tuple(members)


def _classify_wait(value: Optional[ast.AST]) -> WaitInfo:
    """Classify the expression yielded at a wait site."""
    if value is None or (isinstance(value, ast.Constant) and value.value is None):
        return WaitInfo("static", False)
    path = _self_path(value)
    if path:
        return WaitInfo("event", False, target=path)
    if isinstance(value, ast.Call):
        func = value.func
        name = None
        if isinstance(func, ast.Name):
            name = func.id
        elif isinstance(func, ast.Attribute):
            name = func.attr
        if name in _TIME_FUNCS:
            return WaitInfo("timed", _positive_constant_duration(value))
        if name == "AnyOf":
            timeout = next(
                (kw.value for kw in value.keywords if kw.arg == "timeout"), None
            )
            if timeout is None and len(value.args) >= 2:
                timeout = value.args[1]
            has_timeout = timeout is not None and not (
                isinstance(timeout, ast.Constant) and timeout.value is None
            )
            members = _anyof_members(value)
            if has_timeout:
                return WaitInfo(
                    "anyof_timeout", False, members=members, has_timeout=True
                )
            return WaitInfo("event", False, members=members)
        if name == "AllOf":
            return WaitInfo("event", False)
    return WaitInfo("unknown", False)


def _must_enter_loop(iter_expr: ast.AST) -> bool:
    """True when a ``for`` provably executes its body at least once."""
    if isinstance(iter_expr, (ast.List, ast.Tuple)):
        return bool(iter_expr.elts)
    if (
        isinstance(iter_expr, ast.Call)
        and isinstance(iter_expr.func, ast.Name)
        and iter_expr.func.id == "range"
        and not iter_expr.keywords
    ):
        args = iter_expr.args
        if all(isinstance(a, ast.Constant) and isinstance(a.value, int) for a in args):
            values = [a.value for a in args]
            if len(values) == 1:
                return values[0] > 0
            if len(values) >= 2:
                step = values[2] if len(values) == 3 else 1
                if step > 0:
                    return values[1] > values[0]
                if step < 0:
                    return values[1] < values[0]
    return False


class _Unresolvable(Exception):
    """Internal: abandon machine-level guarantees with a reason."""


# --------------------------------------------------------------------------
# CFG construction
# --------------------------------------------------------------------------

class _CfgBuilder:
    """Builds a :class:`Cfg` from a function AST, splicing self-helpers.

    The builder threads a *frontier* (the set of nodes whose control falls
    through to the next statement) through a recursive statement walk.
    ``break`` / ``continue`` / ``return`` are routed through every
    enclosing ``finally`` block (the block's statements are re-emitted per
    escape path, matching Python's execution), and every statement inside
    a ``try`` gets conservative exception edges to the handler heads.
    """

    def __init__(self, owner_type: Optional[type], fn_name: str, stack: Tuple[object, ...]):
        self.owner_type = owner_type
        self.fn_name = fn_name
        self.stack = stack  # code objects being spliced (recursion guard)
        self.nodes: List[CfgNode] = []
        self.unresolved_reason: Optional[str] = None
        #: External (blocking-call) wait sites emitted; the resulting flow
        #: is flagged so write-count consumers treat callee effects as
        #: opaque.
        self.external_count = 0
        self._loops: List[Tuple[int, List[int], int]] = []  # (head, breaks, fin_depth)
        self._returns: List[Tuple[List[int], int]] = []  # (collector, fin_depth)
        self._finallies: List[List[ast.stmt]] = []
        self._handlers: List[List[int]] = []
        self._var_stores: List[Dict[str, int]] = []
        #: Inlined per-call effects of plainly-called self helpers, keyed by
        #: name, resolved lazily through :func:`analyze_function`.
        self._helper_cache: Dict[str, Optional[FunctionControlFlow]] = {}

    # -- plumbing ------------------------------------------------------------
    def _mark_unresolved(self, reason: str) -> None:
        if self.unresolved_reason is None:
            self.unresolved_reason = reason

    def _new(
        self,
        kind: str,
        *,
        lineno: int = 0,
        source: str = "",
        reads: Tuple[Path, ...] = (),
        writes: Tuple[Path, ...] = (),
        wait: Optional[WaitInfo] = None,
    ) -> int:
        index = len(self.nodes)
        node = CfgNode(
            index, kind, lineno=lineno, source=source, reads=reads, writes=writes, wait=wait
        )
        if kind in ("stmt", "wait", "branch", "return"):
            node.exc_succs = [h for heads in self._handlers for h in heads]
        self.nodes.append(node)
        return index

    def _connect(self, frontier: List[int], target: int) -> None:
        for idx in frontier:
            self.nodes[idx].succs.append(target)

    @staticmethod
    def _src(stmt: ast.AST) -> str:
        unparse = getattr(ast, "unparse", None)
        if unparse is None:  # pragma: no cover - py<3.9
            return type(stmt).__name__
        try:
            text = unparse(stmt).strip().splitlines()[0]
        except Exception:  # pragma: no cover - defensive
            return type(stmt).__name__
        return text if len(text) <= 80 else text[:77] + "..."

    # -- effect resolution ---------------------------------------------------
    def _helper_flow(self, name: str) -> Optional[FunctionControlFlow]:
        """Per-call effects of ``self.<name>()`` when it is a same-class helper."""
        if name in self._helper_cache:
            return self._helper_cache[name]
        flow: Optional[FunctionControlFlow] = None
        if self.owner_type is not None:
            target = getattr(self.owner_type, name, None)
            target = getattr(target, "__func__", target)
            if isinstance(target, types.FunctionType):
                flow = analyze_function(self.owner_type, target, _stack=self.stack)
        self._helper_cache[name] = flow
        return flow

    def _effects(self, scanner: _ExprScanner) -> Tuple[Tuple[Path, ...], Tuple[Path, ...]]:
        """Statement effects: direct occurrences plus plain self-call bodies."""
        reads = list(scanner.reads)
        writes = list(scanner.writes)
        for name in scanner.self_calls:
            flow = self._helper_flow(name)
            if flow is None:
                continue  # not a same-class function; facts-level opaqueness applies
            if flow.unresolved:
                raise _Unresolvable(f"helper self.{name}(): {flow.reason}")
            reads.extend(flow.read_paths)
            for path, count in flow.write_counts.items():
                writes.extend([path] * min(count, MANY))
        return tuple(reads), tuple(writes)

    def _stmt_node(self, stmt: ast.stmt, *exprs: Optional[ast.AST]) -> int:
        scanner = _scan(*exprs)
        if scanner.yields:
            raise _Unresolvable(
                f"yield in an unsupported expression position (line {stmt.lineno})"
            )
        reads, writes = self._effects(scanner)
        return self._new(
            "stmt", lineno=stmt.lineno, source=self._src(stmt), reads=reads, writes=writes
        )

    # -- jumps through finally blocks ---------------------------------------
    def _through_finallies(self, frontier: List[int], depth: int) -> List[int]:
        """Route a jump through every pending ``finally`` down to ``depth``."""
        saved = self._finallies
        for i in range(len(saved) - 1, depth - 1, -1):
            self._finallies = saved[:i]
            frontier = self._emit_block(saved[i], frontier)
        self._finallies = saved
        return frontier

    # -- statement emission --------------------------------------------------
    def _emit_block(self, stmts: List[ast.stmt], frontier: List[int]) -> List[int]:
        pending_guard: Optional[str] = None  # result var of a timeout-composite wait
        for stmt in stmts:
            guard = pending_guard
            pending_guard = None
            if isinstance(stmt, (ast.If,)) and guard is not None:
                frontier = self._emit_if(stmt, frontier, guard_var=guard)
            elif isinstance(stmt, ast.If):
                frontier = self._emit_if(stmt, frontier)
            elif isinstance(stmt, ast.Expr) and isinstance(
                stmt.value, (ast.Yield, ast.YieldFrom)
            ):
                frontier = self._emit_wait(stmt, stmt.value, None, frontier)
            elif (
                isinstance(stmt, ast.Assign)
                and isinstance(stmt.value, (ast.Yield, ast.YieldFrom))
            ):
                target = None
                if len(stmt.targets) == 1 and isinstance(stmt.targets[0], ast.Name):
                    target = stmt.targets[0].id
                frontier = self._emit_wait(stmt, stmt.value, target, frontier)
                # Timeout-guard refinement: the wait's own classification
                # (first-class, not read back off the emitted CFG) says
                # whether `target is TIMEOUT` on the next statement proves
                # the timer fired.  Single-store targets only: a re-assigned
                # variable could carry a stale verdict into the guard.
                if (
                    target is not None
                    and isinstance(stmt.value, ast.Yield)
                    and _classify_wait(stmt.value.value).kind == "anyof_timeout"
                    and self._var_stores[-1].get(target, 0) == 1
                ):
                    pending_guard = target
            elif isinstance(stmt, ast.While):
                frontier = self._emit_while(stmt, frontier)
            elif isinstance(stmt, ast.For):
                frontier = self._emit_for(stmt, frontier)
            elif isinstance(stmt, ast.Try):
                frontier = self._emit_try(stmt, frontier)
            elif isinstance(stmt, ast.With):
                node = self._stmt_node(stmt, *[item.context_expr for item in stmt.items])
                self._connect(frontier, node)
                frontier = self._emit_block(stmt.body, [node])
            elif isinstance(stmt, ast.Return):
                node = self._stmt_node(stmt, stmt.value)
                self.nodes[node].kind = "return"
                self._connect(frontier, node)
                collector, depth = self._returns[-1]
                collector.extend(self._through_finallies([node], depth))
                frontier = []
            elif isinstance(stmt, ast.Break):
                node = self._new("stmt", lineno=stmt.lineno, source="break")
                self._connect(frontier, node)
                if not self._loops:
                    raise _Unresolvable("break outside loop")
                head, breaks, depth = self._loops[-1]
                breaks.extend(self._through_finallies([node], depth))
                frontier = []
            elif isinstance(stmt, ast.Continue):
                node = self._new("stmt", lineno=stmt.lineno, source="continue")
                self._connect(frontier, node)
                if not self._loops:
                    raise _Unresolvable("continue outside loop")
                head, breaks, depth = self._loops[-1]
                for idx in self._through_finallies([node], depth):
                    self.nodes[idx].succs.append(head)
                frontier = []
            elif isinstance(stmt, ast.Raise):
                node = self._stmt_node(stmt, stmt.exc, stmt.cause)
                self._connect(frontier, node)
                frontier = []  # normal flow ends; exc edges were attached
            elif isinstance(stmt, (ast.AsyncFor, ast.AsyncWith, ast.AsyncFunctionDef)):
                raise _Unresolvable(f"async construct (line {stmt.lineno})")
            elif isinstance(stmt, (ast.FunctionDef, ast.ClassDef)):
                node = self._new("stmt", lineno=stmt.lineno, source=self._src(stmt))
                self._connect(frontier, node)
                frontier = [node]
            elif isinstance(stmt, (ast.Import, ast.ImportFrom, ast.Pass, ast.Global, ast.Nonlocal)):
                node = self._new("stmt", lineno=stmt.lineno, source=self._src(stmt))
                self._connect(frontier, node)
                frontier = [node]
            else:
                # Plain statement (assignments, expression calls, assert...):
                # one node carrying the whole statement's effects.
                if any(
                    isinstance(n, ast.Match) for n in ast.walk(stmt)
                ):  # pragma: no cover - match rarely appears in process bodies
                    self._mark_unresolved(f"match statement (line {stmt.lineno})")
                node = self._stmt_node(stmt, stmt)
                self._connect(frontier, node)
                frontier = [node]
        return frontier

    def _emit_if(
        self, stmt: ast.If, frontier: List[int], guard_var: Optional[str] = None
    ) -> List[int]:
        scanner = _scan(stmt.test)
        if scanner.yields:
            raise _Unresolvable(f"yield inside a branch condition (line {stmt.lineno})")
        reads, writes = self._effects(scanner)
        branch = self._new(
            "branch", lineno=stmt.lineno, source=self._src(stmt.test), reads=reads, writes=writes
        )
        node = self.nodes[branch]
        node.is_if = True
        node.const_test = _const_truth(stmt.test)
        if guard_var is not None:
            timed_out = _timeout_guard(stmt.test, guard_var)
            if timed_out is True:
                node.resets_true = True
            elif timed_out is False:
                node.resets_false = True
        self._connect(frontier, branch)
        t_arm = self._new("arm")
        f_arm = self._new("arm")
        node.true_succ, node.false_succ = t_arm, f_arm
        out: List[int] = []
        if node.const_test is not False:
            node.succs.append(t_arm)
            out += self._emit_block(stmt.body, [t_arm])
        else:
            out += self._emit_block(stmt.body, [])
        if node.const_test is not True:
            node.succs.append(f_arm)
            out += self._emit_block(stmt.orelse, [f_arm])
        else:
            out += self._emit_block(stmt.orelse, [])
        # Explicit join node: the structural rejoin point of the arms.
        # Postdominators cannot find it inside an exit-free infinite loop
        # (nothing reaches the CFG exit there), the builder always can.
        join = self._new("arm")
        self._connect(out, join)
        node.join_succ = join
        return [join]

    def _emit_while(self, stmt: ast.While, frontier: List[int]) -> List[int]:
        scanner = _scan(stmt.test)
        if scanner.yields:
            raise _Unresolvable(f"yield inside a loop condition (line {stmt.lineno})")
        reads, writes = self._effects(scanner)
        head = self._new(
            "branch", lineno=stmt.lineno, source=self._src(stmt.test), reads=reads, writes=writes
        )
        node = self.nodes[head]
        node.is_loop = True
        node.const_test = _const_truth(stmt.test)
        self._connect(frontier, head)
        t_arm = self._new("arm")
        f_arm = self._new("arm")
        node.true_succ, node.false_succ = t_arm, f_arm
        breaks: List[int] = []
        self._loops.append((head, breaks, len(self._finallies)))
        if node.const_test is not False:
            node.succs.append(t_arm)
            body_out = self._emit_block(stmt.body, [t_arm])
        else:
            body_out = self._emit_block(stmt.body, [])
        self._connect(body_out, head)  # back edge
        self._loops.pop()
        out: List[int] = []
        if node.const_test is not True:
            node.succs.append(f_arm)
            out += self._emit_block(stmt.orelse, [f_arm])
        else:
            out += self._emit_block(stmt.orelse, [])
        return out + breaks

    def _emit_for(self, stmt: ast.For, frontier: List[int]) -> List[int]:
        scanner = _scan(stmt.iter)
        if scanner.yields:
            raise _Unresolvable(f"yield inside a loop iterable (line {stmt.lineno})")
        reads, writes = self._effects(scanner)
        must_enter = _must_enter_loop(stmt.iter)
        head = self._new(
            "branch",
            lineno=stmt.lineno,
            source=self._src(stmt.iter),
            reads=() if must_enter else reads,
            writes=() if must_enter else writes,
        )
        node = self.nodes[head]
        node.is_loop = True
        t_arm = self._new("arm")
        f_arm = self._new("arm")
        node.true_succ, node.false_succ = t_arm, f_arm
        node.succs.extend([t_arm, f_arm])
        if must_enter:
            # The iterable provably yields at least once: route the first
            # entry straight into the body so a skip-the-body path does not
            # exist (it would fake a waitless cycle around an outer loop).
            entry = self._new(
                "branch", lineno=stmt.lineno, source=self._src(stmt.iter),
                reads=reads, writes=writes,
            )
            self.nodes[entry].true_succ = t_arm
            self.nodes[entry].succs.append(t_arm)
            self._connect(frontier, entry)
        else:
            self._connect(frontier, head)
        breaks: List[int] = []
        self._loops.append((head, breaks, len(self._finallies)))
        body_out = self._emit_block(stmt.body, [t_arm])
        self._connect(body_out, head)  # back edge (next iteration test)
        self._loops.pop()
        out = self._emit_block(stmt.orelse, [f_arm])
        return out + breaks

    def _emit_try(self, stmt: ast.Try, frontier: List[int]) -> List[int]:
        handler_heads = [self._new("arm") for _ in stmt.handlers]
        if stmt.finalbody:
            self._finallies.append(stmt.finalbody)
        self._handlers.append(handler_heads)
        body_out = self._emit_block(stmt.body, frontier)
        self._handlers.pop()
        if stmt.orelse:
            body_out = self._emit_block(stmt.orelse, body_out)
        handler_out: List[int] = []
        for head, handler in zip(handler_heads, stmt.handlers):
            handler_out += self._emit_block(handler.body, [head])
        if stmt.finalbody:
            self._finallies.pop()
        out = body_out + handler_out
        if stmt.finalbody:
            out = self._emit_block(stmt.finalbody, out)
        return out

    def _emit_wait(
        self,
        stmt: ast.stmt,
        value: ast.AST,
        target: Optional[str],
        frontier: List[int],
    ) -> List[int]:
        if isinstance(value, ast.YieldFrom):
            call = value.value
            if isinstance(call, ast.Call) and isinstance(call.func, ast.Attribute):
                root = _self_path(call.func.value)
                if root == ():
                    return self._splice(stmt, call, frontier)
                if root:
                    return self._emit_external(stmt, call, root, frontier)
            raise _Unresolvable(
                f"yield from a foreign generator (line {stmt.lineno})"
            )
        assert isinstance(value, ast.Yield)
        scanner = _scan(value.value)
        if scanner.yields:
            raise _Unresolvable(f"nested yield (line {stmt.lineno})")
        reads, writes = self._effects(scanner)
        info = _classify_wait(value.value)
        node = self._new(
            "wait",
            lineno=stmt.lineno,
            source=self._src(stmt),
            reads=reads,
            writes=writes,
            wait=info,
        )
        self._connect(frontier, node)
        return [node]

    def _emit_external(
        self, stmt: ast.stmt, call: ast.Call, root: Path, frontier: List[int]
    ) -> List[int]:
        """``yield from self.<chain>.<method>(...)`` — a blocking call into
        another component (bus transport, channel, arbiter).

        The callee is not spliced — its frame belongs to the target object,
        not this module — so the whole call becomes one *external* wait
        state carrying the target path and method name.  Its internal
        effects are invisible here, which is why :func:`analyze_function`
        flags the flow (``external_waits``) and write-count consumers must
        not trust the counts for such flows.
        """
        scanner = _scan(*call.args, *[kw.value for kw in call.keywords])
        if scanner.yields:
            raise _Unresolvable(f"yield inside call arguments (line {stmt.lineno})")
        reads, writes = self._effects(scanner)
        self.external_count += 1
        info = WaitInfo("external", False, target=root, method=call.func.attr)
        node = self._new(
            "wait",
            lineno=stmt.lineno,
            source=self._src(stmt),
            reads=tuple(reads) + (root,),
            writes=writes,
            wait=info,
        )
        self._connect(frontier, node)
        return [node]

    def _splice(self, stmt: ast.stmt, call: ast.Call, frontier: List[int]) -> List[int]:
        """Inline ``yield from self.helper(...)`` into the current graph."""
        scanner = _scan(*call.args, *[kw.value for kw in call.keywords])
        if scanner.yields:
            raise _Unresolvable(f"yield inside call arguments (line {stmt.lineno})")
        arg_reads, arg_writes = self._effects(scanner)
        if arg_reads or arg_writes:
            node = self._new(
                "stmt", lineno=stmt.lineno, source=self._src(stmt),
                reads=arg_reads, writes=arg_writes,
            )
            self._connect(frontier, node)
            frontier = [node]
        name = call.func.attr
        target = getattr(self.owner_type, name, None) if self.owner_type else None
        target = getattr(target, "__func__", target)
        if not isinstance(target, types.FunctionType):
            raise _Unresolvable(f"yield from self.{name}(...): not a plain method")
        code = target.__code__
        if any(code is c for c in self.stack):
            raise _Unresolvable(f"recursive helper self.{name}(...)")
        fn_node = _fn_ast(target)
        if fn_node is None:
            raise _Unresolvable(f"source of self.{name}(...) unavailable")
        # Helper locals live in their own frame; save the surrounding
        # control context so its loops/handlers cannot capture the splice.
        saved = (self._loops, self._finallies, self._handlers, self.stack)
        self._loops, self._finallies, self._handlers = [], [], []
        self.stack = self.stack + (code,)
        collector: List[int] = []
        self._returns.append((collector, 0))
        self._var_stores.append(_store_counts(fn_node))
        out = self._emit_block(fn_node.body, frontier)
        self._var_stores.pop()
        self._returns.pop()
        self._loops, self._finallies, self._handlers, self.stack = saved
        return out + collector

    # -- entry point ---------------------------------------------------------
    def build(self, fn_node: ast.FunctionDef) -> Cfg:
        entry = self._new("entry")
        collector: List[int] = []
        self._returns.append((collector, 0))
        self._var_stores.append(_store_counts(fn_node))
        frontier = self._emit_block(fn_node.body, [entry])
        exit_idx = self._new("exit")
        self._connect(frontier + collector, exit_idx)
        return Cfg(self.fn_name, self.nodes, entry, exit_idx)


def _store_counts(fn_node: ast.AST) -> Dict[str, int]:
    """How many times each local name is assigned in the function body."""
    counts: Dict[str, int] = {}
    for node in ast.walk(fn_node):
        if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Store):
            counts[node.id] = counts.get(node.id, 0) + 1
    return counts


_AST_CACHE: Dict[object, Optional[ast.FunctionDef]] = {}


def _fn_ast(func: types.FunctionType) -> Optional[ast.FunctionDef]:
    """The (cached) parsed definition of ``func``, or None."""
    code = func.__code__
    if code in _AST_CACHE:
        return _AST_CACHE[code]
    node: Optional[ast.FunctionDef] = None
    try:
        tree = ast.parse(textwrap.dedent(inspect.getsource(func)))
    except (OSError, TypeError, SyntaxError, IndentationError, ValueError):
        tree = None
    if tree is not None:
        node = next(
            (n for n in tree.body if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef))),
            None,
        )
        if isinstance(node, ast.AsyncFunctionDef):
            node = None
    _AST_CACHE[code] = node
    return node


# --------------------------------------------------------------------------
# Machine extraction + write-count analysis
# --------------------------------------------------------------------------

def extract_machine(cfg: Cfg) -> Tuple[WaitStateMachine, Dict[Path, int], FrozenSet[Path]]:
    """Wait-state machine, per-instant write counts, and entry-segment writes.

    One forward dataflow over the CFG tracks, per node:

    * which wait state each incoming path last passed (START before the
      first wait) together with the read/write effects accumulated since —
      finalized into machine edges at the next wait (or END);
    * the per-path write *counts* within the current simulated instant,
      joined by max, reset when crossing a wait that provably advances
      time (or the ``TIMEOUT`` branch of a guarded ``AnyOf`` wait).
    """
    wait_nodes = [n.index for n in cfg.nodes if n.kind == "wait"]
    state_of: Dict[int, int] = {}
    states: List[WaitState] = [WaitState(0, "start", 0, "START", False)]
    for node_idx in wait_nodes:
        node = cfg.nodes[node_idx]
        state = WaitState(
            len(states), node.wait.kind, node.lineno, node.source, node.wait.advances,
            node.wait,
        )
        state_of[node_idx] = state.index
        states.append(state)
    end_state = WaitState(len(states), "end", 0, "END", False)
    states.append(end_state)

    Seg = Dict[int, Tuple[FrozenSet[Path], FrozenSet[Path]]]
    seg_in: Dict[int, Seg] = {cfg.entry: {0: (frozenset(), frozenset())}}
    cnt_in: Dict[int, Dict[Path, int]] = {cfg.entry: {}}
    edges: Dict[Tuple[int, int], Tuple[Set[Path], Set[Path]]] = {}
    global_counts: Dict[Path, int] = {}

    def merge(dst: int, seg: Seg, cnt: Dict[Path, int]) -> bool:
        changed = False
        d_seg = seg_in.setdefault(dst, {})
        for origin, (reads, writes) in seg.items():
            old = d_seg.get(origin)
            if old is None:
                d_seg[origin] = (reads, writes)
                changed = True
            else:
                merged = (old[0] | reads, old[1] | writes)
                if merged != old:
                    d_seg[origin] = merged
                    changed = True
        d_cnt = cnt_in.setdefault(dst, {})
        for path, count in cnt.items():
            if count > d_cnt.get(path, 0):
                d_cnt[path] = count
                changed = True
        return changed

    worklist = [cfg.entry]
    iterations = 0
    limit = 40 * (len(cfg.nodes) + 1) * (len(states) + 1)
    while worklist:
        iterations += 1
        if iterations > limit:  # pragma: no cover - defensive fixpoint guard
            raise _Unresolvable("write-count analysis did not converge")
        node = cfg.nodes[worklist.pop()]
        seg = seg_in.get(node.index, {})
        cnt = dict(cnt_in.get(node.index, {}))
        # Apply this node's own effects.
        out_seg: Seg = {}
        for origin, (reads, writes) in seg.items():
            out_seg[origin] = (reads | frozenset(node.reads), writes | frozenset(node.writes))
        for path in node.writes:
            cnt[path] = min(cnt.get(path, 0) + 1, MANY)
        for path, count in cnt.items():
            if count > global_counts.get(path, 0):
                global_counts[path] = count
        out_cnt = cnt
        if node.kind == "wait":
            state = state_of[node.index]
            for origin, (reads, writes) in out_seg.items():
                acc = edges.setdefault((origin, state), (set(), set()))
                acc[0].update(reads)
                acc[1].update(writes)
            out_seg = {state: (frozenset(), frozenset())}
            if node.wait.advances:
                out_cnt = {}
        elif node.kind == "exit":
            for origin, (reads, writes) in out_seg.items():
                acc = edges.setdefault((origin, end_state.index), (set(), set()))
                acc[0].update(reads)
                acc[1].update(writes)
            continue
        for succ in node.succs:
            succ_cnt = out_cnt
            if node.resets_true and succ == node.true_succ:
                succ_cnt = {}
            elif node.resets_false and succ == node.false_succ:
                succ_cnt = {}
            if merge(succ, out_seg, succ_cnt):
                worklist.append(succ)
        for succ in node.exc_succs:
            if merge(succ, out_seg, out_cnt):
                worklist.append(succ)

    machine_edges = [
        MachineEdge(src, dst, frozenset(reads), frozenset(writes))
        for (src, dst), (reads, writes) in sorted(edges.items())
    ]
    entry_writes: Set[Path] = set()
    for edge in machine_edges:
        if edge.src == 0:
            entry_writes.update(edge.writes)
    machine = WaitStateMachine(cfg.fn_name, states, machine_edges)
    return machine, global_counts, frozenset(entry_writes)


# --------------------------------------------------------------------------
# Cached per-function analysis
# --------------------------------------------------------------------------

_FLOW_CACHE: Dict[Tuple[object, Optional[type]], FunctionControlFlow] = {}


def analyze_function(
    owner_type: Optional[type],
    func: object,
    _stack: Tuple[object, ...] = (),
) -> FunctionControlFlow:
    """Control-flow analysis of one function, cached per (code, owner class).

    Never raises: any unsupported construct (or internal failure) returns a
    flow with ``unresolved=True`` and a human-readable reason.
    """
    func = getattr(func, "__func__", func)
    code = getattr(func, "__code__", None)
    if code is None:
        return FunctionControlFlow(
            getattr(func, "__name__", repr(func)), None, None,
            unresolved=True, reason="not a plain function",
        )
    key = (code, owner_type)
    cached = _FLOW_CACHE.get(key)
    if cached is not None:
        return cached
    fn_name = getattr(func, "__qualname__", getattr(func, "__name__", "?"))
    if any(code is c for c in _stack):
        # Context-dependent verdict: do not cache it.
        return FunctionControlFlow(
            fn_name, None, None, unresolved=True, reason="recursive helper"
        )
    fn_node = _fn_ast(func)
    if fn_node is None:
        flow = FunctionControlFlow(
            fn_name, None, None, unresolved=True, reason="source unavailable"
        )
        _FLOW_CACHE[key] = flow
        return flow
    builder = _CfgBuilder(owner_type, fn_name, _stack + (code,))
    try:
        cfg = builder.build(fn_node)
        machine, counts, entry_writes = extract_machine(cfg)
    except _Unresolvable as exc:
        flow = FunctionControlFlow(
            fn_name, None, None, unresolved=True, reason=str(exc)
        )
        _FLOW_CACHE[key] = flow
        return flow
    except RecursionError:  # pragma: no cover - deep nesting guard
        flow = FunctionControlFlow(
            fn_name, None, None, unresolved=True, reason="nesting too deep"
        )
        _FLOW_CACHE[key] = flow
        return flow
    except Exception as exc:  # never crash the caller on an analysis bug
        flow = FunctionControlFlow(
            fn_name, None, None, unresolved=True,
            reason=f"internal error: {type(exc).__name__}: {exc}",
        )
        _FLOW_CACHE[key] = flow
        return flow
    read_paths = frozenset(p for node in cfg.nodes for p in node.reads)
    flow = FunctionControlFlow(
        fn_name,
        cfg,
        machine,
        write_counts=counts,
        entry_writes=entry_writes,
        read_paths=read_paths,
        unresolved=builder.unresolved_reason is not None,
        reason=builder.unresolved_reason or "",
        external_waits=builder.external_count > 0,
    )
    _FLOW_CACHE[key] = flow
    return flow


@dataclass
class ProcessControlFlow:
    """A registered process together with its function's control flow."""

    process: object
    owner: Optional[object]
    name: str
    kind: str
    flow: FunctionControlFlow

    @property
    def unresolved(self) -> bool:
        return self.flow.unresolved

    @property
    def reason(self) -> str:
        return self.flow.reason

    def resolve_signal(self, path: Path) -> Optional[Signal]:
        """The live signal a ``self``-rooted path lands on, following port
        binding chains; None when the path resolves to anything else."""
        if self.owner is None:
            return None
        return _as_signal(_resolve_path(self.owner, path))

    def live_write_counts(self) -> Dict[int, Tuple[Signal, int]]:
        """Per-signal write counts, paths resolved on the live owner.

        Two distinct paths landing on the same signal (a port alias next
        to the direct attribute) are *summed* — they could both execute in
        one instant, and overcounting is the conservative direction.
        """
        counts: Dict[int, Tuple[Signal, int]] = {}
        if self.owner is None:
            return counts
        for path, count in self.flow.write_counts.items():
            sig = _as_signal(_resolve_path(self.owner, path))
            if sig is None:
                continue
            old = counts.get(id(sig))
            total = min((old[1] if old else 0) + count, MANY)
            counts[id(sig)] = (sig, total)
        return counts


def analyze_process(process: object) -> ProcessControlFlow:
    """Control-flow analysis of one registered process (never raises)."""
    fn = getattr(process, "fn", None)
    owner = getattr(fn, "__self__", None)
    name = getattr(process, "name", repr(process))
    kind = getattr(process, "kind", "process")
    if fn is None or owner is None:
        flow = FunctionControlFlow(
            name, None, None, unresolved=True,
            reason="free-function process (no self to root paths at)",
        )
        return ProcessControlFlow(process, None, name, kind, flow)
    return ProcessControlFlow(process, owner, name, kind, analyze_function(type(owner), fn))


def proven_single_instant_writer(process: object, signal: Signal) -> Tuple[bool, str]:
    """Can ``process`` write ``signal`` at most once per simulated instant?

    Returns ``(True, proof)`` or ``(False, reason)``.  The static proof
    comes from the wait-state machine's write-count analysis; a live
    :class:`~repro.kernel.Clock` toggle thread with positive phase
    durations is recognised directly (its pause-stretchable phase helper
    always advances simulated time before returning, a fact the purely
    static analysis cannot establish).
    """
    fn = getattr(process, "fn", None)
    owner = getattr(fn, "__self__", None)
    if (
        isinstance(owner, Clock)
        and getattr(fn, "__func__", None) is Clock._toggle
        and signal is owner.signal
    ):
        if owner._high_time.femtoseconds > 0 and owner._low_time.femtoseconds > 0:
            return True, "periodic clock toggle (live phase durations positive)"
        return False, "degenerate clock phase (zero high or low time)"
    pcf = analyze_process(process)
    if pcf.unresolved:
        return False, f"control flow unresolved: {pcf.reason}"
    if pcf.flow.external_waits:
        # Blocking calls into other components run in foreign frames whose
        # writes the count analysis cannot see.
        return False, "external wait (callee effects opaque to write counts)"
    counts = pcf.live_write_counts()
    entry = counts.get(id(signal))
    if entry is None or entry[1] <= 1:
        return True, "at most one write per instant (wait-state machine)"
    return False, "may write more than once in one instant"


# --------------------------------------------------------------------------
# Rendezvous admission (compiled-thread fast path, kernel/specialize.py)
# --------------------------------------------------------------------------

@dataclass
class RendezvousProfile:
    """Verdict of the compiled-thread admission proof for one thread.

    ``admissible`` threads block only on waits the compiled runtime serves
    with its lean protocol; ``rendezvous_states`` counts the event /
    external (blocking-call) wait states among them — the hand-offs the
    fast path exists for.
    """

    admissible: bool
    reason: str
    rendezvous_states: int = 0
    timed_states: int = 0


def _audited_rendezvous(
    target: object, method: str, path: Optional[Path] = None
) -> Optional[str]:
    """Is ``target.method`` an audited blocking rendezvous primitive?

    Returns None when it is, else the rejection reason.  The registry
    names the kernel channels and the bus-layer transport whose wait /
    notify structure the compiled-thread runtime was validated against
    (every blocking path inside them suspends only on plain timed waits,
    single events with statically known notifiers, or nested audited
    calls).  Since PR 10 the registry is only a *seed*: callers fall back
    to :func:`repro.analysis.interproc.prove_rendezvous_safe`, which
    proves unlisted primitives automatically from their wait-effect
    summaries.  Soundness never depended on either (the compiled runtime
    is order-preserving and falls back per wait); they gate admission, so
    the exclusion stays diagnosable.
    """
    from ..kernel.channels import Fifo, Mutex, Semaphore

    if isinstance(target, Fifo) and method in ("put", "get"):
        return None
    if isinstance(target, Mutex) and method == "lock":
        return None
    if isinstance(target, Semaphore) and method == "wait":
        return None
    try:
        from ..bus.arbiter import Arbiter
        from ..bus.bus import Bus
        from ..bus.memory import Memory
    except ImportError:  # kernel used without the bus layer
        pass
    else:
        if isinstance(target, Arbiter) and method == "request":
            return None
        if isinstance(target, Bus) and method in ("read", "write"):
            return None
        if isinstance(target, Memory) and method in ("read", "write"):
            return None
    if target is None or target is _UNRESOLVED:
        attempted = (
            f"self.{'.'.join(path)}.{method}" if path else f"the .{method} call target"
        )
        return f"blocking call {attempted} does not resolve on the live owner"
    return f"{type(target).__name__}.{method} is not an audited rendezvous primitive"


def reachable_wait_states(machine: WaitStateMachine) -> List[WaitState]:
    """Wait states some run can actually suspend in (dead waits dropped)."""
    succs: Dict[int, List[int]] = {}
    for edge in machine.edges:
        succs.setdefault(edge.src, []).append(edge.dst)
    seen = {0}
    stack = [0]
    while stack:
        for dst in succs.get(stack.pop(), ()):
            if dst not in seen:
                seen.add(dst)
                stack.append(dst)
    return [
        s for s in machine.states if s.kind not in ("start", "end") and s.index in seen
    ]


def _composite_members_rejection(
    owner: object, info: Optional[WaitInfo], lineno: int
) -> Optional[str]:
    """Why a composite (AnyOf) wait's members fail to resolve, or None."""
    members = info.members if info is not None else None
    if members is None:
        return f"composite wait (line {lineno})"
    for member in members:
        if not isinstance(_resolve_path(owner, member), Event):
            return (
                f"composite member self.{'.'.join(member)} does not resolve "
                f"to an event (line {lineno})"
            )
    return None


def thread_rendezvous_profile(process: object) -> RendezvousProfile:
    """Admission proof for the compiled-thread (rendezvous) fast path.

    Proves that every *reachable* wait state of a thread's wait-state
    machine blocks only on constructs the compiled runtime serves with its
    lean protocol: pure timed waits, single events on resolvable
    ``self.<...>`` paths, ``AnyOf`` composites (with or without timeout)
    whose members are resolvable events, or blocking calls into rendezvous
    primitives — either seeded by the :func:`_audited_rendezvous` registry
    or proven automatically from their transitive wait-effect summaries
    (:func:`repro.analysis.interproc.prove_rendezvous_safe`).  Threads
    with static sensitivity or unresolvable control flow are rejected
    with a reason, as are threads with no rendezvous wait at all (nothing
    for the fast path to win).
    """
    if getattr(process, "kind", None) != "thread":
        return RendezvousProfile(False, "not a thread process")
    if getattr(process, "static_sensitivity", None):
        return RendezvousProfile(False, "static sensitivity present")
    pcf = analyze_process(process)
    if pcf.unresolved:
        return RendezvousProfile(False, f"control flow unresolved: {pcf.reason}")
    machine = pcf.flow.machine
    owner = pcf.owner
    rendezvous = timed = 0
    for state in reachable_wait_states(machine):
        if state.kind == "timed":
            timed += 1
            continue
        info = state.info
        target = info.target if info is not None else None
        if state.kind == "event":
            if target is None:
                rejection = _composite_members_rejection(owner, info, state.lineno)
                if rejection is not None:
                    return RendezvousProfile(False, rejection)
                rendezvous += 1
                continue
            resolved = _resolve_path(owner, target)
            if not isinstance(resolved, Event):
                return RendezvousProfile(
                    False,
                    f"wait target self.{'.'.join(target)} does not resolve "
                    f"to an event (line {state.lineno})",
                )
            rendezvous += 1
            continue
        if state.kind == "anyof_timeout":
            rejection = _composite_members_rejection(owner, info, state.lineno)
            if rejection is not None:
                return RendezvousProfile(False, rejection)
            rendezvous += 1
            continue
        if state.kind == "external":
            resolved = _resolve_path(owner, target) if target else None
            method = info.method if info else ""
            rejection = _audited_rendezvous(resolved, method, path=target)
            if rejection is not None and not (
                resolved is None or resolved is _UNRESOLVED
            ):
                # Not in the seed registry: try to prove the primitive
                # rendezvous-safe from its transitive wait-effect summary.
                from .interproc import prove_rendezvous_safe

                proof = prove_rendezvous_safe(resolved, method)
                rejection = None if proof is None else proof
            if rejection is not None:
                return RendezvousProfile(
                    False, f"{rejection} (line {state.lineno})"
                )
            rendezvous += 1
            continue
        return RendezvousProfile(
            False, f"{state.kind} wait (line {state.lineno})"
        )
    if not rendezvous:
        return RendezvousProfile(
            False,
            "no rendezvous waits (nothing for the fast path to win)",
            rendezvous_states=0,
            timed_states=timed,
        )
    return RendezvousProfile(
        True,
        f"{rendezvous} rendezvous + {timed} timed wait states proven",
        rendezvous_states=rendezvous,
        timed_states=timed,
    )


# --------------------------------------------------------------------------
# Rule-support queries (consumed by the REP5xx lint layer)
# --------------------------------------------------------------------------

def _dominators(cfg: Cfg) -> Dict[int, Set[int]]:
    """Dominator sets over normal edges, for reachable nodes only."""
    reachable = cfg.reachable(exceptions=False)
    preds: Dict[int, List[int]] = {i: [] for i in reachable}
    for node in cfg.nodes:
        if node.index not in reachable:
            continue
        for succ in node.succs:
            if succ in reachable:
                preds[succ].append(node.index)
    dom: Dict[int, Set[int]] = {i: set(reachable) for i in reachable}
    dom[cfg.entry] = {cfg.entry}
    changed = True
    while changed:
        changed = False
        for i in reachable:
            if i == cfg.entry or not preds[i]:
                continue
            new = set.intersection(*[dom[p] for p in preds[i]]) | {i}
            if new != dom[i]:
                dom[i] = new
                changed = True
    return dom


def waitless_loops(flow: FunctionControlFlow) -> List[Tuple[int, str]]:
    """Constant-true loops with a wait-free back-edge path (livelock risk).

    Only ``while True``-style loops are reported: a bounded or conditional
    loop that spins without waiting eventually exits, which is ordinary
    computation.  A *back edge* is an edge whose source the loop head
    dominates — a ``break`` that re-enters through an enclosing loop is
    not one.  The wait-free path search stays inside the natural loop of
    those back edges, and exception edges are ignored (waits do not raise
    in this kernel, so an escape through a handler is not a real cycle).
    """
    if flow.cfg is None:
        return []
    cfg = flow.cfg
    nodes = cfg.nodes
    dom = _dominators(cfg)
    preds: Dict[int, List[int]] = {n.index: [] for n in nodes}
    for node in nodes:
        for succ in node.succs:
            preds[succ].append(node.index)
    found: List[Tuple[int, str]] = []
    for head in nodes:
        if not (head.is_loop and head.const_test is True):
            continue
        back = [u for u in preds[head.index] if head.index in dom.get(u, set())]
        if not back:
            continue
        # Natural loop: head plus everything reaching a back-edge source
        # without passing through the head.
        loop_nodes: Set[int] = {head.index, *back}
        stack = list(back)
        while stack:
            idx = stack.pop()
            if idx == head.index:
                continue
            for pred in preds[idx]:
                if pred not in loop_nodes:
                    loop_nodes.add(pred)
                    stack.append(pred)
        # Wait-free path head -> some back-edge source within the loop.
        targets = set(back)
        stack = [head.index]
        seen: Set[int] = {head.index}
        hit = False
        while stack and not hit:
            idx = stack.pop()
            node = nodes[idx]
            if node.kind == "wait" and idx != head.index:
                continue
            if idx in targets and idx != head.index:
                hit = True
                break
            for succ in node.succs:
                if succ in loop_nodes and succ not in seen:
                    seen.add(succ)
                    stack.append(succ)
        if hit:
            found.append((head.lineno, head.source))
    return found


def unreachable_statements(flow: FunctionControlFlow) -> List[Tuple[int, str]]:
    """Real statements no path from the entry reaches (dead code)."""
    if flow.cfg is None:
        return []
    reachable = flow.cfg.reachable(exceptions=True)
    found: List[Tuple[int, str]] = []
    seen_lines: Set[int] = set()
    for node in flow.cfg.nodes:
        if node.index in reachable or node.lineno <= 0:
            continue
        if node.kind not in ("stmt", "wait", "branch", "return"):
            continue
        if node.lineno in seen_lines:
            continue
        seen_lines.add(node.lineno)
        found.append((node.lineno, node.source))
    return sorted(found)


def write_coverage(flow: FunctionControlFlow) -> Tuple[Set[Path], Set[Path]]:
    """``(may_write, must_write)`` over entry-to-exit paths (normal edges).

    ``must_write`` is the intersection over all normal-control paths; a
    path in ``may - must`` is only written conditionally — in a clocked
    method that is the latch-inference pattern (REP503).
    """
    if flow.cfg is None:
        return set(), set()
    nodes = flow.cfg.nodes
    may: Set[Path] = set()
    for node in nodes:
        may.update(node.writes)
    # Forward must-analysis: intersection at joins, union along a path.
    must_in: Dict[int, Optional[Set[Path]]] = {n.index: None for n in nodes}
    must_in[flow.cfg.entry] = set()
    worklist = [flow.cfg.entry]
    while worklist:
        node = nodes[worklist.pop()]
        inbound = must_in[node.index]
        if inbound is None:
            continue
        outbound = inbound | set(node.writes)
        for succ in node.succs:
            old = must_in[succ]
            new = set(outbound) if old is None else (old & outbound)
            if old is None or new != old:
                must_in[succ] = new
                worklist.append(succ)
    exit_must = must_in[flow.cfg.exit]
    return may, (exit_must if exit_must is not None else set())


def one_sided_wait_branches(flow: FunctionControlFlow) -> List[Tuple[int, str]]:
    """``if`` statements where one arm must wait before the join and the
    sibling arm can reach the same join without waiting — a
    variable-latency hazard in a protocol thread (REP504).

    The join is the branch's structural rejoin node recorded at build
    time, so the check works inside exit-free infinite loops.  Arms that
    never reach the join (early ``return``, ``continue``, ``break``) are
    guards, not latency branches, and are not compared.  The path search
    never re-crosses the branch node itself, so going around an enclosing
    loop does not count as rejoining.

    Only branches whose condition reads design state (``self``-rooted
    attribute paths) are flagged: a guard on a plain local, like the
    accelerator idiom ``if duration > ZERO_TIME: yield duration``, makes
    latency depend on a parameter the modeler computed on purpose, not on
    live signal data racing the thread.
    """
    if flow.cfg is None:
        return []
    nodes = flow.cfg.nodes
    found: List[Tuple[int, str]] = []
    for branch in nodes:
        if not branch.is_if or branch.join_succ < 0:
            continue
        if len(branch.succs) != 2:
            continue  # constant condition: only one arm is live
        if not branch.reads:
            continue  # condition on locals only: parameterized, not data
        join = branch.join_succ

        def arm_paths(arm: int) -> Tuple[bool, bool]:
            """(reaches join at all, reaches join without passing a wait)."""
            reaches = waitless = False
            stack: List[Tuple[int, bool]] = [(arm, False)]
            seen: Set[Tuple[int, bool]] = {(arm, False)}
            while stack:
                idx, waited = stack.pop()
                if idx == join:
                    reaches = True
                    if not waited:
                        waitless = True
                    continue
                if idx == branch.index:
                    continue  # looped all the way around; not this rejoin
                node = nodes[idx]
                next_waited = waited or node.kind == "wait"
                for succ in node.succs:
                    key = (succ, next_waited)
                    if key not in seen:
                        seen.add(key)
                        stack.append(key)
            return reaches, waitless

        t_reaches, t_waitless = arm_paths(branch.true_succ)
        f_reaches, f_waitless = arm_paths(branch.false_succ)
        t_must_wait = t_reaches and not t_waitless
        f_must_wait = f_reaches and not f_waitless
        if (t_must_wait and f_waitless) or (f_must_wait and t_waitless):
            found.append((branch.lineno, branch.source))
    return found
