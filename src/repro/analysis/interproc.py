"""Interprocedural wait-effect analysis.

The control-flow layer (:mod:`repro.analysis.cfg`) analyzes one function at
a time: a thread body's wait-state machine classifies each ``yield`` site,
but a *blocking call* (``yield from self.chan.put(x)``) is a single opaque
``external`` state — what the callee can suspend on, which events it
notifies, which locks it releases, all happen in a foreign frame.  PR 9
bridged that gap with a closed audit registry
(:func:`repro.analysis.cfg._audited_rendezvous`) naming the kernel
channels and bus transport by ``isinstance``; anything else fell back to
the generic wait protocol.

This module computes what the registry hard-coded: per-callee
**wait-effect summaries** — the transitive closure of wait kinds a method
can suspend on, the events it waits on and notifies (as resolvable
``self.*`` paths), and the channels/locks it acquires and releases —
memoized per ``(code object, owner class)`` with conservative
``unresolved`` degradation for recursion, foreign ``yield from`` of
non-analyzable generators, and dynamic dispatch.  Two consumers:

* :func:`prove_rendezvous_safe` — the admission side.
  :func:`repro.analysis.cfg.thread_rendezvous_profile` treats the PR 9
  registry as a *seed* and calls this to prove unlisted primitives (user
  channels, ``InterruptController`` register access, …) safe for the
  compiled-thread fast path automatically, by walking the callee's
  reachable wait states on the live target object.
* The REP6xx ``interproc`` lint layer (:mod:`repro.analysis.lint`) — the
  verification side.  :func:`lock_order_trace`, :func:`acquire_sites` and
  :func:`release_closure` feed the static wait-for/lock-order analysis
  that flags the paper's Section 5.4 config-bus deadlock *before*
  simulation.

Everything follows the conservative contract of the other analysis
layers: never raise; unsupported constructs degrade to ``unresolved``
with a reason, which consumers read as "anything could happen".
"""

from __future__ import annotations

import ast
import types
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from ..kernel import Event
from .cfg import (
    Path,
    _audited_rendezvous,
    _composite_members_rejection,
    _fn_ast,
    _self_path,
    analyze_function,
    analyze_process,
    reachable_wait_states,
)
from .dataflow import _UNRESOLVED, _resolve_path

#: Method names whose call *notifies* an event on the receiver path.
_NOTIFY_METHODS = frozenset({"notify", "notify_delta"})

#: Method names whose call *releases* a channel/lock on the receiver path.
_RELEASE_METHODS = frozenset({"unlock", "post", "release"})

#: Blocking acquire methods and the releasing counterpart that must exist
#: somewhere in the design for the acquire to ever complete unaided.
ACQUIRE_COUNTERPARTS = {
    ("Mutex", "lock"): "unlock",
    ("Semaphore", "wait"): "post",
}


# --------------------------------------------------------------------------
# Per-function wait-effect summaries
# --------------------------------------------------------------------------

@dataclass(frozen=True)
class WaitEffectSummary:
    """Everything one function can do to the wait/notify state of a design.

    Paths are ``self``-rooted *in the callee's frame* — consumers resolve
    them on the live target object.  ``unresolved`` means some construct
    escaped the static analysis (recursion, foreign ``yield from`` of an
    unanalyzable generator, a yield in an expression position, source
    unavailable); every field must then be read as "anything".
    """

    fn_name: str
    #: Wait-state kinds reachable in the body ('timed', 'event',
    #: 'anyof_timeout', 'external', 'static', 'unknown').
    wait_kinds: FrozenSet[str] = frozenset()
    #: Event paths of plain ``yield self.<...>`` waits.
    waits_on: Tuple[Path, ...] = ()
    #: Member event paths of composite (``AnyOf``) waits.
    composite_waits: Tuple[Path, ...] = ()
    #: Paths receiving ``.notify()`` / ``.notify_delta()`` (including
    #: through spliced ``self`` helper calls).
    notifies: Tuple[Path, ...] = ()
    #: Blocking calls into other components: ``(target path, method)``.
    acquires: Tuple[Tuple[Path, str], ...] = ()
    #: ``.unlock()`` / ``.post()`` / ``.release()`` calls: the receiver
    #: paths (including through spliced ``self`` helper calls).
    releases: Tuple[Tuple[Path, str], ...] = ()
    unresolved: bool = False
    reason: str = ""


_SUMMARY_CACHE: Dict[Tuple[object, Optional[type]], WaitEffectSummary] = {}


def _plain_function(owner_type: Optional[type], method: str) -> Optional[types.FunctionType]:
    """``owner_type.method`` as a plain function, or None."""
    fn = getattr(owner_type, method, None)
    fn = getattr(fn, "__func__", fn)
    return fn if isinstance(fn, types.FunctionType) else None


def _scan_calls(
    owner_type: Optional[type],
    func: types.FunctionType,
    notifies: List[Path],
    releases: List[Tuple[Path, str]],
    _stack: Tuple[object, ...],
) -> bool:
    """AST scan for notify/release calls; recurses into ``self.helper()``
    calls on the same object (zero-hop paths), mirroring the CFG builder's
    helper splicing.  Returns False when source is unavailable."""
    fn_node = _fn_ast(func)
    if fn_node is None:
        return False
    for node in ast.walk(fn_node):
        if not isinstance(node, ast.Call) or not isinstance(node.func, ast.Attribute):
            continue
        attr = node.func.attr
        path = _self_path(node.func.value)
        if path is None:
            continue
        if path == ():
            # A helper invoked on the same object: splice its effects in.
            helper = _plain_function(owner_type, attr)
            if helper is not None and not any(
                helper.__code__ is c for c in _stack
            ):
                _scan_calls(
                    owner_type, helper, notifies, releases,
                    _stack + (helper.__code__,),
                )
            continue
        if attr in _NOTIFY_METHODS:
            notifies.append(path)
        elif attr in _RELEASE_METHODS:
            releases.append((path, attr))
    return True


def summarize_function(
    owner_type: Optional[type], func: object
) -> WaitEffectSummary:
    """Wait-effect summary of one function, cached per (code, owner class).

    Never raises: analysis failures return a summary with
    ``unresolved=True`` and a human-readable reason.
    """
    func = getattr(func, "__func__", func)
    code = getattr(func, "__code__", None)
    fn_name = getattr(func, "__qualname__", getattr(func, "__name__", repr(func)))
    if code is None or not isinstance(func, types.FunctionType):
        return WaitEffectSummary(
            fn_name, unresolved=True, reason="not a plain function"
        )
    key = (code, owner_type)
    cached = _SUMMARY_CACHE.get(key)
    if cached is not None:
        return cached
    flow = analyze_function(owner_type, func)
    if flow.unresolved or flow.machine is None:
        summary = WaitEffectSummary(
            fn_name, unresolved=True,
            reason=flow.reason or "no wait-state machine",
        )
        _SUMMARY_CACHE[key] = summary
        return summary
    kinds: Set[str] = set()
    waits_on: List[Path] = []
    composite: List[Path] = []
    acquires: List[Tuple[Path, str]] = []
    for state in reachable_wait_states(flow.machine):
        kinds.add(state.kind)
        info = state.info
        if info is None:
            continue
        if state.kind == "event" and info.target is not None:
            waits_on.append(info.target)
        elif state.kind in ("event", "anyof_timeout") and info.members:
            composite.extend(info.members)
        elif state.kind == "external" and info.target is not None:
            acquires.append((info.target, info.method))
    notifies: List[Path] = []
    releases: List[Tuple[Path, str]] = []
    scanned = _scan_calls(owner_type, func, notifies, releases, (code,))
    summary = WaitEffectSummary(
        fn_name,
        wait_kinds=frozenset(kinds),
        waits_on=tuple(waits_on),
        composite_waits=tuple(composite),
        notifies=tuple(notifies),
        acquires=tuple(acquires),
        releases=tuple(releases),
        unresolved=not scanned,
        reason="" if scanned else "source unavailable",
    )
    _SUMMARY_CACHE[key] = summary
    return summary


# --------------------------------------------------------------------------
# Rendezvous-safety proof (the admission side)
# --------------------------------------------------------------------------

def prove_rendezvous_safe(
    target: object, method: str, _seen: Optional[Set[Tuple[int, object]]] = None
) -> Optional[str]:
    """Prove ``target.method`` safe for the compiled-thread fast path.

    Returns None on success, else the first obstruction found.  The proof
    is transitive over the *live* object graph: every wait state reachable
    in the callee (and in any nested blocking call it makes) must be a
    timed wait, an event / ``AnyOf`` composite resolvable on the callee's
    own ``self``, or a nested blocking call that itself proves safe — the
    same vocabulary the compiled runtime serves.  The PR 9 audit registry
    (:func:`repro.analysis.cfg._audited_rendezvous`) acts as a seed:
    registry primitives are accepted without analysis, which also grounds
    the recursion for primitives whose internal waits are intentionally
    dynamic (a mutex's per-waiter grant token).  Recursion through the
    same (object, code) pair degrades conservatively to a rejection.
    """
    if _seen is None:
        _seen = set()
    if _audited_rendezvous(target, method) is None:
        return None
    label = f"{type(target).__name__}.{method}"
    func = _plain_function(type(target), method)
    if func is None:
        return f"{label} is not a plain method (dynamic dispatch)"
    key = (id(target), func.__code__)
    if key in _seen:
        return f"recursive blocking call through {label}"
    _seen.add(key)
    flow = analyze_function(type(target), func)
    if flow.unresolved or flow.machine is None:
        return f"{label}: {flow.reason or 'no wait-state machine'}"
    for state in reachable_wait_states(flow.machine):
        if state.kind == "timed":
            continue
        info = state.info
        tpath = info.target if info is not None else None
        if state.kind == "event":
            if tpath is None:
                rejection = _composite_members_rejection(target, info, state.lineno)
                if rejection is not None:
                    return f"{label}: {rejection}"
                continue
            if not isinstance(_resolve_path(target, tpath), Event):
                return (
                    f"{label} waits on self.{'.'.join(tpath)} which does not "
                    f"resolve to an event (line {state.lineno})"
                )
            continue
        if state.kind == "anyof_timeout":
            rejection = _composite_members_rejection(target, info, state.lineno)
            if rejection is not None:
                return f"{label}: {rejection}"
            continue
        if state.kind == "external":
            resolved = _resolve_path(target, tpath) if tpath else None
            if resolved is None or resolved is _UNRESOLVED:
                attempted = f"self.{'.'.join(tpath)}" if tpath else "its call target"
                return (
                    f"{label}: nested blocking call target {attempted} does "
                    f"not resolve (line {state.lineno})"
                )
            nested = prove_rendezvous_safe(resolved, info.method, _seen)
            if nested is not None:
                return nested
            continue
        return f"{label}: {state.kind} wait (line {state.lineno})"
    return None


# --------------------------------------------------------------------------
# Lock-order / acquire-release traces (the lint side)
# --------------------------------------------------------------------------

@dataclass
class LockAcquisition:
    """One blocking ``yield from self.<path>.lock(...)`` site."""

    mutex: object
    path: Path
    lineno: int
    #: Mutexes (live objects) already held when this acquire blocks,
    #: in acquisition order.
    held: Tuple[object, ...] = ()


@dataclass
class BusCallWhileHeld:
    """A blocking bus/memory transport call issued with locks held."""

    target: object
    path: Path
    method: str
    lineno: int
    held: Tuple[object, ...] = ()


@dataclass
class LockTrace:
    """Lock discipline of one thread body, in source order.

    A linear (source-order) approximation of the body's lock state: good
    enough for ordering lint because the REP6xx rules only *warn*, and
    conservative in the right direction — an unrecognised construct that
    could change the held-set (aliasing, helpers we cannot see into)
    degrades the whole trace to ``unresolved``, which silences the rules.
    """

    name: str
    acquisitions: List[LockAcquisition] = field(default_factory=list)
    bus_calls_while_held: List[BusCallWhileHeld] = field(default_factory=list)
    unresolved: Optional[str] = None


def _is_mutex(obj: object) -> bool:
    from ..kernel.channels import Mutex

    return isinstance(obj, Mutex)


def _is_bus_transport(obj: object, method: str) -> bool:
    try:
        from ..bus.bus import Bus
        from ..bus.memory import Memory
    except ImportError:  # pragma: no cover - kernel without the bus layer
        return False
    return isinstance(obj, (Bus, Memory)) and method in ("read", "write")


def lock_order_trace(process: object) -> LockTrace:
    """The mutex acquire/release/bus-call sequence of one thread process.

    Walks the thread body's statements in source order, tracking the set
    of live :class:`~repro.kernel.channels.Mutex` objects held across
    each ``yield from self.<p>.lock(...)`` / ``self.<p>.unlock()`` pair
    and recording blocking bus transport issued while holding.  Branches
    are walked in order (both arms see the held-set at the branch), which
    over-approximates — acceptable for warning-severity ordering lint.
    """
    name = getattr(process, "name", repr(process))
    fn = getattr(process, "fn", None)
    owner = getattr(fn, "__self__", None)
    trace = LockTrace(name)
    if fn is None or owner is None:
        trace.unresolved = "free-function process (no self to root paths at)"
        return trace
    func = getattr(fn, "__func__", fn)
    if not isinstance(func, types.FunctionType):
        trace.unresolved = "not a plain function"
        return trace
    fn_node = _fn_ast(func)
    if fn_node is None:
        trace.unresolved = "source unavailable"
        return trace
    held: List[object] = []
    for node in ast.walk(fn_node):
        if not isinstance(node, ast.Call) or not isinstance(node.func, ast.Attribute):
            continue
        attr = node.func.attr
        path = _self_path(node.func.value)
        if not path:
            if attr in ("lock", "unlock"):
                # A lock call on a receiver that is not a self path could
                # alias any mutex: the whole held-set is suspect.
                trace.unresolved = (
                    f"{attr} call on a non-self receiver (line {node.lineno})"
                )
                return trace
            continue
        resolved = _resolve_path(owner, path)
        if attr == "lock":
            if not _is_mutex(resolved):
                trace.unresolved = (
                    f"self.{'.'.join(path)}.lock target is not a resolvable mutex"
                )
                return trace
            trace.acquisitions.append(
                LockAcquisition(resolved, path, node.lineno, held=tuple(held))
            )
            if resolved not in held:
                held.append(resolved)
        elif attr == "unlock":
            if not _is_mutex(resolved):
                trace.unresolved = (
                    f"self.{'.'.join(path)}.unlock target is not a resolvable mutex"
                )
                return trace
            if resolved in held:
                held.remove(resolved)
        elif _is_bus_transport(resolved, attr):
            if held:
                trace.bus_calls_while_held.append(
                    BusCallWhileHeld(resolved, path, attr, node.lineno, tuple(held))
                )
    return trace


@dataclass
class AcquireSite:
    """One blocking acquire a thread can park on, resolved live."""

    process_name: str
    target: object
    path: Path
    method: str
    lineno: int


def acquire_sites(process: object) -> Tuple[List[AcquireSite], Optional[str]]:
    """Blocking acquires (``Mutex.lock`` / ``Semaphore.wait``) reachable in
    a thread body, resolved on the live owner.

    Returns ``(sites, unresolved_reason)``; an unresolved body returns an
    empty list with the reason, so consumers can stay silent rather than
    reason from partial facts.
    """
    pcf = analyze_process(process)
    if pcf.unresolved:
        return [], pcf.reason
    if pcf.flow.machine is None or pcf.owner is None:
        return [], "no wait-state machine"
    sites: List[AcquireSite] = []
    for state in reachable_wait_states(pcf.flow.machine):
        if state.kind != "external":
            continue
        info = state.info
        if info is None or info.target is None:
            continue
        resolved = _resolve_path(pcf.owner, info.target)
        if resolved is None or resolved is _UNRESOLVED:
            return [], (
                f"blocking call target self.{'.'.join(info.target)} does not resolve"
            )
        if (type(resolved).__name__, info.method) in ACQUIRE_COUNTERPARTS:
            sites.append(
                AcquireSite(pcf.name, resolved, info.target, info.method, state.lineno)
            )
    return sites, None


def release_closure(
    owner: object,
    func: object,
    _seen: Optional[Set[Tuple[int, object]]] = None,
) -> Tuple[Set[int], bool]:
    """Ids of live objects this function releases, transitively.

    Follows ``self`` helper calls *and* calls on resolvable foreign paths
    (``self.fifo.put(...)`` scans ``Fifo.put`` on the live fifo), so a
    release buried in a callee still counts.  Returns ``(ids, complete)``;
    ``complete=False`` means some body escaped the scan and the closure
    may be missing releases — consumers must stay silent.
    """
    if _seen is None:
        _seen = set()
    func = getattr(func, "__func__", func)
    if not isinstance(func, types.FunctionType):
        return set(), False
    key = (id(owner), func.__code__)
    if key in _seen:
        return set(), True
    _seen.add(key)
    fn_node = _fn_ast(func)
    if fn_node is None:
        return set(), False
    released: Set[int] = set()
    complete = True
    for node in ast.walk(fn_node):
        if not isinstance(node, ast.Call) or not isinstance(node.func, ast.Attribute):
            continue
        attr = node.func.attr
        path = _self_path(node.func.value)
        if path is None:
            continue
        if attr in _RELEASE_METHODS and path:
            resolved = _resolve_path(owner, path)
            if resolved is None or resolved is _UNRESOLVED:
                complete = False
                continue
            released.add(id(resolved))
            continue
        # Recurse into callees we can see: same-object helpers and
        # resolvable foreign methods.
        callee_owner = owner if path == () else _resolve_path(owner, path)
        if callee_owner is None or callee_owner is _UNRESOLVED:
            continue
        callee = _plain_function(type(callee_owner), attr)
        if callee is None:
            continue
        sub, sub_complete = release_closure(callee_owner, callee, _seen)
        released |= sub
        complete = complete and sub_complete
    return released, complete
