"""Tests for the elaboration-time static scheduling fast path.

Covers plan construction (classification and topological ranks), every
fallback trigger (live hooks, dynamic calls, aliasing, stateful methods,
``specialize=False``), mid-run despecialization, and the observable
equivalence between the two schedulers on small designs.

The module classes below are defined at file scope on purpose: the
dataflow analyzer reads process bodies with ``inspect.getsource``, which
only works for code that lives in a real file.
"""

import pytest

from repro.kernel import Clock, Module, Port, Signal, Simulator, fs, ns


class Stage(Module):
    """out = src + 1, combinationally sensitive to src."""

    def __init__(self, name, parent, src):
        super().__init__(name, parent=parent)
        self.src = src
        self.out = Signal(self.sim, 0, f"{self.full_name}.out")
        self.add_method(self.propagate, sensitivity=[src.value_changed], initialize=False)

    def propagate(self):
        self.out.write(self.src.read() + 1)


class ChainTop(Module):
    """A thread driving ``depth`` chained stages once per ns."""

    def __init__(self, name, sim, depth=4, rounds=3):
        super().__init__(name, sim=sim)
        self.depth = depth
        self.rounds = rounds
        self.head = Signal(sim, 0, f"{name}.head")
        src = self.head
        for k in range(depth):
            src = Stage(f"s{k}", self, src).out
        self.tail = src
        self.add_thread(self.drive)

    def drive(self):
        for i in range(self.rounds):
            self.head.write(i + 1)
            yield ns(1)


class DiamondTop(Module):
    """a fans out to two stages that reconverge: out = 3a + 10."""

    def __init__(self, name, sim, rounds=4):
        super().__init__(name, sim=sim)
        self.rounds = rounds
        self.a = Signal(sim, 0, f"{name}.a")
        self.left = Signal(sim, 0, f"{name}.left")
        self.right = Signal(sim, 0, f"{name}.right")
        self.out = Signal(sim, 0, f"{name}.out")
        self.add_method(self.go_left, sensitivity=[self.a.value_changed], initialize=False)
        self.add_method(self.go_right, sensitivity=[self.a.value_changed], initialize=False)
        self.add_method(
            self.combine,
            sensitivity=[self.left.value_changed, self.right.value_changed],
            initialize=False,
        )
        self.add_thread(self.drive)

    def go_left(self):
        self.left.write(self.a.read() * 2)

    def go_right(self):
        self.right.write(self.a.read() + 10)

    def combine(self):
        self.out.write(self.left.read() + self.right.read())

    def drive(self):
        for i in range(self.rounds):
            self.a.write(i + 1)
            yield ns(1)


class EdgeTapsTop(Module):
    """Edge-sensitive methods: posedge/negedge taps on a toggling signal."""

    def __init__(self, name, sim, rounds=6):
        super().__init__(name, sim=sim)
        self.rounds = rounds
        self.t = Signal(sim, False, f"{name}.t")
        self.p = Signal(sim, 0, f"{name}.p")
        self.n = Signal(sim, 0, f"{name}.n")
        self.add_method(self.on_pos, sensitivity=[self.t.posedge], initialize=False)
        self.add_method(self.on_neg, sensitivity=[self.t.negedge], initialize=False)
        self.add_thread(self.drive)

    def on_pos(self):
        self.p.write(1)

    def on_neg(self):
        self.n.write(2)

    def drive(self):
        level = False
        for _ in range(self.rounds):
            level = not level
            self.t.write(level)
            yield ns(1)


class StatefulTop(Module):
    """The reader method mutates module state — not provably pure."""

    def __init__(self, name, sim):
        super().__init__(name, sim=sim)
        self.count = 0
        self.s = Signal(sim, 0, f"{name}.s")
        self.add_method(self.bump, sensitivity=[self.s.value_changed], initialize=False)
        self.add_thread(self.drive)

    def bump(self):
        self.count = self.count + 1

    def drive(self):
        for i in range(3):
            self.s.write(i + 1)
            yield ns(1)


class DynamicTop(Module):
    """The driver thread spawns a process — dynamic process control."""

    def __init__(self, name, sim):
        super().__init__(name, sim=sim)
        self.s = Signal(sim, 0, f"{name}.s")
        self.add_thread(self.drive)

    def helper(self):
        yield ns(1)

    def drive(self):
        self.s.write(1)
        self.sim.spawn("late", self.helper)
        yield ns(1)


class ClockedPipelineTop(Module):
    """A Clock driving two sequential stages through a register net."""

    def __init__(self, name, sim):
        super().__init__(name, sim=sim)
        self.clk = Clock("clk", ns(10), parent=self)
        self.d = Signal(self.sim, 0, name=f"{name}.d")
        self.q = Signal(self.sim, 0, name=f"{name}.q")
        self.q2 = Signal(self.sim, 0, name=f"{name}.q2")
        self.add_method(self.stage1, sensitivity=(self.clk.posedge,), initialize=False)
        self.add_method(self.stage2, sensitivity=(self.clk.posedge,), initialize=False)

    def stage1(self):
        self.q.write(self.d.read() + 1)

    def stage2(self):
        self.q2.write(self.q.read() * 2)


class UnresolvedWriterTop(Module):
    """The thread's yield sits in a nested expression: the dataflow layer
    resolves the wait, the CFG builder conservatively does not — so the
    observed signal it writes must be excluded, not mis-specialized."""

    def __init__(self, name, sim):
        super().__init__(name, sim=sim)
        self.t = Signal(self.sim, 0, name="t")
        self.o = Signal(self.sim, 0, name="o")
        self.add_method(self.tap, sensitivity=(self.t.value_changed,), initialize=False)
        self.add_thread(self.drive)

    def tap(self):
        self.o.write(self.t.read() + 1)

    def drive(self):
        for i in range(3):
            _ = [(yield ns(1))]
            self.t.write(i + 1)


class DoubleWriteTop(Module):
    """The thread pulses the observed signal twice in one instant: the
    generic path absorbs the pulse in one staged update, so in-place
    commits would fire spurious waves."""

    def __init__(self, name, sim):
        super().__init__(name, sim=sim)
        self.t = Signal(self.sim, 0, name="t")
        self.o = Signal(self.sim, 0, name="o")
        self.add_method(self.tap, sensitivity=(self.t.value_changed,), initialize=False)
        self.add_thread(self.drive)

    def tap(self):
        self.o.write(self.t.read() + 1)

    def drive(self):
        for i in range(3):
            self.t.write(0)
            self.t.write(i + 1)
            yield ns(1)


class PulseMethodTop(Module):
    """A method writes the observed signal twice per activation."""

    def __init__(self, name, sim):
        super().__init__(name, sim=sim)
        self.s = Signal(self.sim, 0, name="s")
        self.b = Signal(self.sim, False, name="b")
        self.seen = Signal(self.sim, 0, name="seen")
        self.add_method(self.pulse, sensitivity=(self.s.value_changed,), initialize=False)
        self.add_method(self.tap, sensitivity=(self.b.posedge,), initialize=False)
        self.add_thread(self.drive)

    def pulse(self):
        self.b.write(True)
        self.b.write(False)

    def tap(self):
        self.seen.write(self.s.read())

    def drive(self):
        for i in range(3):
            self.s.write(i + 1)
            yield ns(1)


class DegenerateClockTop(Module):
    """fs(1) at duty 0.4 rounds the high phase to zero femtoseconds."""

    def __init__(self, name, sim):
        super().__init__(name, sim=sim)
        self.clk = Clock("clk", fs(1), parent=self, duty=0.4)
        self.q = Signal(self.sim, 0, name="q")
        self.add_method(self.stage, sensitivity=(self.clk.posedge,), initialize=False)

    def stage(self):
        self.q.write(self.q.read())


class PortWriter(Module):
    def __init__(self, name, parent):
        super().__init__(name, parent=parent)
        self.out = Port(self, None, name="out")
        self.add_thread(self.drive)

    def drive(self):
        for i in range(3):
            self.out.write(i)
            yield ns(1)


class SharedPortNetTop(Module):
    """Two writers drive one signal through their ports: a multi-writer
    net the plan must see through ``binding_chain()`` and exclude."""

    def __init__(self, name, sim):
        super().__init__(name, sim=sim)
        self.net = Signal(self.sim, 0, name="net")
        self.w1 = PortWriter("w1", self)
        self.w2 = PortWriter("w2", self)
        self.w1.out.bind(self.net)
        self.w2.out.bind(self.net)


def _run_chain(specialize, depth=4, rounds=3):
    sim = Simulator(specialize=specialize)
    top = ChainTop("chain", sim, depth=depth, rounds=rounds)
    sim.run()
    return sim, top


class TestPlanConstruction:
    def test_chain_specializes_with_topological_ranks(self):
        sim, top = _run_chain(specialize=True)
        assert sim._specialized
        plan = sim.schedule_plan
        assert plan is not None and plan.specializable
        # head + the three inner stage outputs chain; the last output is
        # silent (written, never read, nothing waits on its events).
        assert len(plan.chained_signals) == top.depth
        assert [s.name for s in plan.silent_signals] == [f"chain.s{top.depth - 1}.out"]
        ranks = {proc.name: rank for proc, rank in plan.method_ranks}
        assert ranks == {
            f"chain.s{k}.propagate": k for k in range(top.depth)
        }
        assert plan.rank_count == top.depth

    def test_diamond_reconvergence_ranks(self):
        sim = Simulator()
        top = DiamondTop("d", sim)
        sim.run()
        assert sim._specialized
        ranks = {proc.name: rank for proc, rank in sim.schedule_plan.method_ranks}
        assert ranks["d.combine"] > ranks["d.go_left"]
        assert ranks["d.combine"] > ranks["d.go_right"]
        assert top.out.read() == 3 * top.rounds + 10

    def test_specialized_commits_counted(self):
        sim, top = _run_chain(specialize=True)
        # Every write commits a distinct value: rounds on the head plus
        # rounds per stage output, none absorbed.
        assert sim.stats.specialized_commits == top.rounds * (top.depth + 1)
        generic_sim, _ = _run_chain(specialize=False)
        assert generic_sim.stats.specialized_commits == 0


class TestClockedAdmission:
    """The PR-7 extension: clock-toggle threads proven periodic single
    writers, sequential methods, and register-style nets."""

    def test_clocked_pipeline_plan(self):
        sim = Simulator()
        top = ClockedPipelineTop("p", sim)
        sim.initialize()
        assert sim._specialized
        plan = sim.schedule_plan
        assert [s.name for s, _ in plan.chained_signals] == ["p.clk.sig"]
        assert [s.name for s in plan.register_signals] == ["p.q"]
        assert [s.name for s in plan.silent_signals] == ["p.q2"]
        assert plan.exclusions == []
        # Sequential methods are marked directly by the clock commit.
        assert {rank for _, rank in plan.method_ranks} == {0}

    def test_clocked_pipeline_runs_fast_and_matches(self):
        finals = {}
        stats = {}
        for specialize in (True, False):
            sim = Simulator(specialize=specialize)
            top = ClockedPipelineTop("p", sim)
            sim.run(until=ns(100))
            assert sim._specialized is specialize
            finals[specialize] = (top.q.read(), top.q2.read(), top.clk.read())
            stats[specialize] = sim.stats.as_dict()
        assert finals[True] == finals[False]
        assert stats[True]["timed_activations"] == stats[False]["timed_activations"]
        assert stats[True]["delta_cycles"] <= stats[False]["delta_cycles"]
        assert stats[True]["register_commits"] > 0
        assert stats[False]["register_commits"] == 0

    def test_register_keeps_staged_semantics(self):
        # stage2 must see stage1's *previous* output in the same instant:
        # after the first posedge q2 is twice the initial q, not twice the
        # just-staged one.
        sim = Simulator()
        top = ClockedPipelineTop("p", sim)
        top.d.write(41)
        sim.run(until=ns(14))  # exactly one posedge (clock starts high)
        assert sim._specialized
        assert top.q.read() == 42
        assert top.q2.read() == 0  # old q (0) * 2, not 84


class TestExclusionRegressions:
    """Every new per-signal fallback trigger is recorded in
    ``plan.exclusions`` and the net stays on the generic protocol."""

    def _plan(self, top_cls):
        sim = Simulator()
        top_cls("t", sim)
        sim.initialize()
        plan = sim.schedule_plan
        assert plan is not None
        return sim, plan

    def test_unresolved_cfg_thread_writer(self):
        sim, plan = self._plan(UnresolvedWriterTop)
        assert any("control flow unresolved" in e for e in plan.exclusions)
        assert all(s.name != "t" for s, _ in plan.chained_signals)

    def test_thread_double_write_excluded(self):
        sim, plan = self._plan(DoubleWriteTop)
        assert any("more than once in one instant" in e for e in plan.exclusions)
        assert all(s.name != "t" for s, _ in plan.chained_signals)

    def test_method_pulse_writer_excluded(self):
        sim, plan = self._plan(PulseMethodTop)
        assert any(
            "more than once per activation" in e for e in plan.exclusions
        )
        assert all(s.name != "t.b" for s, _ in plan.chained_signals)

    def test_degenerate_clock_excluded(self):
        sim, plan = self._plan(DegenerateClockTop)
        assert any("degenerate clock phase" in e for e in plan.exclusions)
        # The signal-side exclusion holds — no fast signal classes — but
        # the clock *thread* itself now passes the rendezvous admission
        # (AnyOf composites are first-class since PR 10), an orthogonal
        # per-thread proof that does not depend on phase durations.
        assert not sim._fast_signals
        assert plan.compiled_threads
        assert sim._specialized

    def test_multi_writer_port_net_excluded(self):
        sim, plan = self._plan(SharedPortNetTop)
        assert any(
            "multiple writers" in e and "net" in e for e in plan.exclusions
        )
        assert not sim._specialized

    @pytest.mark.parametrize(
        "top_cls",
        [UnresolvedWriterTop, DoubleWriteTop, PulseMethodTop, SharedPortNetTop],
    )
    def test_excluded_designs_still_run_correctly(self, top_cls):
        finals = {}
        for specialize in (True, False):
            sim = Simulator(specialize=specialize)
            top = top_cls("t", sim)
            sim.run(until=ns(50))
            finals[specialize] = {
                name: sig.read()
                for name, sig in vars(top).items()
                if isinstance(sig, Signal)
            }
        assert finals[True] == finals[False]


class TestEquivalence:
    @pytest.mark.parametrize("top_cls", [ChainTop, DiamondTop, EdgeTapsTop])
    def test_same_results_both_paths(self, top_cls):
        finals = {}
        stats = {}
        for specialize in (True, False):
            sim = Simulator(specialize=specialize)
            top = top_cls("t", sim)
            sim.run()
            assert sim._specialized is specialize
            finals[specialize] = {
                name: sig.read()
                for name, sig in vars(top).items()
                if isinstance(sig, Signal)
            }
            stats[specialize] = sim.stats.as_dict()
        assert finals[True] == finals[False]
        # Equivalence contract: wall-clock activity matches; the fast path
        # may only *skip* queue work, never add any.
        assert stats[True]["timed_activations"] == stats[False]["timed_activations"]
        assert stats[True]["delta_cycles"] <= stats[False]["delta_cycles"]
        assert stats[True]["signal_updates"] <= stats[False]["signal_updates"]
        assert stats[True]["process_executions"] <= stats[False]["process_executions"]
        assert stats[True]["specialized_commits"] > 0

    def test_fast_path_skips_queue_round_trips(self):
        sim, top = _run_chain(specialize=True)
        assert sim.stats.delta_cycles == 0
        assert sim.stats.signal_updates == 0
        assert top.tail.read() == top.rounds + top.depth


class TestFallbackTriggers:
    def test_spawn_only_design(self):
        sim = Simulator()

        def body():
            yield ns(1)

        sim.spawn("p", body)
        sim.run()
        assert not sim._specialized
        assert sim.specialize_fallback_reasons == [
            "no module hierarchy (spawn-only design)"
        ]

    def test_specialize_false_skips_analysis_entirely(self):
        sim, top = _run_chain(specialize=False)
        assert not sim._specialized
        assert sim.schedule_plan is None
        assert sim.specialize_fallback_reasons == []
        assert top.tail.read() == top.rounds + top.depth

    def test_write_hook_armed_before_run(self):
        sim = Simulator()
        top = ChainTop("chain", sim)
        top.head.write_hook = lambda sig, value: None
        sim.run()
        assert not sim._specialized
        assert any("write hook" in r for r in sim.specialize_fallback_reasons)

    def test_fault_hook_armed_before_run(self):
        sim = Simulator()
        ChainTop("chain", sim).fault_hook = lambda *args: None
        sim.run()
        assert not sim._specialized
        assert any("fault hook" in r for r in sim.specialize_fallback_reasons)

    def test_dynamic_process_control_rejected_at_plan_time(self):
        sim = Simulator()
        DynamicTop("d", sim)
        sim.run()
        assert not sim._specialized
        assert any(
            "dynamic process-control" in r for r in sim.specialize_fallback_reasons
        )

    def test_free_function_process_is_opaque(self):
        sim = Simulator()
        ChainTop("chain", sim)
        extra = Signal(sim, 0, "extra")

        def closure():
            extra.write(1)
            yield ns(1)

        sim.spawn("free", closure)
        sim.run()
        assert not sim._specialized
        # The closure cannot be attributed to a module, so its waits and
        # signal accesses are unresolvable — rejected wholesale.
        assert any("process free" in r for r in sim.specialize_fallback_reasons)

    def test_stateful_method_leaves_no_eligible_signals(self):
        sim = Simulator()
        top = StatefulTop("st", sim)
        sim.run()
        assert not sim._specialized
        assert any(
            "no signals eligible" in r for r in sim.specialize_fallback_reasons
        )
        assert top.count == 3  # the design still behaves normally


class TestDespecialization:
    def test_mid_run_spawn_reverts_to_generic(self):
        # A trace hook injecting a spawn models instrumentation the plan
        # could not have seen (processes with dynamic calls are already
        # rejected at plan time).
        sim = Simulator()
        top = ChainTop("chain", sim, depth=3, rounds=4)
        ran = []

        def late():
            ran.append(sim.now.femtoseconds)
            yield ns(1)

        def hook(now):
            if now.femtoseconds == 1_000_000 and not ran:
                sim.spawn("late", late)

        sim.trace_hooks.append(hook)
        sim.run()
        assert not sim._specialized  # reverted wholesale
        assert any("dynamic process" in r for r in sim.specialize_fallback_reasons)
        assert ran == [1_000_000]
        # The run completed correctly across the revert.
        assert top.tail.read() == top.rounds + top.depth
        assert sim.stats.specialized_commits > 0  # fast path was active first

    def test_mid_run_trace_callback_attach_reverts(self):
        sim = Simulator()
        top = ChainTop("chain", sim, depth=3, rounds=4)
        observed = []

        def on_tail(now, value):
            observed.append((now.femtoseconds, value))

        attached = []

        def hook(now):
            if now.femtoseconds == 1_000_000 and not attached:
                attached.append(1)
                top.tail.on_update(on_tail)

        sim.trace_hooks.append(hook)
        sim.run()
        assert not sim._specialized
        assert top.tail.read() == top.rounds + top.depth
        # The callback observes every committed change after attachment:
        # at t ns the drive thread has written t+1, so tail = t+1+depth.
        assert observed == [
            (2_000_000, 3 + top.depth),
            (3_000_000, 4 + top.depth),
        ]

    def test_buckets_flushed_on_revert(self):
        # After a revert no static-schedule state may linger.
        sim = Simulator()
        ChainTop("chain", sim)
        sim.initialize()
        assert sim._specialized
        sim._despecialize("test-forced revert")
        assert not sim._specialized
        assert sim._pending_buckets == []
        assert sim._pending_count == 0
        assert sim._fast_signals == []
        sim.run()  # completes on the generic path
        assert sim.stats.specialized_commits == 0
