"""Tests for the elaboration-time static scheduling fast path.

Covers plan construction (classification and topological ranks), every
fallback trigger (live hooks, dynamic calls, aliasing, stateful methods,
``specialize=False``), mid-run despecialization, and the observable
equivalence between the two schedulers on small designs.

The module classes below are defined at file scope on purpose: the
dataflow analyzer reads process bodies with ``inspect.getsource``, which
only works for code that lives in a real file.
"""

import pytest

from repro.kernel import Module, Signal, Simulator, ns


class Stage(Module):
    """out = src + 1, combinationally sensitive to src."""

    def __init__(self, name, parent, src):
        super().__init__(name, parent=parent)
        self.src = src
        self.out = Signal(self.sim, 0, f"{self.full_name}.out")
        self.add_method(self.propagate, sensitivity=[src.value_changed], initialize=False)

    def propagate(self):
        self.out.write(self.src.read() + 1)


class ChainTop(Module):
    """A thread driving ``depth`` chained stages once per ns."""

    def __init__(self, name, sim, depth=4, rounds=3):
        super().__init__(name, sim=sim)
        self.depth = depth
        self.rounds = rounds
        self.head = Signal(sim, 0, f"{name}.head")
        src = self.head
        for k in range(depth):
            src = Stage(f"s{k}", self, src).out
        self.tail = src
        self.add_thread(self.drive)

    def drive(self):
        for i in range(self.rounds):
            self.head.write(i + 1)
            yield ns(1)


class DiamondTop(Module):
    """a fans out to two stages that reconverge: out = 3a + 10."""

    def __init__(self, name, sim, rounds=4):
        super().__init__(name, sim=sim)
        self.rounds = rounds
        self.a = Signal(sim, 0, f"{name}.a")
        self.left = Signal(sim, 0, f"{name}.left")
        self.right = Signal(sim, 0, f"{name}.right")
        self.out = Signal(sim, 0, f"{name}.out")
        self.add_method(self.go_left, sensitivity=[self.a.value_changed], initialize=False)
        self.add_method(self.go_right, sensitivity=[self.a.value_changed], initialize=False)
        self.add_method(
            self.combine,
            sensitivity=[self.left.value_changed, self.right.value_changed],
            initialize=False,
        )
        self.add_thread(self.drive)

    def go_left(self):
        self.left.write(self.a.read() * 2)

    def go_right(self):
        self.right.write(self.a.read() + 10)

    def combine(self):
        self.out.write(self.left.read() + self.right.read())

    def drive(self):
        for i in range(self.rounds):
            self.a.write(i + 1)
            yield ns(1)


class EdgeTapsTop(Module):
    """Edge-sensitive methods: posedge/negedge taps on a toggling signal."""

    def __init__(self, name, sim, rounds=6):
        super().__init__(name, sim=sim)
        self.rounds = rounds
        self.t = Signal(sim, False, f"{name}.t")
        self.p = Signal(sim, 0, f"{name}.p")
        self.n = Signal(sim, 0, f"{name}.n")
        self.add_method(self.on_pos, sensitivity=[self.t.posedge], initialize=False)
        self.add_method(self.on_neg, sensitivity=[self.t.negedge], initialize=False)
        self.add_thread(self.drive)

    def on_pos(self):
        self.p.write(1)

    def on_neg(self):
        self.n.write(2)

    def drive(self):
        level = False
        for _ in range(self.rounds):
            level = not level
            self.t.write(level)
            yield ns(1)


class StatefulTop(Module):
    """The reader method mutates module state — not provably pure."""

    def __init__(self, name, sim):
        super().__init__(name, sim=sim)
        self.count = 0
        self.s = Signal(sim, 0, f"{name}.s")
        self.add_method(self.bump, sensitivity=[self.s.value_changed], initialize=False)
        self.add_thread(self.drive)

    def bump(self):
        self.count = self.count + 1

    def drive(self):
        for i in range(3):
            self.s.write(i + 1)
            yield ns(1)


class DynamicTop(Module):
    """The driver thread spawns a process — dynamic process control."""

    def __init__(self, name, sim):
        super().__init__(name, sim=sim)
        self.s = Signal(sim, 0, f"{name}.s")
        self.add_thread(self.drive)

    def helper(self):
        yield ns(1)

    def drive(self):
        self.s.write(1)
        self.sim.spawn("late", self.helper)
        yield ns(1)


def _run_chain(specialize, depth=4, rounds=3):
    sim = Simulator(specialize=specialize)
    top = ChainTop("chain", sim, depth=depth, rounds=rounds)
    sim.run()
    return sim, top


class TestPlanConstruction:
    def test_chain_specializes_with_topological_ranks(self):
        sim, top = _run_chain(specialize=True)
        assert sim._specialized
        plan = sim.schedule_plan
        assert plan is not None and plan.specializable
        # head + the three inner stage outputs chain; the last output is
        # silent (written, never read, nothing waits on its events).
        assert len(plan.chained_signals) == top.depth
        assert [s.name for s in plan.silent_signals] == [f"chain.s{top.depth - 1}.out"]
        ranks = {proc.name: rank for proc, rank in plan.method_ranks}
        assert ranks == {
            f"chain.s{k}.propagate": k for k in range(top.depth)
        }
        assert plan.rank_count == top.depth

    def test_diamond_reconvergence_ranks(self):
        sim = Simulator()
        top = DiamondTop("d", sim)
        sim.run()
        assert sim._specialized
        ranks = {proc.name: rank for proc, rank in sim.schedule_plan.method_ranks}
        assert ranks["d.combine"] > ranks["d.go_left"]
        assert ranks["d.combine"] > ranks["d.go_right"]
        assert top.out.read() == 3 * top.rounds + 10

    def test_specialized_commits_counted(self):
        sim, top = _run_chain(specialize=True)
        # Every write commits a distinct value: rounds on the head plus
        # rounds per stage output, none absorbed.
        assert sim.stats.specialized_commits == top.rounds * (top.depth + 1)
        generic_sim, _ = _run_chain(specialize=False)
        assert generic_sim.stats.specialized_commits == 0


class TestEquivalence:
    @pytest.mark.parametrize("top_cls", [ChainTop, DiamondTop, EdgeTapsTop])
    def test_same_results_both_paths(self, top_cls):
        finals = {}
        stats = {}
        for specialize in (True, False):
            sim = Simulator(specialize=specialize)
            top = top_cls("t", sim)
            sim.run()
            assert sim._specialized is specialize
            finals[specialize] = {
                name: sig.read()
                for name, sig in vars(top).items()
                if isinstance(sig, Signal)
            }
            stats[specialize] = sim.stats.as_dict()
        assert finals[True] == finals[False]
        # Equivalence contract: wall-clock activity matches; the fast path
        # may only *skip* queue work, never add any.
        assert stats[True]["timed_activations"] == stats[False]["timed_activations"]
        assert stats[True]["delta_cycles"] <= stats[False]["delta_cycles"]
        assert stats[True]["signal_updates"] <= stats[False]["signal_updates"]
        assert stats[True]["process_executions"] <= stats[False]["process_executions"]
        assert stats[True]["specialized_commits"] > 0

    def test_fast_path_skips_queue_round_trips(self):
        sim, top = _run_chain(specialize=True)
        assert sim.stats.delta_cycles == 0
        assert sim.stats.signal_updates == 0
        assert top.tail.read() == top.rounds + top.depth


class TestFallbackTriggers:
    def test_spawn_only_design(self):
        sim = Simulator()

        def body():
            yield ns(1)

        sim.spawn("p", body)
        sim.run()
        assert not sim._specialized
        assert sim.specialize_fallback_reasons == [
            "no module hierarchy (spawn-only design)"
        ]

    def test_specialize_false_skips_analysis_entirely(self):
        sim, top = _run_chain(specialize=False)
        assert not sim._specialized
        assert sim.schedule_plan is None
        assert sim.specialize_fallback_reasons == []
        assert top.tail.read() == top.rounds + top.depth

    def test_write_hook_armed_before_run(self):
        sim = Simulator()
        top = ChainTop("chain", sim)
        top.head.write_hook = lambda sig, value: None
        sim.run()
        assert not sim._specialized
        assert any("write hook" in r for r in sim.specialize_fallback_reasons)

    def test_fault_hook_armed_before_run(self):
        sim = Simulator()
        ChainTop("chain", sim).fault_hook = lambda *args: None
        sim.run()
        assert not sim._specialized
        assert any("fault hook" in r for r in sim.specialize_fallback_reasons)

    def test_dynamic_process_control_rejected_at_plan_time(self):
        sim = Simulator()
        DynamicTop("d", sim)
        sim.run()
        assert not sim._specialized
        assert any(
            "dynamic process-control" in r for r in sim.specialize_fallback_reasons
        )

    def test_free_function_process_is_opaque(self):
        sim = Simulator()
        ChainTop("chain", sim)
        extra = Signal(sim, 0, "extra")

        def closure():
            extra.write(1)
            yield ns(1)

        sim.spawn("free", closure)
        sim.run()
        assert not sim._specialized
        # The closure cannot be attributed to a module, so its waits and
        # signal accesses are unresolvable — rejected wholesale.
        assert any("process free" in r for r in sim.specialize_fallback_reasons)

    def test_stateful_method_leaves_no_eligible_signals(self):
        sim = Simulator()
        top = StatefulTop("st", sim)
        sim.run()
        assert not sim._specialized
        assert any(
            "no signals eligible" in r for r in sim.specialize_fallback_reasons
        )
        assert top.count == 3  # the design still behaves normally


class TestDespecialization:
    def test_mid_run_spawn_reverts_to_generic(self):
        # A trace hook injecting a spawn models instrumentation the plan
        # could not have seen (processes with dynamic calls are already
        # rejected at plan time).
        sim = Simulator()
        top = ChainTop("chain", sim, depth=3, rounds=4)
        ran = []

        def late():
            ran.append(sim.now.femtoseconds)
            yield ns(1)

        def hook(now):
            if now.femtoseconds == 1_000_000 and not ran:
                sim.spawn("late", late)

        sim.trace_hooks.append(hook)
        sim.run()
        assert not sim._specialized  # reverted wholesale
        assert any("dynamic process" in r for r in sim.specialize_fallback_reasons)
        assert ran == [1_000_000]
        # The run completed correctly across the revert.
        assert top.tail.read() == top.rounds + top.depth
        assert sim.stats.specialized_commits > 0  # fast path was active first

    def test_mid_run_trace_callback_attach_reverts(self):
        sim = Simulator()
        top = ChainTop("chain", sim, depth=3, rounds=4)
        observed = []

        def on_tail(now, value):
            observed.append((now.femtoseconds, value))

        attached = []

        def hook(now):
            if now.femtoseconds == 1_000_000 and not attached:
                attached.append(1)
                top.tail.on_update(on_tail)

        sim.trace_hooks.append(hook)
        sim.run()
        assert not sim._specialized
        assert top.tail.read() == top.rounds + top.depth
        # The callback observes every committed change after attachment:
        # at t ns the drive thread has written t+1, so tail = t+1+depth.
        assert observed == [
            (2_000_000, 3 + top.depth),
            (3_000_000, 4 + top.depth),
        ]

    def test_buckets_flushed_on_revert(self):
        # After a revert no static-schedule state may linger.
        sim = Simulator()
        ChainTop("chain", sim)
        sim.initialize()
        assert sim._specialized
        sim._despecialize("test-forced revert")
        assert not sim._specialized
        assert sim._pending_buckets == []
        assert sim._pending_count == 0
        assert sim._fast_signals == []
        sim.run()  # completes on the generic path
        assert sim.stats.specialized_commits == 0
