"""FIFO, mutex, semaphore: blocking semantics, fairness, bookkeeping."""

import pytest

from repro.kernel import Fifo, Mutex, Semaphore, SimulationError, ns
from tests.conftest import drive


class TestFifo:
    def test_put_get_order(self, sim):
        fifo = Fifo(sim, capacity=8, name="f")
        out = []

        def producer():
            for i in range(5):
                yield from fifo.put(i)

        def consumer():
            for _ in range(5):
                item = yield from fifo.get()
                out.append(item)

        sim.spawn("p", producer)
        sim.spawn("c", consumer)
        sim.run()
        assert out == [0, 1, 2, 3, 4]

    def test_put_blocks_when_full(self, sim):
        fifo = Fifo(sim, capacity=2, name="f")
        timeline = []

        def producer():
            for i in range(4):
                yield from fifo.put(i)
                timeline.append(("put", i, sim.now.to_ns()))

        def consumer():
            yield ns(10)
            for _ in range(4):
                yield from fifo.get()
                yield ns(10)

        sim.spawn("p", producer)
        sim.spawn("c", consumer)
        sim.run()
        # Third put had to wait for the consumer's first get at t=10.
        assert timeline[0][2] == 0.0 and timeline[1][2] == 0.0
        assert timeline[2][2] == 10.0

    def test_get_blocks_when_empty(self, sim):
        fifo = Fifo(sim, capacity=2, name="f")
        got = []

        def consumer():
            item = yield from fifo.get()
            got.append((item, sim.now.to_ns()))

        def producer():
            yield ns(5)
            yield from fifo.put(42)

        sim.spawn("c", consumer)
        sim.spawn("p", producer)
        sim.run()
        assert got == [(42, 5.0)]

    def test_nb_operations(self, sim):
        fifo = Fifo(sim, capacity=1, name="f")
        assert fifo.nb_get() is None
        assert fifo.nb_put(1)
        assert not fifo.nb_put(2)  # full
        assert fifo.is_full
        assert fifo.nb_get() == 1
        assert fifo.is_empty

    def test_unbounded_fifo_never_full(self, sim):
        fifo = Fifo(sim, capacity=None, name="f")
        for i in range(1000):
            assert fifo.nb_put(i)
        assert not fifo.is_full
        assert len(fifo) == 1000

    def test_invalid_capacity(self, sim):
        with pytest.raises(ValueError):
            Fifo(sim, capacity=0)


class TestMutex:
    def test_fifo_granting(self, sim):
        mutex = Mutex(sim, "m")
        order = []

        def agent(label, hold_ns):
            def body():
                yield from mutex.lock(label)
                order.append((label, sim.now.to_ns()))
                yield ns(hold_ns)
                mutex.unlock()

            return body

        sim.spawn("a", agent("a", 10))
        sim.spawn("b", agent("b", 10))
        sim.spawn("c", agent("c", 10))
        sim.run()
        assert order == [("a", 0.0), ("b", 10.0), ("c", 20.0)]

    def test_try_lock(self, sim):
        mutex = Mutex(sim, "m")
        assert mutex.try_lock("x")
        assert not mutex.try_lock("y")
        assert mutex.owner == "x"
        mutex.unlock()
        assert mutex.owner is None

    def test_unlock_while_unlocked_rejected(self, sim):
        mutex = Mutex(sim, "m")
        with pytest.raises(SimulationError, match="not locked"):
            mutex.unlock()

    def test_waiters_visible(self, sim):
        mutex = Mutex(sim, "m")
        mutex.try_lock("owner")

        def blocked():
            yield from mutex.lock("late")

        sim.spawn("late", blocked)
        sim.run()
        assert mutex.waiters == ["late"]
        assert mutex.contention_count == 1

    def test_reentrant_use_after_release(self, sim):
        mutex = Mutex(sim, "m")
        count = []

        def body():
            for _ in range(3):
                yield from mutex.lock("p")
                count.append(sim.now.to_ns())
                mutex.unlock()
                yield ns(1)

        sim.spawn("p", body)
        sim.run()
        assert len(count) == 3


class TestSemaphore:
    def test_counting(self, sim):
        sem = Semaphore(sim, 2, "s")
        grants = []

        def worker(label):
            def body():
                yield from sem.wait()
                grants.append((label, sim.now.to_ns()))
                yield ns(10)
                sem.post()

            return body

        for label in ("a", "b", "c"):
            sim.spawn(label, worker(label))
        sim.run()
        at_zero = [g for g in grants if g[1] == 0.0]
        assert len(at_zero) == 2  # two tokens available immediately
        assert ("c", 10.0) in grants

    def test_try_wait(self, sim):
        sem = Semaphore(sim, 1, "s")
        assert sem.try_wait()
        assert not sem.try_wait()
        sem.post()
        assert sem.count == 1

    def test_negative_initial_rejected(self, sim):
        with pytest.raises(ValueError):
            Semaphore(sim, -1)
