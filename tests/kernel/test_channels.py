"""FIFO, mutex, semaphore: blocking semantics, fairness, bookkeeping."""

import pytest

from repro.kernel import Fifo, Mutex, Semaphore, SimulationError, ns
from tests.conftest import drive


class TestFifo:
    def test_put_get_order(self, sim):
        fifo = Fifo(sim, capacity=8, name="f")
        out = []

        def producer():
            for i in range(5):
                yield from fifo.put(i)

        def consumer():
            for _ in range(5):
                item = yield from fifo.get()
                out.append(item)

        sim.spawn("p", producer)
        sim.spawn("c", consumer)
        sim.run()
        assert out == [0, 1, 2, 3, 4]

    def test_put_blocks_when_full(self, sim):
        fifo = Fifo(sim, capacity=2, name="f")
        timeline = []

        def producer():
            for i in range(4):
                yield from fifo.put(i)
                timeline.append(("put", i, sim.now.to_ns()))

        def consumer():
            yield ns(10)
            for _ in range(4):
                yield from fifo.get()
                yield ns(10)

        sim.spawn("p", producer)
        sim.spawn("c", consumer)
        sim.run()
        # Third put had to wait for the consumer's first get at t=10.
        assert timeline[0][2] == 0.0 and timeline[1][2] == 0.0
        assert timeline[2][2] == 10.0

    def test_get_blocks_when_empty(self, sim):
        fifo = Fifo(sim, capacity=2, name="f")
        got = []

        def consumer():
            item = yield from fifo.get()
            got.append((item, sim.now.to_ns()))

        def producer():
            yield ns(5)
            yield from fifo.put(42)

        sim.spawn("c", consumer)
        sim.spawn("p", producer)
        sim.run()
        assert got == [(42, 5.0)]

    def test_nb_operations(self, sim):
        fifo = Fifo(sim, capacity=1, name="f")
        assert fifo.nb_get() is None
        assert fifo.nb_put(1)
        assert not fifo.nb_put(2)  # full
        assert fifo.is_full
        assert fifo.nb_get() == 1
        assert fifo.is_empty

    def test_unbounded_fifo_never_full(self, sim):
        fifo = Fifo(sim, capacity=None, name="f")
        for i in range(1000):
            assert fifo.nb_put(i)
        assert not fifo.is_full
        assert len(fifo) == 1000

    def test_invalid_capacity(self, sim):
        with pytest.raises(ValueError):
            Fifo(sim, capacity=0)


class TestMutex:
    def test_fifo_granting(self, sim):
        mutex = Mutex(sim, "m")
        order = []

        def agent(label, hold_ns):
            def body():
                yield from mutex.lock(label)
                order.append((label, sim.now.to_ns()))
                yield ns(hold_ns)
                mutex.unlock()

            return body

        sim.spawn("a", agent("a", 10))
        sim.spawn("b", agent("b", 10))
        sim.spawn("c", agent("c", 10))
        sim.run()
        assert order == [("a", 0.0), ("b", 10.0), ("c", 20.0)]

    def test_try_lock(self, sim):
        mutex = Mutex(sim, "m")
        assert mutex.try_lock("x")
        assert not mutex.try_lock("y")
        assert mutex.owner == "x"
        mutex.unlock()
        assert mutex.owner is None

    def test_unlock_while_unlocked_rejected(self, sim):
        mutex = Mutex(sim, "m")
        with pytest.raises(SimulationError, match="not locked"):
            mutex.unlock()

    def test_waiters_visible(self, sim):
        mutex = Mutex(sim, "m")
        mutex.try_lock("owner")

        def blocked():
            yield from mutex.lock("late")

        sim.spawn("late", blocked)
        sim.run()
        assert mutex.waiters == ["late"]
        assert mutex.contention_count == 1

    def test_reentrant_use_after_release(self, sim):
        mutex = Mutex(sim, "m")
        count = []

        def body():
            for _ in range(3):
                yield from mutex.lock("p")
                count.append(sim.now.to_ns())
                mutex.unlock()
                yield ns(1)

        sim.spawn("p", body)
        sim.run()
        assert len(count) == 3


class TestMutexHandoff:
    """Direct FIFO hand-off: unlock transfers ownership before anyone runs."""

    def test_no_barging_between_unlock_and_resume(self, sim):
        mutex = Mutex(sim, "m")
        log = []

        def holder():
            yield from mutex.lock("holder")
            yield ns(10)
            mutex.unlock()
            # The waiter has not resumed yet, but ownership already moved:
            # a try_lock in this window must lose.
            log.append(("barge", mutex.try_lock("barger")))
            log.append(("owner", mutex.owner))

        def waiter():
            yield ns(1)  # queue behind the holder
            yield from mutex.lock("waiter")
            log.append(("acquired", sim.now.to_ns()))
            mutex.unlock()

        sim.spawn("h", holder)
        sim.spawn("w", waiter)
        sim.run()
        assert ("barge", False) in log
        assert ("owner", "waiter") in log
        assert ("acquired", 10.0) in log

    def test_exactly_one_waiter_wakes_per_unlock(self, sim):
        mutex = Mutex(sim, "m")
        wakeups = []
        acquisitions = []

        def contender(label):
            def body():
                yield from mutex.lock(label)
                wakeups.append(label)
                acquisitions.append((label, sim.now.to_ns()))
                yield ns(10)
                mutex.unlock()

            return body

        for label in ("a", "b", "c", "d"):
            sim.spawn(label, contender(label))
        sim.run()
        # FIFO order, one grant per release, 10 ns apart — losers are never
        # resumed just to re-block (no thundering herd on the lock).
        assert acquisitions == [
            ("a", 0.0), ("b", 10.0), ("c", 20.0), ("d", 30.0)
        ]
        assert wakeups == ["a", "b", "c", "d"]

    def test_killed_waiter_removes_its_own_entry_with_shared_labels(self, sim):
        mutex = Mutex(sim, "m")
        mutex.try_lock("holder")
        acquired = []

        def waiter(tag):
            def body():
                yield from mutex.lock("shared")  # same label on purpose
                acquired.append(tag)
                mutex.unlock()

            return body

        sim.spawn("w1", waiter("w1"))
        w2 = sim.spawn("w2", waiter("w2"))

        def controller():
            yield ns(5)
            w2.kill()  # must remove w2's entry, not the first "shared" entry
            yield ns(5)
            mutex.unlock()

        sim.spawn("ctl", controller)
        sim.run()
        assert acquired == ["w1"]
        assert not mutex.locked
        assert mutex.waiters == []

    def test_waiter_killed_after_grant_passes_lock_on(self, sim):
        mutex = Mutex(sim, "m")
        mutex.try_lock("holder")
        acquired = []

        def waiter(label):
            def body():
                yield from mutex.lock(label)
                acquired.append(label)
                mutex.unlock()

            return body

        doomed = sim.spawn("doomed", waiter("doomed"))
        sim.spawn("next", waiter("next"))

        def controller():
            yield ns(5)
            mutex.unlock()  # grants "doomed" (not yet resumed) ...
            doomed.kill()  # ... who dies holding the grant: must pass it on

        sim.spawn("ctl", controller)
        sim.run()
        assert acquired == ["next"]
        assert not mutex.locked
        assert mutex.owner is None


class TestSemaphore:
    def test_counting(self, sim):
        sem = Semaphore(sim, 2, "s")
        grants = []

        def worker(label):
            def body():
                yield from sem.wait()
                grants.append((label, sim.now.to_ns()))
                yield ns(10)
                sem.post()

            return body

        for label in ("a", "b", "c"):
            sim.spawn(label, worker(label))
        sim.run()
        at_zero = [g for g in grants if g[1] == 0.0]
        assert len(at_zero) == 2  # two tokens available immediately
        assert ("c", 10.0) in grants

    def test_try_wait(self, sim):
        sem = Semaphore(sim, 1, "s")
        assert sem.try_wait()
        assert not sem.try_wait()
        sem.post()
        assert sem.count == 1

    def test_negative_initial_rejected(self, sim):
        with pytest.raises(ValueError):
            Semaphore(sim, -1)

    def test_thundering_herd_single_post_admits_exactly_one(self, sim):
        """One post with five blocked waiters lets exactly one through.

        The posted event wakes every waiter in the same instant; all but one
        must re-check the count and go back to sleep — the count can never
        be driven negative by the herd.
        """
        sem = Semaphore(sim, 0, "s")
        through = []

        def waiter(label):
            def body():
                yield from sem.wait()
                through.append((label, sim.now.to_ns()))

            return body

        for i in range(5):
            sim.spawn(f"w{i}", waiter(f"w{i}"))

        def poster():
            yield ns(5)
            sem.post()

        sim.spawn("poster", poster)
        sim.run()
        assert len(through) == 1
        assert through[0][1] == 5.0
        assert sem.count == 0

    def test_herd_with_multiple_posts_admits_exactly_that_many(self, sim):
        sem = Semaphore(sim, 0, "s")
        through = []

        def waiter(label):
            def body():
                yield from sem.wait()
                through.append(label)

            return body

        for i in range(5):
            sim.spawn(f"w{i}", waiter(f"w{i}"))

        def poster():
            yield ns(5)
            sem.post()
            sem.post()
            sem.post()

        sim.spawn("poster", poster)
        sim.run()
        assert len(through) == 3
        assert sem.count == 0


class TestFifoCapacityRaces:
    def test_two_blocked_producers_one_slot(self, sim):
        """A single get wakes both blocked producers; only one may append.

        The loser must re-check ``is_full`` after the race and block again —
        the FIFO can never exceed its capacity.
        """
        fifo = Fifo(sim, capacity=1, name="f")
        fifo.nb_put("seed")
        high_water = []

        def producer(item):
            def body():
                yield from fifo.put(item)
                high_water.append(len(fifo._items))

            return body

        sim.spawn("p1", producer("p1"))
        sim.spawn("p2", producer("p2"))
        got = []

        def consumer():
            yield ns(5)
            got.append((yield from fifo.get()))
            yield ns(5)
            got.append((yield from fifo.get()))
            yield ns(5)
            got.append((yield from fifo.get()))

        sim.spawn("c", consumer)
        sim.run()
        assert got == ["seed", "p1", "p2"]
        assert max(high_water) <= fifo.capacity

    def test_two_blocked_consumers_one_item(self, sim):
        """A single put wakes both blocked consumers; only one may pop."""
        fifo = Fifo(sim, capacity=4, name="f")
        got = []

        def consumer(label):
            def body():
                item = yield from fifo.get()
                got.append((label, item, sim.now.to_ns()))

            return body

        sim.spawn("c1", consumer("c1"))
        sim.spawn("c2", consumer("c2"))

        def producer():
            yield ns(5)
            yield from fifo.put("x")
            yield ns(5)
            yield from fifo.put("y")

        sim.spawn("p", producer)
        sim.run()
        assert sorted(g[1] for g in got) == ["x", "y"]
        assert [g[2] for g in got] == [5.0, 10.0]
        assert fifo.is_empty
