"""Simulator API surface: hooks, scheduling helpers, guards."""

import pytest

from repro.kernel import ElaborationError, SchedulingError, Simulator, ns


class TestElaborationHooks:
    def test_hook_runs_once_before_first_evaluation(self, sim):
        order = []
        sim.add_end_of_elaboration_hook(lambda: order.append("hook"))

        def body():
            order.append("process")
            yield ns(1)

        sim.spawn("p", body)
        sim.run()
        sim.run()  # second run must not re-run the hook
        assert order == ["hook", "process"]

    def test_hook_after_start_rejected(self, sim):
        sim.run()
        with pytest.raises(ElaborationError, match="already started"):
            sim.add_end_of_elaboration_hook(lambda: None)


class TestScheduleHelper:
    def test_callback_fires_at_delay(self, sim):
        fired = []
        sim.schedule(ns(7), lambda: fired.append(sim.now.to_ns()))
        sim.run()
        assert fired == [7.0]

    def test_cancel_prevents_firing(self, sim):
        fired = []
        action = sim.schedule(ns(7), lambda: fired.append(True))
        action.cancel()
        sim.run()
        assert fired == []

    def test_ordering_of_equal_times(self, sim):
        fired = []
        sim.schedule(ns(5), lambda: fired.append("first"))
        sim.schedule(ns(5), lambda: fired.append("second"))
        sim.run()
        assert fired == ["first", "second"]


class TestGuards:
    def test_run_is_not_reentrant(self, sim):
        def body():
            sim.run()
            yield ns(1)

        sim.spawn("p", body)
        with pytest.raises(Exception, match="not reentrant"):
            sim.run()

    def test_stats_accumulate(self, sim):
        def body():
            for _ in range(3):
                yield ns(1)

        sim.spawn("p", body)
        sim.run()
        stats = sim.stats.as_dict()
        assert stats["process_executions"] >= 4  # start + 3 resumes
        assert stats["timed_activations"] >= 3

    def test_repr_mentions_time(self, sim):
        sim.run()
        assert "now=" in repr(sim)


class TestTraceHooks:
    def test_hook_called_once_per_active_instant(self, sim):
        times = []
        sim.trace_hooks.append(lambda t: times.append(t.to_ns()))

        def body():
            yield ns(5)
            yield ns(5)

        sim.spawn("p", body)
        sim.run()
        # The initial evaluation at t=0 is an instant too.
        assert times == [0.0, 5.0, 10.0]

    def test_hook_fires_for_delta_only_instants(self, sim):
        """A model whose activity is all delta cycles at t=0 is still traced."""
        from repro.kernel import Event, Signal

        times = []
        sim.trace_hooks.append(lambda t: times.append(t.femtoseconds))
        sig = Signal(sim, 0, "s")
        done = Event(sim, "done")

        def waiter():
            yield sig.value_changed
            done.notify_delta()

        def writer():
            sig.write(1)
            yield done

        sim.spawn("w", waiter)
        sim.spawn("p", writer)
        sim.run()
        assert times == [0]  # once, after the t=0 deltas settled

    def test_hook_fires_once_per_instant_despite_many_deltas(self, sim):
        from repro.kernel import Event

        times = []
        sim.trace_hooks.append(lambda t: times.append(t.to_ns()))
        ping = Event(sim, "ping")

        def bouncer():
            for _ in range(5):
                ping.notify_delta()
                yield ping
            yield ns(3)

        sim.spawn("b", bouncer)
        sim.run()
        assert times == [0.0, 3.0]

    def test_hook_sees_settled_signal_values(self, sim):
        """Hooks run after the instant finishes, so committed values are visible."""
        from repro.kernel import Signal

        seen = []
        sig = Signal(sim, 0, "s")
        sim.trace_hooks.append(lambda t: seen.append((t.to_ns(), sig.read())))

        def body():
            sig.write(7)
            yield ns(1)
            sig.write(9)

        sim.spawn("p", body)
        sim.run()
        assert seen == [(0.0, 7), (1.0, 9)]

    def test_no_hook_calls_for_empty_simulation(self, sim):
        times = []
        sim.trace_hooks.append(lambda t: times.append(t))
        sim.run()
        assert times == []
