"""Golden-trace guard for the kernel hot-path refactor.

The expected values below were recorded by running
``determinism_scenario.build_and_run`` on the pre-refactor (seed) kernel
(commit 255a71e, O(n) update/delta queues and list-backed waiter sets).
The refactored kernel must reproduce the event ordering, the per-instant
delta-cycle counts, and every SimulatorStats counter exactly.
"""

from tests.kernel.determinism_scenario import build_and_run

EXPECTED_STATS = {
    # 53 on the seed kernel; the mutex direct hand-off removed one spurious
    # wakeup (losers of a lock race are no longer resumed just to re-block).
    # The observable trace below is unchanged.
    "process_executions": 52,
    "delta_cycles": 7,
    "timed_activations": 21,
    "signal_updates": 4,
    # Added after the seed: count fast-path commits, 0 on the generic
    # scheduler this spawn-only scenario always runs on.
    "specialized_commits": 0,
    "register_commits": 0,
    "compiled_thread_waits": 0,
}

EXPECTED_END_FS = 13_000_000
EXPECTED_EVENT_COUNTS = [2, 2, 2]

EXPECTED_TRACE = [
    (0, 0, "m:1"),
    (0, 0, "drv:start"),
    (0, 0, "put:0"),
    (0, 0, "put:1"),
    (0, 0, "w1:fired"),
    (1_000_000, 0, "lock:a"),
    (1_000_000, 1, "w3:fired"),
    (1_000_000, 1, "any1:e3"),
    (1_000_000, 1, "m:2"),
    (1_000_000, 1, "w2:fired"),
    (2_000_000, 1, "w3:fired"),
    (3_000_000, 1, "got:0"),
    (3_000_000, 2, "put:2"),
    (5_000_000, 2, "got:1"),
    (5_000_000, 3, "put:3"),
    (6_000_000, 3, "unlock:a"),
    (6_000_000, 3, "lock:b"),
    (7_000_000, 3, "all:done"),
    (7_000_000, 3, "w1:fired"),
    (7_000_000, 3, "got:2"),
    (7_000_000, 3, "unlock:b"),
    (7_000_000, 3, "lock:c"),
    (8_000_000, 3, "m:3"),
    (8_000_000, 3, "unlock:c"),
    (9_000_000, 3, "got:3"),
    (9_000_000, 4, "m:4"),
    (9_000_000, 4, "any2:e2"),
    (9_000_000, 4, "w2:fired"),
    (10_000_000, 5, "sig=2"),
    (11_000_000, 6, "pos"),
    (12_000_000, 7, "neg"),
    (13_000_000, 7, "drv:done"),
]


class TestSchedulerDeterminism:
    def test_trace_matches_seed_kernel(self):
        result = build_and_run()
        assert result["trace"] == EXPECTED_TRACE

    def test_stats_counters_match_seed_kernel(self):
        result = build_and_run()
        assert result["stats"] == EXPECTED_STATS
        assert result["delta_count"] == EXPECTED_STATS["delta_cycles"]

    def test_end_state_matches_seed_kernel(self):
        result = build_and_run()
        assert result["end_fs"] == EXPECTED_END_FS
        assert result["e_counts"] == EXPECTED_EVENT_COUNTS
        assert result["pending_timed"] == 0

    def test_repeatable_within_process(self):
        assert build_and_run() == build_and_run()

    def test_cancel_renotify_fires_in_new_queue_position(self):
        # The (1 ns, delta 1) block: e2 was queued first, canceled, and
        # requeued after e3 — so e3's waiters fire before e2's.
        result = build_and_run()
        at_1ns_d1 = [tag for t, d, tag in result["trace"] if t == 1_000_000 and d == 1]
        assert at_1ns_d1.index("w3:fired") < at_1ns_d1.index("w2:fired")
