"""Scheduler semantics: determinism, run-until, delta loops, stop, spawn."""

import pytest

from repro.kernel import (
    DeadlockError,
    Event,
    SchedulingError,
    Signal,
    Simulator,
    ZERO_TIME,
    ns,
)


class TestRunControl:
    def test_run_until_stops_at_boundary(self, sim):
        ticks = []

        def body():
            while True:
                yield ns(10)
                ticks.append(sim.now.to_ns())

        sim.spawn("p", body, daemon=True)
        end = sim.run(until=ns(35))
        assert ticks == [10.0, 20.0, 30.0]
        assert end == ns(35)

    def test_run_resumable(self, sim):
        ticks = []

        def body():
            while True:
                yield ns(10)
                ticks.append(sim.now.to_ns())

        sim.spawn("p", body, daemon=True)
        sim.run(until=ns(15))
        sim.run(until=ns(45))
        assert ticks == [10.0, 20.0, 30.0, 40.0]

    def test_run_to_starvation(self, sim):
        def body():
            yield ns(7)

        sim.spawn("p", body)
        end = sim.run()
        assert end == ns(7)

    def test_stop_request(self, sim):
        progressed = []

        def body():
            for _ in range(100):
                yield ns(1)
                progressed.append(sim.now.to_ns())
                if len(progressed) == 3:
                    sim.stop()

        sim.spawn("p", body)
        sim.run()
        assert len(progressed) == 3

    def test_error_on_deadlock(self, sim):
        ev = Event(sim, "never")

        def body():
            yield ev

        sim.spawn("stuck", body)
        with pytest.raises(DeadlockError, match="stuck"):
            sim.run(error_on_deadlock=True)

    def test_schedule_in_past_rejected(self, sim):
        def body():
            yield ns(10)
            sim._schedule_timed_fs(0, lambda: None)

        sim.spawn("p", body)
        with pytest.raises(Exception, match="past"):
            sim.run()


class TestDeterminism:
    def _run_once(self, seed_order):
        sim = Simulator()
        log = []

        def make(name, delay):
            def body():
                for _ in range(3):
                    yield ns(delay)
                    log.append((name, sim.now.to_ns()))

            return body

        for name, delay in seed_order:
            sim.spawn(name, make(name, delay))
        sim.run()
        return log

    def test_identical_runs_identical_logs(self):
        order = [("a", 5), ("b", 5), ("c", 3)]
        assert self._run_once(order) == self._run_once(order)

    def test_same_time_ties_resolve_by_spawn_order(self):
        log = self._run_once([("a", 5), ("b", 5)])
        pairs = [entry for entry in log if entry[1] == 5.0]
        assert pairs == [("a", 5.0), ("b", 5.0)]


class TestDeltaCycles:
    def test_delta_loop_guard(self, sim):
        ev = Event(sim, "ping")

        def body():
            while True:
                got = yield ev
                ev.notify_delta()

        sim.spawn("p", body, daemon=True)
        ev.notify_delta()
        with pytest.raises(SchedulingError, match="delta cycles"):
            sim.run(max_deltas_per_instant=100)

    def test_signal_update_counts(self, sim):
        signal = Signal(sim, 0, "s")

        def body():
            for i in range(4):
                signal.write(i)
                yield ns(1)

        sim.spawn("p", body)
        sim.run()
        # First write is 0 -> 0 (absorbed); updates still requested 4 times.
        assert sim.stats.signal_updates == 4
        assert signal.read() == 3


class TestSpawnDynamics:
    def test_spawn_after_start(self, sim):
        log = []

        def child():
            yield ns(1)
            log.append(("child", sim.now.to_ns()))

        def parent():
            yield ns(5)
            sim.spawn("child", child)
            yield ns(10)

        sim.spawn("parent", parent)
        sim.run()
        assert log == [("child", 6.0)]

    def test_blocked_process_listing(self, sim):
        ev = Event(sim, "never")

        def body():
            yield ev

        sim.spawn("stuck", body)
        sim.run()
        blocked = sim.blocked_processes()
        assert [p.name for p in blocked] == ["stuck"]
        assert "never" in blocked[0].wait_description

    def test_pending_timed_count(self, sim):
        ev = Event(sim, "e")
        ev.notify(ns(5))
        assert sim.pending_timed_count() == 1
        ev.cancel()
        assert sim.pending_timed_count() == 0
