"""A mixed-workload scenario whose exact event ordering is golden-tested.

The kernel hot-path refactor (O(1) update/delta queues, dict-backed waiter
lists, reused wait handles) must preserve scheduler semantics *bit for
bit*: FIFO runnable order, update -> delta phase ordering, notification
override rules, and the SimulatorStats counters.  This scenario packs the
tricky cases into one run:

* immediate / delta / timed notifications, including the override rules
  (immediate kills delta, delta kills timed, earlier timed kills later);
* cancel-then-renotify of a delta notification inside one evaluation phase
  (the canceled queue entry must not fire, and the renotified event must
  fire in its *new* queue position);
* signals with multiple watchers (update-phase dedup + posedge/negedge);
* AnyOf (event winner and timeout winner), AllOf, static sensitivity;
* a method process with ``next_trigger``;
* fifo backpressure and mutex contention (FIFO grant order).

``build_and_run`` returns the recorded ``(time_fs, delta_cycles, tag)``
trace and the final stats dict; ``test_determinism_refactor.py`` asserts
both against the values recorded from the pre-refactor (seed) kernel.
"""

from __future__ import annotations

from repro.kernel import AllOf, AnyOf, Event, Fifo, Mutex, Signal, Simulator, TIMEOUT, ns


def build_and_run():
    sim = Simulator()
    trace = []

    def rec(tag):
        trace.append((sim._now_fs, sim.stats.delta_cycles, tag))

    e1 = Event(sim, "e1")
    e2 = Event(sim, "e2")
    e3 = Event(sim, "e3")
    sig = Signal(sim, 0, "sig")
    flag = Signal(sim, False, "flag")
    fifo = Fifo(sim, capacity=2, name="fifo")
    mux = Mutex(sim, "mux")

    # -- watchers ----------------------------------------------------------
    def watch(event, name):
        def body():
            while True:
                got = yield event
                rec(f"{name}:fired")

        return body

    sim.spawn("w1", watch(e1, "w1"), daemon=True)
    sim.spawn("w2", watch(e2, "w2"), daemon=True)
    sim.spawn("w3", watch(e3, "w3"), daemon=True)

    def sig_watch():
        while True:
            yield sig.value_changed
            rec(f"sig={sig.read()}")

    sim.spawn("sw", sig_watch, daemon=True)

    def edge_watch():
        while True:
            got = yield AnyOf([flag.posedge, flag.negedge])
            rec("pos" if got is flag.posedge else "neg")

    sim.spawn("ew", edge_watch, daemon=True)

    # Method process statically sensitive to e2; one next_trigger redirect.
    calls = {"n": 0}

    def method_body():
        calls["n"] += 1
        rec(f"m:{calls['n']}")
        if calls["n"] == 2:
            mp.next_trigger(ns(7))

    from repro.kernel import MethodProcess

    mp = MethodProcess(sim, "mp", method_body, initialize=True)
    mp.add_sensitivity(e2)
    sim.register_process(mp)

    # -- driver: notification override rules -------------------------------
    def driver():
        rec("drv:start")
        e1.notify()  # immediate
        yield ns(1)
        # cancel-then-renotify inside one evaluation phase: e2 queued, e3
        # queued, e2 canceled and requeued -> must fire as (e3, e2).
        e2.notify_delta()
        e3.notify_delta()
        e2.cancel()
        e2.notify_delta()
        yield ns(1)
        # delta canceled by immediate.
        e3.notify_delta()
        e3.cancel()
        e3.notify()
        yield ns(1)
        # timed overridden by earlier timed; later timed ignored.
        e1.notify(ns(10))
        e1.notify(ns(4))
        e1.notify(ns(20))
        yield ns(6)
        # delta overrides timed.
        e2.notify(ns(3))
        e2.notify_delta()
        yield ns(1)
        # signal churn: several writes in one delta, last wins; equal-value
        # write absorbed.
        sig.write(1)
        sig.write(2)
        yield ns(1)
        sig.write(2)  # no change -> no event
        flag.write(True)
        yield ns(1)
        flag.write(False)
        yield ns(1)
        rec("drv:done")

    sim.spawn("driver", driver)

    # -- AnyOf / AllOf ------------------------------------------------------
    def any_waiter():
        got = yield AnyOf([e1, e3], timeout=ns(2))
        rec("any1:" + ("timeout" if got is TIMEOUT else got.name))
        got = yield AnyOf([e2], timeout=ns(50))
        rec("any2:" + ("timeout" if got is TIMEOUT else got.name))

    sim.spawn("any", any_waiter)

    def all_waiter():
        yield AllOf([e1, e3])
        rec("all:done")

    sim.spawn("all", all_waiter)

    # -- fifo backpressure --------------------------------------------------
    def producer():
        for i in range(4):
            yield from fifo.put(i)
            rec(f"put:{i}")

    def consumer():
        yield ns(3)
        for _ in range(4):
            item = yield from fifo.get()
            rec(f"got:{item}")
            yield ns(2)

    sim.spawn("prod", producer)
    sim.spawn("cons", consumer)

    # -- mutex contention ---------------------------------------------------
    def locker(tag, delay_ns, hold_ns):
        def body():
            yield ns(delay_ns)
            yield from mux.lock(tag)
            rec(f"lock:{tag}")
            yield ns(hold_ns)
            mux.unlock()
            rec(f"unlock:{tag}")

        return body

    sim.spawn("la", locker("a", 1, 5))
    sim.spawn("lb", locker("b", 2, 1))
    sim.spawn("lc", locker("c", 2, 1))

    end = sim.run(until=ns(100))
    return {
        "trace": trace,
        "end_fs": end.femtoseconds,
        "stats": sim.stats.as_dict(),
        "delta_count": sim.delta_count,
        "e_counts": [e1.trigger_count, e2.trigger_count, e3.trigger_count],
        "pending_timed": sim.pending_timed_count(),
    }
