"""Regression tests for three scheduler correctness fixes.

1. ``Simulator.request_update`` deduped flagless channels with ``in`` (an
   ``__eq__`` scan), so two distinct channels that compare equal collapsed
   into one update.  The scan is now identity-based.
2. ``Signal._update`` used an equality-only guard, so committing the same
   NaN payload (which compares unequal to itself) re-fired
   ``value_changed`` on every write of the unchanged value.
3. Trace hooks re-fired at the same instant when a hook injected activity
   (a write or notification), double-counting the instant.  Hooks now fire
   exactly once per finished instant; injected activity settles at the
   same instant but is observed at the next firing.
"""

import math

from repro.kernel import Signal, Simulator, ns


class _FlaglessChannel:
    """An update-protocol channel without ``_update_requested``.

    Defines value-based ``__eq__`` so the old ``channel in queue``
    membership scan confuses distinct instances.
    """

    def __init__(self) -> None:
        self.updates = 0

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _FlaglessChannel)

    def __hash__(self) -> int:  # keep hashable despite __eq__
        return 0

    def _update(self) -> None:
        self.updates += 1


class TestRequestUpdateDedup:
    def test_equal_comparing_channels_both_update(self):
        """Two distinct channels that compare equal each get one update."""
        sim = Simulator()
        a, b = _FlaglessChannel(), _FlaglessChannel()
        assert a == b  # the precondition that broke the old scan

        def body():
            sim.request_update(a)
            sim.request_update(b)
            yield ns(1)

        sim.spawn("p", body)
        sim.run()
        assert (a.updates, b.updates) == (1, 1)

    def test_same_flagless_channel_still_deduped(self):
        sim = Simulator()
        a = _FlaglessChannel()

        def body():
            sim.request_update(a)
            sim.request_update(a)
            yield ns(1)

        sim.spawn("p", body)
        sim.run()
        assert a.updates == 1

    def test_flagged_channel_deduped_and_flag_cleared(self):
        """Signals dedup via ``_update_requested``; the phase clears it."""
        sim = Simulator()
        sig = Signal(sim, 0, "s")

        def body():
            sig.write(1)
            sig.write(2)
            assert sig._update_requested
            assert sum(1 for c in sim._update_queue if c is sig) == 1
            yield ns(1)

        sim.spawn("p", body)
        sim.run()
        assert not sig._update_requested
        assert sig.read() == 2


class TestNanUpdateAbsorbed:
    def test_same_nan_commit_fires_value_changed_once(self):
        sim = Simulator()
        nan = float("nan")
        sig = Signal(sim, 0.0, "s")
        fires = []

        def watcher():
            while True:
                yield sig.value_changed
                fires.append(sim.now.femtoseconds)

        def writer():
            for _ in range(3):  # re-commits of the same NaN are absorbed
                sig.write(nan)
                yield ns(1)

        sim.spawn("w", watcher, daemon=True)
        sim.spawn("wr", writer)
        sim.run()
        assert fires == [0]
        assert math.isnan(sig.read())

    def test_change_away_from_nan_still_fires(self):
        sim = Simulator()
        sig = Signal(sim, float("nan"), "s")
        fires = []

        def watcher():
            while True:
                yield sig.value_changed
                fires.append(sig.read())

        def writer():
            sig.write(1.0)
            yield ns(1)

        sim.spawn("w", watcher, daemon=True)
        sim.spawn("wr", writer)
        sim.run()
        assert fires == [1.0]


class TestTraceHookOncePerInstant:
    def test_hook_injected_write_does_not_refire_hook(self):
        sim = Simulator()
        sig = Signal(sim, 0, "s")
        calls = []  # (time_fs, committed value seen by the hook)

        def hook(now):
            calls.append((now.femtoseconds, sig.read()))
            if len(calls) == 1:
                sig.write(41)  # inject activity at the settled instant

        sim.trace_hooks.append(hook)

        def body():
            sig.write(7)
            yield ns(1)  # idle instant: the hook observes the injected 41
            yield ns(1)  # resumes at 2 ns and immediately writes 42
            sig.write(42)
            yield ns(1)

        sim.spawn("p", body)
        sim.run()
        # Golden sequence: one firing per finished instant.  The injected
        # write commits at instant 0 (sig becomes 41) but is observed at
        # the next firing, not by re-running the hooks at t=0.
        assert calls == [
            (0, 7),
            (1_000_000, 41),
            (2_000_000, 42),
            (3_000_000, 42),
        ]

    def test_hook_injected_notification_wakes_process_same_instant(self):
        """Injected activity still runs at the instant it was injected."""
        sim = Simulator()
        sig = Signal(sim, 0, "s")
        woken = []

        def watcher():
            while True:
                yield sig.value_changed
                woken.append(sim.now.femtoseconds)

        calls = []

        def hook(now):
            calls.append(now.femtoseconds)
            if len(calls) == 1:
                sig.write(1)

        sim.trace_hooks.append(hook)
        sim.spawn("w", watcher, daemon=True)

        def body():
            yield ns(1)
            yield ns(1)

        sim.spawn("p", body)
        sim.run()
        # The watcher woke at t=0 (the injected write settled there), and
        # the hooks fired exactly once per instant with activity.
        assert woken == [0]
        assert calls == [0, 1_000_000, 2_000_000]
