"""The wall-clock watchdog on Simulator.run (max_wall_s)."""

import pytest

from repro.kernel import Simulator, ns, us


def spinner(sim):
    """A livelock: timed activity forever, so the run never starves."""

    def spin():
        while True:
            yield ns(10)

    sim.spawn("spinner", spin)


class TestWatchdog:
    def test_disabled_by_default(self):
        sim = Simulator()

        def body():
            yield us(1)

        sim.spawn("p", body)
        sim.run()
        assert sim.watchdog_fired is False
        assert sim.watchdog_report is None

    def test_trips_on_livelock(self):
        sim = Simulator()
        spinner(sim)
        sim.run(max_wall_s=0.05)
        assert sim.watchdog_fired is True
        # The analysis layer is importable here, so a post-mortem attaches.
        report = sim.watchdog_report
        assert report is not None
        assert report.watchdog is True
        assert report.wall_s == pytest.approx(0.05)
        assert "WATCHDOG" in report.render()

    def test_until_bound_still_wins_when_fast(self):
        sim = Simulator()
        spinner(sim)
        end = sim.run(until=us(1), max_wall_s=60.0)
        assert sim.watchdog_fired is False
        assert end == us(1)

    def test_watchdog_state_resets_between_runs(self):
        sim = Simulator()
        spinner(sim)
        sim.run(max_wall_s=0.05)
        assert sim.watchdog_fired is True
        # A later bounded run clears the flag.
        sim.run(until=us(1), max_wall_s=60.0)
        assert sim.watchdog_fired is False

    def test_tripped_run_lists_blocked_processes(self):
        sim = Simulator()
        spinner(sim)
        waited = sim.event("never")

        def stuck():
            yield waited

        sim.spawn("stuck_process", stuck)
        sim.run(max_wall_s=0.05)
        names = [b.name for b in sim.watchdog_report.blocked]
        assert "stuck_process" in names
