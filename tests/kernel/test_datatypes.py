"""BitVector algebra: wrapping, slicing, signedness — with property tests."""

import pytest
from hypothesis import given, strategies as st

from repro.kernel import BitVector, saturate_signed, sint, uint

widths = st.integers(1, 64)


def vec_and_width():
    return widths.flatmap(
        lambda w: st.tuples(st.integers(0, (1 << w) - 1), st.just(w))
    )


class TestConstruction:
    def test_masking(self):
        assert uint(0x1FF, 8).unsigned == 0xFF
        assert uint(-1, 8).unsigned == 0xFF

    def test_invalid_width(self):
        with pytest.raises(ValueError):
            BitVector(0, 0)

    def test_copy_constructor(self):
        a = uint(0xAB, 8)
        b = BitVector(a, 4)
        assert b.unsigned == 0xB

    def test_int_conversion(self):
        assert int(uint(42, 8)) == 42
        assert hex(uint(0x2A, 8)) == "0x2a"  # __index__


class TestSignedness:
    def test_signed_view(self):
        assert uint(0xFF, 8).signed == -1
        assert uint(0x7F, 8).signed == 127
        assert uint(0x80, 8).signed == -128

    def test_from_signed_roundtrip(self):
        assert sint(-5, 8).unsigned == 0xFB
        assert sint(-5, 8).signed == -5

    def test_resize_signed_extends_sign(self):
        assert sint(-2, 4).resize_signed(8).signed == -2
        assert sint(-2, 4).resize(8).unsigned == 0x0E  # zero extension

    @given(widths, st.integers())
    def test_signed_in_range(self, w, v):
        s = BitVector(v, w).signed
        assert -(1 << (w - 1)) <= s < (1 << (w - 1))


class TestBitAccess:
    def test_single_bit(self):
        v = uint(0b1010, 4)
        assert v[0].unsigned == 0
        assert v[1].unsigned == 1
        assert v[-1].unsigned == 1  # MSB

    def test_slice_high_low(self):
        v = uint(0xABCD, 16)
        assert v[15:8].unsigned == 0xAB
        assert v[7:0].unsigned == 0xCD
        assert v[11:4].unsigned == 0xBC

    def test_slice_errors(self):
        v = uint(0xF, 4)
        with pytest.raises(ValueError):
            v[0:3]  # high < low
        with pytest.raises(IndexError):
            v[9]
        with pytest.raises(ValueError):
            v[3:0:2]

    def test_set_bit(self):
        v = uint(0b0000, 4)
        assert v.set_bit(2, 1).unsigned == 0b0100
        assert uint(0b1111, 4).set_bit(0, 0).unsigned == 0b1110

    def test_concat(self):
        hi, lo = uint(0xA, 4), uint(0xB, 4)
        joined = hi.concat(lo)
        assert joined.width == 8
        assert joined.unsigned == 0xAB

    def test_popcount(self):
        assert uint(0b1011, 4).popcount() == 3

    def test_reversed_bits(self):
        assert uint(0b0001, 4).reversed_bits().unsigned == 0b1000
        assert uint(0b1101, 4).reversed_bits().unsigned == 0b1011


class TestArithmetic:
    def test_wrapping_add(self):
        assert (uint(0xFF, 8) + 1).unsigned == 0
        assert (uint(200, 8) + uint(100, 8)).unsigned == (300) % 256

    def test_wrapping_sub(self):
        assert (uint(0, 8) - 1).unsigned == 0xFF
        assert (5 - uint(3, 8)).unsigned == 2

    def test_mul_and_shifts(self):
        assert (uint(0x10, 8) * 0x11).unsigned == 0x10  # wraps
        assert (uint(1, 8) << 3).unsigned == 8
        assert (uint(0x80, 8) >> 4).unsigned == 0x08

    def test_bitwise(self):
        assert (uint(0b1100, 4) & 0b1010).unsigned == 0b1000
        assert (uint(0b1100, 4) | 0b1010).unsigned == 0b1110
        assert (uint(0b1100, 4) ^ 0b1010).unsigned == 0b0110
        assert (~uint(0b1100, 4)).unsigned == 0b0011

    def test_neg(self):
        assert (-uint(1, 8)).unsigned == 0xFF

    def test_comparisons(self):
        assert uint(3, 8) < uint(5, 8)
        assert uint(3, 8) < 5
        assert uint(5, 8) >= 5
        assert uint(5, 8) == 5
        assert uint(5, 8) != uint(5, 4)  # width matters for equality

    def test_hashable(self):
        assert len({uint(1, 8), uint(1, 8), uint(1, 4)}) == 2


class TestArithmeticProperties:
    @given(vec_and_width(), st.integers(-(1 << 64), 1 << 64))
    def test_add_wraps_mod_2w(self, vw, k):
        value, w = vw
        v = BitVector(value, w)
        assert (v + k).unsigned == (value + k) % (1 << w)

    @given(vec_and_width())
    def test_double_negation(self, vw):
        value, w = vw
        v = BitVector(value, w)
        assert (-(-v)) == v
        assert (~~v) == v

    @given(vec_and_width())
    def test_reversed_bits_involution(self, vw):
        value, w = vw
        v = BitVector(value, w)
        assert v.reversed_bits().reversed_bits() == v

    @given(vec_and_width(), vec_and_width())
    def test_concat_width_and_split(self, a_vw, b_vw):
        (av, aw), (bv, bw) = a_vw, b_vw
        a, b = BitVector(av, aw), BitVector(bv, bw)
        joined = a.concat(b)
        assert joined.width == aw + bw
        assert joined[aw + bw - 1 : bw] == a
        assert joined[bw - 1 : 0] == b

    @given(vec_and_width())
    def test_signed_unsigned_consistency(self, vw):
        value, w = vw
        v = BitVector(value, w)
        assert BitVector.from_signed(v.signed, w) == v


class TestSaturation:
    def test_saturate_bounds(self):
        assert saturate_signed(10**9, 16) == 32767
        assert saturate_signed(-(10**9), 16) == -32768
        assert saturate_signed(5, 16) == 5

    @given(st.integers(), st.integers(2, 64))
    def test_saturate_in_range(self, v, w):
        s = saturate_signed(v, w)
        assert -(1 << (w - 1)) <= s <= (1 << (w - 1)) - 1
