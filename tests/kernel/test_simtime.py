"""SimTime: exact arithmetic, ordering, units, formatting."""

import pytest
from hypothesis import given, strategies as st

from repro.kernel import SimTime, ZERO_TIME, cycles_to_time, fs, ms, ns, ps, sec, us


class TestConstruction:
    def test_unit_scaling(self):
        assert ns(1).femtoseconds == 1_000_000
        assert ps(1).femtoseconds == 1_000
        assert us(1).femtoseconds == 10**9
        assert ms(1).femtoseconds == 10**12
        assert sec(1).femtoseconds == 10**15
        assert fs(7).femtoseconds == 7

    def test_float_values_round_to_resolution(self):
        assert ns(1.5).femtoseconds == 1_500_000
        assert fs(0.4).femtoseconds == 0
        assert fs(0.6).femtoseconds == 1

    def test_unknown_unit_rejected(self):
        with pytest.raises(ValueError, match="unknown time unit"):
            SimTime(1, "minutes")

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError, match="negative"):
            ns(-1)
        with pytest.raises(ValueError, match="negative"):
            SimTime.from_fs(-5)

    def test_from_fs(self):
        assert SimTime.from_fs(123).femtoseconds == 123

    def test_zero_constant(self):
        assert ZERO_TIME.is_zero()
        assert not ZERO_TIME
        assert bool(ns(1))


class TestArithmetic:
    def test_add_sub(self):
        assert ns(3) + ns(4) == ns(7)
        assert us(1) - ns(1) == ns(999)

    def test_sub_underflow_rejected(self):
        with pytest.raises(ValueError, match="negative"):
            ns(1) - ns(2)

    def test_scalar_multiply(self):
        assert ns(3) * 4 == ns(12)
        assert 4 * ns(3) == ns(12)
        assert ns(10) * 0.5 == ns(5)

    def test_division_by_time_gives_ratio(self):
        assert ns(10) / ns(5) == 2.0

    def test_division_by_scalar_gives_time(self):
        assert ns(10) / 2 == ns(5)

    def test_floordiv_and_mod(self):
        assert ns(10) // ns(3) == 3
        assert ns(10) % ns(3) == ns(1)

    def test_zero_division_rejected(self):
        with pytest.raises(ZeroDivisionError):
            ns(1) / ZERO_TIME
        with pytest.raises(ZeroDivisionError):
            ns(1) // ZERO_TIME
        with pytest.raises(ZeroDivisionError):
            ns(1) % ZERO_TIME

    def test_cross_type_arithmetic_not_supported(self):
        with pytest.raises(TypeError):
            ns(1) + 5  # type: ignore[operator]


class TestComparison:
    def test_ordering(self):
        assert ns(1) < ns(2) <= ns(2) < us(1)
        assert us(1) > ns(999)

    def test_equality_and_hash(self):
        assert ns(1000) == us(1)
        assert hash(ns(1000)) == hash(us(1))
        assert ns(1) != ns(2)
        assert ns(1) != "1 ns"

    def test_sorting(self):
        times = [us(1), ns(5), ms(1), ZERO_TIME]
        assert sorted(times) == [ZERO_TIME, ns(5), us(1), ms(1)]


class TestConversion:
    def test_to_unit_roundtrips(self):
        t = ns(1234)
        assert t.to_ns() == 1234.0
        assert t.to_us() == 1.234
        assert t.to_ps() == 1_234_000.0
        assert abs(t.to_seconds() - 1.234e-6) < 1e-18

    def test_str_picks_exact_unit(self):
        assert str(ns(5)) == "5 ns"
        assert str(us(1)) == "1 us"
        assert str(fs(3)) == "3 fs"

    def test_repr_contains_fs(self):
        assert "fs" in repr(ns(1))


class TestCyclesToTime:
    def test_cycle_conversion(self):
        assert cycles_to_time(100, 100e6) == us(1)
        assert cycles_to_time(1, 1e9) == ns(1)

    def test_zero_cycles(self):
        assert cycles_to_time(0, 1e6) == ZERO_TIME

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            cycles_to_time(1, 0)
        with pytest.raises(ValueError):
            cycles_to_time(-1, 1e6)


class TestProperties:
    @given(st.integers(0, 10**18), st.integers(0, 10**18))
    def test_addition_commutes(self, a, b):
        ta, tb = SimTime.from_fs(a), SimTime.from_fs(b)
        assert ta + tb == tb + ta
        assert (ta + tb).femtoseconds == a + b

    @given(st.integers(0, 10**18), st.integers(0, 10**18), st.integers(0, 10**18))
    def test_addition_associates(self, a, b, c):
        ta, tb, tc = (SimTime.from_fs(v) for v in (a, b, c))
        assert (ta + tb) + tc == ta + (tb + tc)

    @given(st.integers(0, 10**15), st.integers(1, 10**6))
    def test_divmod_reconstructs(self, a, b):
        ta, tb = SimTime.from_fs(a), SimTime.from_fs(b)
        q, r = ta // tb, ta % tb
        assert tb * q + r == ta
        assert r < tb

    @given(st.integers(0, 10**18))
    def test_ordering_total(self, a):
        t = SimTime.from_fs(a)
        assert t <= t
        assert not (t < t)
