"""Ports and interfaces: binding rules, delegation, analysis helpers."""

import abc

import pytest

from repro.kernel import (
    BindingError,
    Interface,
    Module,
    Port,
    implemented_interfaces,
    ports_of,
)


class GreeterIf(Interface):
    @abc.abstractmethod
    def greet(self) -> str: ...


class LoudGreeterIf(GreeterIf):
    @abc.abstractmethod
    def shout(self) -> str: ...


class Greeter(Module, GreeterIf):
    def greet(self) -> str:
        return f"hello from {self.basename}"


class LoudGreeter(Module, LoudGreeterIf):
    def greet(self) -> str:
        return "hello"

    def shout(self) -> str:
        return "HELLO"


class Client(Module):
    def __init__(self, name, parent=None, sim=None):
        super().__init__(name, parent=parent, sim=sim)
        self.port = Port(self, GreeterIf, name="port")


class TestBinding:
    def test_bind_and_delegate(self, sim):
        client = Client("client", sim=sim)
        greeter = Greeter("greeter", sim=sim)
        client.port.bind(greeter)
        assert client.port.greet() == "hello from greeter"
        assert client.port() is greeter

    def test_type_checked_binding(self, sim):
        client = Client("client", sim=sim)
        not_a_greeter = Module("plain", sim=sim)
        with pytest.raises(BindingError, match="requires GreeterIf"):
            client.port.bind(not_a_greeter)

    def test_double_bind_rejected(self, sim):
        client = Client("client", sim=sim)
        greeter = Greeter("g", sim=sim)
        client.port.bind(greeter)
        with pytest.raises(BindingError, match="already bound"):
            client.port.bind(greeter)

    def test_unbound_access_rejected(self, sim):
        client = Client("client", sim=sim)
        assert not client.port.is_bound
        with pytest.raises(BindingError, match="not bound"):
            client.port.greet()

    def test_unbind_allows_rebinding(self, sim):
        client = Client("client", sim=sim)
        g1 = Greeter("g1", sim=sim)
        g2 = Greeter("g2", sim=sim)
        client.port.bind(g1)
        client.port.unbind()
        client.port.bind(g2)
        assert client.port.greet() == "hello from g2"

    def test_port_to_port_chaining(self, sim):
        outer = Client("outer", sim=sim)
        inner = Client("inner", sim=sim)
        greeter = Greeter("g", sim=sim)
        inner.port.bind(outer.port)  # inner delegates through outer
        outer.port.bind(greeter)
        assert inner.port.greet() == "hello from g"

    def test_chain_to_unbound_rejected(self, sim):
        outer = Client("outer", sim=sim)
        inner = Client("inner", sim=sim)
        inner.port.bind(outer.port)
        with pytest.raises(BindingError, match="unbound port"):
            inner.port.greet()

    def test_subclass_interface_accepted(self, sim):
        client = Client("client", sim=sim)
        loud = LoudGreeter("loud", sim=sim)
        client.port.bind(loud)  # LoudGreeterIf extends GreeterIf
        assert client.port.greet() == "hello"


class TestAnalysisHelpers:
    def test_ports_of_lists_declared_ports(self, sim):
        client = Client("client", sim=sim)
        extra = Port(client, name="extra")
        found = ports_of(client)
        assert [p.name for p in found] == ["port", "extra"]
        assert found[0].iface is GreeterIf
        assert found[1].iface is None

    def test_ports_of_plain_module_is_empty(self, sim):
        assert ports_of(Module("m", sim=sim)) == []

    def test_implemented_interfaces_returns_leaves(self, sim):
        loud = LoudGreeter("loud", sim=sim)
        interfaces = implemented_interfaces(loud)
        assert interfaces == [LoudGreeterIf]  # GreeterIf subsumed

    def test_implemented_interfaces_excludes_module_classes(self, sim):
        greeter = Greeter("g", sim=sim)
        interfaces = implemented_interfaces(greeter)
        assert interfaces == [GreeterIf]

    def test_non_interface_object(self, sim):
        assert implemented_interfaces(Module("m", sim=sim)) == []
