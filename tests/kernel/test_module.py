"""Module hierarchy: naming, children, process declaration."""

import pytest

from repro.kernel import ElaborationError, Module, Simulator, ns


class TestHierarchy:
    def test_full_names(self, sim):
        top = Module("top", sim=sim)
        mid = Module("mid", parent=top)
        leaf = Module("leaf", parent=mid)
        assert top.full_name == "top"
        assert mid.full_name == "top.mid"
        assert leaf.full_name == "top.mid.leaf"

    def test_children_in_order(self, sim):
        top = Module("top", sim=sim)
        names = ["b", "a", "c"]
        for name in names:
            Module(name, parent=top)
        assert [c.basename for c in top.children] == names

    def test_child_lookup(self, sim):
        top = Module("top", sim=sim)
        a = Module("a", parent=top)
        assert top.child("a") is a
        with pytest.raises(ElaborationError, match="no child"):
            top.child("missing")

    def test_duplicate_child_rejected(self, sim):
        top = Module("top", sim=sim)
        Module("a", parent=top)
        with pytest.raises(ElaborationError, match="already has a child"):
            Module("a", parent=top)

    def test_descendants_depth_first(self, sim):
        top = Module("top", sim=sim)
        a = Module("a", parent=top)
        Module("a1", parent=a)
        Module("b", parent=top)
        assert [m.basename for m in top.descendants()] == ["a", "a1", "b"]

    def test_orphan_module_rejected(self):
        with pytest.raises(ElaborationError, match="needs a parent"):
            Module("lost")

    def test_invalid_name_rejected(self, sim):
        with pytest.raises(ElaborationError):
            Module("", sim=sim)
        with pytest.raises(ElaborationError):
            Module("a.b", sim=sim)

    def test_child_inherits_sim(self, sim):
        top = Module("top", sim=sim)
        child = Module("c", parent=top)
        assert child.sim is sim


class TestProcessDeclaration:
    def test_thread_named_after_function(self, sim):
        class M(Module):
            def __init__(self, name, sim):
                super().__init__(name, sim=sim)
                self.process = self.add_thread(self.worker)

            def worker(self):
                yield ns(1)

        m = M("m", sim)
        assert m.process.name == "m.worker"

    def test_module_event_namespaced(self, sim):
        top = Module("top", sim=sim)
        ev = top.event("done")
        assert ev.name == "top.done"

    def test_daemon_flag_propagates(self, sim):
        class M(Module):
            def __init__(self, name, sim):
                super().__init__(name, sim=sim)
                self.p = self.add_thread(self.loop, daemon=True)

            def loop(self):
                while True:
                    yield ns(1)

        m = M("m", sim)
        assert m.p.daemon
