"""VCD tracing and timeline recording."""

import pytest

from repro.kernel import Signal, TimelineRecorder, VcdTracer, ns


class TestVcdTracer:
    def _traced_run(self, sim):
        tracer = VcdTracer("design")
        flag = Signal(sim, False, "flag")
        count = Signal(sim, 0, "count")
        tracer.trace(flag, width=1)
        tracer.trace(count, name="counter", width=8)

        def body():
            yield ns(1)
            flag.write(True)
            count.write(3)
            yield ns(1)
            count.write(7)
            yield ns(1)

        sim.spawn("p", body)
        sim.run()
        return tracer

    def test_header_and_vars(self, sim):
        tracer = self._traced_run(sim)
        text = tracer.dumps()
        assert "$timescale 1ps $end" in text
        assert "$scope module design $end" in text
        assert "$var wire 1" in text
        assert "counter" in text
        assert "$enddefinitions $end" in text

    def test_changes_recorded_with_times(self, sim):
        tracer = self._traced_run(sim)
        text = tracer.dumps()
        assert "#0" in text  # initial values
        assert "#1000" in text  # 1 ns = 1000 ps
        assert "#2000" in text
        # initial (2) + flag change + two count changes
        assert tracer.change_count == 5

    def test_scalar_and_vector_formats(self, sim):
        tracer = self._traced_run(sim)
        lines = tracer.dumps().splitlines()
        assert any(line.startswith("1") and len(line) <= 3 for line in lines)
        assert any(line.startswith("b111 ") for line in lines)

    def test_dump_to_file(self, sim, tmp_path):
        tracer = self._traced_run(sim)
        path = tmp_path / "wave.vcd"
        tracer.dump(str(path))
        assert path.read_text().startswith("$date")

    def test_id_generation_unique(self):
        ids = {VcdTracer._make_id(i) for i in range(500)}
        assert len(ids) == 500

    def test_negative_vector_value_emitted_as_twos_complement(self, sim):
        """Regression: a negative write used to serialize as ``b-101``."""
        tracer = VcdTracer("design")
        temp = Signal(sim, 0, "temp")
        tracer.trace(temp, width=8)

        def body():
            yield ns(1)
            temp.write(-5)
            yield ns(1)

        sim.spawn("p", body)
        sim.run()
        text = tracer.dumps()
        assert "-" not in text.split("$enddefinitions $end")[1]
        assert "b11111011 " in text  # -5 & 0xFF == 0xFB

    def test_negative_scalar_value_is_one(self):
        assert VcdTracer._format_change("!", -1, 1) == "1!\n"

    def test_vector_value_masked_to_width(self):
        # A value wider than the declared width is truncated, not emitted raw.
        assert VcdTracer._format_change("!", 0x1F3, 8).startswith("b11110011 ")


class TestTimelineRecorder:
    def test_track_busy_time(self):
        recorder = TimelineRecorder()
        recorder.record(ns(0), ns(5), "ctx", "a")
        recorder.record(ns(10), ns(12), "ctx", "b")
        assert recorder.track_busy_time("ctx") == ns(7)
        assert recorder.track_busy_time("other") == ns(0)

    def test_overlapping_intervals_not_double_counted(self):
        """Regression: overlapping intervals on one track summed to >100%."""
        recorder = TimelineRecorder()
        recorder.record(ns(0), ns(10), "bus", "read")
        recorder.record(ns(5), ns(15), "bus", "write")  # overlaps [5,10)
        assert recorder.track_busy_time("bus") == ns(15)

    def test_contained_interval_not_double_counted(self):
        recorder = TimelineRecorder()
        recorder.record(ns(0), ns(20), "bus", "outer")
        recorder.record(ns(5), ns(10), "bus", "inner")
        recorder.record(ns(30), ns(35), "bus", "later")
        assert recorder.track_busy_time("bus") == ns(25)

    def test_identical_intervals_counted_once(self):
        recorder = TimelineRecorder()
        recorder.record(ns(2), ns(6), "ctx", "a")
        recorder.record(ns(2), ns(6), "ctx", "b")
        assert recorder.track_busy_time("ctx") == ns(4)

    def test_abutting_intervals_sum(self):
        recorder = TimelineRecorder()
        recorder.record(ns(0), ns(5), "ctx", "a")
        recorder.record(ns(5), ns(9), "ctx", "b")
        assert recorder.track_busy_time("ctx") == ns(9)

    def test_overlap_merge_ignores_other_tracks(self):
        recorder = TimelineRecorder()
        recorder.record(ns(0), ns(10), "a", "x")
        recorder.record(ns(0), ns(10), "b", "y")
        assert recorder.track_busy_time("a") == ns(10)
        assert recorder.track_busy_time("b") == ns(10)

    def test_rows_sorted(self):
        recorder = TimelineRecorder()
        recorder.record(ns(10), ns(12), "t", "b")
        recorder.record(ns(0), ns(5), "t", "a")
        rows = recorder.rows
        assert rows[0][3] == "a" and rows[1][3] == "b"

    def test_invalid_interval(self):
        recorder = TimelineRecorder()
        with pytest.raises(ValueError):
            recorder.record(ns(5), ns(1), "t", "x")

    def test_ascii_rendering(self):
        recorder = TimelineRecorder()
        recorder.record(ns(0), ns(50), "active", "fir")
        recorder.record(ns(50), ns(100), "reconfig", "fft")
        art = recorder.render_ascii(width=20)
        assert "active" in art and "reconfig" in art
        assert "f" in art

    def test_empty_timeline(self):
        assert "empty" in TimelineRecorder().render_ascii()

    def test_csv_export(self):
        recorder = TimelineRecorder()
        recorder.record(ns(0), ns(5), "active", "fir")
        recorder.record(ns(5), ns(9), "reconfig", "fft")
        csv_text = recorder.to_csv()
        lines = csv_text.strip().splitlines()
        assert lines[0] == "start_ns,end_ns,track,label"
        assert lines[1] == "0.0,5.0,active,fir"
        assert lines[2] == "5.0,9.0,reconfig,fft"
