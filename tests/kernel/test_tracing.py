"""VCD tracing and timeline recording."""

import pytest

from repro.kernel import Signal, TimelineRecorder, VcdTracer, ns


class TestVcdTracer:
    def _traced_run(self, sim):
        tracer = VcdTracer("design")
        flag = Signal(sim, False, "flag")
        count = Signal(sim, 0, "count")
        tracer.trace(flag, width=1)
        tracer.trace(count, name="counter", width=8)

        def body():
            yield ns(1)
            flag.write(True)
            count.write(3)
            yield ns(1)
            count.write(7)
            yield ns(1)

        sim.spawn("p", body)
        sim.run()
        return tracer

    def test_header_and_vars(self, sim):
        tracer = self._traced_run(sim)
        text = tracer.dumps()
        assert "$timescale 1ps $end" in text
        assert "$scope module design $end" in text
        assert "$var wire 1" in text
        assert "counter" in text
        assert "$enddefinitions $end" in text

    def test_changes_recorded_with_times(self, sim):
        tracer = self._traced_run(sim)
        text = tracer.dumps()
        assert "#0" in text  # initial values
        assert "#1000" in text  # 1 ns = 1000 ps
        assert "#2000" in text
        # initial (2) + flag change + two count changes
        assert tracer.change_count == 5

    def test_scalar_and_vector_formats(self, sim):
        tracer = self._traced_run(sim)
        lines = tracer.dumps().splitlines()
        assert any(line.startswith("1") and len(line) <= 3 for line in lines)
        assert any(line.startswith("b111 ") for line in lines)

    def test_dump_to_file(self, sim, tmp_path):
        tracer = self._traced_run(sim)
        path = tmp_path / "wave.vcd"
        tracer.dump(str(path))
        assert path.read_text().startswith("$date")

    def test_id_generation_unique(self):
        ids = {VcdTracer._make_id(i) for i in range(500)}
        assert len(ids) == 500


class TestTimelineRecorder:
    def test_track_busy_time(self):
        recorder = TimelineRecorder()
        recorder.record(ns(0), ns(5), "ctx", "a")
        recorder.record(ns(10), ns(12), "ctx", "b")
        assert recorder.track_busy_time("ctx") == ns(7)
        assert recorder.track_busy_time("other") == ns(0)

    def test_rows_sorted(self):
        recorder = TimelineRecorder()
        recorder.record(ns(10), ns(12), "t", "b")
        recorder.record(ns(0), ns(5), "t", "a")
        rows = recorder.rows
        assert rows[0][3] == "a" and rows[1][3] == "b"

    def test_invalid_interval(self):
        recorder = TimelineRecorder()
        with pytest.raises(ValueError):
            recorder.record(ns(5), ns(1), "t", "x")

    def test_ascii_rendering(self):
        recorder = TimelineRecorder()
        recorder.record(ns(0), ns(50), "active", "fir")
        recorder.record(ns(50), ns(100), "reconfig", "fft")
        art = recorder.render_ascii(width=20)
        assert "active" in art and "reconfig" in art
        assert "f" in art

    def test_empty_timeline(self):
        assert "empty" in TimelineRecorder().render_ascii()

    def test_csv_export(self):
        recorder = TimelineRecorder()
        recorder.record(ns(0), ns(5), "active", "fir")
        recorder.record(ns(5), ns(9), "reconfig", "fft")
        csv_text = recorder.to_csv()
        lines = csv_text.strip().splitlines()
        assert lines[0] == "start_ns,end_ns,track,label"
        assert lines[1] == "0.0,5.0,active,fir"
        assert lines[2] == "5.0,9.0,reconfig,fft"
