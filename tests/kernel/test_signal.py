"""Signals and clocks: evaluate/update semantics, edges, periods."""

from repro.kernel import Clock, Module, Signal, Simulator, ns


class TestSignalSemantics:
    def test_write_visible_after_delta(self, sim):
        signal = Signal(sim, 0, "s")
        observed = []

        def writer():
            signal.write(5)
            observed.append(("same-phase", signal.read()))
            yield signal.value_changed
            observed.append(("after-delta", signal.read()))

        sim.spawn("w", writer)
        sim.run()
        assert observed == [("same-phase", 0), ("after-delta", 5)]

    def test_equal_write_absorbed(self, sim):
        signal = Signal(sim, 3, "s")
        changes = []

        def watcher():
            while True:
                yield signal.value_changed
                changes.append(signal.read())

        def writer():
            signal.write(3)  # no change
            yield ns(1)
            signal.write(4)
            yield ns(1)

        sim.spawn("watch", watcher, daemon=True)
        sim.spawn("write", writer)
        sim.run()
        assert changes == [4]

    def test_last_write_in_delta_wins(self, sim):
        signal = Signal(sim, 0, "s")

        def writer():
            signal.write(1)
            signal.write(2)
            yield ns(1)

        sim.spawn("w", writer)
        sim.run()
        assert signal.read() == 2

    def test_posedge_negedge(self, sim):
        signal = Signal(sim, False, "s")
        edges = []

        def watch_pos():
            while True:
                yield signal.posedge
                edges.append(("pos", sim.now.to_ns()))

        def watch_neg():
            while True:
                yield signal.negedge
                edges.append(("neg", sim.now.to_ns()))

        def writer():
            yield ns(1)
            signal.write(True)
            yield ns(1)
            signal.write(False)
            yield ns(1)

        sim.spawn("wp", watch_pos, daemon=True)
        sim.spawn("wn", watch_neg, daemon=True)
        sim.spawn("w", writer)
        sim.run()
        assert edges == [("pos", 1.0), ("neg", 2.0)]

    def test_on_update_callback(self, sim):
        signal = Signal(sim, 0, "s")
        seen = []
        signal.on_update(lambda t, v: seen.append((t.to_ns(), v)))

        def writer():
            yield ns(2)
            signal.write(9)
            yield ns(1)

        sim.spawn("w", writer)
        sim.run()
        assert seen == [(2.0, 9)]

    def test_value_property(self, sim):
        signal = Signal(sim, 7, "s")
        assert signal.value == 7


class TestClock:
    def test_posedges_at_period(self, sim):
        clock = Clock("clk", ns(10), sim=sim)
        edges = []

        def watch():
            while True:
                yield clock.posedge
                edges.append(sim.now.to_ns())

        sim.spawn("w", watch, daemon=True)
        sim.run(until=ns(45))
        assert edges == [10.0, 20.0, 30.0, 40.0]

    def test_start_low_first_posedge_after_low_phase(self, sim):
        clock = Clock("clk", ns(10), sim=sim, start_low=True)
        edges = []

        def watch():
            while True:
                yield clock.posedge
                edges.append(sim.now.to_ns())

        sim.spawn("w", watch, daemon=True)
        sim.run(until=ns(24))
        assert edges == [5.0, 15.0]

    def test_duty_cycle(self, sim):
        clock = Clock("clk", ns(10), sim=sim, duty=0.3)
        transitions = []
        clock.signal.on_update(lambda t, v: transitions.append((t.to_ns(), v)))
        sim.run(until=ns(20))
        assert (3.0, False) in transitions
        assert (10.0, True) in transitions

    def test_cycles_elapsed(self, sim):
        clock = Clock("clk", ns(10), sim=sim)
        sim.run(until=ns(35))
        assert clock.cycles_elapsed == 3

    def test_invalid_parameters(self, sim):
        import pytest

        with pytest.raises(ValueError):
            Clock("c1", ns(0), sim=sim)
        with pytest.raises(ValueError):
            Clock("c2", ns(10), sim=sim, duty=1.5)
