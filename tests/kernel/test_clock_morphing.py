"""Clock morphing (pausable clocks) — the paper's reference [7] mechanism."""

import pytest

from repro.kernel import Clock, Simulator, ns


def edge_recorder(sim, clock):
    edges = []

    def watch():
        while True:
            yield clock.posedge
            edges.append(sim.now.to_ns())

    sim.spawn("edges", watch, daemon=True)
    return edges


class TestPauseResume:
    def test_pause_delays_edges_by_pause_duration(self, sim):
        clock = Clock("clk", ns(10), sim=sim)
        edges = edge_recorder(sim, clock)

        def controller():
            yield ns(12)  # mid low-phase of cycle 2
            clock.pause()
            yield ns(30)
            clock.resume()

        sim.spawn("ctl", controller)
        sim.run(until=ns(75))
        # Edge at 10 happened; the edge that would be at 20 slips to 50.
        assert edges[0] == 10.0
        assert edges[1] == 50.0
        assert edges[2] == 60.0
        assert clock.total_paused_time == ns(30)

    def test_pause_preserves_partial_phase(self, sim):
        clock = Clock("clk", ns(10), sim=sim)
        edges = edge_recorder(sim, clock)

        def controller():
            yield ns(7)  # 2 ns remain of the first low... (high phase here)
            clock.pause()
            yield ns(100)
            clock.resume()

        sim.spawn("ctl", controller)
        sim.run(until=ns(130))
        # The high phase had 3 ns left (started high at 0, 5 ns high time
        # elapsed at 5... with 50% duty: high 0-5, low 5-10).  Paused at 7:
        # 3 ns of low remain; next posedge at 107 + ... = resume(107) + 3.
        assert edges[0] == 110.0

    def test_level_frozen_while_paused(self, sim):
        clock = Clock("clk", ns(10), sim=sim)
        observed = []

        def controller():
            yield ns(2)  # high phase
            clock.pause()
            yield ns(50)
            observed.append(clock.read())
            clock.resume()

        sim.spawn("ctl", controller)
        sim.run(until=ns(60))
        assert observed == [True]

    def test_idempotent_pause_resume(self, sim):
        clock = Clock("clk", ns(10), sim=sim)
        clock.pause()
        clock.pause()
        assert clock.paused
        clock.resume()
        clock.resume()
        assert not clock.paused

    def test_unpaused_clock_unaffected(self, sim):
        clock = Clock("clk", ns(10), sim=sim)
        edges = edge_recorder(sim, clock)
        sim.run(until=ns(45))
        assert edges == [10.0, 20.0, 30.0, 40.0]
        assert clock.total_paused_time.is_zero()


class TestClockMorphingScenario:
    def test_rtl_process_does_not_advance_during_reconfiguration(self, sim):
        """The ref-[7] idea: an RTL counter clocked by a context's virtual
        clock freezes while the context is reconfigured."""
        clock = Clock("vclk", ns(10), sim=sim)
        counted = []

        def rtl_counter():
            count = 0
            while True:
                yield clock.posedge
                count += 1
                counted.append((sim.now.to_ns(), count))

        sim.spawn("rtl", rtl_counter, daemon=True)

        def reconfigure():
            yield ns(25)
            clock.pause()  # context switched out
            yield ns(100)  # reconfiguration in progress
            clock.resume()  # context active again

        sim.spawn("cfg", reconfigure)
        sim.run(until=ns(165))
        counts_during_reconfig = [c for t, c in counted if 25 < t < 125]
        assert counts_during_reconfig == []  # frozen
        # Counting resumed afterwards at the same rate.
        assert [t for t, c in counted if c == 3] == [130.0]
