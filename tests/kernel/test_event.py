"""Event notification semantics: immediate / delta / timed, overrides, cancel."""

import pytest

from repro.kernel import Event, SchedulingError, Simulator, ZERO_TIME, ns


def waiter_log(sim, event, log, label="w"):
    def body():
        while True:
            yield event
            log.append((label, sim.now.to_ns()))

    sim.spawn(label, body, daemon=True)


class TestTimedNotify:
    def test_timed_notification_fires_at_delay(self, sim):
        ev = Event(sim, "e")
        log = []
        waiter_log(sim, ev, log)
        ev.notify(ns(10))
        sim.run()
        assert log == [("w", 10.0)]

    def test_earlier_timed_overrides_later(self, sim):
        ev = Event(sim, "e")
        log = []
        waiter_log(sim, ev, log)
        ev.notify(ns(10))
        ev.notify(ns(3))  # earlier: replaces
        sim.run()
        assert log == [("w", 3.0)]

    def test_later_timed_is_ignored(self, sim):
        ev = Event(sim, "e")
        log = []
        waiter_log(sim, ev, log)
        ev.notify(ns(3))
        ev.notify(ns(10))  # later: ignored
        sim.run()
        assert log == [("w", 3.0)]

    def test_notify_rejects_non_simtime(self, sim):
        ev = Event(sim, "e")
        with pytest.raises(SchedulingError):
            ev.notify(5)  # type: ignore[arg-type]


class TestDeltaNotify:
    def test_delta_notification_fires_same_time_next_delta(self, sim):
        ev = Event(sim, "e")
        log = []
        waiter_log(sim, ev, log)
        ev.notify(ZERO_TIME)
        sim.run()
        assert log == [("w", 0.0)]
        assert sim.stats.delta_cycles >= 1

    def test_delta_overrides_timed(self, sim):
        ev = Event(sim, "e")
        log = []
        waiter_log(sim, ev, log)
        ev.notify(ns(10))
        ev.notify_delta()
        sim.run()
        assert log == [("w", 0.0)]

    def test_timed_after_delta_is_ignored(self, sim):
        ev = Event(sim, "e")
        log = []
        waiter_log(sim, ev, log)
        ev.notify_delta()
        ev.notify(ns(10))
        sim.run()
        assert log == [("w", 0.0)]
        assert ev.trigger_count == 1


class TestImmediateNotify:
    def test_immediate_resumes_in_same_evaluation(self, sim):
        ev = Event(sim, "e")
        order = []

        def waiter():
            yield ev
            order.append("waiter")

        def notifier():
            order.append("notify")
            ev.notify()
            if False:
                yield  # pragma: no cover

        sim.spawn("w", waiter)
        sim.spawn("n", notifier)
        sim.run()
        assert order == ["notify", "waiter"]

    def test_immediate_cancels_pending_timed(self, sim):
        ev = Event(sim, "e")
        log = []
        waiter_log(sim, ev, log)
        ev.notify(ns(10))
        ev.notify()
        sim.run()
        # Only the immediate trigger happened.
        assert ev.trigger_count == 1


class TestCancel:
    def test_cancel_removes_timed(self, sim):
        ev = Event(sim, "e")
        log = []
        waiter_log(sim, ev, log)
        ev.notify(ns(10))
        ev.cancel()
        sim.run()
        assert log == []
        assert ev.trigger_count == 0

    def test_cancel_removes_delta(self, sim):
        ev = Event(sim, "e")
        log = []
        waiter_log(sim, ev, log)
        ev.notify_delta()
        ev.cancel()
        sim.run()
        assert log == []

    def test_cancel_idempotent(self, sim):
        ev = Event(sim, "e")
        ev.cancel()
        ev.cancel()


class TestIntrospection:
    def test_trigger_count_and_time(self, sim):
        ev = Event(sim, "e")
        assert ev.trigger_count == 0
        assert ev.last_trigger_time is None
        ev.notify(ns(4))
        sim.run()
        assert ev.trigger_count == 1
        assert ev.last_trigger_time == ns(4)

    def test_has_waiters(self, sim):
        ev = Event(sim, "e")
        assert not ev.has_waiters()
        waiter_log(sim, ev, [])
        sim.initialize()
        # Run one evaluation so the waiter suspends on the event.
        sim.run()
        assert ev.has_waiters()

    def test_lost_notification_without_waiter(self, sim):
        # Events are edges: a notify with no waiter is lost (SystemC rule).
        ev = Event(sim, "e")
        ev.notify(ns(1))
        sim.run()
        log = []
        waiter_log(sim, ev, log)
        sim.run()
        assert log == []
