"""The compiled-thread (rendezvous) fast path.

Covers the admission proof (which threads compile, and the recorded
reason when they do not), fast-vs-generic equivalence on channel and bus
workloads, mid-wait despecialization losslessness, and error propagation
out of a compiled thread.

The module classes are defined at file scope on purpose: the CFG
analyzer reads thread bodies with ``inspect.getsource``, which only
works for code that lives in a real file.
"""

import pytest

from repro.bus import Bus, InterruptController, Memory
from repro.kernel import (
    AnyOf,
    Clock,
    Event,
    Fifo,
    Module,
    Mutex,
    ProcessError,
    Signal,
    Simulator,
    ns,
)


class FifoPipeTop(Module):
    """Producer/consumer pair over a bounded FIFO — both threads block on
    audited rendezvous primitives plus plain timed waits, so both must
    pass the admission proof."""

    def __init__(self, name, sim, n=8, capacity=2):
        super().__init__(name, sim=sim)
        self.n = n
        self.fifo = Fifo(self.sim, capacity=capacity, name=f"{name}.fifo")
        self.consumed = []
        self.add_thread(self.produce)
        self.add_thread(self.consume)

    def produce(self):
        for i in range(self.n):
            yield from self.fifo.put(i * 3)
            yield ns(2)

    def consume(self):
        for _ in range(self.n):
            item = yield from self.fifo.get()
            self.consumed.append((item, self.sim.now.to_ns()))
            yield ns(5)


class MutexWorkersTop(Module):
    """Two workers contending on a mutex (audited rendezvous)."""

    def __init__(self, name, sim, rounds=6):
        super().__init__(name, sim=sim)
        self.rounds = rounds
        self.mutex = Mutex(self.sim, f"{name}.m")
        self.grants = []
        self.add_thread(self.worker_a)
        self.add_thread(self.worker_b)

    def worker_a(self):
        for _ in range(self.rounds):
            yield from self.mutex.lock("a")
            self.grants.append(("a", self.sim.now.to_ns()))
            yield ns(3)
            self.mutex.unlock()
            yield ns(1)

    def worker_b(self):
        for _ in range(self.rounds):
            yield from self.mutex.lock("b")
            self.grants.append(("b", self.sim.now.to_ns()))
            yield ns(4)
            self.mutex.unlock()
            yield ns(1)


class PureTimedTop(Module):
    """A thread with only timed waits: nothing for the fast path to win."""

    def __init__(self, name, sim):
        super().__init__(name, sim=sim)
        self.ticks = 0
        self.add_thread(self.beat)

    def beat(self):
        for _ in range(4):
            yield ns(10)
            self.ticks += 1


class BusPairTop(Module):
    """Two bus masters contending for one memory over blocking transport."""

    def __init__(self, name, sim, n=16):
        super().__init__(name, sim=sim)
        self.n = n
        self.bus = Bus("bus", parent=self, clock_freq_hz=100e6)
        self.mem = Memory(
            "mem", parent=self, base=0, size_words=64, clock_freq_hz=100e6
        )
        self.bus.register_slave(self.mem)
        self.read_back = []
        self.add_thread(self.writer)
        self.add_thread(self.reader)

    def writer(self):
        for i in range(self.n):
            yield from self.bus.write((i % 64) * 4, i + 1, master="writer")

    def reader(self):
        for i in range(self.n):
            data = yield from self.bus.read((i % 64) * 4, 1, master="reader")
            self.read_back.append(data[0])


class UserChannel:
    """A user-defined rendezvous channel deliberately NOT in the audit
    registry: admission must come from the interprocedural proof."""

    def __init__(self, sim, name="chan"):
        self.sim = sim
        self._full = Event(sim, f"{name}.full")
        self._empty = Event(sim, f"{name}.empty")
        self._item = None
        self._has = False

    def send(self, item):
        while self._has:
            yield self._empty
        self._item = item
        self._has = True
        self._full.notify_delta()

    def recv(self):
        while not self._has:
            yield self._full
        item = self._item
        self._has = False
        self._empty.notify_delta()
        return item


class UserChannelTop(Module):
    """Producer/consumer over :class:`UserChannel` — blocking calls into a
    class the registry has never heard of."""

    def __init__(self, name, sim, n=6):
        super().__init__(name, sim=sim)
        self.n = n
        self.chan = UserChannel(sim, f"{name}.c")
        self.received = []
        self.total = Signal(sim, 0, name=f"{name}.total")
        self.add_thread(self.producer)
        self.add_thread(self.consumer)

    def producer(self):
        for i in range(self.n):
            yield ns(3)
            yield from self.chan.send(i * 11)

    def consumer(self):
        total = 0
        for _ in range(self.n):
            item = yield from self.chan.recv()
            self.received.append((item, self.sim.now.to_ns()))
            total += item
            self.total.write(total)


class IrqTop(Module):
    """Interrupt-driven handshake: the handler blocks in
    ``InterruptController.read/write`` (timed-only register access, proven
    interprocedurally) and on controller-owned events."""

    def __init__(self, name, sim, rounds=4):
        super().__init__(name, sim=sim)
        self.rounds = rounds
        self.irq = InterruptController("irq", parent=self, base=0x0)
        self.irq.register_source("dev", 0)
        self.ack = Event(sim, f"{name}.ack")
        self.count = Signal(sim, 0, name=f"{name}.count")
        self.handled = []
        self.add_thread(self.driver)
        self.add_thread(self.handler)

    def driver(self):
        for _ in range(self.rounds):
            yield ns(10)
            self.irq.raise_irq("dev")
            yield self.ack

    def handler(self):
        for i in range(self.rounds):
            yield self.irq.any_irq
            pending = yield from self.irq.read(0x0, 1)
            yield from self.irq.write(0x8, pending[0])
            self.handled.append((pending[0], self.sim.now.to_ns()))
            self.count.write(i + 1)
            self.ack.notify()


class ClockAnyOfTop(Module):
    """A free-running :class:`Clock`: its toggle thread waits on an
    ``AnyOf(pause, timeout)`` composite each half-period, which the
    compiled runtime must serve directly."""

    def __init__(self, name, sim):
        super().__init__(name, sim=sim)
        self.clk = Clock("clk", ns(10), parent=self)
        self.edges = []
        self.add_method(
            self.on_edge, sensitivity=[self.clk.signal.value_changed],
            initialize=False,
        )

    def on_edge(self):
        self.edges.append((self.clk.signal.read(), self.sim.now.to_ns()))


class FaultyWorkerTop(Module):
    """A compiled thread that dies after its first rendezvous."""

    def __init__(self, name, sim):
        super().__init__(name, sim=sim)
        self.mutex = Mutex(self.sim, f"{name}.m")
        self.add_thread(self.worker)

    def worker(self):
        yield from self.mutex.lock("w")
        yield ns(5)
        raise ValueError("boom in compiled thread")


def _snapshot(top_cls, *, specialize, **kwargs):
    sim = Simulator(specialize=specialize)
    top = top_cls("t", sim, **kwargs)
    sim.run()
    assert sim._specialized is specialize
    if specialize:
        assert sim.stats.compiled_thread_waits > 0
    else:
        assert sim.stats.compiled_thread_waits == 0
    return sim, top


class TestAdmission:
    def test_channel_threads_admitted(self):
        sim = Simulator()
        FifoPipeTop("t", sim)
        sim.run()
        plan = sim.schedule_plan
        assert len(plan.compiled_threads) == 2
        assert plan.thread_exclusions == []
        assert sim._specialized
        assert sim.stats.compiled_thread_waits > 0

    def test_bus_threads_admitted(self):
        sim = Simulator()
        BusPairTop("t", sim)
        sim.run()
        assert len(sim.schedule_plan.compiled_threads) == 2
        assert sim.stats.compiled_thread_waits > 0

    def test_pure_timed_thread_excluded_with_reason(self):
        sim = Simulator()
        top = PureTimedTop("t", sim)
        sim.run()
        plan = sim.schedule_plan
        assert plan.compiled_threads == []
        assert len(plan.thread_exclusions) == 1
        assert "no rendezvous waits" in plan.thread_exclusions[0]
        assert top.ticks == 4  # excluded thread still ran generically

    def test_exclusion_is_per_thread_not_wholesale(self):
        """One inadmissible thread must not reject its admissible peers."""
        sim = Simulator()
        top = FifoPipeTop("t", sim)
        PureTimedTop("u", sim)
        sim.run()
        plan = sim.schedule_plan
        assert len(plan.compiled_threads) == 2
        assert len(plan.thread_exclusions) == 1
        assert len(top.consumed) == top.n

    def test_specialize_false_compiles_nothing(self):
        sim, top = _snapshot(FifoPipeTop, specialize=False)
        assert len(top.consumed) == top.n

    def test_user_channel_threads_proved_automatically(self):
        """A user-defined channel class is not in the audit registry; the
        interprocedural proof must admit its callers anyway."""
        sim = Simulator()
        top = UserChannelTop("t", sim)
        sim.run()
        plan = sim.schedule_plan
        assert len(plan.compiled_threads) == 2
        assert plan.thread_exclusions == []
        assert sim._specialized
        assert sim.stats.compiled_thread_waits > 0
        assert len(top.received) == top.n

    def test_irq_controller_threads_proved_automatically(self):
        sim = Simulator()
        top = IrqTop("t", sim)
        sim.run()
        plan = sim.schedule_plan
        assert len(plan.compiled_threads) == 2
        assert plan.thread_exclusions == []
        assert sim.stats.compiled_thread_waits > 0
        assert len(top.handled) == top.rounds

    def test_clock_anyof_thread_admitted(self):
        """The Clock's toggle thread waits on AnyOf(pause, timeout) each
        half-period; composite waits are served by the compiled runtime
        instead of excluding the thread."""
        sim = Simulator()
        ClockAnyOfTop("t", sim)
        sim.run(until=ns(100))
        plan = sim.schedule_plan
        assert [t.name for t in plan.compiled_threads] == ["t.clk.toggle"]
        assert sim._specialized
        assert sim.stats.compiled_thread_waits > 0


class TestEquivalence:
    @pytest.mark.parametrize(
        "top_cls",
        [FifoPipeTop, MutexWorkersTop, BusPairTop, UserChannelTop, IrqTop],
    )
    def test_fast_and_generic_runs_match(self, top_cls):
        fast_sim, fast_top = _snapshot(top_cls, specialize=True)
        gen_sim, gen_top = _snapshot(top_cls, specialize=False)
        assert fast_sim.now == gen_sim.now
        fs, gs = fast_sim.stats, gen_sim.stats
        assert fs.timed_activations == gs.timed_activations
        assert fs.process_executions <= gs.process_executions
        for attr in ("consumed", "grants", "read_back", "received", "handled"):
            if hasattr(fast_top, attr):
                assert getattr(fast_top, attr) == getattr(gen_top, attr)

    def test_clock_anyof_fast_and_generic_runs_match(self):
        runs = {}
        for specialize in (True, False):
            sim = Simulator(specialize=specialize)
            top = ClockAnyOfTop("t", sim)
            sim.run(until=ns(100))
            assert sim._specialized is specialize
            runs[specialize] = (sim, top)
        fast_sim, fast_top = runs[True]
        gen_sim, gen_top = runs[False]
        assert fast_sim.stats.compiled_thread_waits > 0
        assert fast_top.edges == gen_top.edges
        assert len(fast_top.edges) >= 18  # ~2 edges per 10 ns period

    def test_bus_memory_state_matches(self):
        fast_sim, fast_top = _snapshot(BusPairTop, specialize=True)
        gen_sim, gen_top = _snapshot(BusPairTop, specialize=False)
        assert fast_top.mem.peek(0, 16) == gen_top.mem.peek(0, 16)
        fast_txns = fast_top.bus.monitor.transactions
        gen_txns = gen_top.bus.monitor.transactions
        assert [
            (t.kind, t.master, t.addr, t.granted_at, t.completed_at)
            for t in fast_txns
        ] == [
            (t.kind, t.master, t.addr, t.granted_at, t.completed_at)
            for t in gen_txns
        ]


class TestMidWaitDespecialization:
    """A dynamic spawn mid-run reverts compiled threads that are suspended
    in fast waits; the rewrite must be lossless (identical end state)."""

    def _run_with_spawn_at(self, trigger_ns, *, specialize):
        sim = Simulator(specialize=specialize)
        top = FifoPipeTop("t", sim)
        late = []

        def late_body():
            late.append(sim.now.femtoseconds)
            yield ns(1)

        def spawner():
            yield ns(trigger_ns)
            sim.spawn("late", late_body)

        sim.spawn("spawner", spawner)
        sim.run()
        assert late
        return sim, top

    @pytest.mark.parametrize(
        "trigger_ns",
        [
            # t=3: both compiled threads are suspended in fast *timed* waits
            # (producer back-off, consumer hold).  t=9: the producer is
            # blocked on the full FIFO — a fast *event* wait with the
            # thread sitting in the event's direct-dispatch slot.
            3,
            9,
        ],
    )
    def test_revert_mid_wait_is_lossless(self, trigger_ns):
        fast_sim, fast_top = self._run_with_spawn_at(trigger_ns, specialize=True)
        gen_sim, gen_top = self._run_with_spawn_at(trigger_ns, specialize=False)
        assert not fast_sim._specialized  # reverted wholesale
        assert any(
            "dynamic process" in r for r in fast_sim.specialize_fallback_reasons
        )
        assert fast_sim.stats.compiled_thread_waits > 0  # fast path was live
        assert fast_top.consumed == gen_top.consumed
        assert fast_sim.now == gen_sim.now


class TestErrors:
    def test_compiled_thread_exception_becomes_process_error(self):
        sim = Simulator()
        FaultyWorkerTop("t", sim)
        with pytest.raises(ProcessError, match="boom in compiled thread"):
            sim.run()
        assert sim.stats.compiled_thread_waits > 0
