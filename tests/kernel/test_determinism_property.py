"""Property: the kernel is deterministic over arbitrary process structures.

Hypothesis generates random small "programs" — sets of processes mixing
timed waits, event notification chains and signal writes — and the test
asserts that two independent simulators produce bit-identical logs.  This
is the foundation the whole methodology's reproducibility rests on.
"""

from hypothesis import given, settings, strategies as st

from repro.kernel import Event, Signal, Simulator, fs, ns

# One action of a process body: (kind, operand)
actions = st.one_of(
    st.tuples(st.just("wait"), st.integers(1, 50)),        # wait N ns
    st.tuples(st.just("notify"), st.integers(0, 3)),       # notify event K
    st.tuples(st.just("notify_timed"), st.integers(0, 3)), # notify event K at +5ns
    st.tuples(st.just("wait_event"), st.integers(0, 3)),   # wait on event K
    st.tuples(st.just("write"), st.integers(0, 100)),      # write shared signal
    st.tuples(st.just("read"), st.just(0)),                # log shared signal
)

programs = st.lists(
    st.lists(actions, min_size=1, max_size=6), min_size=1, max_size=4
)


def execute(program):
    """Run one program; returns the (time, process, entry) log."""
    sim = Simulator()
    events = [Event(sim, f"e{i}") for i in range(4)]
    signal = Signal(sim, 0, "shared")
    log = []

    def make_body(pid, script):
        def body():
            for kind, operand in script:
                if kind == "wait":
                    yield ns(operand)
                elif kind == "notify":
                    events[operand].notify()
                elif kind == "notify_timed":
                    events[operand].notify(ns(5))
                elif kind == "wait_event":
                    # Bound the wait so starved waits cannot hang the test.
                    from repro.kernel import AnyOf

                    yield AnyOf([events[operand]], timeout=ns(200))
                elif kind == "write":
                    signal.write(operand)
                elif kind == "read":
                    log.append((sim.now.femtoseconds, pid, "read", signal.read()))
                log.append((sim.now.femtoseconds, pid, kind))
            log.append((sim.now.femtoseconds, pid, "done"))

        return body

    for pid, script in enumerate(program):
        sim.spawn(f"p{pid}", make_body(pid, script))
    end = sim.run()
    return end.femtoseconds, tuple(log), sim.stats.as_dict()


class TestDeterminism:
    @given(programs)
    @settings(max_examples=60, deadline=None)
    def test_identical_runs_identical_logs(self, program):
        run1 = execute(program)
        run2 = execute(program)
        assert run1 == run2

    @given(programs)
    @settings(max_examples=30, deadline=None)
    def test_all_processes_terminate(self, program):
        # Bounded event waits guarantee termination; the log must contain a
        # 'done' entry for every process.
        _, log, _ = execute(program)
        done = {entry[1] for entry in log if entry[2] == "done"}
        assert done == set(range(len(program)))
