"""SC_METHOD dynamic sensitivity: ``next_trigger`` semantics."""

import pytest

from repro.kernel import AnyOf, Event, Module, ProcessError, ns


class Ticker(Module):
    """A method process whose body re-arms itself via next_trigger."""

    def __init__(self, name, sim, program):
        super().__init__(name, sim=sim)
        self.static_ev = self.event("static")
        self.dynamic_ev = self.event("dynamic")
        self.program = list(program)
        self.activations = []
        self.process = self.add_method(
            self.body, sensitivity=[self.static_ev], initialize=False
        )

    def body(self):
        self.activations.append(self.sim.now.to_ns())
        if self.program:
            self.process.next_trigger(self.program.pop(0))


class TestNextTrigger:
    def test_timed_next_trigger_overrides_static(self, sim):
        ticker = Ticker("t", sim, program=[ns(7)])
        ticker.static_ev.notify(ns(1))  # first activation, installs +7ns
        ticker.static_ev.notify(ns(3))  # must be ignored (dynamic pending)
        sim.run()
        assert ticker.activations == [1.0, 8.0]

    def test_event_next_trigger(self, sim):
        ticker = Ticker("t", sim, program=[])

        def body_program():
            ticker.process.next_trigger(ticker.dynamic_ev)

        ticker.program = []
        # First activation arms the dynamic event manually via program:
        ticker.program.append(ticker.dynamic_ev)
        ticker.static_ev.notify(ns(1))
        ticker.dynamic_ev.notify(ns(5))
        sim.run()
        assert ticker.activations == [1.0, 5.0]

    def test_one_shot_then_static_restored(self, sim):
        ticker = Ticker("t", sim, program=[ns(4)])
        ticker.static_ev.notify(ns(1))   # activation 1 -> dynamic +4ns
        sim.run()
        ticker.static_ev.notify(ns(1))   # dynamic consumed: static works again
        sim.run()
        assert ticker.activations == [1.0, 5.0, 6.0]

    def test_next_trigger_none_restores_static(self, sim):
        # `next_trigger(None)` explicitly selects the static list again.
        ticker = Ticker("t", sim, program=[None])
        ticker.static_ev.notify(ns(1))
        sim.run()
        ticker.static_ev.notify(ns(1))
        sim.run()
        assert ticker.activations == [1.0, 2.0]

    def test_anyof_next_trigger(self, sim):
        ticker = Ticker("t", sim, program=[])
        ticker.program = [AnyOf([ticker.dynamic_ev], timeout=ns(50))]
        ticker.static_ev.notify(ns(1))
        sim.run()
        # Timeout fired (the event never did).
        assert ticker.activations == [1.0, 51.0]

    def test_invalid_spec_raises(self, sim):
        ticker = Ticker("t", sim, program=["garbage"])
        ticker.static_ev.notify(ns(1))
        with pytest.raises(ProcessError, match="invalid next_trigger"):
            sim.run()

    def test_initialize_run_can_install_dynamic(self, sim):
        class SelfTimer(Module):
            def __init__(self, name, sim):
                super().__init__(name, sim=sim)
                self.hits = []
                self.process = self.add_method(self.body, initialize=True)

            def body(self):
                self.hits.append(self.sim.now.to_ns())
                if len(self.hits) < 3:
                    self.process.next_trigger(ns(10))

        timer = SelfTimer("st", sim)
        sim.run()
        # A method process with no static sensitivity becomes a timer.
        assert timer.hits == [0.0, 10.0, 20.0]
