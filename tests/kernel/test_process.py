"""Thread/method processes: wait specs, AnyOf/AllOf, errors, kill."""

import pytest

from repro.kernel import (
    TIMEOUT,
    AllOf,
    AnyOf,
    Event,
    Module,
    ProcessError,
    ProcessState,
    SchedulingError,
    ns,
)
from tests.conftest import drive


class TestThreadWaits:
    def test_timeout_wait(self, sim):
        times = []

        def body():
            yield ns(5)
            times.append(sim.now.to_ns())
            yield ns(7)
            times.append(sim.now.to_ns())

        sim.spawn("p", body)
        sim.run()
        assert times == [5.0, 12.0]

    def test_event_wait_returns_event(self, sim):
        ev = Event(sim, "e")

        def body():
            got = yield ev
            return got

        box = drive(sim, body)
        ev.notify(ns(1))
        sim.run()
        assert box.done
        assert box.value is ev

    def test_anyof_returns_first_event(self, sim):
        e1, e2 = Event(sim, "e1"), Event(sim, "e2")

        def body():
            got = yield AnyOf([e1, e2])
            return got

        box = drive(sim, body)
        e2.notify(ns(2))
        e1.notify(ns(5))
        sim.run()
        assert box.value is e2

    def test_anyof_timeout(self, sim):
        e1 = Event(sim, "e1")

        def body():
            got = yield AnyOf([e1], timeout=ns(3))
            return got

        box = drive(sim, body)
        sim.run()
        assert box.value is TIMEOUT
        assert sim.now == ns(3)

    def test_anyof_requires_events_or_timeout(self):
        with pytest.raises(SchedulingError):
            AnyOf([])

    def test_allof_waits_for_all(self, sim):
        e1, e2 = Event(sim, "e1"), Event(sim, "e2")
        done_time = []

        def body():
            yield AllOf([e1, e2])
            done_time.append(sim.now.to_ns())

        sim.spawn("p", body)
        e1.notify(ns(2))
        e2.notify(ns(9))
        sim.run()
        assert done_time == [9.0]

    def test_allof_requires_events(self):
        with pytest.raises(SchedulingError):
            AllOf([])

    def test_invalid_wait_spec_raises_process_error(self, sim):
        def body():
            yield "nonsense"

        sim.spawn("p", body)
        with pytest.raises(ProcessError, match="invalid wait specification"):
            sim.run()

    def test_plain_callable_runs_once(self, sim):
        ran = []

        def body():
            ran.append(sim.now.to_ns())

        sim.spawn("p", body)
        sim.run()
        assert ran == [0.0]

    def test_yield_from_composition(self, sim):
        def inner():
            yield ns(3)
            return 42

        def outer():
            value = yield from inner()
            yield ns(1)
            return value + 1

        box = drive(sim, outer)
        sim.run()
        assert box.value == 43
        assert sim.now == ns(4)


class TestProcessLifecycle:
    def test_exception_wrapped_as_process_error(self, sim):
        def body():
            yield ns(1)
            raise ValueError("boom")

        sim.spawn("broken", body)
        with pytest.raises(ProcessError, match="broken.*ValueError: boom"):
            sim.run()

    def test_kill_prevents_execution(self, sim):
        ran = []

        def body():
            yield ns(1)
            ran.append(True)

        process = sim.spawn("p", body)
        process.kill()
        sim.run()
        assert ran == []
        assert process.terminated

    def test_terminated_event_fires(self, sim):
        ev_times = []

        def short():
            yield ns(2)

        process = sim.spawn("short", short)

        def watcher():
            yield process.terminated_event
            ev_times.append(sim.now.to_ns())

        sim.spawn("watch", watcher)
        sim.run()
        assert ev_times == [2.0]

    def test_static_sensitivity_yield_none(self, sim):
        ev = Event(sim, "tick")
        counts = []

        def body():
            while True:
                yield None
                counts.append(sim.now.to_ns())

        process = sim.spawn("p", body, daemon=True)
        process.add_sensitivity(ev)
        ev.notify(ns(1))
        sim.run()
        ev.notify(ns(1))
        sim.run()
        assert counts == [1.0, 2.0]

    def test_yield_none_without_sensitivity_is_error(self, sim):
        def body():
            yield None

        sim.spawn("p", body)
        with pytest.raises(ProcessError, match="static sensitivity"):
            sim.run()


class TestMethodProcesses:
    def test_method_runs_on_sensitivity(self, sim):
        class M(Module):
            def __init__(self, name, sim):
                super().__init__(name, sim=sim)
                self.ev = self.event("tick")
                self.hits = []
                self.add_method(self.on_tick, sensitivity=[self.ev], initialize=False)

            def on_tick(self):
                self.hits.append(self.sim.now.to_ns())

        m = M("m", sim)
        m.ev.notify(ns(3))
        sim.run()
        m.ev.notify(ns(2))
        sim.run()
        assert m.hits == [3.0, 5.0]

    def test_method_initialize_runs_at_start(self, sim):
        class M(Module):
            def __init__(self, name, sim):
                super().__init__(name, sim=sim)
                self.hits = 0
                self.add_method(self.on_tick, initialize=True)

            def on_tick(self):
                self.hits += 1

        m = M("m", sim)
        sim.run()
        assert m.hits == 1

    def test_method_exception_wrapped(self, sim):
        class M(Module):
            def __init__(self, name, sim):
                super().__init__(name, sim=sim)
                self.add_method(self.on_tick, initialize=True)

            def on_tick(self):
                raise RuntimeError("method boom")

        M("m", sim)
        with pytest.raises(ProcessError, match="method boom"):
            sim.run()
