"""docs/API.md must match the code (regenerate-and-compare)."""

import os
import sys

API_MD = os.path.join(os.path.dirname(__file__), "..", "..", "docs", "API.md")
TOOLS = os.path.join(os.path.dirname(__file__), "..", "..", "tools")


def _generate():
    sys.path.insert(0, TOOLS)
    try:
        import gen_api_docs

        return gen_api_docs.generate()
    finally:
        sys.path.remove(TOOLS)


class TestApiReference:
    def test_checked_in_reference_is_current(self):
        with open(API_MD, encoding="utf-8") as fh:
            checked_in = fh.read()
        assert checked_in == _generate(), (
            "docs/API.md is stale; regenerate with `python tools/gen_api_docs.py`"
        )

    def test_every_public_name_documented(self):
        text = _generate()
        assert "(undocumented)" not in text, (
            "public names without docstrings:\n"
            + "\n".join(l for l in text.splitlines() if "(undocumented)" in l)
        )

    def test_all_packages_present(self):
        text = _generate()
        for package in ("repro.kernel", "repro.core", "repro.dse", "repro.analysis"):
            assert f"## `{package}`" in text
