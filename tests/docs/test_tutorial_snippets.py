"""Execute every code block of docs/TUTORIAL.md verbatim.

The tutorial promises its snippets run as printed; this test extracts the
fenced ``python`` blocks and executes them in one shared namespace, in
order, so any drift between documentation and library breaks the build.
"""

import os
import re

import pytest

TUTORIAL = os.path.join(
    os.path.dirname(__file__), "..", "..", "docs", "TUTORIAL.md"
)

_FENCE = re.compile(r"```python\n(.*?)```", re.DOTALL)


def _blocks():
    with open(TUTORIAL, encoding="utf-8") as fh:
        text = fh.read()
    return _FENCE.findall(text)


class TestTutorial:
    def test_tutorial_has_code_blocks(self):
        assert len(_blocks()) >= 4

    def test_all_blocks_execute_in_order(self):
        namespace: dict = {}
        for index, block in enumerate(_blocks()):
            try:
                exec(compile(block, f"<tutorial block {index}>", "exec"), namespace)
            except Exception as exc:  # pragma: no cover - failure reporting
                pytest.fail(f"tutorial block {index} failed: {exc}")
        # Spot-check the artifacts the tutorial claims to have built.
        assert "crc32_words" in namespace
        assert "CrcAccelerator" in namespace
        crc = namespace["crc32_words"]([0])
        assert isinstance(crc[0], int)

    def test_crc_reference_matches_zlib(self):
        """The tutorial's bitwise CRC-32 agrees with zlib's."""
        import struct
        import zlib

        namespace: dict = {}
        exec(compile(_blocks()[0], "<crc>", "exec"), namespace)
        words = [0x12345678, 0xDEADBEEF, 0x00000000]
        ours = namespace["crc32_words"](words)
        data = b""
        for i, word in enumerate(words):
            data += struct.pack("<I", word)
            assert ours[i] == zlib.crc32(data) & 0xFFFFFFFF
