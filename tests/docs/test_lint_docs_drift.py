"""docs/LINT.md must stay in lockstep with the registered lint rules.

Every code in :data:`repro.analysis.lint.RULES` needs a ``## REPnnn``
reference section, and every documented code must still exist — a rule
added, renamed or retired without touching the docs fails here.
"""

import re
from pathlib import Path

import pytest

from repro.analysis.lint import RULES, all_rule_codes

DOC = Path(__file__).resolve().parents[2] / "docs" / "LINT.md"

#: ``## REPnnn — title (layer, severity)``
HEADING = re.compile(r"^## (REP\d{3}) — .+ \(([^,)]+), (\w+)\)$", re.MULTILINE)


@pytest.fixture(scope="module")
def documented():
    matches = HEADING.findall(DOC.read_text())
    assert matches, f"no rule headings found in {DOC}"
    return matches


def test_every_registered_rule_is_documented(documented):
    documented_codes = {code for code, _, _ in documented}
    missing = sorted(set(all_rule_codes()) - documented_codes)
    assert not missing, f"rules missing from docs/LINT.md: {missing}"


def test_every_documented_rule_is_registered(documented):
    stale = sorted({code for code, _, _ in documented} - set(all_rule_codes()))
    assert not stale, f"docs/LINT.md documents retired rules: {stale}"


def test_no_duplicate_headings(documented):
    codes = [code for code, _, _ in documented]
    assert len(codes) == len(set(codes))


def test_documented_severity_matches_the_registry(documented):
    for code, _layer, severity in documented:
        assert severity == RULES[code].severity, (
            f"{code}: docs say {severity!r}, registry says "
            f"{RULES[code].severity!r}"
        )


def test_documented_layer_names_the_registered_layer(documented):
    # The doc may give a compound layer (e.g. "drcf/netlist" for a rule
    # spanning both passes) but must include the registered one.
    for code, layer, _severity in documented:
        assert RULES[code].layer in layer.split("/"), (
            f"{code}: docs say layer {layer!r}, registry says "
            f"{RULES[code].layer!r}"
        )


def test_headings_are_sorted_by_code(documented):
    codes = [code for code, _, _ in documented]
    assert codes == sorted(codes)
