"""Figure 2 regeneration: efficiency bands, ordering, span."""

import pytest

from repro.tech import (
    ASIC,
    FIGURE2_CLASSES,
    MORPHOSYS,
    VARICORE,
    VIRTEX2PRO,
    architecture_class,
    class_for_technology,
    efficiency_span_factor,
    efficiency_table,
    estimate_efficiency,
    instruction_processor_efficiency,
)


class TestBands:
    def test_five_classes_in_flexibility_order(self):
        flex = [c.flexibility for c in FIGURE2_CLASSES]
        assert flex == sorted(flex, reverse=True)
        assert len(FIGURE2_CLASSES) == 5

    def test_efficiency_increases_as_flexibility_decreases(self):
        # The core trade-off of Figure 2.
        lows = [c.mops_per_mw[0] for c in FIGURE2_CLASSES]
        assert lows == sorted(lows)

    def test_bands_are_contiguous_decades(self):
        for a, b in zip(FIGURE2_CLASSES, FIGURE2_CLASSES[1:]):
            assert a.mops_per_mw[1] == pytest.approx(b.mops_per_mw[0])

    def test_span_is_factor_100_to_1000_plus(self):
        # The figure annotates "Factor of 100-1000" between processors and
        # dedicated hardware.
        assert efficiency_span_factor() >= 100

    def test_lookup(self):
        assert architecture_class("gpp").flexibility == 5
        with pytest.raises(KeyError):
            architecture_class("quantum")

    def test_computation_styles(self):
        assert architecture_class("gpp").computation_style == "temporal"
        assert architecture_class("asic").computation_style == "spatial"


class TestClassAssignment:
    def test_reconfigurable_presets_classified(self):
        for tech in (VIRTEX2PRO, VARICORE, MORPHOSYS):
            assert class_for_technology(tech).key == "reconfigurable"
        assert class_for_technology(ASIC).key == "asic"


class TestModeledEfficiency:
    def test_reconfigurable_presets_land_in_or_near_band(self):
        band = architecture_class("reconfigurable").mops_per_mw
        for tech in (VIRTEX2PRO, VARICORE, MORPHOSYS):
            value = estimate_efficiency(tech)
            # Within the printed decade, with half-decade tolerance.
            assert band[0] / 3 <= value <= band[1] * 3, (tech.name, value)

    def test_asic_beats_reconfigurable(self):
        asic = estimate_efficiency(ASIC)
        for tech in (VIRTEX2PRO, VARICORE, MORPHOSYS):
            assert asic > estimate_efficiency(tech)

    def test_reconfigurable_beats_instruction_processors(self):
        gpp = instruction_processor_efficiency("gpp")
        dsp = instruction_processor_efficiency("dsp_asip")
        for tech in (VIRTEX2PRO, VARICORE, MORPHOSYS):
            value = estimate_efficiency(tech)
            assert value > dsp > gpp

    def test_invalid_gate_count(self):
        with pytest.raises(ValueError):
            estimate_efficiency(ASIC, gates=0)


class TestTable:
    def test_table_regenerates_figure2(self):
        rows = efficiency_table([VIRTEX2PRO, VARICORE, MORPHOSYS, ASIC])
        assert [r["class"] for r in rows] == [
            "gpp", "embedded", "dsp_asip", "reconfigurable", "asic",
        ]
        reconf_row = rows[3]
        assert set(reconf_row["modeled"]) == {"virtex2pro", "varicore", "morphosys"}
        asic_row = rows[4]
        assert set(asic_row["modeled"]) == {"asic"}

    def test_table_without_techs(self):
        rows = efficiency_table()
        assert all(row["modeled"] == {} for row in rows)
