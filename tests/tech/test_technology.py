"""Technology parameter model: derived quantities and validation."""

import pytest

from repro.kernel import ZERO_TIME, us
from repro.tech import ReconfigTechnology


def make_tech(**overrides):
    base = dict(
        name="test",
        granularity="fine",
        fabric_clock_hz=100e6,
        config_port_width_bits=8,
        config_port_freq_hz=50e6,
        bits_per_gate=10.0,
        context_slots=1,
        speed_factor=0.5,
    )
    base.update(overrides)
    return ReconfigTechnology(**base)


class TestValidation:
    def test_unknown_granularity(self):
        with pytest.raises(ValueError, match="granularity"):
            make_tech(granularity="quantum")

    def test_zero_config_bandwidth_rejected(self):
        with pytest.raises(ValueError, match="bandwidth"):
            make_tech(config_port_width_bits=0)

    def test_zero_slots_rejected(self):
        with pytest.raises(ValueError, match="slot"):
            make_tech(context_slots=0)

    def test_zero_speed_factor_rejected(self):
        with pytest.raises(ValueError, match="speed_factor"):
            make_tech(speed_factor=0)

    def test_asic_skips_reconfig_validation(self):
        asic = ReconfigTechnology(
            name="a",
            granularity="none",
            fabric_clock_hz=200e6,
            config_port_width_bits=0,
            config_port_freq_hz=0,
            bits_per_gate=0,
        )
        assert not asic.is_reconfigurable


class TestDerivedQuantities:
    def test_context_size_scales_with_gates(self):
        tech = make_tech(bits_per_gate=10.0)
        assert tech.context_size_bits(1000) == 10_000
        assert tech.context_size_bytes(1000) == 1250

    def test_context_size_rounds_up(self):
        tech = make_tech(bits_per_gate=0.3)
        assert tech.context_size_bits(10) == 3
        assert tech.context_size_bytes(10) == 1

    def test_raw_load_time_is_port_bound(self):
        tech = make_tech(config_port_width_bits=8, config_port_freq_hz=50e6)
        # 4000 bits / 8 bits per beat = 500 beats @ 20 ns = 10 us.
        assert tech.raw_load_time(4000) == us(10)

    def test_reconfig_time_adds_overhead(self):
        tech = make_tech(reconfig_overhead=us(3))
        assert tech.reconfig_time(4000) == tech.raw_load_time(4000) + us(3)

    def test_asic_has_zero_reconfig(self):
        asic = ReconfigTechnology(
            name="a", granularity="none", fabric_clock_hz=1e6,
            config_port_width_bits=1, config_port_freq_hz=1, bits_per_gate=1,
        )
        assert asic.context_size_bits(10_000) == 0
        assert asic.reconfig_time(10_000) == ZERO_TIME
        assert asic.activation_time() == ZERO_TIME

    def test_block_cycles_derated_by_speed_factor(self):
        tech = make_tech(speed_factor=0.5)
        assert tech.block_cycles(100) == 200
        assert make_tech(speed_factor=1.0).block_cycles(100) == 100

    def test_block_compute_time(self):
        tech = make_tech(speed_factor=1.0, fabric_clock_hz=100e6)
        assert tech.block_compute_time(100) == us(1)

    def test_config_bandwidth(self):
        tech = make_tech(config_port_width_bits=8, config_port_freq_hz=50e6)
        assert tech.config_bandwidth_bits_per_s == 400e6


class TestAreaPower:
    def test_area_scales_with_gates(self):
        tech = make_tech(area_per_gate_um2=5.0)
        assert tech.fabric_area_um2(1000) == 5000.0

    def test_active_power_uses_clock(self):
        tech = make_tech(active_power_w_per_gate_mhz=1e-7, fabric_clock_hz=100e6)
        assert tech.active_power_w(1000) == pytest.approx(1000 * 1e-7 * 100)

    def test_energy_integrates_power(self):
        tech = make_tech()
        power = tech.active_power_w(1000)
        assert tech.active_energy_j(1000, us(10)) == pytest.approx(power * 10e-6)

    def test_varicore_power_figure(self):
        # Chapter 3 prints 0.075 uW/gate/MHz and ~240 mW at 100 MHz, 80%
        # utilization -> 240 mW corresponds to ~32k active gates.
        from repro.tech import VARICORE

        gates = int(0.24 / (VARICORE.active_power_w_per_gate_mhz * 100))
        assert 25_000 <= gates <= 40_000


class TestScaled:
    def test_scaled_overrides_fields(self):
        tech = make_tech()
        faster = tech.scaled(name="fast", config_port_freq_hz=100e6)
        assert faster.name == "fast"
        assert faster.config_port_freq_hz == 100e6
        assert faster.bits_per_gate == tech.bits_per_gate
        # Original untouched (frozen dataclass).
        assert tech.config_port_freq_hz == 50e6

    def test_describe_mentions_key_facts(self):
        text = make_tech(background_load=True, context_slots=2).describe()
        assert "fine" in text and "2 context slot" in text and "background" in text
