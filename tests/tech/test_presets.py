"""Technology presets: anchored to the paper's Chapter 3 device data."""

import pytest

from repro.kernel import ms, us
from repro.tech import (
    ASIC,
    MORPHOSYS,
    PRESETS,
    SLOW_FPGA,
    VARICORE,
    VIRTEX2PRO,
    preset,
    reconfigurable_presets,
)


class TestRegistry:
    def test_all_presets_by_name(self):
        for name, tech in PRESETS.items():
            assert preset(name) is tech

    def test_unknown_preset(self):
        with pytest.raises(KeyError, match="unknown technology preset"):
            preset("stratix")

    def test_reconfigurable_presets_exclude_asic(self):
        names = {t.name for t in reconfigurable_presets()}
        assert "asic" not in names
        assert {"virtex2pro", "varicore", "morphosys"} <= names


class TestVirtex2Pro:
    def test_class_properties(self):
        assert VIRTEX2PRO.granularity == "fine"  # 1-bit granularity per paper
        assert VIRTEX2PRO.context_slots == 1
        assert not VIRTEX2PRO.background_load
        assert VIRTEX2PRO.partial_reconfig  # Virtex family supports it

    def test_selectmap_bandwidth(self):
        # Byte-wide port at 66 MHz -> 66 MB/s.
        assert VIRTEX2PRO.config_bandwidth_bits_per_s == pytest.approx(8 * 66e6)

    def test_full_context_reconfig_is_milliseconds(self):
        # A 100k-gate block: ~5.3 Mbit of bitstream at 66 MB/s -> ~10 ms.
        t = VIRTEX2PRO.reconfig_time(VIRTEX2PRO.context_size_bits(100_000))
        assert ms(1) < t < ms(100)


class TestVaricore:
    def test_printed_power_coefficient(self):
        # The paper prints 0.075 uW/gate/MHz.
        assert VARICORE.active_power_w_per_gate_mhz == pytest.approx(7.5e-8)

    def test_clock_up_to_250mhz(self):
        assert VARICORE.fabric_clock_hz == pytest.approx(250e6)

    def test_medium_grain_partitionable(self):
        assert VARICORE.granularity == "medium"
        assert VARICORE.partial_reconfig


class TestMorphosys:
    def test_multi_context_with_background_load(self):
        # "While the RC array is executing one of the 16 contexts, the
        # other 16 contexts can be reloaded" -> 2 banks, background load.
        assert MORPHOSYS.context_slots == 2
        assert MORPHOSYS.background_load

    def test_coarse_grain_small_contexts(self):
        assert MORPHOSYS.granularity == "coarse"
        assert MORPHOSYS.bits_per_gate < VIRTEX2PRO.bits_per_gate / 10

    def test_switch_orders_of_magnitude_faster_than_fine_grain(self):
        gates = 20_000
        t_morpho = MORPHOSYS.reconfig_time(MORPHOSYS.context_size_bits(gates))
        t_virtex = VIRTEX2PRO.reconfig_time(VIRTEX2PRO.context_size_bits(gates))
        assert t_virtex / t_morpho > 100


class TestOrderings:
    def test_asic_fastest_and_densest(self):
        for tech in reconfigurable_presets():
            assert tech.speed_factor <= ASIC.speed_factor
            assert tech.area_per_gate_um2 > ASIC.area_per_gate_um2

    def test_fine_grain_costs_most_area_per_gate(self):
        assert VIRTEX2PRO.area_per_gate_um2 > VARICORE.area_per_gate_um2
        assert VARICORE.area_per_gate_um2 > MORPHOSYS.area_per_gate_um2

    def test_slow_fpga_slower_than_virtex(self):
        bits = 1_000_000
        assert SLOW_FPGA.reconfig_time(bits) > VIRTEX2PRO.reconfig_time(bits)
