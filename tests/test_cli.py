"""The command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_tech_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["compare", "--tech", "stratix"])

    def test_unknown_accel_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["compare", "--accels", "fir,gpu"])

    def test_defaults(self):
        args = build_parser().parse_args(["compare"])
        assert args.tech == "morphosys"
        assert args.accels == ["fir", "fft", "viterbi", "xtea"]
        assert args.frames == 2


class TestCommands:
    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "technology presets" in out
        assert "virtex2pro" in out
        assert "Figure 2 bands" in out

    def test_compare(self, capsys):
        code = main(
            ["compare", "--accels", "fir,xtea", "--tech", "morphosys", "--frames", "1"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "fig-1a (dedicated)" in out
        assert "fig-1b (morphosys)" in out
        assert "verified against the executable specification" in out

    def test_sweep_with_csv(self, capsys, tmp_path):
        csv_path = tmp_path / "sweep.csv"
        code = main(
            [
                "sweep",
                "--techs", "asic,morphosys",
                "--workloads", "interleaved",
                "--accels", "fir,xtea",
                "--frames", "1",
                "--csv", str(csv_path),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "DSE sweep" in out
        content = csv_path.read_text()
        assert content.startswith("tech,workload")
        assert "morphosys" in content

    def test_sweep_parallel_cached_check(self, capsys, tmp_path):
        argv = [
            "sweep",
            "--techs", "asic,morphosys",
            "--workloads", "interleaved",
            "--accels", "fir,xtea",
            "--frames", "1",
            "--cache-dir", str(tmp_path / "cache"),
            "--workers", "2",
            "--check",
            "--json",
        ]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert '"schema": "dse-sweep/v1"' in first
        # Second run: byte-identical JSON, now served from the cache.
        assert main(argv) == 0
        assert capsys.readouterr().out == first

    def test_sweep_resume_journal(self, capsys, tmp_path):
        journal = str(tmp_path / "sweep.jsonl")
        base = [
            "sweep",
            "--workloads", "interleaved",
            "--accels", "fir,xtea",
            "--frames", "1",
            "--resume", journal,
        ]
        assert main(base + ["--techs", "asic"]) == 0
        assert "evaluated=1" in capsys.readouterr().out
        # Growing the grid resumes the completed point from the journal.
        assert main(base + ["--techs", "asic,morphosys"]) == 0
        out = capsys.readouterr().out
        assert "resumed=1" in out and "evaluated=1" in out

    def test_flow(self, capsys):
        code = main(
            ["flow", "--accels", "fir,fft", "--tech", "varicore", "--frames", "1",
             "--back-annotate-scale", "2.0"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "partitioning recommendation" in out
        assert "figure-1a baseline" in out
        assert "back-annotated" in out

    def test_transform_with_listing(self, capsys):
        code = main(["transform", "--accels", "fir,fft", "--tech", "virtex2pro", "--listing"])
        assert code == 0
        out = capsys.readouterr().out
        assert "def build_top(sim):" in out
        assert "+ drcf1 = Drcf(...)" in out
        assert "class drcf_drcf1" in out
        assert "# context fir:" in out

    def test_experiments_missing_path(self, capsys):
        assert main(["experiments", "--path", "/nonexistent"]) == 2
        assert "not found" in capsys.readouterr().out

    def test_experiments_runs_one_bench(self, capsys):
        import os

        bench_dir = os.path.join(os.path.dirname(__file__), "..", "benchmarks")
        code = main(
            ["experiments", "--path", bench_dir, "--filter", "e2_figure2"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "regenerated tables archived" in out

    def test_deadlock_matrix(self, capsys):
        assert main(["deadlock"]) == 0
        out = capsys.readouterr().out
        assert "deadlock condition" in out
        # Exactly one configuration fails to complete its jobs: blocking +
        # shared bus.
        failing = [line for line in out.splitlines() if "0/2" in line]
        assert len(failing) == 1
        assert "blocking" in failing[0]
        assert out.count("2/2") == 3


class TestLint:
    BROKEN = (
        "from repro.apps.soc import make_multi_fabric_netlist\n"
        "from repro.tech import MORPHOSYS\n"
        "\n"
        "def build_netlist():\n"
        "    return make_multi_fabric_netlist(\n"
        "        {'f1': (('fir',), MORPHOSYS), 'f2': (('fft',), MORPHOSYS)},\n"
        "        config_region_bytes=64,\n"
        "    )\n"
    )
    CLEAN = (
        "from repro.apps.soc import make_baseline_netlist\n"
        "\n"
        "def build_netlist():\n"
        "    return make_baseline_netlist(('fir',))\n"
    )

    def test_lint_broken_file_fails(self, tmp_path, capsys):
        path = tmp_path / "broken_arch.py"
        path.write_text(self.BROKEN)
        assert main(["lint", str(path)]) == 1
        out = capsys.readouterr().out
        assert "REP301" in out
        assert "error(s)" in out

    def test_lint_clean_file_passes(self, tmp_path, capsys):
        path = tmp_path / "clean_arch.py"
        path.write_text(self.CLEAN)
        assert main(["lint", str(path)]) == 0
        assert "0 error(s)" in capsys.readouterr().out

    def test_lint_missing_file_is_usage_error(self, capsys):
        assert main(["lint", "/nonexistent/arch.py"]) == 2
        assert "cannot load" in capsys.readouterr().err

    def test_lint_file_without_netlist_is_usage_error(self, tmp_path, capsys):
        path = tmp_path / "empty.py"
        path.write_text("x = 1\n")
        assert main(["lint", str(path)]) == 2
        assert "no build_netlist" in capsys.readouterr().err

    def test_lint_builtin_deadlock_reports_rep310(self, capsys):
        assert main(["lint", "--builtin", "deadlock"]) == 1
        out = capsys.readouterr().out
        assert "REP310" in out
        assert "limitation 3" in out

    def test_lint_builtin_broken_shows_config_overlap(self, capsys):
        assert main(["lint", "--builtin", "broken"]) == 1
        out = capsys.readouterr().out
        assert "REP301" in out
        assert "REP206" in out

    def test_lint_self_check_default(self, capsys):
        assert main(["lint"]) == 0
        out = capsys.readouterr().out
        assert "baseline" in out and "reconfigurable" in out

    def test_lint_json_output_parses(self, tmp_path, capsys):
        import json

        path = tmp_path / "broken_arch.py"
        path.write_text(self.BROKEN)
        assert main(["lint", str(path), "--json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload[0]["errors"] >= 1
        codes = {d["code"] for d in payload[0]["diagnostics"]}
        assert "REP301" in codes

    def test_lint_ignore_suppresses(self, capsys):
        assert main(["lint", "--builtin", "deadlock", "--ignore", "REP310"]) == 0
        capsys.readouterr()

    def test_lint_select_restricts(self, capsys):
        assert main(["lint", "--builtin", "broken", "--select", "REP2"]) == 0
        out = capsys.readouterr().out
        assert "REP301" not in out and "REP206" in out


class TestLintDataflow:
    """The ``--dataflow`` / ``--confirm`` surface and the stable JSON shape."""

    RACY = (
        "from repro.core import Netlist\n"
        "from repro.kernel import Event, Module, Signal, ns\n"
        "\n"
        "class Racy(Module):\n"
        "    def __init__(self, name, parent=None, sim=None):\n"
        "        super().__init__(name, parent=parent, sim=sim)\n"
        "        self.flag = Signal(self.sim, 0, name='flag')\n"
        "        self.go = Event(self.sim, 'go')\n"
        "        self.add_thread(self.writer_a, name='writer_a')\n"
        "        self.add_thread(self.writer_b, name='writer_b')\n"
        "        self.add_thread(self.waiter, name='waiter')\n"
        "\n"
        "    def writer_a(self):\n"
        "        while True:\n"
        "            self.flag.write(1)\n"
        "            yield ns(10)\n"
        "\n"
        "    def writer_b(self):\n"
        "        while True:\n"
        "            self.flag.write(0)\n"
        "            yield ns(10)\n"
        "\n"
        "    def waiter(self):\n"
        "        yield self.go\n"
        "\n"
        "def build_netlist():\n"
        "    netlist = Netlist('net')\n"
        "    netlist.add('dut', Racy)\n"
        "    return netlist\n"
    )

    @pytest.fixture
    def racy_file(self, tmp_path):
        path = tmp_path / "racy_arch.py"
        path.write_text(self.RACY)
        return str(path)

    def test_dataflow_flag_reports_rep4xx(self, racy_file, capsys):
        assert main(["lint", racy_file]) == 0  # REP204 is only a warning
        capsys.readouterr()
        assert main(["lint", racy_file, "--dataflow"]) == 1
        out = capsys.readouterr().out
        assert "REP401" in out and "REP405" in out

    def test_confirm_implies_dataflow_and_tags_findings(self, racy_file, capsys):
        assert main(["lint", racy_file, "--confirm"]) == 1
        out = capsys.readouterr().out
        assert "confirm REP401 net.dut.flag: confirmed" in out
        assert "confirm REP405 net.dut.go: confirmed" in out

    def test_confirm_json_carries_confirmed_field(self, racy_file, capsys):
        import json

        assert main(["lint", racy_file, "--confirm", "--json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        by_code = {d["code"]: d for d in payload[0]["diagnostics"]}
        assert by_code["REP401"]["confirmed"] is True
        assert by_code["REP405"]["confirmed"] is True
        assert "confirmed" not in by_code["REP204"]  # not a cross-check target

    def test_json_summary_block_and_sort_order(self, racy_file, capsys):
        import json

        assert main(["lint", racy_file, "--dataflow", "--json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        entry = payload[0]
        summary = entry["summary"]
        assert set(summary) == {"error", "warning", "info"}
        assert summary["error"] == entry["errors"]
        assert summary["warning"] == entry["warnings"]
        keys = [(d["code"], d["location"]) for d in entry["diagnostics"]]
        assert keys == sorted(keys)

    def test_json_output_is_deterministic(self, racy_file, capsys):
        assert main(["lint", racy_file, "--dataflow", "--json"]) == 1
        first = capsys.readouterr().out
        assert main(["lint", racy_file, "--dataflow", "--json"]) == 1
        assert capsys.readouterr().out == first

    def test_builtin_templates_dataflow_clean(self, capsys):
        assert main(["lint", "--dataflow"]) == 0
        out = capsys.readouterr().out
        assert "0 error(s)" in out


class TestLintCfg:
    """The ``--cfg`` layer flag and the ``--explain`` registry lookup."""

    SPINNY = (
        "from repro.core import Netlist\n"
        "from repro.kernel import Module, Signal\n"
        "\n"
        "class Spinny(Module):\n"
        "    def __init__(self, name, parent=None, sim=None):\n"
        "        super().__init__(name, parent=parent, sim=sim)\n"
        "        self.req = Signal(self.sim, False, name='req')\n"
        "        self.add_thread(self.spin, name='spin')\n"
        "\n"
        "    def spin(self):\n"
        "        while True:\n"
        "            if self.req.read():\n"
        "                yield self.req.negedge\n"
        "\n"
        "def build_netlist():\n"
        "    netlist = Netlist('net')\n"
        "    netlist.add('dut', Spinny)\n"
        "    return netlist\n"
    )

    @pytest.fixture
    def spinny_file(self, tmp_path):
        path = tmp_path / "spinny_arch.py"
        path.write_text(self.SPINNY)
        return str(path)

    def test_cfg_flag_reports_rep5xx(self, spinny_file, capsys):
        assert main(["lint", spinny_file]) == 0
        capsys.readouterr()
        main(["lint", spinny_file, "--cfg"])
        out = capsys.readouterr().out
        assert "REP501" in out

    def test_cfg_json_carries_layer_field(self, spinny_file, capsys):
        import json

        main(["lint", spinny_file, "--cfg", "--json"])
        payload = json.loads(capsys.readouterr().out)
        layers = {d["code"]: d["layer"] for d in payload[0]["diagnostics"]}
        assert layers.get("REP501") == "cfg"
        keys = [(d["code"], d["location"]) for d in payload[0]["diagnostics"]]
        assert keys == sorted(keys)

    def test_explain_known_rule(self, capsys):
        assert main(["lint", "--explain", "REP501"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("REP501 — ")
        assert "layer: cfg" in out
        assert "severity: warning" in out
        assert "example:" in out

    def test_explain_is_case_insensitive(self, capsys):
        assert main(["lint", "--explain", "rep204"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("REP204 — ")

    def test_explain_unknown_rule_is_usage_error(self, capsys):
        assert main(["lint", "--explain", "REP999"]) == 2
        err = capsys.readouterr().err
        assert "unknown rule code" in err
        assert "REP501" in err  # the known-codes hint


class TestLintInterproc:
    """The ``--interproc`` layer flag and the ``--specialize-report``."""

    def test_interproc_flag_reports_rep601_on_deadlock_builtin(self, capsys):
        assert main(["lint", "--builtin", "deadlock", "--interproc"]) == 1
        out = capsys.readouterr().out
        assert "REP601" in out
        assert "wait-for cycle" in out
        assert "REP310" in out  # the runtime/netlist cross-reference

    def test_interproc_silent_without_flag(self, capsys):
        main(["lint", "--builtin", "deadlock", "--dataflow", "--cfg"])
        out = capsys.readouterr().out
        assert "REP601" not in out

    def test_builtin_templates_interproc_clean(self, capsys):
        assert main(["lint", "--interproc"]) == 0
        out = capsys.readouterr().out
        assert "0 error(s)" in out

    def test_interproc_json_carries_layer_field(self, capsys):
        import json

        main(["lint", "--builtin", "deadlock", "--interproc", "--json"])
        payload = json.loads(capsys.readouterr().out)
        layers = {d["code"]: d["layer"] for d in payload[0]["diagnostics"]}
        assert layers.get("REP601") == "interproc"

    @pytest.mark.parametrize("code", ["REP601", "REP602", "REP603", "REP604"])
    def test_explain_interproc_rules(self, code, capsys):
        assert main(["lint", "--explain", code]) == 0
        out = capsys.readouterr().out
        assert out.startswith(f"{code} — ")
        assert "layer: interproc" in out
        assert "example:" in out

    def test_specialize_report_lists_verdicts(self, capsys):
        assert main(["lint", "--builtin", "reconfigurable", "--specialize-report"]) == 0
        out = capsys.readouterr().out
        assert "specialize report:" in out
        # The SoC threads are excluded with per-thread reasons...
        assert "thread top.drcf1" in out
        # ...and the wholesale signal-side fallback is named too.
        assert "fallback:" in out

    def test_specialize_report_json(self, tmp_path, capsys):
        import json

        path = tmp_path / "pipe_arch.py"
        path.write_text(
            "from repro.core import Netlist\n"
            "from repro.kernel import Fifo, Module, ns\n"
            "\n"
            "class Pipe(Module):\n"
            "    def __init__(self, name, parent=None, sim=None):\n"
            "        super().__init__(name, parent=parent, sim=sim)\n"
            "        self.fifo = Fifo(self.sim, capacity=2, name='f')\n"
            "        self.add_thread(self.produce, name='produce')\n"
            "        self.add_thread(self.consume, name='consume')\n"
            "\n"
            "    def produce(self):\n"
            "        for i in range(4):\n"
            "            yield from self.fifo.put(i)\n"
            "            yield ns(2)\n"
            "\n"
            "    def consume(self):\n"
            "        for _ in range(4):\n"
            "            yield from self.fifo.get()\n"
            "\n"
            "def build_netlist():\n"
            "    netlist = Netlist('net')\n"
            "    netlist.add('dut', Pipe)\n"
            "    return netlist\n"
        )
        assert main(["lint", str(path), "--specialize-report", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        verdicts = payload[0]["specialize"]
        assert verdicts["compiled_threads"] == [
            "net.dut.consume", "net.dut.produce",
        ]
        assert verdicts["thread_exclusions"] == []
