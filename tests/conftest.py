"""Shared test fixtures and helpers."""

from __future__ import annotations

import pytest

from repro.kernel import Simulator


class Box:
    """Captures the return value of a generator run as a process."""

    def __init__(self) -> None:
        self.value = None
        self.done = False


def drive(sim: Simulator, gen_fn, name: str = "driver") -> Box:
    """Spawn ``gen_fn`` (zero-arg generator function) and capture its return.

    Call ``sim.run()`` afterwards; the box then holds the return value.
    """
    box = Box()

    def runner():
        box.value = yield from gen_fn()
        box.done = True

    sim.spawn(name, runner)
    return box


@pytest.fixture
def sim() -> Simulator:
    """A fresh simulator per test."""
    return Simulator()
