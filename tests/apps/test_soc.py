"""SoC templates: Figure 1(a) and 1(b) netlists and the area model."""

import pytest

from repro.apps import (
    ACCELERATOR_CLASSES,
    accelerator_gate_counts,
    architecture_area_um2,
    make_baseline_netlist,
    make_reconfigurable_netlist,
)
from repro.core import Drcf
from repro.kernel import Simulator
from repro.tech import ASIC, MORPHOSYS, VIRTEX2PRO


class TestBaselineTemplate:
    def test_structure(self):
        netlist, info = make_baseline_netlist(("fir", "dct"))
        names = netlist.component_names
        assert names[:3] == ["system_bus", "cpu", "mem"]
        assert "fir" in names and "dct" in names and "cfgmem" in names
        assert netlist.slaves_of("system_bus") == ["mem", "fir", "dct", "cfgmem"]
        assert netlist.masters_of("system_bus") == ["cpu"]

    def test_address_map_disjoint(self):
        netlist, info = make_baseline_netlist(("fir", "fft", "viterbi", "xtea", "dct", "matmul"))
        design = netlist.elaborate(Simulator())  # overlap would raise
        bases = sorted(info.accel_bases.values())
        assert len(set(bases)) == len(bases)

    def test_unknown_accelerator(self):
        with pytest.raises(KeyError, match="unknown accelerators"):
            make_baseline_netlist(("fir", "gpu"))

    def test_optional_components(self):
        netlist, _ = make_baseline_netlist(
            ("fir",), include_dma=True, include_config_memory=False
        )
        assert "dma" in netlist.component_names
        assert "cfgmem" not in netlist.component_names

    def test_accel_tech_override(self):
        netlist, _ = make_baseline_netlist(("fir",), accel_tech=VIRTEX2PRO)
        design = netlist.elaborate(Simulator())
        assert design["fir"].tech is VIRTEX2PRO


class TestReconfigurableTemplate:
    def test_drcf_replaces_candidates(self):
        netlist, info = make_reconfigurable_netlist(("fir", "fft"), tech=MORPHOSYS)
        assert "drcf1" in netlist.component_names
        assert "fir" not in netlist.component_names
        assert info.drcf_name == "drcf1"
        assert info.transform_report is not None
        design = netlist.elaborate(Simulator())
        assert isinstance(design["drcf1"], Drcf)

    def test_static_accels_stay_dedicated(self):
        netlist, info = make_reconfigurable_netlist(
            ("fir", "fft"), static_accels=("dct",), tech=MORPHOSYS
        )
        assert "dct" in netlist.component_names
        design = netlist.elaborate(Simulator())
        assert {c.name for c in design["drcf1"].contexts} == {"fir", "fft"}

    def test_dedicated_config_bus_topology(self):
        netlist, info = make_reconfigurable_netlist(
            ("fir",), tech=VIRTEX2PRO, dedicated_config_bus=True
        )
        assert netlist.component("cfgmem").slave_of == "config_bus"
        assert netlist.component("drcf1").master_of == "config_bus"
        design = netlist.elaborate(Simulator())
        assert design["config_bus"].slaves == [design["cfgmem"]]

    def test_address_map_preserved(self):
        base_netlist, base_info = make_baseline_netlist(("fir", "fft"))
        reconf_netlist, reconf_info = make_reconfigurable_netlist(("fir", "fft"), tech=MORPHOSYS)
        assert base_info.accel_bases == reconf_info.accel_bases
        design = reconf_netlist.elaborate(Simulator())
        drcf = design["drcf1"]
        assert drcf.get_low_add() == base_info.accel_bases["fir"]


class TestAreaModel:
    def test_gate_counts_from_classes(self):
        gates = accelerator_gate_counts(("fir", "viterbi"))
        assert gates == {"fir": 12_000, "viterbi": 30_000}

    def test_dedicated_area_is_sum(self):
        area = architecture_area_um2(("fir", "xtea"), asic_tech=ASIC)
        assert area == pytest.approx((12_000 + 8_000) * ASIC.area_per_gate_um2)

    def test_folded_area_is_largest_context_on_fabric(self):
        area = architecture_area_um2(
            ("fir", "fft", "xtea"),
            asic_tech=ASIC,
            fabric_tech=MORPHOSYS,
            folded=("fir", "fft", "xtea"),
        )
        assert area == pytest.approx(25_000 * MORPHOSYS.area_per_gate_um2)

    def test_mixed_architecture(self):
        area = architecture_area_um2(
            ("fir", "viterbi"),
            asic_tech=ASIC,
            fabric_tech=MORPHOSYS,
            folded=("fir",),
        )
        expected = 30_000 * ASIC.area_per_gate_um2 + 12_000 * MORPHOSYS.area_per_gate_um2
        assert area == pytest.approx(expected)

    def test_folded_requires_fabric_tech(self):
        with pytest.raises(ValueError, match="fabric_tech"):
            architecture_area_um2(("fir",), asic_tech=ASIC, folded=("fir",))
