"""Accelerator modules driven over the bus: register protocol, timing, errors."""

import pytest

from repro.apps.accelerators import (
    CMD_RESET,
    CMD_START,
    FirAccelerator,
    INBUF_OFFSET,
    REG_COEF_BASE,
    REG_CTRL,
    REG_JOBSIZE,
    REG_PARAM,
    REG_STATUS,
    STATUS_BUSY,
    STATUS_DONE,
    CryptoAccelerator,
    fir_filter,
    from_words,
    to_words,
)
from repro.bus import Bus
from repro.kernel import SimulationError, Simulator, ns, us
from repro.tech import ASIC, VIRTEX2PRO
from tests.conftest import drive


def make_rig(sim, cls=FirAccelerator, **kwargs):
    bus = Bus("bus", sim=sim, clock_freq_hz=100e6)
    acc = cls("acc", sim=sim, base=0x4000, buffer_words=64, **kwargs)
    bus.register_slave(acc)
    return bus, acc


def run_job(bus, acc, inputs, param, coefs=None):
    base = acc.base
    if coefs:
        yield from bus.write(base + REG_COEF_BASE, to_words(coefs), master="cpu")
    yield from bus.write(base + REG_JOBSIZE, len(inputs), master="cpu")
    yield from bus.write(base + REG_PARAM, param, master="cpu")
    yield from bus.write(base + INBUF_OFFSET, to_words(inputs), master="cpu")
    yield from bus.write(base + REG_CTRL, CMD_START, master="cpu")
    while True:
        status = yield from bus.read(base + REG_STATUS, 1, master="cpu")
        if status[0] & STATUS_DONE:
            break
    out = yield from bus.read(
        base + INBUF_OFFSET + acc.buffer_words * 4, len(inputs), master="cpu"
    )
    return from_words(out)


class TestRegisterProtocol:
    def test_full_job_matches_golden(self, sim):
        bus, acc = make_rig(sim)
        inputs = [100, -50, 25, 300]
        coefs = [1 << 14, 1 << 13]

        def body():
            out = yield from run_job(bus, acc, inputs, 2, coefs)
            return out

        box = drive(sim, body)
        sim.run()
        assert box.value == fir_filter(inputs, coefs)
        assert acc.jobs_done == 1

    def test_status_transitions(self, sim):
        bus, acc = make_rig(sim)
        seen = {}

        def body():
            yield from bus.write(acc.base + REG_JOBSIZE, 4, master="cpu")
            yield from bus.write(acc.base + REG_PARAM, 1, master="cpu")
            yield from bus.write(acc.base + INBUF_OFFSET, [1, 2, 3, 4], master="cpu")
            yield from bus.write(acc.base + REG_CTRL, CMD_START, master="cpu")
            status = yield from bus.read(acc.base + REG_STATUS, 1, master="cpu")
            seen["during"] = status[0]
            yield us(50)
            status = yield from bus.read(acc.base + REG_STATUS, 1, master="cpu")
            seen["after"] = status[0]

        sim.spawn("p", body)
        sim.run()
        assert seen["during"] & STATUS_BUSY
        assert seen["after"] & STATUS_DONE

    def test_reset_clears_registers(self, sim):
        bus, acc = make_rig(sim)

        def body():
            yield from bus.write(acc.base + REG_JOBSIZE, 9, master="cpu")
            yield from bus.write(acc.base + REG_CTRL, CMD_RESET, master="cpu")
            size = yield from bus.read(acc.base + REG_JOBSIZE, 1, master="cpu")
            return size[0]

        box = drive(sim, body)
        sim.run()
        assert box.value == 0

    def test_register_readback(self, sim):
        bus, acc = make_rig(sim)

        def body():
            yield from bus.write(acc.base + REG_PARAM, 7, master="cpu")
            yield from bus.write(acc.base + REG_COEF_BASE + 8, 0x55, master="cpu")
            param = yield from bus.read(acc.base + REG_PARAM, 1, master="cpu")
            coef = yield from bus.read(acc.base + REG_COEF_BASE + 8, 1, master="cpu")
            ctrl = yield from bus.read(acc.base + REG_CTRL, 1, master="cpu")
            return param[0], coef[0], ctrl[0]

        box = drive(sim, body)
        sim.run()
        assert box.value == (7, 0x55, 0)


class TestErrors:
    def test_start_without_jobsize(self, sim):
        bus, acc = make_rig(sim)

        def body():
            yield from bus.write(acc.base + REG_CTRL, CMD_START, master="cpu")

        sim.spawn("p", body)
        with pytest.raises(Exception, match="invalid JOBSIZE"):
            sim.run()

    def test_unknown_command(self, sim):
        bus, acc = make_rig(sim)

        def body():
            yield from bus.write(acc.base + REG_CTRL, 99, master="cpu")

        sim.spawn("p", body)
        with pytest.raises(Exception, match="unknown CTRL command"):
            sim.run()

    def test_unmapped_offset(self, sim):
        bus, acc = make_rig(sim)

        def body():
            yield from bus.read(acc.base + 0x60, 1, master="cpu")  # hole

        sim.spawn("p", body)
        with pytest.raises(Exception, match="unmapped"):
            sim.run()

    def test_unaligned_address(self, sim):
        _, acc = make_rig(sim)

        def body():
            yield from acc.read(acc.base + 2)

        sim.spawn("p", body)
        with pytest.raises(Exception, match="unaligned"):
            sim.run()

    def test_constructor_validation(self, sim):
        with pytest.raises(SimulationError, match="aligned"):
            FirAccelerator("a", sim=sim, base=0x4002)
        with pytest.raises(SimulationError, match="buffer_words"):
            FirAccelerator("b", sim=sim, base=0x4000, buffer_words=0)


class TestTiming:
    def test_fabric_tech_slows_compute(self):
        durations = {}
        for tech in (ASIC, VIRTEX2PRO):
            sim = Simulator()
            bus, acc = make_rig(sim, tech=tech)

            def body():
                yield from run_job(bus, acc, [1] * 32, 8, [1 << 14] * 8)

            sim.spawn("p", body)
            sim.run()
            durations[tech.name] = acc.total_compute_time

        assert durations["virtex2pro"] > durations["asic"]

    def test_busy_idle_handshake(self, sim):
        bus, acc = make_rig(sim)
        idle_at = []

        def watcher():
            yield acc.idle_event
            idle_at.append(sim.now.to_ns())

        def body():
            yield from run_job(bus, acc, [1, 2], 1, [1 << 15])

        sim.spawn("watch", watcher)
        sim.spawn("p", body)
        sim.run()
        assert idle_at and not acc.busy

    def test_compute_sink_reports_interval(self, sim):
        bus, acc = make_rig(sim)
        intervals = []
        acc.compute_sink = lambda start, end: intervals.append((start, end))

        def body():
            yield from run_job(bus, acc, [1, 2, 3], 1, [1 << 15])

        sim.spawn("p", body)
        sim.run()
        assert len(intervals) == 1
        start, end = intervals[0]
        assert end > start


class TestEncoding:
    def test_word_conversion_roundtrip(self):
        values = [-1, 0, 1, -(2**31), 2**31 - 1]
        assert from_words(to_words(values)) == values

    def test_crypto_uses_unsigned_lanes(self, sim):
        bus, acc = make_rig(sim, cls=CryptoAccelerator)
        key = [9, 8, 7, 6]

        def body():
            out = yield from run_job(bus, acc, [123, 456], 0, key)
            return out

        box = drive(sim, body)
        sim.run()
        from repro.apps.accelerators import xtea_encrypt_block

        expected = xtea_encrypt_block(123, 456, key)
        got = [w & 0xFFFFFFFF for w in box.value]
        assert tuple(got) == expected
